#!/usr/bin/env python3
"""CI smoke for the always-on service (`rtc-compliance serve`).

Boots the real daemon on an ephemeral port, replays an **impaired** cell
through a live session, and asserts the strongest service guarantee
end-to-end: the SSE verdict stream is bit-identical — order included —
to the batch pipeline over the same cell.  Then sends SIGTERM and checks
the daemon drains gracefully while ``/healthz`` keeps answering 200.

Exit status 0 means every check passed; any assertion failure is fatal.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.apps import NetworkCondition  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    ExperimentConfig,
    run_cell_pipeline,
)

APP = "zoom"
NETWORK = NetworkCondition.WIFI_RELAY
IMPAIRMENT = "lossy"  # the TURN-relay impaired golden corpus profile
DURATION, SCALE, SEED = 6.0, 0.3, 1


def get_json(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def post_json(url, payload, timeout=30):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def read_sse(url, timeout=300):
    events = []
    name = None
    with urllib.request.urlopen(url, timeout=timeout) as response:
        for raw in response:
            line = raw.decode("utf-8").rstrip("\r\n")
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                events.append((name, json.loads(line[len("data: "):])))
                if name == "end":
                    break
    return events


def batch_verdict_facts():
    run = run_cell_pipeline(
        APP,
        NETWORK,
        ExperimentConfig(
            call_duration=DURATION,
            media_scale=SCALE,
            seed=SEED,
            impairment=IMPAIRMENT,
        ),
    )
    return [
        {
            "timestamp": v.message.timestamp,
            "protocol": v.message.type_key()[0],
            "type": v.message.type_key()[1],
            "compliant": v.compliant,
            "violations": [
                [int(criterion), code] for criterion, code in v.violation_keys()
            ],
        }
        for v in run.verdicts
    ]


def main():
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert "listening on http://" in banner, f"bad banner: {banner!r}"
        base = banner.strip().rsplit(" ", 1)[-1]
        print(f"daemon up at {base}")

        status, health = get_json(base + "/healthz")
        assert status == 200 and health["status"] == "ok", health

        spec = {
            "app": APP,
            "network": NETWORK.value,
            "impairment": IMPAIRMENT,
            "duration": DURATION,
            "scale": SCALE,
            "seed": SEED,
        }
        status, created = post_json(base + "/sessions", spec)
        assert status == 201, created
        session_id = created["id"]
        print(f"session {session_id} replaying impaired cell "
              f"{APP}/{NETWORK.value} ({IMPAIRMENT})")

        events = read_sse(f"{base}/sessions/{session_id}/events")
        kinds = [name for name, _ in events]
        assert kinds[-1] == "end" and "summary" in kinds, kinds
        streamed = [
            {key: data[key] for key in
             ("timestamp", "protocol", "type", "compliant", "violations")}
            for name, data in events if name == "verdict"
        ]
        expected = batch_verdict_facts()
        assert len(streamed) == len(expected), (
            f"verdict count mismatch: SSE {len(streamed)} vs "
            f"batch {len(expected)}"
        )
        assert streamed == expected, "SSE verdict stream diverged from batch"
        print(f"SSE verdict parity OK: {len(streamed)} verdicts, "
              f"order bit-identical to batch")

        status, stats = get_json(f"{base}/sessions/{session_id}/stats")
        assert status == 200 and stats["closed"], stats
        status, health = get_json(base + "/healthz")
        assert status == 200 and health["status"] == "ok", health

        # A clock-paced session is still feeding when SIGTERM arrives, so
        # the drain has real work: stop ingest, join threads, finalize.
        status, slow = post_json(
            base + "/sessions",
            dict(spec, pace="clock", speed=1.0, duration=6.0),
        )
        assert status == 201, slow
        time.sleep(0.5)

        # /healthz must stay green (HTTP 200) for as long as the listener
        # answers during the drain; refused connections mean it is gone.
        polls = []
        failures = []

        def poll_health():
            while True:
                try:
                    status, _ = get_json(base + "/healthz", timeout=5)
                except (urllib.error.URLError, ConnectionError, OSError):
                    return
                if status != 200:
                    failures.append(status)
                    return
                polls.append(status)

        import threading

        poller = threading.Thread(target=poll_health)
        poller.start()
        proc.send_signal(signal.SIGTERM)
        poller.join(timeout=120)
        assert not failures, f"healthz degraded during drain: {failures}"
        assert polls, "no healthz response observed around shutdown"
        output = proc.stdout.read()
        proc.wait(timeout=60)
        assert proc.returncode == 0, (proc.returncode, output)
        assert "shutdown complete" in output, output
        print(f"graceful shutdown OK ({len(polls)} healthz polls answered "
              f"200 through the drain)")
        print("serve smoke OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
