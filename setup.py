"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in environments without the ``wheel`` package
(``python setup.py develop``), e.g. fully offline machines.
"""

from setuptools import setup

setup()
