#!/usr/bin/env python3
"""Ablation of the two-stage traffic filter (paper §3.2).

Shows the contribution of each stage-2 heuristic: for every subset of
heuristics we measure how much background traffic leaks through to the
compliance analysis, using the simulators' ground-truth labels — the
measurement the paper could not make on closed-source apps.
"""

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.filtering import TwoStageFilter


def main() -> None:
    simulator = get_simulator("meet")
    trace = simulator.simulate(
        CallConfig(network=NetworkCondition.WIFI_P2P, seed=5,
                   call_duration=25.0, media_scale=0.4)
    )
    configurations = [
        ("stage 1 only", ()),
        ("+ 3-tuple timing", ("3tuple",)),
        ("+ TLS SNI", ("3tuple", "sni")),
        ("+ local IP", ("3tuple", "sni", "local_ip")),
        ("+ port exclusion (full)", TwoStageFilter.ALL_HEURISTICS),
    ]
    print(f"{'configuration':<26} {'kept pkts':>9} {'bg leaked':>9} "
          f"{'precision':>9} {'recall':>7}")
    print("-" * 66)
    for label, heuristics in configurations:
        pipeline = TwoStageFilter(trace.window, enabled_heuristics=heuristics)
        result = pipeline.apply(trace.records)
        evaluation = result.evaluation
        print(f"{label:<26} {result.kept.udp_packets + result.kept.tcp_packets:>9} "
              f"{evaluation.kept_non_rtc:>9} {evaluation.precision:>9.4f} "
              f"{evaluation.recall:>7.4f}")

    print("\nPer-heuristic removals with the full pipeline:")
    result = TwoStageFilter(trace.window).apply(trace.records)
    for name, streams in result.removed_by.items():
        packets = sum(s.packet_count for s in streams)
        print(f"  {name:<10} removed {len(streams):3d} streams / {packets:5d} packets")


if __name__ == "__main__":
    main()
