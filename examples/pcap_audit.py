#!/usr/bin/env python3
"""Audit a pcap capture for RTC protocol compliance.

This is the downstream-operator workflow: given any packet capture (here we
synthesize one and write it to a real .pcap file first, since the sandbox
has no live traffic), extract all RTC protocol messages and produce a
per-message compliance report — the same analysis the paper runs on its
iPhone captures.

Usage::

    python examples/pcap_audit.py [existing.pcap]
"""

import sys
import tempfile
from collections import Counter
from pathlib import Path

from repro import ComplianceChecker, ComplianceSummary, DpiEngine
from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.packets.pcap import read_pcap, write_pcap


def synthesize_capture(path: Path) -> None:
    """Write a Discord relay call (background noise included) as a pcap."""
    simulator = get_simulator("discord")
    trace = simulator.simulate(
        CallConfig(network=NetworkCondition.WIFI_RELAY, seed=11,
                   call_duration=15.0, media_scale=0.4)
    )
    count = write_pcap(path, trace.records)
    print(f"synthesized {count} packets into {path}")


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "rtc_audit_demo.pcap"
        synthesize_capture(path)

    records = read_pcap(path)
    print(f"loaded {len(records)} packets from {path}")

    engine = DpiEngine()
    result = engine.analyze_records(records)
    messages = result.messages()
    print(f"extracted {len(messages)} RTC protocol messages")

    verdicts = ComplianceChecker().check(messages)
    summary = ComplianceSummary.from_verdicts(path.name, verdicts)

    print(f"\nvolume compliance: {summary.volume.ratio * 100:.2f}%")
    print("top violations:")
    codes = Counter(
        str(v.first_violation).split("]")[0] + "]"
        for v in verdicts if not v.compliant
    )
    for code, count in codes.most_common(5):
        print(f"  {count:6d}  {code}")

    print("\nnon-compliant message types:")
    for entry in sorted(summary.types.values(),
                        key=lambda e: (e.protocol, e.type_label)):
        if entry.compliant:
            continue
        print(f"  {entry.protocol} type {entry.type_label}: "
              f"{entry.non_compliant}/{entry.total} messages violate")
        for example in entry.example_violations[:1]:
            print(f"    {example}")


if __name__ == "__main__":
    main()
