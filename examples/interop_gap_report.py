#!/usr/bin/env python3
"""Interoperability gap report — the DMA scenario from the paper's intro.

The EU Digital Markets Act requires major RTC platforms to support
cross-application calls by 2028.  This example quantifies, per application,
what a standards-conformant peer would have to additionally implement to
parse that application's traffic: undefined message types, undefined
attributes, proprietary headers, and semantic deviations.

It is exactly the measurement the paper argues enables "estimating the
technical challenges involved in achieving such interoperability" (§1).
"""

from collections import Counter

from repro import APP_NAMES, ExperimentConfig, NetworkCondition, run_experiment
from repro.dpi.messages import DatagramClass


def main() -> None:
    config = ExperimentConfig(call_duration=20.0, media_scale=0.4, seed=7)
    print(f"{'app':<11} {'undefined':>9} {'undefined':>9} {'prop.':>7} "
          f"{'semantic':>9} {'extra parser burden'}")
    print(f"{'':<11} {'types':>9} {'attrs':>9} {'header':>7} {'rules':>9}")
    print("-" * 75)

    for app in APP_NAMES:
        undefined_types = set()
        violation_codes = Counter()
        header_datagrams = 0
        total_datagrams = 0

        for network in NetworkCondition:
            agg = run_experiment(app, network, config)
            total_datagrams += sum(agg.class_counts.values())
            header_datagrams += agg.class_counts.get(
                DatagramClass.PROPRIETARY_HEADER, 0
            )
            for entry in agg.summary.types.values():
                for example in entry.example_violations:
                    code = example.split("]")[0].split(":")[-1]
                    violation_codes[code] += 1
                    if code == "undefined-message-type":
                        undefined_types.add(entry.type_label)

        undefined_attr = violation_codes.get("undefined-attribute", 0) + \
            violation_codes.get("undefined-extension-profile", 0)
        semantic = sum(
            count for code, count in violation_codes.items()
            if code in ("allocate-pingpong", "undefined-trailing-bytes",
                        "srtcp-missing-auth-tag", "channeldata-padding",
                        "unanswered-retransmission")
        )
        header_share = header_datagrams / total_datagrams if total_datagrams else 0.0
        burden = []
        if undefined_types:
            burden.append(f"{len(undefined_types)} custom msg types")
        if undefined_attr:
            burden.append("proprietary TLVs")
        if header_share > 0.05:
            burden.append(f"{header_share * 100:.0f}% wrapped datagrams")
        if semantic:
            burden.append("non-std semantics")
        print(f"{app:<11} {len(undefined_types):>9} {undefined_attr:>9} "
              f"{header_share * 100:>6.1f}% {semantic:>9}   "
              f"{', '.join(burden) or 'none — parses with stock RFC stack'}")

    print("\nReading: each row is what a stock RFC-compliant endpoint must")
    print("additionally implement to interoperate with that application.")


if __name__ == "__main__":
    main()
