#!/usr/bin/env python3
"""Reproduce the paper's per-application case studies (§5.2, §5.3).

Runs the targeted detectors over single-app traces and prints the observed
behaviour next to the paper's claim.
"""

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.dpi import DpiEngine
from repro.experiments.case_studies import (
    detect_direction_byte,
    detect_dual_rtp,
    detect_extension_abuse,
    detect_facetime_beacons,
    detect_facetime_headers,
    detect_meta_burst,
    detect_srtcp_tags,
    detect_ssrc_zero,
    detect_zoom_filler,
    observed_rtp_ssrcs,
)
from repro.filtering import TwoStageFilter


def analyze(app: str, network: NetworkCondition, seed: int = 3):
    trace = get_simulator(app).simulate(
        CallConfig(network=network, seed=seed, call_duration=25.0, media_scale=0.4)
    )
    kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
    dpi = DpiEngine().analyze_records(kept)
    return trace, dpi


def main() -> None:
    print("== Zoom: filler messages (bandwidth probes) ==")
    _trace, dpi = analyze("zoom", NetworkCondition.WIFI_RELAY)
    filler = detect_zoom_filler(dpi.analyses)
    print(f"  filler datagrams: {filler.filler_count} "
          f"({filler.filler_share * 100:.0f}% of fully proprietary; paper: 53%)")
    print(f"  peak burst rate: {filler.peak_rate_pps:.0f} pkt/s "
          f"(paper: up to 500 pkt/s in relay mode)")
    print(f"  shares a 5-tuple with media: {filler.shares_media_stream}")

    dual = detect_dual_rtp(dpi.analyses)
    print(f"\n== Zoom: dual-RTP datagrams ==")
    print(f"  {dual.dual_datagrams}/{dual.rtp_datagrams} RTP datagrams "
          f"({dual.rate * 100:.2f}%; paper: 0.21%), "
          f"first message short: {dual.all_first_short}, "
          f"same SSRC+timestamp: {dual.all_same_ssrc_timestamp}")

    print("\n== Zoom: SSRCs fixed across calls ==")
    ssrcs = []
    for call in range(2):
        trace = get_simulator("zoom").simulate(
            CallConfig(network=NetworkCondition.CELLULAR, seed=3, call_index=call,
                       call_duration=15.0, media_scale=0.3)
        )
        kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
        ssrcs.append(observed_rtp_ssrcs(DpiEngine().analyze_records(kept).messages()))
    print(f"  call 1: {sorted(hex(s) for s in ssrcs[0])}")
    print(f"  call 2: {sorted(hex(s) for s in ssrcs[1])}")
    print(f"  identical across calls: {ssrcs[0] == ssrcs[1]} (paper: always)")

    print("\n== Discord: RTCP deviations ==")
    _trace, dpi = analyze("discord", NetworkCondition.CELLULAR)
    messages = dpi.messages()
    ssrc0 = detect_ssrc_zero(messages)
    print(f"  SSRC=0 in {ssrc0.rate * 100:.0f}% of type-205 messages (paper: ~25%)")
    direction = detect_direction_byte(messages)
    print(f"  direction byte perfectly correlated: {direction.perfectly_correlated} "
          f"(outbound {sorted(map(hex, direction.outbound_values))}, "
          f"inbound {sorted(map(hex, direction.inbound_values))})")
    abuse = detect_extension_abuse(messages)
    print(f"  ID=0 extension elements: {abuse.id_zero_rate * 100:.2f}% of RTP "
          f"(paper: 4.91%); undefined profiles: "
          f"{abuse.undefined_profile_rate * 100:.2f}% (paper: 2.58%) on payload "
          f"types {sorted(abuse.undefined_profile_payload_types)}")

    print("\n== FaceTime: cellular beacons and relay headers ==")
    _trace, dpi = analyze("facetime", NetworkCondition.CELLULAR)
    beacons = detect_facetime_beacons(dpi.analyses)
    print(f"  0xDEADBEEFCAFE beacons: {beacons.share * 100:.1f}% of datagrams "
          f"(paper: ~10% cellular), 36 bytes: {beacons.all_36_bytes}, "
          f"counters monotonic: {beacons.counters_monotonic}, "
          f"median interval {beacons.median_interval * 1000:.0f} ms (paper: 50 ms)")
    _trace, dpi = analyze("facetime", NetworkCondition.WIFI_RELAY)
    headers = detect_facetime_headers(dpi.analyses)
    print(f"  relay-mode proprietary headers: {headers.share * 100:.1f}% "
          f"(paper: 89.2%), all start 0x6000: {headers.all_start_0x6000}, "
          f"lengths {headers.length_range} (paper: 8-19 bytes)")

    print("\n== WhatsApp: 0x0801/0x0802 burst ==")
    _trace, dpi = analyze("whatsapp", NetworkCondition.WIFI_RELAY)
    burst = detect_meta_burst(dpi.messages())
    print(f"  {burst.pairs} pairs in {burst.burst_span * 1000:.1f} ms "
          f"(paper: 16 pairs in ~2.2 ms), request sizes {set(burst.request_sizes)} "
          f"(paper: 500 B), response sizes {set(burst.response_sizes)} (paper: 40 B)")

    print("\n== Google Meet: SRTCP authentication tags ==")
    for network in (NetworkCondition.WIFI_RELAY, NetworkCondition.WIFI_P2P):
        _trace, dpi = analyze("meet", network)
        tags = detect_srtcp_tags(dpi.messages())
        print(f"  {network.value:<11} tagless: {tags.tagless_share * 100:5.1f}% "
              f"({tags.tagless}/{tags.tagged + tags.tagless}) "
              f"(paper: most tagless in relay Wi-Fi only)")


if __name__ == "__main__":
    main()
