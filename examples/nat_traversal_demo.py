#!/usr/bin/env python3
"""NAT traversal demo: how the experiment's network settings decide
P2P vs relay (paper §2.1, Figure 1).

Runs the ICE substrate over the NAT behaviours corresponding to the paper's
three network configurations and shows which candidate pair wins — the
mechanism behind each simulator's transmission-mode choice.
"""

from repro.ice import NatBehaviour, SimulatedNetwork, run_ice

SCENARIOS = [
    ("Wi-Fi, UDP hole punching allowed (wifi_p2p)",
     SimulatedNetwork(NatBehaviour.ENDPOINT_INDEPENDENT,
                      NatBehaviour.ENDPOINT_INDEPENDENT)),
    ("Wi-Fi, hole punching blocked at the router (wifi_relay)",
     SimulatedNetwork(NatBehaviour.BLOCKED,
                      NatBehaviour.ENDPOINT_INDEPENDENT)),
    ("Carrier CGNAT permitting direct paths (cellular, FaceTime-style)",
     SimulatedNetwork(NatBehaviour.ENDPOINT_INDEPENDENT,
                      NatBehaviour.ADDRESS_DEPENDENT)),
    ("Both endpoints firewalled (worst case)",
     SimulatedNetwork(NatBehaviour.BLOCKED, NatBehaviour.BLOCKED)),
]


def main() -> None:
    for label, network in SCENARIOS:
        outcome = run_ice(network, seed=1)
        pair = outcome.nominated
        path = "-"
        if pair is not None:
            path = (f"{pair.local.candidate_type.value} "
                    f"{pair.local.ip}:{pair.local.port} -> "
                    f"{pair.remote.candidate_type.value} "
                    f"{pair.remote.ip}:{pair.remote.port}")
        print(f"{label}")
        print(f"  checks sent: {outcome.checks_sent}  "
              f"succeeded: {outcome.succeeded}  failed: {outcome.failed}")
        print(f"  outcome: {outcome.mode.upper()}  via {path}\n")

    print("This is exactly Figure 1 of the paper: when direct checks fail,")
    print("the session falls back to the TURN relay — and that decision is")
    print("what flips each application into the behaviours the compliance")
    print("study measures in relay mode.")


if __name__ == "__main__":
    main()
