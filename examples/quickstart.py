#!/usr/bin/env python3
"""Quickstart: measure protocol compliance for one simulated RTC call.

Runs the full pipeline for a single experiment cell — simulate a Zoom call
over relay-mode Wi-Fi, filter the unrelated traffic, extract every protocol
message with the DPI engine, and judge each message against the
five-criterion compliance model.
"""

from repro import ExperimentConfig, NetworkCondition, run_experiment


def main() -> None:
    aggregate = run_experiment(
        "zoom",
        NetworkCondition.WIFI_RELAY,
        ExperimentConfig(call_duration=30.0, media_scale=0.5, seed=42),
    )

    summary = aggregate.summary
    print(f"== {summary.app} over wifi_relay ==")
    print(f"raw UDP datagrams:      {aggregate.raw.udp_packets}")
    print(f"kept after filtering:   {aggregate.kept.udp_packets} "
          f"(precision {aggregate.filter_precision:.3f}, "
          f"recall {aggregate.filter_recall:.3f})")

    print("\nDatagram classes (Figure 3 view):")
    total = sum(aggregate.class_counts.values())
    for cls, count in aggregate.class_counts.items():
        print(f"  {cls.value:<20} {count:6d}  ({count / total * 100:5.1f}%)")

    print(f"\nVolume compliance: {summary.volume.ratio * 100:.2f}%")
    for protocol, volume in summary.volume_by_protocol.items():
        print(f"  {protocol:<10} {volume.ratio * 100:6.2f}%  "
              f"({volume.compliant}/{volume.total} messages)")

    compliant, total_types = summary.type_ratio()
    print(f"\nMessage-type compliance: {compliant}/{total_types}")
    for entry in sorted(summary.types.values(),
                        key=lambda e: (e.protocol, e.type_label)):
        marker = "ok " if entry.compliant else "BAD"
        print(f"  [{marker}] {entry.protocol:<10} type {entry.type_label:<12} "
              f"({entry.total} messages)")
        for example in entry.example_violations[:1]:
            print(f"        {example}")


if __name__ == "__main__":
    main()
