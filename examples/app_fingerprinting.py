#!/usr/bin/env python3
"""Identify an RTC application from its protocol-compliance fingerprint.

The paper notes proprietary deviations blind conventional traffic
classifiers; this example turns the finding around — the deviations
themselves are a reliable classifier.  We synthesize traces for every
(app, network) cell, strip the labels, and let the fingerprinting engine
name the application from DPI output alone (no IPs, no ports, no SNI).
"""

from repro.analysis.classifier import classify_application
from repro.apps import APP_NAMES, CallConfig, NetworkCondition, get_simulator
from repro.dpi import DpiEngine
from repro.filtering import TwoStageFilter


def main() -> None:
    correct = total = 0
    print(f"{'actual':<11} {'network':<11} {'classified as':<14} "
          f"{'confident':<9} top evidence")
    print("-" * 90)
    for app in APP_NAMES:
        for network in NetworkCondition:
            trace = get_simulator(app).simulate(
                CallConfig(network=network, seed=13,
                           call_duration=15.0, media_scale=0.35)
            )
            kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
            dpi = DpiEngine().analyze_records(kept)
            scores = classify_application(dpi.analyses)
            verdict = scores.best or "?"
            evidence = scores.evidence.get(verdict, ["-"])[0]
            marker = "yes" if scores.confident else "no"
            total += 1
            if verdict == app:
                correct += 1
            print(f"{app:<11} {network.value:<11} {verdict:<14} "
                  f"{marker:<9} {evidence}")
    print(f"\naccuracy: {correct}/{total}")


if __name__ == "__main__":
    main()
