"""Concrete stages wiring the system's layers into the streaming core.

Each adapter owns exactly one layer object — the online filter, a DPI
stream session, a checker stream — and translates between the layer's
incremental API and the :class:`~repro.pipeline.stage.Stage` protocol.
The layers themselves never learn about the pipeline, and the batch
entry points (``TwoStageFilter.apply``, ``DpiEngine.analyze_records``,
``ComplianceChecker.check``) stay the single source of truth for what
each transformation means: every adapter here drives the same
implementation those batch calls drive.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.checker import CheckerStream, ComplianceChecker
from repro.core.verdict import MessageVerdict
from repro.dpi.engine import DpiEngine, DpiResult, DpiStreamSession
from repro.dpi.messages import DatagramAnalysis
from repro.filtering.online import OnlineTwoStageFilter
from repro.filtering.pipeline import FilterResult, TwoStageFilter
from repro.packets.packet import PacketRecord
from repro.pipeline.stage import Stage
from repro.streams.flow import FlowKey

IndexedVerdict = Tuple[int, MessageVerdict]


class FilterStage(Stage):
    """Two-stage unrelated-traffic filtering as a pipeline stage.

    Keep/drop decisions are provisional until the capture ends (see
    :mod:`repro.filtering.online`), so this stage emits nothing from
    ``process`` and releases every kept record, in timestamp order, at
    flush.  After flush the full :class:`FilterResult` — Table 1
    accounting included — is available as :attr:`result`.
    """

    name = "filter"

    def __init__(
        self,
        filter_: Optional[TwoStageFilter] = None,
        low_memory: bool = False,
        online: Optional["OnlineTwoStageFilter"] = None,
    ):
        if online is None:
            if filter_ is None:
                raise ValueError("FilterStage needs a filter_ or an online session")
            online = filter_.online(low_memory=low_memory)
        self._online = online
        self.result: Optional[FilterResult] = None

    def process(self, item: PacketRecord) -> Iterable[PacketRecord]:
        self._online.observe(item)
        return ()

    def process_chunk(self, items: Sequence[PacketRecord]) -> List[PacketRecord]:
        observe = self._online.observe
        for item in items:
            observe(item)
        return []

    def flush(self) -> Iterable[PacketRecord]:
        self.result = self._online.finalize()
        return self.result.kept_records

    def evict(self, watermark: float) -> Iterable[PacketRecord]:
        """Drain doomed streams' payloads; never emits records.

        Keep/drop is provisional until the capture ends (a later record
        can revoke a keep), so the only thing the filter can finalize
        early is certain removal — exactly the ``low_memory`` drain, run
        on demand.  Kept-looking streams keep buffering until flush.
        """
        self._online.evict(watermark)
        return ()

    def buffered(self) -> int:
        return self._online.buffered_packets


class DpiStage(Stage):
    """Per-datagram DPI as a pipeline stage.

    Buffers records per stream (validation context is stream-scoped) and
    emits every :class:`DatagramAnalysis`, in timestamp order, at flush.
    With ``collect=True`` (the batch adapters' mode) the analyses are
    additionally retained so :meth:`result` can package them as a
    ``DpiResult``; pure-streaming consumers pass ``collect=False`` and
    read only the per-session :meth:`stats`.

    Session mode adds two opt-ins the run-to-exhaustion adapters never
    use.  ``track_order=True`` records, per emitted analysis, the
    ``(timestamp, stream serial, position in stream, message count)``
    tuple (:attr:`emission_log`) — the total order the batch flush would
    have emitted in, so a consumer receiving analyses out of order (from
    evictions) can restore exact batch verdict order with one sort.
    Eviction itself comes in two flavors: :meth:`set_flow_deadlines`
    arms exact per-flow finalization (finish a flow the moment the
    watermark passes its known last record — provably lossless), while
    ``idle_gap`` arms the heuristic policy for open-ended live feeds
    (finish flows idle longer than the gap; a flow that resumes after
    eviction restarts without the evicted context).
    """

    name = "dpi"

    def __init__(
        self,
        engine: DpiEngine,
        collect: bool = True,
        track_order: bool = False,
        idle_gap: Optional[float] = None,
    ):
        self._session: DpiStreamSession = engine.stream_session()
        self._collect = collect
        self._collected: List[DatagramAnalysis] = []
        self._analyses: Optional[List[DatagramAnalysis]] = None
        self._track_order = track_order
        self._idle_gap = idle_gap
        self._deadlines: Optional[Dict[FlowKey, float]] = None
        #: ``(timestamp, serial, position, message_count)`` per emitted
        #: analysis, in emission order; only populated with track_order.
        self.emission_log: List[Tuple[float, int, int, int]] = []
        self._positions: Dict[int, int] = {}

    def set_flow_deadlines(self, deadlines: Dict[FlowKey, float]) -> None:
        """Arm exact eviction: finish each flow once *watermark* passes
        its deadline (the flow's last record timestamp, known ahead of a
        drain over fully-materialized input).  Overrides ``idle_gap``."""
        self._deadlines = dict(deadlines)

    def _log(self, analyses: List[DatagramAnalysis]) -> List[DatagramAnalysis]:
        if self._collect:
            self._collected.extend(analyses)
        if self._track_order:
            for analysis in analyses:
                serial = self._session.serial(analysis.record.flow_key)
                assert serial is not None
                position = self._positions.get(serial, 0)
                self._positions[serial] = position + 1
                self.emission_log.append(
                    (
                        analysis.record.timestamp,
                        serial,
                        position,
                        len(analysis.messages),
                    )
                )
        return analyses

    def process(self, item: PacketRecord) -> Iterable[DatagramAnalysis]:
        self._session.feed(item)
        return ()

    def process_chunk(self, items: Sequence[PacketRecord]) -> List[DatagramAnalysis]:
        self._session.feed_many(items)
        return []

    def flush(self) -> Iterable[DatagramAnalysis]:
        analyses = self._log(self._session.flush())
        if self._collect:
            # Everything emitted across the stage's lifetime — evictions
            # included, in emission order.  Without evictions this is
            # exactly the flush list (the historical behavior).
            self._analyses = self._collected
        return analyses

    def evict(self, watermark: float) -> Iterable[DatagramAnalysis]:
        if self._deadlines is not None:
            analyses: List[DatagramAnalysis] = []
            for key in self._session.open_keys():
                deadline = self._deadlines.get(key)
                if deadline is not None and deadline <= watermark:
                    analyses.extend(self._session.finish_stream(key))
            return self._log(analyses)
        if self._idle_gap is not None:
            return self._log(self._session.evict_idle(watermark, self._idle_gap))
        return ()

    def buffered(self) -> int:
        return self._session.buffered

    def stats(self):
        return self._session.stats()

    def result(self) -> DpiResult:
        """The flushed analyses as a batch-shaped ``DpiResult``."""
        if self._analyses is None:
            raise RuntimeError("result() requires collect=True and a flush")
        result = DpiResult(analyses=self._analyses)
        result.stats = self._session.stats()
        result.cache_hits = result.stats.cache_hits
        result.cache_misses = result.stats.cache_misses
        return result


class CheckStage(Stage):
    """Compliance checking as a pipeline stage.

    Emits ``(global_message_index, verdict)`` pairs — everything except
    STUN/TURN immediately, the deferred STUN verdicts at flush.  Sorting
    the collected pairs by index reproduces ``ComplianceChecker.check``'s
    output order exactly (the indices number messages in analysis order).
    """

    name = "check"

    def __init__(self, checker: ComplianceChecker):
        self._stream: CheckerStream = checker.stream()

    def process(self, item: DatagramAnalysis) -> Iterable[IndexedVerdict]:
        return self._stream.feed(item.messages)

    def process_chunk(self, items: Sequence[DatagramAnalysis]) -> List[IndexedVerdict]:
        out: List[IndexedVerdict] = []
        feed = self._stream.feed
        for item in items:
            out.extend(feed(item.messages))
        return out

    def flush(self) -> Iterable[IndexedVerdict]:
        return self._stream.flush()

    def buffered(self) -> int:
        return self._stream.deferred


def ordered_verdicts(indexed: Iterable[IndexedVerdict]) -> List[MessageVerdict]:
    """Restore batch verdict order from a pipeline's indexed emissions."""
    return [verdict for _, verdict in sorted(indexed, key=lambda pair: pair[0])]
