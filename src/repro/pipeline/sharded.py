"""Flow-sharded parallel streaming: partition by flow key, merge exactly.

Every stateful layer of the streaming pipeline — DPI stream sessions,
signature learners, checker streams — keys its state by flow, so a
capture can be hash-partitioned across worker processes by the
direction-agnostic flow key (the 5-tuple with endpoints sorted) and each
shard can run the full streaming pipeline independently.  The only
capture-global state is the filter's two window heuristics; the
partitioning pass pre-collects those sets and seeds every shard's
:class:`~repro.filtering.online.OnlineTwoStageFilter` with them (see
that module), so per-shard keep/drop decisions equal a global run's.

Determinism contract.  The single-process pipeline emits analyses in
a total order that is fully determined by per-record facts: sort by

    (timestamp, stream first-kept timestamp, stream first-arrival index,
     record arrival index)

where "arrival index" numbers the records of the whole capture in input
order.  Each worker computes exactly this key for every analysis it
produces (a shard sees a subsequence of the capture, so global arrival
indices are handed to it alongside its records), and the coordinator
merges shard outputs by the key.  Keys are unique (one analysis per
record), so the merged order — and with it verdict numbering, summary
example selection, and ``FilterResult`` accounting — is bit-identical
to the single-process streaming path for every shard count and any
worker finish order.

Shard placement uses a keyed BLAKE2b digest, not Python's builtin
``hash``: string hashing is salted per process (``PYTHONHASHSEED``), and
shard assignment must agree between the coordinator and every worker.

Fallback: when worker processes cannot be used (unpicklable factories, a
sandbox that forbids ``fork``, or this process already *is* a pool
worker), the same partition → execute → merge path runs in-process, so
results never depend on whether the pool engaged.
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.checker import ComplianceChecker
from repro.core.verdict import MessageVerdict
from repro.dpi.engine import DpiEngine, DpiResult, DpiStats
from repro.dpi.messages import DatagramAnalysis
from repro.filtering.heuristics import EndpointTuple
from repro.filtering.pipeline import (
    FilterResult,
    StageCounts,
    TwoStageFilter,
    _evaluate,
)
from repro.filtering.timespan import TimespanFilter
from repro.packets.packet import PacketRecord
from repro.pipeline.stage import (
    DEFAULT_CHUNK_SIZE,
    Pipeline,
    StageStats,
    merge_stage_stats,
)
from repro.pipeline.stages import (
    CheckStage,
    DpiStage,
    FilterStage,
    ordered_verdicts,
)
from repro.streams.flow import FlowKey, Stream

#: ``(timestamp, first_kept_ts, first_arrival, arrival)`` — see module doc.
SortKey = Tuple[float, float, int, int]


def flow_shard(key: FlowKey, shards: int) -> int:
    """Stable shard index for *key* — identical in every Python process.

    Uses BLAKE2b over a canonical rendering of the flow key rather than
    ``hash()``, which is salted per process and would scatter the same
    flow to different shards in coordinator and workers.
    """
    if shards < 1:
        raise ValueError("shards must be a positive integer")
    if shards == 1:
        return 0
    (a_ip, a_port), (b_ip, b_port), transport = key
    token = f"{a_ip}|{a_port}|{b_ip}|{b_port}|{transport}".encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


@dataclass
class _ShardTask:
    """Everything one worker needs; must pickle cleanly for the pool."""

    records: List[PacketRecord]
    #: Global input-order index of each record, aligned with ``records``.
    arrivals: List[int]
    engine_factory: Callable[[], DpiEngine]
    checker_factory: Callable[[], ComplianceChecker]
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Present only in cell mode (filter → DPI → check); the seeds carry
    #: the capture-global heuristic state collected during partitioning.
    filter_: Optional[TwoStageFilter] = None
    seed_outside: FrozenSet[EndpointTuple] = frozenset()
    seed_precall: FrozenSet[FrozenSet[str]] = frozenset()


@dataclass
class _ShardOutcome:
    """One worker's results, tagged for the deterministic merge."""

    #: ``(sort_key, analysis, verdicts for that analysis's messages)``.
    entries: List[Tuple[SortKey, DatagramAnalysis, List[MessageVerdict]]]
    dpi_stats: DpiStats
    stage_stats: List[StageStats]
    filter_result: Optional[FilterResult] = None


@dataclass
class ShardedCellRun:
    """Merged output of a flow-sharded cell run (filter → DPI → check)."""

    filter_result: FilterResult
    dpi: DpiResult
    verdicts: List[MessageVerdict]
    stage_stats: List[StageStats]


def _execute_shard(task: _ShardTask) -> _ShardOutcome:
    """Run the full streaming pipeline over one shard's records.

    Module-level so process pools can pickle it; also the in-process
    fallback path, so pool and fallback execute the same code.
    """
    engine = task.engine_factory()
    checker = task.checker_factory()
    filter_stage: Optional[FilterStage] = None
    stages: List[object] = []
    if task.filter_ is not None:
        online = task.filter_.online(
            seed_outside=task.seed_outside, seed_precall=task.seed_precall
        )
        filter_stage = FilterStage(online=online)
        stages.append(filter_stage)
    dpi_stage = DpiStage(engine)
    check_stage = CheckStage(checker)
    stages.extend([dpi_stage, check_stage])
    pipeline = Pipeline(stages, chunk_size=task.chunk_size)
    indexed = pipeline.run(task.records)
    verdicts = ordered_verdicts(indexed)
    result = dpi_stage.result()

    arrival_of = {
        id(record): arrival
        for record, arrival in zip(task.records, task.arrivals)
    }
    first_arrival: Dict[FlowKey, int] = {}
    for record, arrival in zip(task.records, task.arrivals):
        first_arrival.setdefault(record.flow_key, arrival)
    first_kept_ts: Dict[FlowKey, float] = {}
    filter_result = None
    if filter_stage is not None:
        filter_result = filter_stage.result
        for stream in filter_result.kept_streams:
            first_kept_ts[stream.key] = stream.first_timestamp

    entries: List[Tuple[SortKey, DatagramAnalysis, List[MessageVerdict]]] = []
    cursor = 0
    for analysis in result.analyses:
        record = analysis.record
        key = record.flow_key
        count = len(analysis.messages)
        sort_key = (
            record.timestamp,
            first_kept_ts.get(key, 0.0),
            first_arrival[key],
            arrival_of[id(record)],
        )
        entries.append((sort_key, analysis, verdicts[cursor:cursor + count]))
        cursor += count
    return _ShardOutcome(
        entries=entries,
        dpi_stats=result.stats,
        stage_stats=pipeline.stats(),
        filter_result=filter_result,
    )


def _partition(
    records: Sequence[PacketRecord],
    shards: int,
    window=None,
) -> Tuple[
    List[List[PacketRecord]],
    List[List[int]],
    Dict[FlowKey, int],
    FrozenSet[EndpointTuple],
    FrozenSet[FrozenSet[str]],
]:
    """Split records by flow shard, collecting the global filter state.

    Returns per-shard record/arrival lists, the first-arrival index of
    every flow key (the coordinator's stream-rank table for the filter
    merge), and — when a call *window* is given — the outside-endpoint
    and pre-call IP-pair sets the window heuristics need capture-wide.
    """
    shard_records: List[List[PacketRecord]] = [[] for _ in range(shards)]
    shard_arrivals: List[List[int]] = [[] for _ in range(shards)]
    first_arrival: Dict[FlowKey, int] = {}
    shard_of: Dict[FlowKey, int] = {}
    outside: Set[EndpointTuple] = set()
    precall: Set[FrozenSet[str]] = set()
    for arrival, record in enumerate(records):
        key = record.flow_key
        index = shard_of.get(key)
        if index is None:
            index = flow_shard(key, shards)
            shard_of[key] = index
            first_arrival[key] = arrival
        shard_records[index].append(record)
        shard_arrivals[index].append(arrival)
        if window is not None:
            ts = record.timestamp
            if not (window.extended_start <= ts <= window.extended_end):
                outside.add((record.src_ip, record.src_port, record.transport))
                outside.add((record.dst_ip, record.dst_port, record.transport))
            if ts < window.call_start:
                precall.add(frozenset((record.src_ip, record.dst_ip)))
    return (
        shard_records,
        shard_arrivals,
        first_arrival,
        frozenset(outside),
        frozenset(precall),
    )


def _resolve_workers(workers: Optional[int], tasks: int) -> int:
    """Worker processes to use: 0/1 means in-process, ``None`` auto-sizes.

    Delegates to :func:`repro.experiments.scheduler.plan_shard_workers`,
    which additionally clamps to the CPU count — oversubscribed shard
    pools are a measured throughput cliff, not a tradeoff.
    """
    from repro.experiments.scheduler import plan_shard_workers

    return plan_shard_workers(workers, tasks).effective


def _execute_tasks(
    tasks: List[_ShardTask], workers: Optional[int]
) -> List[_ShardOutcome]:
    """Run every shard task, on the shared pool when possible.

    Submission is largest-shard-first so the pool drains evenly; results
    are gathered in task order, so scheduling never affects the merge.
    Any environment-caused pool failure degrades to in-process execution
    of the *same* task list — the outputs are identical either way.
    """
    from repro.experiments.scheduler import (
        POOL_FALLBACK_ERRORS,
        in_pool_worker,
        shared_pool,
        shutdown_shared_pool,
        submission_order,
    )

    workers = _resolve_workers(workers, len(tasks))
    if workers > 1 and not in_pool_worker():
        try:
            # Pre-flight the only caller-supplied payloads; a lambda
            # factory should degrade cleanly, not poison pool plumbing.
            pickle.dumps((tasks[0].engine_factory, tasks[0].checker_factory))
            pool = shared_pool(workers)
            futures: Dict[int, object] = {}
            for index in submission_order(tasks, lambda t: len(t.records)):
                futures[index] = pool.submit(_execute_shard, tasks[index])
            return [futures[i].result() for i in range(len(tasks))]
        except BrokenProcessPool:
            shutdown_shared_pool()
        except POOL_FALLBACK_ERRORS:
            pass
    return [_execute_shard(task) for task in tasks]


def _build_tasks(
    shard_records: List[List[PacketRecord]],
    shard_arrivals: List[List[int]],
    engine_factory: Callable[[], DpiEngine],
    checker_factory: Callable[[], ComplianceChecker],
    chunk_size: int,
    filter_: Optional[TwoStageFilter] = None,
    seed_outside: FrozenSet[EndpointTuple] = frozenset(),
    seed_precall: FrozenSet[FrozenSet[str]] = frozenset(),
) -> List[_ShardTask]:
    tasks = [
        _ShardTask(
            records=records,
            arrivals=arrivals,
            engine_factory=engine_factory,
            checker_factory=checker_factory,
            chunk_size=chunk_size,
            filter_=filter_,
            seed_outside=seed_outside,
            seed_precall=seed_precall,
        )
        for records, arrivals in zip(shard_records, shard_arrivals)
        if records
    ]
    if not tasks:
        # Empty capture: one empty shard still produces a well-formed
        # (empty) FilterResult/DpiResult and the full stage-stats shape.
        tasks = [
            _ShardTask(
                records=[],
                arrivals=[],
                engine_factory=engine_factory,
                checker_factory=checker_factory,
                chunk_size=chunk_size,
                filter_=filter_,
                seed_outside=seed_outside,
                seed_precall=seed_precall,
            )
        ]
    return tasks


def _merge_outcomes(
    outcomes: Sequence[_ShardOutcome],
) -> Tuple[List[DatagramAnalysis], List[MessageVerdict], DpiStats, List[StageStats]]:
    entries = sorted(
        (entry for outcome in outcomes for entry in outcome.entries),
        key=lambda entry: entry[0],
    )
    analyses: List[DatagramAnalysis] = []
    verdicts: List[MessageVerdict] = []
    for _key, analysis, slice_ in entries:
        analyses.append(analysis)
        verdicts.extend(slice_)
    stats = DpiStats()
    for outcome in outcomes:
        stats.merge(outcome.dpi_stats)
    merged: Dict[str, StageStats] = {}
    for outcome in outcomes:
        merge_stage_stats(merged, outcome.stage_stats)
    return analyses, verdicts, stats, list(merged.values())


def _merged_dpi_result(
    analyses: List[DatagramAnalysis], stats: DpiStats
) -> DpiResult:
    result = DpiResult(analyses=analyses)
    result.stats = stats
    result.cache_hits = stats.cache_hits
    result.cache_misses = stats.cache_misses
    return result


def _merge_filter_results(
    outcomes: Sequence[_ShardOutcome], first_arrival: Dict[FlowKey, int]
) -> FilterResult:
    """Reassemble the global ``FilterResult`` from per-shard results.

    Stream lists are re-interleaved by each stream's first-arrival index
    (the insertion order a single-process filter would have used), and
    ``removed_by`` buckets are keyed in first-encounter order — stage 1
    first, then stage-2 heuristics by the rank of the earliest stream
    each one removed — reproducing the single-process dict layout.
    """
    def rank(stream: Stream) -> int:
        return first_arrival[stream.key]

    kept_streams: List[Stream] = []
    buckets: Dict[str, List[Stream]] = {}
    for outcome in outcomes:
        result = outcome.filter_result
        kept_streams.extend(result.kept_streams)
        for name, streams in result.removed_by.items():
            buckets.setdefault(name, []).extend(streams)
    kept_streams.sort(key=rank)

    stage1_name = TimespanFilter.name
    removed_by: Dict[str, List[Stream]] = {
        stage1_name: sorted(buckets.pop(stage1_name, []), key=rank)
    }
    for name in sorted(
        buckets, key=lambda name: min(rank(s) for s in buckets[name])
    ):
        removed_by[name] = sorted(buckets[name], key=rank)

    stage2_streams = [
        stream
        for name, streams in removed_by.items()
        if name != stage1_name
        for stream in streams
    ]
    all_streams = kept_streams + [
        stream for streams in removed_by.values() for stream in streams
    ]
    return FilterResult(
        raw=StageCounts.of(all_streams),
        stage1_removed=StageCounts.of(removed_by[stage1_name]),
        stage2_removed=StageCounts.of(stage2_streams),
        kept=StageCounts.of(kept_streams),
        kept_streams=kept_streams,
        removed_by=removed_by,
        evaluation=_evaluate(kept_streams, removed_by),
    )


def run_streaming_sharded(
    records: Sequence[PacketRecord],
    engine_factory: Callable[[], DpiEngine],
    checker_factory: Callable[[], ComplianceChecker] = ComplianceChecker,
    shards: int = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
) -> Tuple[DpiResult, List[MessageVerdict], List[StageStats]]:
    """Flow-sharded counterpart of :func:`repro.pipeline.run_streaming`.

    Partitions pre-filtered *records* into ``shards`` by flow key, runs
    DPI → check per shard (each on a fresh engine/checker built by the
    factories), and merges deterministically: the returned analyses,
    verdict order, and summary-relevant facts are bit-identical to the
    single-process streaming path for any shard count.

    ``workers``: ``None`` auto-sizes to the CPU count, ``0``/``1`` runs
    every shard in-process (still exercising the partition/merge path),
    and unpicklable factories or a pool-hostile environment degrade to
    in-process execution with identical output.

    Merged ``DpiStats`` cache counters can differ from a single shared
    engine's (each shard deduplicates payloads only within its own
    cache); classification results are unaffected by design.
    """
    records = list(records)
    shard_records, shard_arrivals, _first_arrival, _o, _p = _partition(
        records, shards
    )
    tasks = _build_tasks(
        shard_records, shard_arrivals, engine_factory, checker_factory,
        chunk_size,
    )
    outcomes = _execute_tasks(tasks, workers)
    analyses, verdicts, stats, stage_stats = _merge_outcomes(outcomes)
    return _merged_dpi_result(analyses, stats), verdicts, stage_stats


def run_cell_sharded(
    records: Sequence[PacketRecord],
    filter_: TwoStageFilter,
    engine_factory: Callable[[], DpiEngine],
    checker_factory: Callable[[], ComplianceChecker] = ComplianceChecker,
    shards: int = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
) -> ShardedCellRun:
    """Flow-sharded full cell pipeline: filter → DPI → check per shard.

    The partitioning pass collects the capture-global heuristic state
    (outside-window endpoints, pre-call IP pairs) and seeds every
    shard's online filter with it, so per-shard filtering decisions —
    and therefore the merged ``FilterResult``, analyses, and verdicts —
    are bit-identical to a single-process run.
    """
    records = list(records)
    window = filter_.window
    shard_records, shard_arrivals, first_arrival, outside, precall = _partition(
        records, shards, window
    )
    tasks = _build_tasks(
        shard_records, shard_arrivals, engine_factory, checker_factory,
        chunk_size, filter_=filter_, seed_outside=outside,
        seed_precall=precall,
    )
    outcomes = _execute_tasks(tasks, workers)
    analyses, verdicts, stats, stage_stats = _merge_outcomes(outcomes)
    return ShardedCellRun(
        filter_result=_merge_filter_results(outcomes, first_arrival),
        dpi=_merged_dpi_result(analyses, stats),
        verdicts=verdicts,
        stage_stats=stage_stats,
    )
