"""The streaming pipeline core: a small stage protocol plus a composer.

A :class:`Stage` consumes items one at a time (``process``) and may emit
zero or more downstream items per input; whatever it withholds it must
emit from ``flush`` when the source is exhausted.  :class:`Pipeline`
chains stages, pushes every emission through the remaining stages
immediately (no barrier between stages), and measures each stage's
records in/out, wall time, chunk count, and peak buffered items — the
uniform instrumentation record every layer of the system reports through
``ExperimentAggregate`` and ``rtc-compliance pipeline-stats``.

Dispatch is *chunked*: the composer hands each stage a bounded batch of
records (``chunk_size``, default 256) per Python call instead of one
record at a time, which amortizes the per-record call overhead that
dominated the single-process streaming path.  Stages that can exploit
batching override :meth:`Stage.process_chunk`; the default simply loops
:meth:`Stage.process`, so chunking never changes what a stage computes —
only how often it is called.

The protocol is deliberately tiny so simulators, the two-stage filter,
the DPI engine, and the compliance checker can all sit behind it without
adapters owning any policy: batch callers feed a fully materialized
record list and flush once; live callers feed records as they arrive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Dict, Iterable, List, Sequence

#: Records per ``process_chunk`` call unless the caller overrides it.
DEFAULT_CHUNK_SIZE = 256


@dataclass
class StageStats:
    """Uniform instrumentation record for one pipeline stage.

    ``peak_buffered`` is the high-water mark of items the stage held
    between ``process`` calls — the number a bounded-memory deployment
    has to budget for, and the first thing to look at when a streaming
    run's footprint is not flat.
    """

    name: str
    records_in: int = 0
    records_out: int = 0
    wall_seconds: float = 0.0
    peak_buffered: int = 0
    #: ``process_chunk`` dispatches; per-record feeding counts one per record.
    chunks: int = 0

    def merge(self, other: "StageStats") -> None:
        """Accumulate a same-named stage's counters (cells of one matrix)."""
        self.records_in += other.records_in
        self.records_out += other.records_out
        self.wall_seconds += other.wall_seconds
        self.peak_buffered = max(self.peak_buffered, other.peak_buffered)
        self.chunks += other.chunks

    def snapshot(self) -> "StageStats":
        """An independent copy of the counters as they stand right now.

        Mid-stream observers (``rtc-compliance serve``'s ``/stats``
        endpoint, the session snapshot) read through this so the live
        counters are never shared with — or mutated under — a consumer.
        """
        return StageStats(
            name=self.name,
            records_in=self.records_in,
            records_out=self.records_out,
            wall_seconds=self.wall_seconds,
            peak_buffered=self.peak_buffered,
            chunks=self.chunks,
        )

    def to_json(self) -> Dict[str, object]:
        """The stable wire schema shared by every ``StageStats`` consumer.

        ``rtc-compliance pipeline-stats --json``, the service's
        ``/sessions/<id>/stats`` endpoint, and the SSE ``snapshot`` events
        all emit exactly this shape; extending it is fine, renaming or
        removing keys is a breaking schema change.
        """
        return {
            "name": self.name,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "wall_seconds": self.wall_seconds,
            "peak_buffered": self.peak_buffered,
            "chunks": self.chunks,
        }

    # Historical alias; every serialization path goes through to_json().
    as_dict = to_json


class Stage:
    """One streaming transformation: records in, records out, state inside.

    Subclasses override ``process`` (and usually ``flush``) and keep
    ``buffered()`` honest about how many items they are holding — the
    pipeline samples it after every call to track the high-water mark.
    """

    name: str = "stage"

    def process(self, item: Any) -> Iterable[Any]:
        """Consume one item; yield any items ready for the next stage."""
        raise NotImplementedError

    def process_chunk(self, items: Sequence[Any]) -> List[Any]:
        """Consume a bounded batch; the default just loops ``process``.

        Stages with a cheap per-item fast loop (the production adapters)
        override this to hoist attribute lookups out of the hot loop; the
        override must emit exactly what per-item processing would.
        """
        out: List[Any] = []
        for item in items:
            out.extend(self.process(item))
        return out

    def flush(self) -> Iterable[Any]:
        """Emit everything still held once the input is exhausted."""
        return ()

    def evict(self, watermark: float) -> Iterable[Any]:
        """Finalize per-flow state that is settled as of *watermark*.

        *watermark* is capture time (the largest record timestamp the
        caller has pushed so far), never wall-clock, so eviction decisions
        are a pure function of the record stream and replaying a capture
        evicts identically every run.  Stages emit whatever the evicted
        flows produce — the pipeline cascades those emissions downstream
        exactly like ``flush`` — and must only evict state whose output
        can no longer be affected by later records; the default evicts
        nothing.
        """
        return ()

    def buffered(self) -> int:
        """Items currently held back from downstream stages."""
        return 0


class Pipeline:
    """Compose stages and push items through them with instrumentation.

    There is no barrier between stages: an item emitted by stage *n*
    reaches stage *n+1* within the same ``feed`` call, so wall-clock and
    buffering are attributed to the stage that actually holds the data.
    Items move between stages in bounded batches of at most ``chunk_size``
    records per ``process_chunk`` dispatch; ``chunk_size=1`` reproduces
    the historical one-call-per-record behavior exactly.
    """

    def __init__(self, stages: Sequence[Stage], chunk_size: int = DEFAULT_CHUNK_SIZE):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        if chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer")
        self._stages = list(stages)
        self._stats = [StageStats(name=stage.name) for stage in self._stages]
        self._chunk_size = chunk_size
        self._flushed = False

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    @property
    def stages(self) -> List[Stage]:
        return list(self._stages)

    @property
    def flushed(self) -> bool:
        return self._flushed

    def stats(self) -> List[StageStats]:
        """Per-stage instrumentation records, in pipeline order."""
        return self._stats

    def snapshot(self) -> List[StageStats]:
        """Copies of the per-stage stats — safe to read mid-stream.

        Unlike :meth:`stats`, the returned records are detached from the
        live counters, so a monitoring thread can serialize them while
        the pipeline keeps feeding without torn or mutating reads.
        """
        return [stat.snapshot() for stat in self._stats]

    def feed(self, item: Any) -> List[Any]:
        """Push one item through every stage; return the final emissions."""
        return self.feed_chunk((item,))

    def feed_chunk(self, chunk: Sequence[Any]) -> List[Any]:
        """Push one bounded batch through every stage; return final output.

        A stage's emissions cascade to the next stage within this call,
        re-split into ``chunk_size`` batches when a stage fans out.
        """
        items: List[Any] = list(chunk)
        for stage, stats in zip(self._stages, self._stats):
            if not items:
                break
            items = self._run_chunked(stage, stats, items)
        return items

    def run(self, source: Iterable[Any]) -> List[Any]:
        """Feed every item of *source*, flush, and return all final output.

        The source is consumed incrementally in ``chunk_size`` batches, so
        a generator source never has to be materialized in full.
        """
        out: List[Any] = []
        iterator = iter(source)
        while True:
            chunk = list(islice(iterator, self._chunk_size))
            if not chunk:
                break
            out.extend(self.feed_chunk(chunk))
        out.extend(self.flush())
        return out

    def evict(self, watermark: float) -> List[Any]:
        """Ask every stage to finalize flows settled as of *watermark*.

        Evicted emissions cascade downstream exactly like ``flush``
        emissions — stage *n*'s evictions pass through stages *n+1..* as
        ordinary chunked input, and each of those stages additionally gets
        its own ``evict`` call — so a long-running session can bound
        per-flow buffering without ending the stream.  A no-op after
        ``flush`` (there is nothing left to evict).
        """
        if self._flushed:
            return []
        carried: List[Any] = []
        for stage, stats in zip(self._stages, self._stats):
            processed = self._run_chunked(stage, stats, carried) if carried else []
            start = time.perf_counter()
            evicted = list(stage.evict(watermark))
            stats.wall_seconds += time.perf_counter() - start
            stats.records_out += len(evicted)
            carried = processed + evicted
        return carried

    def flush(self) -> List[Any]:
        """Flush every stage in order, cascading emissions downstream."""
        if self._flushed:
            return []
        self._flushed = True
        carried: List[Any] = []
        for stage, stats in zip(self._stages, self._stats):
            processed = self._run_chunked(stage, stats, carried) if carried else []
            start = time.perf_counter()
            flushed = list(stage.flush())
            stats.wall_seconds += time.perf_counter() - start
            stats.records_out += len(flushed)
            stats.peak_buffered = max(stats.peak_buffered, stage.buffered())
            carried = processed + flushed
        return carried

    def _run_chunked(
        self, stage: Stage, stats: StageStats, items: List[Any]
    ) -> List[Any]:
        size = self._chunk_size
        if len(items) <= size:
            return self._run(stage, stats, items)
        out: List[Any] = []
        for start in range(0, len(items), size):
            out.extend(self._run(stage, stats, items[start:start + size]))
        return out

    @staticmethod
    def _run(stage: Stage, stats: StageStats, items: Sequence[Any]) -> List[Any]:
        start = time.perf_counter()
        out = list(stage.process_chunk(items))
        stats.wall_seconds += time.perf_counter() - start
        stats.chunks += 1
        stats.records_in += len(items)
        stats.records_out += len(out)
        buffered = stage.buffered()
        if buffered > stats.peak_buffered:
            stats.peak_buffered = buffered
        return out


def merge_stage_stats(
    into: Dict[str, StageStats], stats: Iterable[StageStats]
) -> Dict[str, StageStats]:
    """Fold per-run stage stats into a name-keyed accumulator (in place)."""
    for stat in stats:
        existing = into.get(stat.name)
        if existing is None:
            into[stat.name] = StageStats(
                name=stat.name,
                records_in=stat.records_in,
                records_out=stat.records_out,
                wall_seconds=stat.wall_seconds,
                peak_buffered=stat.peak_buffered,
                chunks=stat.chunks,
            )
        else:
            existing.merge(stat)
    return into
