"""Composable streaming pipeline: stage protocol, composer, adapters.

The batch entry points across the codebase (``run_cell_pipeline``, the
CLI, the conformance tooling) are thin wrappers over the pieces here, so
batch and streaming execution share one implementation per layer.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.checker import ComplianceChecker
from repro.core.verdict import MessageVerdict
from repro.dpi.engine import DpiEngine, DpiResult
from repro.packets.packet import PacketRecord
from repro.pipeline.stage import (
    DEFAULT_CHUNK_SIZE,
    Pipeline,
    Stage,
    StageStats,
    merge_stage_stats,
)
from repro.pipeline.stages import (
    CheckStage,
    DpiStage,
    FilterStage,
    ordered_verdicts,
)
from repro.pipeline.sharded import (
    ShardedCellRun,
    flow_shard,
    run_cell_sharded,
    run_streaming_sharded,
)

__all__ = [
    "CheckStage",
    "DEFAULT_CHUNK_SIZE",
    "DpiStage",
    "FilterStage",
    "Pipeline",
    "ShardedCellRun",
    "Stage",
    "StageStats",
    "flow_shard",
    "merge_stage_stats",
    "ordered_verdicts",
    "run_cell_sharded",
    "run_streaming",
    "run_streaming_sharded",
]


def run_streaming(
    records: Iterable[PacketRecord],
    engine: DpiEngine,
    checker: ComplianceChecker,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Tuple[DpiResult, List[MessageVerdict], List[StageStats]]:
    """Stream pre-filtered *records* through DPI and compliance checking.

    Returns the batch-shaped ``DpiResult``, the verdicts restored to
    ``ComplianceChecker.check`` order, and the per-stage instrumentation.
    The conformance differ uses this as its streaming engine
    configuration: the outputs must be bit-identical to the batch path.
    ``chunk_size=1`` reproduces the historical per-record dispatch.

    A thin adapter over a filterless :class:`repro.service.AnalysisSession`
    (imported lazily; the service package depends on this one), so batch
    helpers and the live service share a single execution path.
    """
    from repro.service.session import AnalysisSession

    session = AnalysisSession(engine=engine, checker=checker, chunk_size=chunk_size)
    session.feed(records)
    result = session.close()
    return result.dpi, result.verdicts, list(result.stage_stats.values())
