"""Internet checksum (RFC 1071) and transport pseudo-header checksums."""

from __future__ import annotations

import ipaddress
import struct


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement checksum over *data*."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold carries back into the low 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _pseudo_header(src_ip: str, dst_ip: str, proto: int, length: int) -> bytes:
    src = ipaddress.ip_address(src_ip)
    dst = ipaddress.ip_address(dst_ip)
    if src.version != dst.version:
        raise ValueError("mixed address families in pseudo header")
    if src.version == 4:
        return src.packed + dst.packed + struct.pack("!BBH", 0, proto, length)
    return src.packed + dst.packed + struct.pack("!IHBB", length, 0, 0, proto)


def udp_checksum(src_ip: str, dst_ip: str, udp_bytes: bytes) -> int:
    """UDP checksum over the pseudo header and the full UDP datagram.

    Per RFC 768 a computed value of zero is transmitted as 0xFFFF; zero on
    the wire means "no checksum" (IPv4 only).
    """
    checksum = internet_checksum(
        _pseudo_header(src_ip, dst_ip, 17, len(udp_bytes)) + udp_bytes
    )
    return checksum or 0xFFFF


def tcp_checksum(src_ip: str, dst_ip: str, tcp_bytes: bytes) -> int:
    """TCP checksum over the pseudo header and the full TCP segment."""
    return internet_checksum(
        _pseudo_header(src_ip, dst_ip, 6, len(tcp_bytes)) + tcp_bytes
    )
