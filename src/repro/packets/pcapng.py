"""Minimal pcapng (next-generation capture) reader/writer.

Implements the block types a Wireshark-produced RTC trace actually contains:
Section Header (SHB), Interface Description (IDB), Enhanced Packet (EPB) and
the legacy Simple Packet Block.  Unknown block types are skipped, as the spec
requires.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Union

from repro.packets.decode import LINKTYPE_ETHERNET, DecodeError, decode_frame, encode_record
from repro.packets.packet import PacketRecord
from repro.packets.pcap import PcapFormatError, RawCapture

BLOCK_SHB = 0x0A0D0D0A
BLOCK_IDB = 0x00000001
BLOCK_SPB = 0x00000003
BLOCK_EPB = 0x00000006

_BYTE_ORDER_MAGIC = 0x1A2B3C4D


class PcapngReader:
    """Iterate frames out of a pcapng file (one or more sections)."""

    def __init__(self, fileobj: BinaryIO):
        self._file = fileobj
        self._endian = "<"
        self._interfaces: List[dict] = []

    def _read_block(self):
        header = self._file.read(8)
        if not header:
            return None
        if len(header) != 8:
            raise PcapFormatError("truncated pcapng block header")
        block_type, total_len = struct.unpack(self._endian + "II", header)
        if block_type == BLOCK_SHB:
            # Byte order may change at a section boundary; sniff the magic.
            body_peek = self._file.read(4)
            if len(body_peek) != 4:
                raise PcapFormatError("truncated SHB")
            magic = struct.unpack("<I", body_peek)[0]
            self._endian = "<" if magic == _BYTE_ORDER_MAGIC else ">"
            block_type, total_len = struct.unpack(self._endian + "II", header)
            body = body_peek + self._file.read(total_len - 12 - 4)
        else:
            body = self._file.read(total_len - 12)
        trailer = self._file.read(4)
        if len(trailer) != 4:
            raise PcapFormatError("truncated pcapng block trailer")
        trailing_len = struct.unpack(self._endian + "I", trailer)[0]
        if trailing_len != total_len:
            raise PcapFormatError("pcapng block length mismatch")
        return block_type, body

    def __iter__(self) -> Iterator[RawCapture]:
        while True:
            block = self._read_block()
            if block is None:
                return
            block_type, body = block
            if block_type == BLOCK_SHB:
                self._interfaces = []
            elif block_type == BLOCK_IDB:
                link_type, _reserved, snaplen = struct.unpack_from(
                    self._endian + "HHI", body
                )
                # Default if_tsresol is 10^-6 unless an option overrides it.
                tsresol = self._parse_tsresol(body[8:])
                self._interfaces.append(
                    {"link_type": link_type, "snaplen": snaplen, "tsresol": tsresol}
                )
            elif block_type == BLOCK_EPB:
                iface_id, ts_high, ts_low, cap_len, _orig_len = struct.unpack_from(
                    self._endian + "IIIII", body
                )
                if iface_id >= len(self._interfaces):
                    raise PcapFormatError(f"EPB references unknown interface {iface_id}")
                iface = self._interfaces[iface_id]
                ticks = (ts_high << 32) | ts_low
                timestamp = ticks / iface["tsresol"]
                data = body[20:20 + cap_len]
                if len(data) != cap_len:
                    raise PcapFormatError("truncated EPB packet data")
                yield RawCapture(timestamp, iface["link_type"], data)
            elif block_type == BLOCK_SPB:
                if not self._interfaces:
                    raise PcapFormatError("SPB before any IDB")
                (orig_len,) = struct.unpack_from(self._endian + "I", body)
                data = body[4:4 + orig_len]
                yield RawCapture(0.0, self._interfaces[0]["link_type"], data)
            # Unknown block types are skipped silently per the spec.

    def _parse_tsresol(self, options: bytes) -> float:
        offset = 0
        while offset + 4 <= len(options):
            code, length = struct.unpack_from(self._endian + "HH", options, offset)
            offset += 4
            if code == 0:  # opt_endofopt
                break
            value = options[offset:offset + length]
            offset += (length + 3) & ~3
            if code == 9 and length == 1:  # if_tsresol
                raw = value[0]
                if raw & 0x80:
                    return float(2 ** (raw & 0x7F))
                return float(10 ** raw)
        return 1e6

    def records(self, skip_undecodable: bool = True) -> Iterator[PacketRecord]:
        for capture in self:
            try:
                yield decode_frame(capture.link_type, capture.data, capture.timestamp)
            except DecodeError:
                if not skip_undecodable:
                    raise


def _pad4(data: bytes) -> bytes:
    return data + b"\x00" * (-len(data) % 4)


class PcapngWriter:
    """Write a single-section, single-interface pcapng file."""

    def __init__(self, fileobj: BinaryIO, link_type: int = LINKTYPE_ETHERNET):
        self._file = fileobj
        self._link_type = link_type
        self._write_block(BLOCK_SHB, struct.pack("<IHHq", _BYTE_ORDER_MAGIC, 1, 0, -1))
        self._write_block(BLOCK_IDB, struct.pack("<HHI", link_type, 0, 262144))

    def _write_block(self, block_type: int, body: bytes) -> None:
        body = _pad4(body)
        total = len(body) + 12
        self._file.write(struct.pack("<II", block_type, total))
        self._file.write(body)
        self._file.write(struct.pack("<I", total))

    def write_frame(self, timestamp: float, data: bytes) -> None:
        ticks = int(round(timestamp * 1e6))
        body = struct.pack(
            "<IIIII", 0, (ticks >> 32) & 0xFFFFFFFF, ticks & 0xFFFFFFFF, len(data), len(data)
        ) + _pad4(data)
        self._write_block(BLOCK_EPB, body)

    def write_record(self, record: PacketRecord) -> None:
        self.write_frame(record.timestamp, encode_record(record, self._link_type))


def write_pcapng(
    path: Union[str, Path],
    records: Iterable[PacketRecord],
    link_type: int = LINKTYPE_ETHERNET,
) -> int:
    count = 0
    with open(path, "wb") as fileobj:
        writer = PcapngWriter(fileobj, link_type=link_type)
        for record in records:
            writer.write_record(record)
            count += 1
    return count


def iter_pcapng(path: Union[str, Path]) -> Iterator[PacketRecord]:
    """Stream every decodable record out of a pcapng file, one at a time."""
    with open(path, "rb") as fileobj:
        yield from PcapngReader(fileobj).records()


def iter_pcapng_chunks(
    path: Union[str, Path], chunk_size: int = 256
) -> Iterator[List[PacketRecord]]:
    """Stream decoded pcapng records *chunk_size* at a time.

    Same chunked shape the batch pcap decoder exposes, so
    :func:`repro.packets.batch.iter_capture_chunks` can dispatch on the
    container without callers caring which format they got.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    batch: List[PacketRecord] = []
    for record in iter_pcapng(path):
        batch.append(record)
        if len(batch) >= chunk_size:
            yield batch
            batch = []
    if batch:
        yield batch


def read_pcapng(path: Union[str, Path]) -> List[PacketRecord]:
    """Thin list wrapper over :func:`iter_pcapng`."""
    return list(iter_pcapng(path))
