"""Read-only memory-mapped capture files with the length pinned at open.

:class:`MappedCapture` maps a capture file exactly once and records its
size at that instant.  Every index scan and frame slice the batch decoder
performs goes through this one buffer, so a file that *grows after the
map was taken* — a rotating capture process appending to a file the
directory watcher already picked up — is invisible: the decoder sees a
consistent prefix, never a half-written record racing the writer.

``mmap`` slicing returns real ``bytes`` (a copy of just the requested
range), which is exactly what the decode fast path wants for payloads:
one C-level copy per packet, no intermediate frame materialization, and
downstream consumers (the columnar DPI scanner checks ``isinstance(p,
bytes)``) see ordinary byte strings.
"""

from __future__ import annotations

import mmap
import os
from pathlib import Path
from typing import Union


class MappedCapture:
    """One capture file, mapped read-only, length pinned at open.

    ``buffer`` is the mapped region (or ``b""`` for an empty file, which
    :mod:`mmap` refuses to map) and ``size`` the byte count captured at
    open time.  Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = str(path)
        self._file = open(self.path, "rb")
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size:
                # The explicit length pins the mapping: bytes appended to
                # the file after this call are not part of the buffer.
                self._map = mmap.mmap(
                    self._file.fileno(), size, access=mmap.ACCESS_READ
                )
                self.buffer = self._map
            else:
                self._map = None
                self.buffer = b""
            self.size = size
        except BaseException:
            self._file.close()
            raise
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._map is not None:
            self._map.close()
        self._file.close()

    def __enter__(self) -> "MappedCapture":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
