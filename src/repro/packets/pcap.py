"""Classic libpcap file format reader/writer (no external dependencies).

Supports both byte orders and both microsecond and nanosecond timestamp
variants.  Streaming readers/writers keep memory flat for multi-gigabyte
traces.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Union

from repro.packets.decode import LINKTYPE_ETHERNET, DecodeError, decode_frame, encode_record
from repro.packets.packet import PacketRecord

MAGIC_MICROS = 0xA1B2C3D4
MAGIC_NANOS = 0xA1B23C4D
_SNAPLEN = 262144


@dataclass(frozen=True)
class RawCapture:
    """One frame as stored in a capture file."""

    timestamp: float
    link_type: int
    data: bytes


class PcapFormatError(ValueError):
    """Raised on malformed pcap containers."""


class PcapReader:
    """Iterate frames (or decoded records) out of a classic pcap file."""

    def __init__(self, fileobj: BinaryIO):
        self._file = fileobj
        header = fileobj.read(24)
        if len(header) != 24:
            raise PcapFormatError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic in (MAGIC_MICROS, MAGIC_NANOS):
            self._endian = "<"
        else:
            magic = struct.unpack(">I", header[:4])[0]
            if magic in (MAGIC_MICROS, MAGIC_NANOS):
                self._endian = ">"
            else:
                raise PcapFormatError(f"bad pcap magic 0x{magic:08x}")
        self._ts_divisor = 1e6 if magic == MAGIC_MICROS else 1e9
        (
            self.version_major,
            self.version_minor,
            _thiszone,
            _sigfigs,
            self.snaplen,
            self.link_type,
        ) = struct.unpack(self._endian + "HHiIII", header[4:])

    def __iter__(self) -> Iterator[RawCapture]:
        unpack = struct.Struct(self._endian + "IIII")
        while True:
            header = self._file.read(16)
            if not header:
                return
            if len(header) != 16:
                raise PcapFormatError("truncated pcap record header")
            ts_sec, ts_frac, incl_len, orig_len = unpack.unpack(header)
            if incl_len > self.snaplen + 65536:
                raise PcapFormatError(f"implausible record length {incl_len}")
            data = self._file.read(incl_len)
            if len(data) != incl_len:
                raise PcapFormatError("truncated pcap record body")
            timestamp = ts_sec + ts_frac / self._ts_divisor
            yield RawCapture(timestamp=timestamp, link_type=self.link_type, data=data)

    def records(self, skip_undecodable: bool = True) -> Iterator[PacketRecord]:
        """Decode frames to :class:`PacketRecord`, skipping non-IP by default."""
        for capture in self:
            try:
                yield decode_frame(capture.link_type, capture.data, capture.timestamp)
            except DecodeError:
                if not skip_undecodable:
                    raise


class PcapWriter:
    """Write frames or records into a classic pcap file."""

    def __init__(
        self,
        fileobj: BinaryIO,
        link_type: int = LINKTYPE_ETHERNET,
        nanosecond: bool = False,
    ):
        self._file = fileobj
        self._link_type = link_type
        self._ts_multiplier = 1e9 if nanosecond else 1e6
        magic = MAGIC_NANOS if nanosecond else MAGIC_MICROS
        self._file.write(
            struct.pack("<IHHiIII", magic, 2, 4, 0, 0, _SNAPLEN, link_type)
        )

    def write_frame(self, timestamp: float, data: bytes) -> None:
        if timestamp < 0:
            raise ValueError(f"pcap timestamps cannot be negative ({timestamp})")
        ts_sec = int(timestamp)
        ts_frac = int(round((timestamp - ts_sec) * self._ts_multiplier))
        if ts_frac >= self._ts_multiplier:  # rounding carried into the next second
            ts_sec += 1
            ts_frac = 0
        self._file.write(struct.pack("<IIII", ts_sec, ts_frac, len(data), len(data)))
        self._file.write(data)

    def write_record(self, record: PacketRecord) -> None:
        self.write_frame(record.timestamp, encode_record(record, self._link_type))


def write_pcap(
    path: Union[str, Path],
    records: Iterable[PacketRecord],
    link_type: int = LINKTYPE_ETHERNET,
    nanosecond: bool = False,
) -> int:
    """Serialize *records* to *path*; returns the number written."""
    count = 0
    with open(path, "wb") as fileobj:
        writer = PcapWriter(fileobj, link_type=link_type, nanosecond=nanosecond)
        for record in records:
            writer.write_record(record)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> List[PacketRecord]:
    """Read every decodable record from a pcap file into memory.

    Thin wrapper over the streaming batch decoder
    (:func:`repro.packets.batch.iter_pcap`); prefer the iterator forms
    for anything that doesn't genuinely need the whole list at once.
    """
    # Imported lazily: batch.py imports this module's constants.
    from repro.packets.batch import iter_pcap

    return list(iter_pcap(path))
