"""The analysis-level packet record shared by simulators and the pipeline.

A :class:`PacketRecord` is what the paper's Wireshark capture reduces to for
analysis: timestamp, 5-tuple, transport payload.  Simulators additionally
attach a :class:`Truth` label recording what the packet *really* is, which
lets the test-suite and benchmarks measure filter precision/recall — ground
truth the paper could not have for closed-source apps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Direction(enum.Enum):
    """Direction relative to the device under test."""

    OUTBOUND = "outbound"
    INBOUND = "inbound"

    def flipped(self) -> "Direction":
        return Direction.INBOUND if self is Direction.OUTBOUND else Direction.OUTBOUND


class TrafficCategory(enum.Enum):
    """Ground-truth category attached by the simulators."""

    RTC_MEDIA = "rtc_media"
    RTC_CONTROL = "rtc_control"
    SIGNALING = "signaling"
    BACKGROUND = "background"


@dataclass(frozen=True)
class Truth:
    """Ground-truth label for a synthetic packet (never used by the pipeline)."""

    category: TrafficCategory
    app: str = ""
    detail: str = ""

    @property
    def is_rtc(self) -> bool:
        return self.category in (TrafficCategory.RTC_MEDIA, TrafficCategory.RTC_CONTROL)


@dataclass(frozen=True)
class PacketRecord:
    """One captured transport-layer packet.

    ``payload`` is the transport payload (UDP datagram payload or TCP segment
    payload) — the byte string the DPI engine scans.
    """

    timestamp: float
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    transport: str  # "UDP" or "TCP"
    payload: bytes
    direction: Direction = Direction.OUTBOUND
    truth: Optional[Truth] = None

    def __post_init__(self) -> None:
        if self.transport not in ("UDP", "TCP"):
            raise ValueError(f"unsupported transport {self.transport!r}")

    @property
    def five_tuple(self) -> Tuple[str, int, str, int, str]:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.transport)

    @property
    def flow_key(self) -> Tuple[Tuple[str, int], Tuple[str, int], str]:
        """Direction-agnostic flow key: sorted endpoint pair plus transport.

        Packets of both directions of one conversation share a flow key, which
        is how the pipeline groups packets into *streams* (paper §3.2).
        """
        a = (self.src_ip, self.src_port)
        b = (self.dst_ip, self.dst_port)
        return (a, b, self.transport) if a <= b else (b, a, self.transport)

    @property
    def dst_three_tuple(self) -> Tuple[str, int, str]:
        """Destination-side 3-tuple used by the stage-2 timing filter."""
        return (self.dst_ip, self.dst_port, self.transport)

    def reply(self, timestamp: float, payload: bytes) -> "PacketRecord":
        """Build a packet in the reverse direction of the same conversation."""
        return PacketRecord(
            timestamp=timestamp,
            src_ip=self.dst_ip,
            src_port=self.dst_port,
            dst_ip=self.src_ip,
            dst_port=self.src_port,
            transport=self.transport,
            payload=payload,
            direction=self.direction.flipped(),
            truth=self.truth,
        )
