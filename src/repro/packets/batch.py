"""Zero-copy batch pcap ingest: mmap once, index in one pass, decode in chunks.

The seed reader (:class:`repro.packets.pcap.PcapReader`) pays two per-frame
taxes that dominate real-pcap workloads now that DPI itself is fast: one
16-byte ``read()`` call per record header, and a layer-by-layer object
decode (``EthernetFrame`` → ``IPv4Header`` → ``UdpDatagram``, each with a
``ByteReader``, MAC formatting, and :mod:`ipaddress` string conversion).
This module removes both, mirroring the soft-numpy shape of
:mod:`repro.dpi.columnar`:

* **Index scan.**  The capture is mapped once
  (:class:`repro.packets.mmapio.MappedCapture`, length pinned at open) and
  every record header is walked in a single pass into parallel
  offset/caplen/timestamp arrays.  Record offsets are sequentially
  dependent (each frame's length positions the next header), so the walk
  itself is a tight Python loop reading only ``incl_len``; the timestamp
  columns are then gathered and combined **vectorized** behind a soft
  numpy import, with a mandatory pure-Python fallback that computes them
  inside the walk.  Both paths produce bit-identical floats: ``ts_sec``
  and ``ts_frac`` are exactly representable in float64, and
  ``sec + frac / divisor`` is the same IEEE expression either way.

* **Chunked fast-path decode.**  Frames are decoded ``chunk_size`` at a
  time with precompiled :class:`struct.Struct` one-pass header parses for
  the dominant shapes — Ethernet(IPv4)/UDP|TCP and RAW(IPv4)/UDP|TCP with
  no VLAN tag, no IP options, no fragments to reassemble — and payload
  bytes sliced straight out of the map.  Anything else (VLAN, IPv6,
  IPv4 options, odd link types, short or inconsistent headers) falls back
  *per frame* to the existing :func:`repro.packets.decode.decode_frame`,
  so the emitted :class:`~repro.packets.packet.PacketRecord` stream —
  fields, payload bytes, timestamps, and exception behavior
  (``DecodeError`` skipped, ``TruncatedError`` propagated) — is
  bit-identical to the scalar reader's.

Every fast-path precondition is a *sufficient* condition for the scalar
decode to succeed with the same output: the ethertype bytes pin the
non-VLAN IPv4 ethernet header at 14 bytes, ``0x45`` pins IHL at 20 with
no options, and the length checks reproduce the exact inequalities
``IPv4Header.parse``/``UdpDatagram.parse``/``TcpSegment.parse`` enforce
before slicing their payloads.  When any of them fails the frame is
handed to ``decode_frame`` so errors are raised (or skipped) by the same
code path the scalar reader uses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.packets.decode import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    DecodeError,
    decode_frame,
)
from repro.packets.mmapio import MappedCapture
from repro.packets.packet import PacketRecord
from repro.packets.pcap import MAGIC_MICROS, MAGIC_NANOS, PcapFormatError

try:  # soft dependency — the pure-Python path below is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

HAVE_NUMPY = _np is not None

#: Records decoded per chunk unless the caller overrides it; matches the
#: pipeline chunk unit so decode→filter→DPI stays chunked end-to-end.
DEFAULT_CHUNK_SIZE = 256

#: Below this frame count the numpy gather's fixed costs exceed the win
#: and the index scan computes timestamps inline.
_MIN_VECTOR_FRAMES = 4

_MAGIC_LE = struct.Struct("<I")
_MAGIC_BE = struct.Struct(">I")
#: IPv4 fixed header as one parse: ver_ihl, tos, total_length, ident,
#: flags_frag, ttl, proto, checksum, src, dst.
_IPV4 = struct.Struct("!BBHHHBBH4s4s")
#: UDP header as one parse: src_port, dst_port, length, checksum.
_UDP = struct.Struct("!HHHH")
#: The two TCP port fields; the data offset byte is read directly.
_TCP_PORTS = struct.Struct("!HH")

_ETHERTYPE_IPV4 = b"\x08\x00"


@dataclass
class IngestStats:
    """Batch-decoder instrumentation, one counter set per consumer.

    ``fallbacks`` counts frames the fast path refused and handed to
    :func:`decode_frame`; ``skipped`` the subset of those the scalar
    decoder then rejected as undecodable (non-IP ethertypes, unsupported
    protocols); ``vector_errors`` whole index scans that dropped from the
    numpy timestamp gather to the pure-Python recompute.
    """

    files: int = 0
    frames: int = 0
    records: int = 0
    fast_path: int = 0
    fallbacks: int = 0
    skipped: int = 0
    vector_errors: int = 0

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.frames if self.frames else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "frames": self.frames,
            "records": self.records,
            "fast_path": self.fast_path,
            "fallbacks": self.fallbacks,
            "skipped": self.skipped,
            "vector_errors": self.vector_errors,
            "fallback_rate": self.fallback_rate,
        }

    def merge(self, other: "IngestStats") -> None:
        self.files += other.files
        self.frames += other.frames
        self.records += other.records
        self.fast_path += other.fast_path
        self.fallbacks += other.fallbacks
        self.skipped += other.skipped
        self.vector_errors += other.vector_errors


@dataclass(frozen=True)
class PcapIndex:
    """Parallel per-record arrays from one header-scan pass.

    ``offsets[i]`` is the byte offset of record *i*'s 16-byte header
    (frame data begins at ``offsets[i] + 16``), ``caplens[i]`` its
    captured length, ``timestamps[i]`` the float timestamp exactly as
    :class:`~repro.packets.pcap.PcapReader` would compute it.
    """

    link_type: int
    snaplen: int
    nanosecond: bool
    endian: str
    offsets: List[int]
    caplens: List[int]
    timestamps: List[float]
    vectorized: bool

    def __len__(self) -> int:
        return len(self.offsets)


def _python_timestamps(
    buffer, offsets: List[int], endian: str, divisor: float
) -> List[float]:
    """Recompute the timestamp column without numpy (scan fallback)."""
    unpack = struct.Struct(endian + "II").unpack_from
    out = []
    for offset in offsets:
        ts_sec, ts_frac = unpack(buffer, offset)
        out.append(ts_sec + ts_frac / divisor)
    return out


def _vector_timestamps(
    buffer, offsets: List[int], endian: str, divisor: float
) -> List[float]:
    """Gather and combine the timestamp columns with numpy.

    ``ts_sec``/``ts_frac`` are gathered byte-wise (record headers sit at
    arbitrary alignment) and combined with exact integer weights; both
    fit float64 exactly, so ``sec + frac / divisor`` is bit-identical to
    the pure-Python expression.
    """
    base = _np.asarray(offsets, dtype=_np.int64)
    raw = _np.frombuffer(buffer, dtype=_np.uint8)
    gathered = raw[(base[:, None] + _np.arange(8, dtype=_np.int64)).ravel()]
    fields = gathered.reshape(len(offsets), 8).astype(_np.uint64)
    if endian == "<":
        weights = _np.array([1, 1 << 8, 1 << 16, 1 << 24], dtype=_np.uint64)
    else:
        weights = _np.array([1 << 24, 1 << 16, 1 << 8, 1], dtype=_np.uint64)
    sec = (fields[:, :4] * weights).sum(axis=1)
    frac = (fields[:, 4:] * weights).sum(axis=1)
    return (sec.astype(_np.float64) + frac.astype(_np.float64) / divisor).tolist()


def _scan_index(buffer, size: int, use_numpy: bool, stats: IngestStats) -> PcapIndex:
    """One pass over every record header; same validation, same errors,
    same order as :class:`~repro.packets.pcap.PcapReader`."""
    if size < 24:
        raise PcapFormatError("truncated pcap global header")
    magic = _MAGIC_LE.unpack_from(buffer, 0)[0]
    if magic in (MAGIC_MICROS, MAGIC_NANOS):
        endian = "<"
    else:
        magic = _MAGIC_BE.unpack_from(buffer, 0)[0]
        if magic in (MAGIC_MICROS, MAGIC_NANOS):
            endian = ">"
        else:
            raise PcapFormatError(f"bad pcap magic 0x{magic:08x}")
    nanosecond = magic == MAGIC_NANOS
    divisor = 1e9 if nanosecond else 1e6
    _maj, _min, _tz, _sig, snaplen, link_type = struct.unpack_from(
        endian + "HHiIII", buffer, 4
    )
    limit = snaplen + 65536

    offsets: List[int] = []
    caplens: List[int] = []
    timestamps: List[float] = []
    vector = use_numpy and size >= 24 + 16 * _MIN_VECTOR_FRAMES
    if vector:
        unpack_len = struct.Struct(endian + "I").unpack_from
        offset = 24
        while offset < size:
            if size - offset < 16:
                raise PcapFormatError("truncated pcap record header")
            incl_len = unpack_len(buffer, offset + 8)[0]
            if incl_len > limit:
                raise PcapFormatError(f"implausible record length {incl_len}")
            if offset + 16 + incl_len > size:
                raise PcapFormatError("truncated pcap record body")
            offsets.append(offset)
            caplens.append(incl_len)
            offset += 16 + incl_len
        if offsets:
            try:
                timestamps = _vector_timestamps(buffer, offsets, endian, divisor)
            except Exception:  # pragma: no cover - numpy safety net
                stats.vector_errors += 1
                vector = False
                timestamps = _python_timestamps(buffer, offsets, endian, divisor)
    else:
        unpack_header = struct.Struct(endian + "IIII").unpack_from
        offset = 24
        while offset < size:
            if size - offset < 16:
                raise PcapFormatError("truncated pcap record header")
            ts_sec, ts_frac, incl_len, _orig_len = unpack_header(buffer, offset)
            if incl_len > limit:
                raise PcapFormatError(f"implausible record length {incl_len}")
            if offset + 16 + incl_len > size:
                raise PcapFormatError("truncated pcap record body")
            offsets.append(offset)
            caplens.append(incl_len)
            timestamps.append(ts_sec + ts_frac / divisor)
            offset += 16 + incl_len
    return PcapIndex(
        link_type=link_type,
        snaplen=snaplen,
        nanosecond=nanosecond,
        endian=endian,
        offsets=offsets,
        caplens=caplens,
        timestamps=timestamps,
        vectorized=vector,
    )


class BatchPcapReader:
    """mmap-backed pcap reader: eager index, chunked fast-path decode.

    ``use_numpy`` selects the vectorized index scan: ``None``
    auto-detects, ``True`` requires numpy (raising if absent), ``False``
    forces the pure-Python path.  Both produce identical indexes and
    identical records; parity is pinned by the golden-cell round-trip
    tests.  The index is built at construction, so :attr:`frame_count`
    is available *before* any decode — the CLI plans from it.

    The mmap length is pinned at open: a file that grows while this
    reader is alive decodes exactly the records present at open time.
    """

    def __init__(
        self,
        path: Union[str, Path],
        use_numpy: Optional[bool] = None,
        stats: Optional[IngestStats] = None,
    ):
        if use_numpy is None:
            self._use_numpy = _np is not None
        elif use_numpy and _np is None:
            raise RuntimeError("use_numpy=True but numpy is not importable")
        else:
            self._use_numpy = bool(use_numpy)
        self.stats = stats if stats is not None else IngestStats()
        self._capture = MappedCapture(path)
        try:
            self.index = _scan_index(
                self._capture.buffer, self._capture.size, self._use_numpy, self.stats
            )
        except BaseException:
            self._capture.close()
            raise
        self.stats.files += 1
        self._ip_cache: Dict[bytes, str] = {}

    @property
    def frame_count(self) -> int:
        return len(self.index)

    @property
    def link_type(self) -> int:
        return self.index.link_type

    @property
    def vectorized(self) -> bool:
        return self.index.vectorized

    def close(self) -> None:
        self._capture.close()

    def __enter__(self) -> "BatchPcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- decode -------------------------------------------------------------------

    def decode_slice(
        self, start: int, stop: int, skip_undecodable: bool = True
    ) -> List[PacketRecord]:
        """Decode records ``start..stop`` of the index, in capture order.

        Undecodable frames (``DecodeError`` from the scalar fallback) are
        skipped by default; ``TruncatedError`` and other failures
        propagate — exactly :meth:`PcapReader.records` semantics.
        """
        buffer = self._capture.buffer
        index = self.index
        offsets = index.offsets
        caplens = index.caplens
        timestamps = index.timestamps
        link_type = index.link_type
        stats = self.stats
        ip_cache = self._ip_cache
        out: List[PacketRecord] = []
        append = out.append
        unpack_ipv4 = _IPV4.unpack_from
        unpack_udp = _UDP.unpack_from
        unpack_tcp_ports = _TCP_PORTS.unpack_from
        ethernet = link_type == LINKTYPE_ETHERNET
        fast_link = ethernet or link_type == LINKTYPE_RAW
        stop = min(stop, len(offsets))
        for i in range(max(start, 0), stop):
            data_off = offsets[i] + 16
            caplen = caplens[i]
            stats.frames += 1
            record = None
            if fast_link:
                if ethernet:
                    ip_off = data_off + 14
                    ip_len = caplen - 14
                    eligible = (
                        ip_len >= 20
                        and buffer[data_off + 12:data_off + 14] == _ETHERTYPE_IPV4
                    )
                else:
                    ip_off = data_off
                    ip_len = caplen
                    eligible = ip_len >= 20
                if eligible:
                    (
                        ver_ihl, _tos, total_length, _ident, _flags,
                        _ttl, proto, _cksum, src4, dst4,
                    ) = unpack_ipv4(buffer, ip_off)
                    if ver_ihl == 0x45 and 20 <= total_length <= ip_len:
                        transport_off = ip_off + 20
                        t_len = total_length - 20
                        if proto == 17 and t_len >= 8:
                            src_port, dst_port, udp_len, _ck = unpack_udp(
                                buffer, transport_off
                            )
                            if 8 <= udp_len <= t_len:
                                src_ip = ip_cache.get(src4)
                                if src_ip is None:
                                    src_ip = "%d.%d.%d.%d" % tuple(src4)
                                    ip_cache[src4] = src_ip
                                dst_ip = ip_cache.get(dst4)
                                if dst_ip is None:
                                    dst_ip = "%d.%d.%d.%d" % tuple(dst4)
                                    ip_cache[dst4] = dst_ip
                                record = PacketRecord(
                                    timestamp=timestamps[i],
                                    src_ip=src_ip,
                                    src_port=src_port,
                                    dst_ip=dst_ip,
                                    dst_port=dst_port,
                                    transport="UDP",
                                    payload=buffer[
                                        transport_off + 8:transport_off + udp_len
                                    ],
                                )
                        elif proto == 6 and t_len >= 20:
                            data_offset = (buffer[transport_off + 12] >> 4) * 4
                            if 20 <= data_offset <= t_len:
                                src_port, dst_port = unpack_tcp_ports(
                                    buffer, transport_off
                                )
                                src_ip = ip_cache.get(src4)
                                if src_ip is None:
                                    src_ip = "%d.%d.%d.%d" % tuple(src4)
                                    ip_cache[src4] = src_ip
                                dst_ip = ip_cache.get(dst4)
                                if dst_ip is None:
                                    dst_ip = "%d.%d.%d.%d" % tuple(dst4)
                                    ip_cache[dst4] = dst_ip
                                record = PacketRecord(
                                    timestamp=timestamps[i],
                                    src_ip=src_ip,
                                    src_port=src_port,
                                    dst_ip=dst_ip,
                                    dst_port=dst_port,
                                    transport="TCP",
                                    payload=buffer[
                                        transport_off + data_offset:
                                        ip_off + total_length
                                    ],
                                )
            if record is None:
                stats.fallbacks += 1
                frame = buffer[data_off:data_off + caplen]
                try:
                    record = decode_frame(link_type, bytes(frame), timestamps[i])
                except DecodeError:
                    stats.skipped += 1
                    if skip_undecodable:
                        continue
                    raise
            else:
                stats.fast_path += 1
            stats.records += 1
            append(record)
        return out

    def decode_sample(self, limit: int = 512) -> List[PacketRecord]:
        """Decode the first *limit* frames without touching the running
        counters — the planner's workload probe."""
        saved = self.stats
        self.stats = IngestStats()
        try:
            return self.decode_slice(0, limit)
        finally:
            self.stats = saved

    def chunks(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        skip_undecodable: bool = True,
    ) -> Iterator[List[PacketRecord]]:
        """Decoded records in capture order, ``chunk_size`` frames at a
        time (chunks may come up short where frames were skipped; empty
        chunks are suppressed)."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        total = len(self.index)
        for start in range(0, total, chunk_size):
            batch = self.decode_slice(start, start + chunk_size, skip_undecodable)
            if batch:
                yield batch

    def records(
        self, skip_undecodable: bool = True
    ) -> Iterator[PacketRecord]:
        for batch in self.chunks(skip_undecodable=skip_undecodable):
            yield from batch


def iter_pcap_chunks(
    path: Union[str, Path],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    use_numpy: Optional[bool] = None,
    stats: Optional[IngestStats] = None,
) -> Iterator[List[PacketRecord]]:
    """Stream decoded record chunks out of a pcap file (batch decoder).

    Opens the capture lazily on first ``next()`` and closes it when the
    iterator is exhausted or dropped; peak memory is one chunk plus the
    (pinned) mmap, never the whole record list.
    """
    reader = BatchPcapReader(path, use_numpy=use_numpy, stats=stats)
    try:
        yield from reader.chunks(chunk_size)
    finally:
        reader.close()


def iter_pcap(
    path: Union[str, Path],
    use_numpy: Optional[bool] = None,
    stats: Optional[IngestStats] = None,
) -> Iterator[PacketRecord]:
    """Stream every decodable record out of a pcap file, one at a time."""
    for batch in iter_pcap_chunks(path, use_numpy=use_numpy, stats=stats):
        yield from batch


def iter_capture_chunks(
    path: Union[str, Path],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    use_numpy: Optional[bool] = None,
    stats: Optional[IngestStats] = None,
) -> Iterator[List[PacketRecord]]:
    """Chunked record stream for either capture container.

    ``.pcapng`` files go through the streaming block reader
    (:func:`repro.packets.pcapng.iter_pcapng_chunks`); everything else
    through the mmap batch decoder.  This is the one entry point the
    service ingest layer uses.
    """
    if str(path).endswith(".pcapng"):
        from repro.packets.pcapng import iter_pcapng_chunks

        yield from iter_pcapng_chunks(path, chunk_size)
    else:
        yield from iter_pcap_chunks(
            path, chunk_size, use_numpy=use_numpy, stats=stats
        )
