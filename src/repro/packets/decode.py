"""Full-stack frame decoding and record encoding.

``decode_frame`` turns raw link-layer bytes (as read from a pcap file) into a
:class:`PacketRecord`; ``encode_record`` does the reverse so synthetic traces
can be persisted as genuine pcap files and re-read losslessly (minus the
ground-truth labels, which only exist in memory).
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Optional

from repro.packets.ethernet import EthernetFrame, EtherType
from repro.packets.ip import IPProto, IPv4Header, IPv6Header
from repro.packets.packet import Direction, PacketRecord
from repro.packets.transport import TcpSegment, UdpDatagram

# Subset of pcap link types we handle.
LINKTYPE_NULL = 0
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101
LINKTYPE_LOOP = 108

_NULL_AF_INET = 2
_NULL_AF_INET6_VARIANTS = (24, 28, 30)  # varies by BSD flavour


class DecodeError(ValueError):
    """Raised when a frame cannot be decoded down to a transport payload."""


def _decode_ip(data: bytes, timestamp: float) -> PacketRecord:
    if not data:
        raise DecodeError("empty IP packet")
    version = data[0] >> 4
    if version == 4:
        ip: IPv4Header | IPv6Header = IPv4Header.parse(data)
    elif version == 6:
        ip = IPv6Header.parse(data)
    else:
        raise DecodeError(f"unknown IP version {version}")
    if ip.proto == IPProto.UDP:
        udp = UdpDatagram.parse(ip.payload)
        return PacketRecord(
            timestamp=timestamp,
            src_ip=ip.src_ip,
            src_port=udp.src_port,
            dst_ip=ip.dst_ip,
            dst_port=udp.dst_port,
            transport="UDP",
            payload=udp.payload,
        )
    if ip.proto == IPProto.TCP:
        tcp = TcpSegment.parse(ip.payload)
        return PacketRecord(
            timestamp=timestamp,
            src_ip=ip.src_ip,
            src_port=tcp.src_port,
            dst_ip=ip.dst_ip,
            dst_port=tcp.dst_port,
            transport="TCP",
            payload=tcp.payload,
        )
    raise DecodeError(f"unsupported IP protocol {ip.proto}")


def decode_frame(link_type: int, data: bytes, timestamp: float) -> PacketRecord:
    """Decode one captured frame down to a :class:`PacketRecord`.

    Raises :class:`DecodeError` for non-IP frames (ARP, etc.) and for IP
    protocols other than UDP/TCP; callers typically skip those.
    """
    if link_type == LINKTYPE_ETHERNET:
        frame = EthernetFrame.parse(data)
        if frame.ethertype not in (EtherType.IPV4, EtherType.IPV6):
            raise DecodeError(f"non-IP ethertype 0x{frame.ethertype:04x}")
        return _decode_ip(frame.payload, timestamp)
    if link_type in (LINKTYPE_NULL, LINKTYPE_LOOP):
        if len(data) < 4:
            raise DecodeError("truncated null/loopback header")
        family = struct.unpack("<I" if link_type == LINKTYPE_NULL else "!I", data[:4])[0]
        if family != _NULL_AF_INET and family not in _NULL_AF_INET6_VARIANTS:
            raise DecodeError(f"unknown loopback address family {family}")
        return _decode_ip(data[4:], timestamp)
    if link_type == LINKTYPE_RAW:
        return _decode_ip(data, timestamp)
    raise DecodeError(f"unsupported link type {link_type}")


_SRC_MAC = "02:00:00:00:00:01"
_DST_MAC = "02:00:00:00:00:02"


def encode_record(record: PacketRecord, link_type: int = LINKTYPE_ETHERNET) -> bytes:
    """Serialize a :class:`PacketRecord` to link-layer bytes for pcap output."""
    if record.transport == "UDP":
        transport_bytes = UdpDatagram(
            record.src_port, record.dst_port, record.payload
        ).build(record.src_ip, record.dst_ip)
        proto = int(IPProto.UDP)
    else:
        transport_bytes = TcpSegment(
            src_port=record.src_port,
            dst_port=record.dst_port,
            seq=0,
            ack=0,
            flags=0x18,  # PSH|ACK: plausible mid-stream data segment
            payload=record.payload,
        ).build(record.src_ip, record.dst_ip)
        proto = int(IPProto.TCP)

    version = ipaddress.ip_address(record.src_ip).version
    if version == 4:
        ip_bytes = IPv4Header(
            src_ip=record.src_ip,
            dst_ip=record.dst_ip,
            proto=proto,
            payload=transport_bytes,
        ).build()
        ethertype = int(EtherType.IPV4)
    else:
        ip_bytes = IPv6Header(
            src_ip=record.src_ip,
            dst_ip=record.dst_ip,
            proto=proto,
            payload=transport_bytes,
        ).build()
        ethertype = int(EtherType.IPV6)

    if link_type == LINKTYPE_ETHERNET:
        return EthernetFrame(_DST_MAC, _SRC_MAC, ethertype, ip_bytes).build()
    if link_type == LINKTYPE_RAW:
        return ip_bytes
    if link_type == LINKTYPE_NULL:
        family = _NULL_AF_INET if version == 4 else _NULL_AF_INET6_VARIANTS[0]
        return struct.pack("<I", family) + ip_bytes
    raise ValueError(f"unsupported link type {link_type}")
