"""IPv4 and IPv6 header codecs."""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field

from repro.packets.checksum import internet_checksum
from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError


class IPProto(enum.IntEnum):
    ICMP = 1
    TCP = 6
    UDP = 17
    ICMPV6 = 58


@dataclass(frozen=True)
class IPv4Header:
    """A decoded IPv4 packet (header fields plus payload)."""

    src_ip: str
    dst_ip: str
    proto: int
    payload: bytes
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    flags: int = 2  # don't-fragment, matching typical RTC senders
    fragment_offset: int = 0
    options: bytes = b""

    MIN_HEADER_LEN = 20

    @classmethod
    def parse(cls, data: bytes) -> "IPv4Header":
        reader = ByteReader(data)
        ver_ihl = reader.u8()
        version = ver_ihl >> 4
        if version != 4:
            raise ValueError(f"not IPv4 (version={version})")
        ihl = (ver_ihl & 0x0F) * 4
        if ihl < cls.MIN_HEADER_LEN:
            raise ValueError(f"IPv4 IHL too small: {ihl}")
        tos = reader.u8()
        total_length = reader.u16()
        identification = reader.u16()
        flags_frag = reader.u16()
        ttl = reader.u8()
        proto = reader.u8()
        reader.u16()  # header checksum (not verified on synthetic traces)
        src = str(ipaddress.IPv4Address(reader.read(4)))
        dst = str(ipaddress.IPv4Address(reader.read(4)))
        options = reader.read(ihl - cls.MIN_HEADER_LEN)
        if total_length < ihl or total_length > len(data):
            raise TruncatedError(
                f"IPv4 total length {total_length} inconsistent with {len(data)} bytes"
            )
        payload = data[ihl:total_length]
        return cls(
            src_ip=src,
            dst_ip=dst,
            proto=proto,
            payload=payload,
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            options=options,
        )

    def build(self) -> bytes:
        ihl = self.MIN_HEADER_LEN + len(self.options)
        if ihl % 4:
            raise ValueError("IPv4 options must pad the header to a 4-byte multiple")
        total_length = ihl + len(self.payload)
        writer = ByteWriter()
        writer.u8((4 << 4) | (ihl // 4))
        writer.u8(self.dscp << 2)
        writer.u16(total_length)
        writer.u16(self.identification)
        writer.u16((self.flags << 13) | self.fragment_offset)
        writer.u8(self.ttl)
        writer.u8(self.proto)
        writer.u16(0)  # checksum placeholder
        writer.write(ipaddress.IPv4Address(self.src_ip).packed)
        writer.write(ipaddress.IPv4Address(self.dst_ip).packed)
        writer.write(self.options)
        header = bytearray(writer.getvalue())
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        return bytes(header) + self.payload


@dataclass(frozen=True)
class IPv6Header:
    """A decoded IPv6 packet (fixed header only; extension headers unsupported)."""

    src_ip: str
    dst_ip: str
    proto: int
    payload: bytes
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    HEADER_LEN = 40

    @classmethod
    def parse(cls, data: bytes) -> "IPv6Header":
        reader = ByteReader(data)
        first = reader.u32()
        version = first >> 28
        if version != 6:
            raise ValueError(f"not IPv6 (version={version})")
        traffic_class = (first >> 20) & 0xFF
        flow_label = first & 0xFFFFF
        payload_length = reader.u16()
        next_header = reader.u8()
        hop_limit = reader.u8()
        src = str(ipaddress.IPv6Address(reader.read(16)))
        dst = str(ipaddress.IPv6Address(reader.read(16)))
        if payload_length > reader.remaining:
            raise TruncatedError("IPv6 payload length exceeds captured bytes")
        payload = reader.read(payload_length)
        return cls(
            src_ip=src,
            dst_ip=dst,
            proto=next_header,
            payload=payload,
            hop_limit=hop_limit,
            traffic_class=traffic_class,
            flow_label=flow_label,
        )

    def build(self) -> bytes:
        writer = ByteWriter()
        writer.u32((6 << 28) | (self.traffic_class << 20) | self.flow_label)
        writer.u16(len(self.payload))
        writer.u8(self.proto)
        writer.u8(self.hop_limit)
        writer.write(ipaddress.IPv6Address(self.src_ip).packed)
        writer.write(ipaddress.IPv6Address(self.dst_ip).packed)
        writer.write(self.payload)
        return writer.getvalue()


def is_private_address(ip: str) -> bool:
    """True for RFC 1918 IPv4, IPv6 unique-local (fc00::/7) and link-local."""
    addr = ipaddress.ip_address(ip)
    return addr.is_private or addr.is_link_local


def is_link_local(ip: str) -> bool:
    return ipaddress.ip_address(ip).is_link_local
