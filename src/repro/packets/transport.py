"""UDP and TCP codecs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.packets.checksum import tcp_checksum, udp_checksum
from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError


@dataclass(frozen=True)
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: bytes

    HEADER_LEN = 8

    @classmethod
    def parse(cls, data: bytes) -> "UdpDatagram":
        reader = ByteReader(data)
        src_port = reader.u16()
        dst_port = reader.u16()
        length = reader.u16()
        reader.u16()  # checksum (not verified on synthetic traces)
        if length < cls.HEADER_LEN or length > len(data):
            raise TruncatedError(f"UDP length {length} inconsistent with {len(data)} bytes")
        payload = data[cls.HEADER_LEN:length]
        return cls(src_port=src_port, dst_port=dst_port, payload=payload)

    def build(self, src_ip: str | None = None, dst_ip: str | None = None) -> bytes:
        """Serialize; a real checksum is computed when both IPs are given."""
        writer = ByteWriter()
        writer.u16(self.src_port)
        writer.u16(self.dst_port)
        writer.u16(self.HEADER_LEN + len(self.payload))
        writer.u16(0)
        writer.write(self.payload)
        raw = writer.getvalue()
        if src_ip is not None and dst_ip is not None:
            checksum = udp_checksum(src_ip, dst_ip, raw)
            raw = raw[:6] + checksum.to_bytes(2, "big") + raw[8:]
        return raw


class TcpFlags:
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(frozen=True)
class TcpSegment:
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload: bytes
    window: int = 65535
    urgent: int = 0
    options: bytes = b""

    MIN_HEADER_LEN = 20

    @classmethod
    def parse(cls, data: bytes) -> "TcpSegment":
        reader = ByteReader(data)
        src_port = reader.u16()
        dst_port = reader.u16()
        seq = reader.u32()
        ack = reader.u32()
        offset_flags = reader.u16()
        data_offset = (offset_flags >> 12) * 4
        if data_offset < cls.MIN_HEADER_LEN or data_offset > len(data):
            raise TruncatedError(f"TCP data offset {data_offset} invalid")
        flags = offset_flags & 0x01FF
        window = reader.u16()
        reader.u16()  # checksum
        urgent = reader.u16()
        options = reader.read(data_offset - cls.MIN_HEADER_LEN)
        payload = data[data_offset:]
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=payload,
            window=window,
            urgent=urgent,
            options=options,
        )

    def build(self, src_ip: str | None = None, dst_ip: str | None = None) -> bytes:
        if len(self.options) % 4:
            raise ValueError("TCP options must pad the header to a 4-byte multiple")
        data_offset = (self.MIN_HEADER_LEN + len(self.options)) // 4
        writer = ByteWriter()
        writer.u16(self.src_port)
        writer.u16(self.dst_port)
        writer.u32(self.seq)
        writer.u32(self.ack)
        writer.u16((data_offset << 12) | (self.flags & 0x01FF))
        writer.u16(self.window)
        writer.u16(0)
        writer.u16(self.urgent)
        writer.write(self.options)
        writer.write(self.payload)
        raw = writer.getvalue()
        if src_ip is not None and dst_ip is not None:
            checksum = tcp_checksum(src_ip, dst_ip, raw)
            raw = raw[:16] + checksum.to_bytes(2, "big") + raw[18:]
        return raw
