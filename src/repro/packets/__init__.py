"""Packet substrate: pcap/pcapng I/O and L2-L4 codecs.

This package replaces the paper's Wireshark/RVI capture setup.  Traces can be
synthesized in memory as :class:`PacketRecord` sequences, serialized to real
``.pcap``/``.pcapng`` files, and decoded back — the compliance pipeline only
ever sees the analysis-level records.
"""

from repro.packets.batch import (
    BatchPcapReader,
    IngestStats,
    iter_capture_chunks,
    iter_pcap,
    iter_pcap_chunks,
)
from repro.packets.checksum import internet_checksum, udp_checksum
from repro.packets.decode import DecodeError, decode_frame, encode_record
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ip import IPv4Header, IPv6Header, IPProto
from repro.packets.mmapio import MappedCapture
from repro.packets.packet import Direction, PacketRecord, Truth
from repro.packets.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.packets.pcapng import (
    PcapngReader,
    PcapngWriter,
    iter_pcapng,
    iter_pcapng_chunks,
    read_pcapng,
    write_pcapng,
)
from repro.packets.transport import TcpSegment, UdpDatagram

__all__ = [
    "internet_checksum",
    "udp_checksum",
    "BatchPcapReader",
    "IngestStats",
    "MappedCapture",
    "iter_capture_chunks",
    "iter_pcap",
    "iter_pcap_chunks",
    "iter_pcapng",
    "iter_pcapng_chunks",
    "DecodeError",
    "decode_frame",
    "encode_record",
    "EtherType",
    "EthernetFrame",
    "IPv4Header",
    "IPv6Header",
    "IPProto",
    "Direction",
    "PacketRecord",
    "Truth",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
    "PcapngReader",
    "PcapngWriter",
    "read_pcapng",
    "write_pcapng",
    "TcpSegment",
    "UdpDatagram",
]
