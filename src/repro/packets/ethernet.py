"""Ethernet II frame codec."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.bytesview import ByteReader, ByteWriter


class EtherType(enum.IntEnum):
    IPV4 = 0x0800
    ARP = 0x0806
    IPV6 = 0x86DD
    VLAN = 0x8100


def parse_mac(text: str) -> bytes:
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address {text!r}")
    return bytes(int(p, 16) for p in parts)


def format_mac(raw: bytes) -> str:
    if len(raw) != 6:
        raise ValueError("MAC addresses are 6 bytes")
    return ":".join(f"{b:02x}" for b in raw)


@dataclass(frozen=True)
class EthernetFrame:
    """A decoded Ethernet II frame (802.1Q tags are transparently skipped)."""

    dst_mac: str
    src_mac: str
    ethertype: int
    payload: bytes

    HEADER_LEN = 14

    @classmethod
    def parse(cls, data: bytes) -> "EthernetFrame":
        reader = ByteReader(data)
        dst = format_mac(reader.read(6))
        src = format_mac(reader.read(6))
        ethertype = reader.u16()
        # Skip any stacked VLAN tags so the payload always starts at L3.
        while ethertype == EtherType.VLAN:
            reader.skip(2)
            ethertype = reader.u16()
        return cls(dst_mac=dst, src_mac=src, ethertype=ethertype, payload=reader.rest())

    def build(self) -> bytes:
        writer = ByteWriter()
        writer.write(parse_mac(self.dst_mac))
        writer.write(parse_mac(self.src_mac))
        writer.u16(self.ethertype)
        writer.write(self.payload)
        return writer.getvalue()
