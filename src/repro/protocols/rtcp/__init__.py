"""RTCP wire format (RFC 3550, 4585, 3611) and SRTCP framing (RFC 3711)."""

from repro.protocols.rtcp.constants import (
    RTCP_TYPE_NAMES,
    RtcpPacketType,
    is_known_rtcp_type,
)
from repro.protocols.rtcp.packets import (
    AppPacket,
    ByePacket,
    FeedbackPacket,
    ReceiverReport,
    ReportBlock,
    RtcpHeader,
    RtcpPacket,
    RtcpParseError,
    SdesChunk,
    SdesItem,
    SdesPacket,
    SenderReport,
    XrPacket,
    looks_like_rtcp,
    parse_compound,
)
from repro.protocols.rtcp.srtcp import SrtcpTrailer, split_srtcp

__all__ = [
    "RTCP_TYPE_NAMES",
    "RtcpPacketType",
    "is_known_rtcp_type",
    "AppPacket",
    "ByePacket",
    "FeedbackPacket",
    "ReceiverReport",
    "ReportBlock",
    "RtcpHeader",
    "RtcpPacket",
    "RtcpParseError",
    "SdesChunk",
    "SdesItem",
    "SdesPacket",
    "SenderReport",
    "XrPacket",
    "looks_like_rtcp",
    "parse_compound",
    "SrtcpTrailer",
    "split_srtcp",
]
