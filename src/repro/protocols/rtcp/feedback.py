"""Typed RTCP feedback payloads (RFC 4585, RFC 5104, draft-TWCC, REMB).

The generic :class:`FeedbackPacket` carries an opaque FCI blob; these
codecs give the blob structure for the feedback formats WebRTC-era
applications actually exchange:

- Generic NACK (RTPFB FMT 1): (PID, BLP) pairs → lost sequence numbers;
- PLI (PSFB FMT 1): empty FCI;
- FIR (PSFB FMT 4): (SSRC, command sequence) entries;
- REMB (PSFB FMT 15 / AFB): receiver-estimated max bitrate;
- TWCC (RTPFB FMT 15): transport-wide congestion-control feedback header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.protocols.rtcp.packets import FeedbackPacket, RtcpParseError
from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError


@dataclass(frozen=True)
class NackEntry:
    """One FCI entry: packet ID plus a 16-bit bitmask of following losses."""

    pid: int
    blp: int

    def lost_sequence_numbers(self) -> List[int]:
        lost = [self.pid]
        for bit in range(16):
            if self.blp & (1 << bit):
                lost.append((self.pid + bit + 1) & 0xFFFF)
        return lost


@dataclass(frozen=True)
class GenericNack:
    """RTPFB FMT 1 (RFC 4585 §6.2.1)."""

    sender_ssrc: int
    media_ssrc: int
    entries: List[NackEntry] = field(default_factory=list)

    FMT = 1
    PACKET_TYPE = 205

    @classmethod
    def from_feedback(cls, feedback: FeedbackPacket) -> "GenericNack":
        if feedback.packet_type != cls.PACKET_TYPE or feedback.fmt != cls.FMT:
            raise RtcpParseError("not a Generic NACK")
        if len(feedback.fci) % 4:
            raise RtcpParseError("NACK FCI must be 4-byte entries")
        reader = ByteReader(feedback.fci)
        entries = []
        while reader.remaining:
            entries.append(NackEntry(pid=reader.u16(), blp=reader.u16()))
        return cls(sender_ssrc=feedback.sender_ssrc,
                   media_ssrc=feedback.media_ssrc, entries=entries)

    def to_feedback(self) -> FeedbackPacket:
        writer = ByteWriter()
        for entry in self.entries:
            writer.u16(entry.pid)
            writer.u16(entry.blp)
        return FeedbackPacket(
            packet_type=self.PACKET_TYPE, fmt=self.FMT,
            sender_ssrc=self.sender_ssrc, media_ssrc=self.media_ssrc,
            fci=writer.getvalue(),
        )

    @classmethod
    def for_lost(cls, sender_ssrc: int, media_ssrc: int,
                 lost: List[int]) -> "GenericNack":
        """Build the minimal NACK covering *lost* sequence numbers."""
        entries: List[NackEntry] = []
        for seq in sorted(set(lost)):
            if entries:
                delta = (seq - entries[-1].pid) & 0xFFFF
                if 1 <= delta <= 16:
                    last = entries[-1]
                    entries[-1] = NackEntry(
                        pid=last.pid, blp=last.blp | (1 << (delta - 1))
                    )
                    continue
            entries.append(NackEntry(pid=seq, blp=0))
        return cls(sender_ssrc=sender_ssrc, media_ssrc=media_ssrc,
                   entries=entries)


@dataclass(frozen=True)
class PictureLossIndication:
    """PSFB FMT 1 (RFC 4585 §6.3.1): FCI is empty."""

    sender_ssrc: int
    media_ssrc: int

    FMT = 1
    PACKET_TYPE = 206

    @classmethod
    def from_feedback(cls, feedback: FeedbackPacket) -> "PictureLossIndication":
        if feedback.packet_type != cls.PACKET_TYPE or feedback.fmt != cls.FMT:
            raise RtcpParseError("not a PLI")
        if feedback.fci:
            raise RtcpParseError("PLI carries no FCI")
        return cls(sender_ssrc=feedback.sender_ssrc,
                   media_ssrc=feedback.media_ssrc)

    def to_feedback(self) -> FeedbackPacket:
        return FeedbackPacket(packet_type=self.PACKET_TYPE, fmt=self.FMT,
                              sender_ssrc=self.sender_ssrc,
                              media_ssrc=self.media_ssrc)


@dataclass(frozen=True)
class FullIntraRequest:
    """PSFB FMT 4 (RFC 5104 §4.3.1): (SSRC, seq) entries."""

    sender_ssrc: int
    media_ssrc: int
    entries: List[Tuple[int, int]] = field(default_factory=list)

    FMT = 4
    PACKET_TYPE = 206

    @classmethod
    def from_feedback(cls, feedback: FeedbackPacket) -> "FullIntraRequest":
        if feedback.packet_type != cls.PACKET_TYPE or feedback.fmt != cls.FMT:
            raise RtcpParseError("not a FIR")
        if len(feedback.fci) % 8:
            raise RtcpParseError("FIR FCI entries are 8 bytes")
        reader = ByteReader(feedback.fci)
        entries = []
        while reader.remaining:
            ssrc = reader.u32()
            seq = reader.u8()
            reader.skip(3)
            entries.append((ssrc, seq))
        return cls(sender_ssrc=feedback.sender_ssrc,
                   media_ssrc=feedback.media_ssrc, entries=entries)

    def to_feedback(self) -> FeedbackPacket:
        writer = ByteWriter()
        for ssrc, seq in self.entries:
            writer.u32(ssrc)
            writer.u8(seq)
            writer.write(b"\x00\x00\x00")
        return FeedbackPacket(packet_type=self.PACKET_TYPE, fmt=self.FMT,
                              sender_ssrc=self.sender_ssrc,
                              media_ssrc=self.media_ssrc,
                              fci=writer.getvalue())


@dataclass(frozen=True)
class Remb:
    """Receiver Estimated Max Bitrate (draft-alvestrand-rmcat-remb).

    PSFB FMT 15 with media SSRC 0 and an FCI starting 'REMB'.
    """

    sender_ssrc: int
    bitrate_bps: int
    media_ssrcs: List[int] = field(default_factory=list)

    FMT = 15
    PACKET_TYPE = 206
    MAGIC = b"REMB"

    @classmethod
    def from_feedback(cls, feedback: FeedbackPacket) -> "Remb":
        if feedback.packet_type != cls.PACKET_TYPE or feedback.fmt != cls.FMT:
            raise RtcpParseError("not an AFB/REMB")
        reader = ByteReader(feedback.fci)
        try:
            if reader.read(4) != cls.MAGIC:
                raise RtcpParseError("missing REMB magic")
            count = reader.u8()
            exp_mantissa = reader.u24()
            exponent = exp_mantissa >> 18
            mantissa = exp_mantissa & 0x3FFFF
            ssrcs = [reader.u32() for _ in range(count)]
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(sender_ssrc=feedback.sender_ssrc,
                   bitrate_bps=mantissa << exponent, media_ssrcs=ssrcs)

    def to_feedback(self) -> FeedbackPacket:
        # Normalize bitrate into 18-bit mantissa + 6-bit exponent.
        exponent = 0
        mantissa = self.bitrate_bps
        while mantissa >= (1 << 18):
            mantissa >>= 1
            exponent += 1
        if exponent >= 64:
            raise ValueError("bitrate too large for REMB encoding")
        writer = ByteWriter()
        writer.write(self.MAGIC)
        writer.u8(len(self.media_ssrcs))
        writer.u24((exponent << 18) | mantissa)
        for ssrc in self.media_ssrcs:
            writer.u32(ssrc)
        return FeedbackPacket(packet_type=self.PACKET_TYPE, fmt=self.FMT,
                              sender_ssrc=self.sender_ssrc, media_ssrc=0,
                              fci=writer.getvalue())


@dataclass(frozen=True)
class TwccFeedbackHeader:
    """Transport-wide congestion control feedback header (draft-twcc §3.1).

    Only the fixed header is decoded — the packet-status chunks and recv
    deltas stay raw, which is all the compliance study needs.
    """

    sender_ssrc: int
    media_ssrc: int
    base_sequence: int
    packet_status_count: int
    reference_time: int  # multiples of 64 ms
    feedback_count: int
    chunks_and_deltas: bytes

    FMT = 15
    PACKET_TYPE = 205

    @classmethod
    def from_feedback(cls, feedback: FeedbackPacket) -> "TwccFeedbackHeader":
        if feedback.packet_type != cls.PACKET_TYPE or feedback.fmt != cls.FMT:
            raise RtcpParseError("not a TWCC feedback packet")
        reader = ByteReader(feedback.fci)
        try:
            base_sequence = reader.u16()
            count = reader.u16()
            word = reader.u32()
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(
            sender_ssrc=feedback.sender_ssrc,
            media_ssrc=feedback.media_ssrc,
            base_sequence=base_sequence,
            packet_status_count=count,
            reference_time=word >> 8,
            feedback_count=word & 0xFF,
            chunks_and_deltas=reader.rest(),
        )

    def to_feedback(self) -> FeedbackPacket:
        writer = ByteWriter()
        writer.u16(self.base_sequence)
        writer.u16(self.packet_status_count)
        writer.u32((self.reference_time << 8) | (self.feedback_count & 0xFF))
        writer.write(self.chunks_and_deltas)
        writer.pad_to_multiple(4)
        return FeedbackPacket(packet_type=self.PACKET_TYPE, fmt=self.FMT,
                              sender_ssrc=self.sender_ssrc,
                              media_ssrc=self.media_ssrc,
                              fci=writer.getvalue())
