"""RTCP packet codecs (RFC 3550 §6, RFC 4585, RFC 3611).

The generic :class:`RtcpPacket` keeps the raw body so encrypted payloads
(SRTCP, or Discord's proprietary scheme) can still be carried around and
judged structurally; the typed views decode plaintext bodies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.protocols.rtcp.constants import RtcpPacketType
from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError

RTCP_VERSION = 2
HEADER_LEN = 4

#: Precompiled common header: first byte, packet type, length words.
_HEADER = struct.Struct("!BBH")


class RtcpParseError(ValueError):
    """Raised when bytes cannot be parsed as an RTCP packet."""


@dataclass(frozen=True)
class RtcpHeader:
    """The 4-byte common header every RTCP packet starts with."""

    version: int
    padding: bool
    count: int  # RC for SR/RR, SC for SDES/BYE, FMT for feedback, subtype for APP
    packet_type: int
    length_words: int  # length in 32-bit words minus one (RFC 3550 §6.4.1)

    @property
    def wire_length(self) -> int:
        return (self.length_words + 1) * 4

    @classmethod
    def parse(cls, data: bytes, start: int = 0) -> "RtcpHeader":
        """Parse the common header at byte *start* of *data* (zero-copy)."""
        if len(data) - start < HEADER_LEN or start < 0:
            raise RtcpParseError("buffer shorter than RTCP header")
        first, packet_type, length_words = _HEADER.unpack_from(data, start)
        return cls(
            version=first >> 6,
            padding=bool(first & 0x20),
            count=first & 0x1F,
            packet_type=packet_type,
            length_words=length_words,
        )

    def build(self) -> bytes:
        first = (self.version << 6) | (0x20 if self.padding else 0) | (self.count & 0x1F)
        return bytes([first, self.packet_type]) + self.length_words.to_bytes(2, "big")


@dataclass(frozen=True)
class RtcpPacket:
    """One RTCP packet: header plus raw body (everything after byte 4)."""

    header: RtcpHeader
    body: bytes
    trailer: bytes = b""  # any bytes beyond the declared length (e.g. Discord)

    @property
    def packet_type(self) -> int:
        return self.header.packet_type

    @property
    def ssrc(self) -> Optional[int]:
        """Sender SSRC — the first body word for every RFC-defined type."""
        if len(self.body) >= 4:
            return int.from_bytes(self.body[:4], "big")
        return None

    @classmethod
    def parse(cls, data: bytes, strict: bool = True) -> "RtcpPacket":
        header = RtcpHeader.parse(data)
        if header.version != RTCP_VERSION:
            raise RtcpParseError(f"RTCP version {header.version} != 2")
        if header.wire_length > len(data):
            raise RtcpParseError(
                f"declared length {header.wire_length} exceeds {len(data)} bytes"
            )
        body = data[HEADER_LEN:header.wire_length]
        trailer = b"" if strict else data[header.wire_length:]
        return cls(header=header, body=body, trailer=trailer)

    def build(self) -> bytes:
        return self.header.build() + self.body + self.trailer

    @property
    def wire_length(self) -> int:
        return self.header.wire_length + len(self.trailer)


def parse_compound(data: bytes, strict: bool = True) -> List[RtcpPacket]:
    """Split a compound RTCP datagram into its constituent packets.

    With ``strict=False``, trailing bytes that do not form another valid
    RTCP header are attached to the last packet as ``trailer`` — this is how
    Discord's 1- and 3-byte proprietary trailers are surfaced.
    """
    packets: List[RtcpPacket] = []
    offset = 0
    while offset + HEADER_LEN <= len(data):
        try:
            header = RtcpHeader.parse(data, offset)
        except RtcpParseError:
            break
        if header.version != RTCP_VERSION or offset + header.wire_length > len(data):
            break
        packets.append(
            RtcpPacket(
                header=header,
                body=data[offset + HEADER_LEN:offset + header.wire_length],
            )
        )
        offset += header.wire_length
    if offset != len(data):
        leftover = data[offset:]
        if strict:
            raise RtcpParseError(f"{len(leftover)} stray bytes after compound RTCP")
        if packets:
            last = packets[-1]
            packets[-1] = RtcpPacket(header=last.header, body=last.body, trailer=leftover)
        else:
            raise RtcpParseError("no RTCP packet found in datagram")
    return packets


# --- Typed bodies -----------------------------------------------------------

@dataclass(frozen=True)
class ReportBlock:
    """SR/RR report block (RFC 3550 §6.4.1)."""

    ssrc: int
    fraction_lost: int
    cumulative_lost: int
    highest_seq: int
    jitter: int
    lsr: int
    dlsr: int

    LENGTH = 24

    @classmethod
    def parse(cls, reader: ByteReader) -> "ReportBlock":
        ssrc = reader.u32()
        frac_cum = reader.u32()
        return cls(
            ssrc=ssrc,
            fraction_lost=frac_cum >> 24,
            cumulative_lost=frac_cum & 0xFFFFFF,
            highest_seq=reader.u32(),
            jitter=reader.u32(),
            lsr=reader.u32(),
            dlsr=reader.u32(),
        )

    def build(self) -> bytes:
        writer = ByteWriter()
        writer.u32(self.ssrc)
        writer.u32((self.fraction_lost << 24) | (self.cumulative_lost & 0xFFFFFF))
        writer.u32(self.highest_seq)
        writer.u32(self.jitter)
        writer.u32(self.lsr)
        writer.u32(self.dlsr)
        return writer.getvalue()


@dataclass(frozen=True)
class SenderReport:
    """SR body (RFC 3550 §6.4.1)."""

    ssrc: int
    ntp_timestamp: int
    rtp_timestamp: int
    packet_count: int
    octet_count: int
    report_blocks: List[ReportBlock] = field(default_factory=list)
    profile_extension: bytes = b""

    @classmethod
    def from_packet(cls, packet: RtcpPacket) -> "SenderReport":
        if packet.packet_type != RtcpPacketType.SR:
            raise RtcpParseError(f"packet type {packet.packet_type} is not SR")
        reader = ByteReader(packet.body)
        try:
            ssrc = reader.u32()
            ntp = reader.u64()
            rtp_ts = reader.u32()
            packet_count = reader.u32()
            octet_count = reader.u32()
            blocks = [ReportBlock.parse(reader) for _ in range(packet.header.count)]
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(
            ssrc=ssrc,
            ntp_timestamp=ntp,
            rtp_timestamp=rtp_ts,
            packet_count=packet_count,
            octet_count=octet_count,
            report_blocks=blocks,
            profile_extension=reader.rest(),
        )

    def to_packet(self, padding: bool = False) -> RtcpPacket:
        writer = ByteWriter()
        writer.u32(self.ssrc)
        writer.u64(self.ntp_timestamp)
        writer.u32(self.rtp_timestamp)
        writer.u32(self.packet_count)
        writer.u32(self.octet_count)
        for block in self.report_blocks:
            writer.write(block.build())
        writer.write(self.profile_extension)
        body = writer.getvalue()
        header = RtcpHeader(
            version=RTCP_VERSION,
            padding=padding,
            count=len(self.report_blocks),
            packet_type=int(RtcpPacketType.SR),
            length_words=len(body) // 4,
        )
        return RtcpPacket(header=header, body=body)


@dataclass(frozen=True)
class ReceiverReport:
    """RR body (RFC 3550 §6.4.2)."""

    ssrc: int
    report_blocks: List[ReportBlock] = field(default_factory=list)
    profile_extension: bytes = b""

    @classmethod
    def from_packet(cls, packet: RtcpPacket) -> "ReceiverReport":
        if packet.packet_type != RtcpPacketType.RR:
            raise RtcpParseError(f"packet type {packet.packet_type} is not RR")
        reader = ByteReader(packet.body)
        try:
            ssrc = reader.u32()
            blocks = [ReportBlock.parse(reader) for _ in range(packet.header.count)]
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(ssrc=ssrc, report_blocks=blocks, profile_extension=reader.rest())

    def to_packet(self) -> RtcpPacket:
        writer = ByteWriter()
        writer.u32(self.ssrc)
        for block in self.report_blocks:
            writer.write(block.build())
        writer.write(self.profile_extension)
        body = writer.getvalue()
        header = RtcpHeader(
            version=RTCP_VERSION,
            padding=False,
            count=len(self.report_blocks),
            packet_type=int(RtcpPacketType.RR),
            length_words=len(body) // 4,
        )
        return RtcpPacket(header=header, body=body)


@dataclass(frozen=True)
class SdesItem:
    item_type: int  # 1=CNAME .. 8=PRIV (RFC 3550 §6.5)
    value: bytes


@dataclass(frozen=True)
class SdesChunk:
    ssrc: int
    items: List[SdesItem] = field(default_factory=list)


@dataclass(frozen=True)
class SdesPacket:
    chunks: List[SdesChunk] = field(default_factory=list)

    @classmethod
    def from_packet(cls, packet: RtcpPacket) -> "SdesPacket":
        if packet.packet_type != RtcpPacketType.SDES:
            raise RtcpParseError(f"packet type {packet.packet_type} is not SDES")
        reader = ByteReader(packet.body)
        chunks: List[SdesChunk] = []
        try:
            for _ in range(packet.header.count):
                ssrc = reader.u32()
                items: List[SdesItem] = []
                while True:
                    item_type = reader.u8()
                    if item_type == 0:
                        # Chunk terminator; skip padding to the 32-bit boundary.
                        while reader.pos % 4 and reader.remaining:
                            reader.skip(1)
                        break
                    length = reader.u8()
                    items.append(SdesItem(item_type=item_type, value=reader.read(length)))
                chunks.append(SdesChunk(ssrc=ssrc, items=items))
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(chunks=chunks)

    def to_packet(self) -> RtcpPacket:
        writer = ByteWriter()
        for chunk in self.chunks:
            writer.u32(chunk.ssrc)
            for item in chunk.items:
                writer.u8(item.item_type)
                writer.u8(len(item.value))
                writer.write(item.value)
            writer.u8(0)
            writer.pad_to_multiple(4)
        body = writer.getvalue()
        header = RtcpHeader(
            version=RTCP_VERSION,
            padding=False,
            count=len(self.chunks),
            packet_type=int(RtcpPacketType.SDES),
            length_words=len(body) // 4,
        )
        return RtcpPacket(header=header, body=body)


@dataclass(frozen=True)
class ByePacket:
    ssrcs: List[int] = field(default_factory=list)
    reason: bytes = b""

    @classmethod
    def from_packet(cls, packet: RtcpPacket) -> "ByePacket":
        if packet.packet_type != RtcpPacketType.BYE:
            raise RtcpParseError(f"packet type {packet.packet_type} is not BYE")
        reader = ByteReader(packet.body)
        try:
            ssrcs = [reader.u32() for _ in range(packet.header.count)]
            reason = b""
            if reader.remaining:
                length = reader.u8()
                reason = reader.read(min(length, reader.remaining))
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(ssrcs=ssrcs, reason=reason)

    def to_packet(self) -> RtcpPacket:
        writer = ByteWriter()
        for ssrc in self.ssrcs:
            writer.u32(ssrc)
        if self.reason:
            writer.u8(len(self.reason))
            writer.write(self.reason)
            writer.pad_to_multiple(4)
        body = writer.getvalue()
        header = RtcpHeader(
            version=RTCP_VERSION,
            padding=False,
            count=len(self.ssrcs),
            packet_type=int(RtcpPacketType.BYE),
            length_words=len(body) // 4,
        )
        return RtcpPacket(header=header, body=body)


@dataclass(frozen=True)
class AppPacket:
    ssrc: int
    name: bytes  # exactly 4 ASCII bytes
    data: bytes = b""
    subtype: int = 0

    @classmethod
    def from_packet(cls, packet: RtcpPacket) -> "AppPacket":
        if packet.packet_type != RtcpPacketType.APP:
            raise RtcpParseError(f"packet type {packet.packet_type} is not APP")
        reader = ByteReader(packet.body)
        try:
            ssrc = reader.u32()
            name = reader.read(4)
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(ssrc=ssrc, name=name, data=reader.rest(), subtype=packet.header.count)

    def to_packet(self) -> RtcpPacket:
        if len(self.name) != 4:
            raise ValueError("APP name must be exactly 4 bytes")
        if len(self.data) % 4:
            raise ValueError("APP data must be a multiple of 4 bytes")
        body = self.ssrc.to_bytes(4, "big") + self.name + self.data
        header = RtcpHeader(
            version=RTCP_VERSION,
            padding=False,
            count=self.subtype,
            packet_type=int(RtcpPacketType.APP),
            length_words=len(body) // 4,
        )
        return RtcpPacket(header=header, body=body)


@dataclass(frozen=True)
class FeedbackPacket:
    """RTPFB (205) / PSFB (206) common layout (RFC 4585 §6.1)."""

    packet_type: int
    fmt: int
    sender_ssrc: int
    media_ssrc: int
    fci: bytes = b""

    @classmethod
    def from_packet(cls, packet: RtcpPacket) -> "FeedbackPacket":
        if packet.packet_type not in (RtcpPacketType.RTPFB, RtcpPacketType.PSFB):
            raise RtcpParseError(f"packet type {packet.packet_type} is not feedback")
        reader = ByteReader(packet.body)
        try:
            sender_ssrc = reader.u32()
            media_ssrc = reader.u32()
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(
            packet_type=packet.packet_type,
            fmt=packet.header.count,
            sender_ssrc=sender_ssrc,
            media_ssrc=media_ssrc,
            fci=reader.rest(),
        )

    def to_packet(self) -> RtcpPacket:
        if len(self.fci) % 4:
            raise ValueError("FCI must be a multiple of 4 bytes")
        body = (
            self.sender_ssrc.to_bytes(4, "big")
            + self.media_ssrc.to_bytes(4, "big")
            + self.fci
        )
        header = RtcpHeader(
            version=RTCP_VERSION,
            padding=False,
            count=self.fmt,
            packet_type=self.packet_type,
            length_words=len(body) // 4,
        )
        return RtcpPacket(header=header, body=body)


@dataclass(frozen=True)
class XrBlock:
    block_type: int
    type_specific: int
    data: bytes


@dataclass(frozen=True)
class XrPacket:
    """Extended report packet (RFC 3611)."""

    ssrc: int
    blocks: List[XrBlock] = field(default_factory=list)

    @classmethod
    def from_packet(cls, packet: RtcpPacket) -> "XrPacket":
        if packet.packet_type != RtcpPacketType.XR:
            raise RtcpParseError(f"packet type {packet.packet_type} is not XR")
        reader = ByteReader(packet.body)
        try:
            ssrc = reader.u32()
            blocks: List[XrBlock] = []
            while reader.remaining >= 4:
                block_type = reader.u8()
                type_specific = reader.u8()
                length_words = reader.u16()
                blocks.append(
                    XrBlock(
                        block_type=block_type,
                        type_specific=type_specific,
                        data=reader.read(length_words * 4),
                    )
                )
        except TruncatedError as exc:
            raise RtcpParseError(str(exc)) from exc
        return cls(ssrc=ssrc, blocks=blocks)

    def to_packet(self) -> RtcpPacket:
        writer = ByteWriter()
        writer.u32(self.ssrc)
        for block in self.blocks:
            if len(block.data) % 4:
                raise ValueError("XR block data must be a multiple of 4 bytes")
            writer.u8(block.block_type)
            writer.u8(block.type_specific)
            writer.u16(len(block.data) // 4)
            writer.write(block.data)
        body = writer.getvalue()
        header = RtcpHeader(
            version=RTCP_VERSION,
            padding=False,
            count=0,
            packet_type=int(RtcpPacketType.XR),
            length_words=len(body) // 4,
        )
        return RtcpPacket(header=header, body=body)


def looks_like_rtcp(data: bytes) -> bool:
    """Structural test used by the DPI candidate matcher.

    Version 2, packet type in the RTCP range 192-223 (RFC 5761 §4), and a
    declared length that fits in the buffer.
    """
    if len(data) < HEADER_LEN:
        return False
    if data[0] >> 6 != RTCP_VERSION:
        return False
    if not 192 <= data[1] <= 223:
        return False
    length = (int.from_bytes(data[2:4], "big") + 1) * 4
    return length <= len(data)
