"""RTCP packet-type registry."""

from __future__ import annotations

import enum
from typing import Dict


class RtcpPacketType(enum.IntEnum):
    SR = 200      # Sender Report (RFC 3550)
    RR = 201      # Receiver Report (RFC 3550)
    SDES = 202    # Source Description (RFC 3550)
    BYE = 203     # Goodbye (RFC 3550)
    APP = 204     # Application-defined (RFC 3550)
    RTPFB = 205   # Transport-layer feedback (RFC 4585)
    PSFB = 206    # Payload-specific feedback (RFC 4585)
    XR = 207      # Extended reports (RFC 3611)


RTCP_TYPE_NAMES: Dict[int, str] = {
    int(t): t.name for t in RtcpPacketType
}

#: RTPFB FMT values (RFC 4585 §6.2, RFC 4588, RFC 5104, draft-twcc).
KNOWN_RTPFB_FORMATS = frozenset({1, 3, 4, 5, 15})  # NACK, TMMBR, TMMBN, RAMS?, TWCC
#: PSFB FMT values (RFC 4585 §6.3, RFC 5104): PLI, SLI, RPSI, FIR, TSTR, TSTN, VBCM, AFB.
KNOWN_PSFB_FORMATS = frozenset({1, 2, 3, 4, 5, 6, 7, 15})

#: XR block types (RFC 3611 §4).
KNOWN_XR_BLOCK_TYPES = frozenset(range(1, 8))


def is_known_rtcp_type(packet_type: int) -> bool:
    return packet_type in RTCP_TYPE_NAMES
