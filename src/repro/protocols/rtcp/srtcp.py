"""SRTCP framing helpers (RFC 3711 §3.4).

An SRTCP packet is: the first RTCP header + sender SSRC in the clear, an
encrypted remainder, then a trailer of E-flag ‖ 31-bit SRTCP index, an
optional MKI, and an authentication tag (10 bytes for the default
AES-CM/HMAC-SHA1-80 transform).  We never decrypt — the study only needs
the framing, e.g. to detect Google Meet's missing authentication tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.protocols.rtcp.packets import RtcpHeader, RtcpParseError

DEFAULT_AUTH_TAG_LEN = 10


@dataclass(frozen=True)
class SrtcpTrailer:
    """The decoded tail of an SRTCP packet."""

    encrypted: bool  # E flag
    index: int       # 31-bit SRTCP index
    auth_tag: bytes

    @property
    def has_auth_tag(self) -> bool:
        return len(self.auth_tag) > 0

    def build(self) -> bytes:
        word = ((1 << 31) if self.encrypted else 0) | (self.index & 0x7FFFFFFF)
        return word.to_bytes(4, "big") + self.auth_tag


def split_srtcp(
    data: bytes, auth_tag_len: int = DEFAULT_AUTH_TAG_LEN
) -> Tuple[bytes, SrtcpTrailer]:
    """Split an SRTCP packet into (protected portion, trailer).

    ``auth_tag_len`` may be 0 for traffic that (non-compliantly) omits the
    tag — Google Meet's relay-mode Wi-Fi behaviour in the paper.
    """
    trailer_len = 4 + auth_tag_len
    if len(data) < 8 + trailer_len:
        raise RtcpParseError("too short to carry an SRTCP trailer")
    header = RtcpHeader.parse(data)
    if header.version != 2:
        raise RtcpParseError("not an RTCP header at SRTCP start")
    split_at = len(data) - trailer_len
    protected = data[:split_at]
    word = int.from_bytes(data[split_at:split_at + 4], "big")
    auth_tag = data[len(data) - auth_tag_len:] if auth_tag_len else b""
    return protected, SrtcpTrailer(
        encrypted=bool(word >> 31), index=word & 0x7FFFFFFF, auth_tag=auth_tag
    )


def guess_srtcp_trailer(data: bytes) -> Optional[SrtcpTrailer]:
    """Best-effort SRTCP trailer detection for unknown traffic.

    Tries the default 10-byte tag first, then the tagless layout.  Returns
    None when neither yields a plausible (small, monotonic-looking) index.
    """
    for tag_len in (DEFAULT_AUTH_TAG_LEN, 0):
        try:
            _protected, trailer = split_srtcp(data, auth_tag_len=tag_len)
        except RtcpParseError:
            continue
        if trailer.index < 1 << 24:  # indexes count packets; huge values are noise
            return trailer
    return None
