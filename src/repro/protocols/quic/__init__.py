"""QUIC v1 header parsing (RFC 9000)."""

from repro.protocols.quic.header import (
    LongHeaderType,
    QuicHeader,
    QuicParseError,
    looks_like_quic,
    parse_datagram,
)
from repro.protocols.quic.varint import decode_varint, encode_varint

__all__ = [
    "LongHeaderType",
    "QuicHeader",
    "QuicParseError",
    "looks_like_quic",
    "parse_datagram",
    "decode_varint",
    "encode_varint",
]
