"""QUIC v1 packet header parsing (RFC 9000 §17).

Packet payloads are always encrypted, so — exactly like the paper — only the
invariant header structure is parsed: header form, version, connection IDs,
and for long headers the per-type fields (token, length).  Short-header
destination connection ID length is not self-describing; callers supply the
expected length learned from earlier long-header packets on the same flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.protocols.quic.varint import decode_varint
from repro.utils.bytesview import TruncatedError

QUIC_V1 = 0x00000001
QUIC_V2 = 0x6B3343CF

FORM_BIT = 0x80
FIXED_BIT = 0x40


class LongHeaderType(enum.IntEnum):
    INITIAL = 0
    ZERO_RTT = 1
    HANDSHAKE = 2
    RETRY = 3


class QuicParseError(ValueError):
    """Raised when bytes cannot be parsed as a QUIC packet header."""


@dataclass(frozen=True)
class QuicHeader:
    """A parsed QUIC packet header (long or short form)."""

    is_long: bool
    first_byte: int
    version: Optional[int]  # None for short headers
    dcid: bytes
    scid: bytes = b""
    long_type: Optional[LongHeaderType] = None
    token: bytes = b""          # Initial packets only
    payload_length: Optional[int] = None  # declared Length field (long headers)
    header_length: int = 0      # bytes consumed up to (not incl.) packet number
    wire_length: int = 0        # total bytes this packet spans in the datagram

    @property
    def fixed_bit(self) -> bool:
        return bool(self.first_byte & FIXED_BIT)

    @property
    def is_version_negotiation(self) -> bool:
        return self.is_long and self.version == 0


def parse_one(data: bytes, short_dcid_len: int = 8, start: int = 0) -> QuicHeader:
    """Parse a single QUIC packet header beginning at byte *start*.

    ``header_length``/``wire_length`` on the result are relative to *start*,
    so callers see the same values they would for ``data[start:]`` without
    paying for that copy.
    """
    if start < 0 or start >= len(data):
        raise QuicParseError("empty buffer")
    first = data[start]
    if first & FORM_BIT:
        return _parse_long(data, first, start)
    return _parse_short(data, first, short_dcid_len, start)


def _parse_long(data: bytes, first: int, start: int = 0) -> QuicHeader:
    if len(data) - start < 7:
        raise QuicParseError("long header too short")
    version = int.from_bytes(data[start + 1:start + 5], "big")
    offset = start + 5
    dcid_len = data[offset]
    offset += 1
    # RFC 9000 §17.2 caps v1 CIDs at 20 bytes; we apply the cap to version
    # negotiation too, since every deployed version shares it — and an
    # unbounded CID makes random bytes parse as VN packets.
    if dcid_len > 20:
        raise QuicParseError(f"DCID length {dcid_len} exceeds 20 (RFC 9000 §17.2)")
    if offset + dcid_len > len(data):
        raise QuicParseError("truncated DCID")
    dcid = data[offset:offset + dcid_len]
    offset += dcid_len
    if offset >= len(data):
        raise QuicParseError("missing SCID length")
    scid_len = data[offset]
    offset += 1
    if scid_len > 20:
        raise QuicParseError(f"SCID length {scid_len} exceeds 20")
    if offset + scid_len > len(data):
        raise QuicParseError("truncated SCID")
    scid = data[offset:offset + scid_len]
    offset += scid_len

    if version == 0:
        # Version negotiation: remainder is a non-empty list of versions.
        if (len(data) - offset) % 4 or len(data) == offset:
            raise QuicParseError("malformed version negotiation list")
        return QuicHeader(
            is_long=True,
            first_byte=first,
            version=0,
            dcid=dcid,
            scid=scid,
            header_length=offset - start,
            wire_length=len(data) - start,
        )

    if not first & FIXED_BIT:
        raise QuicParseError("fixed bit clear in long header")

    long_type = LongHeaderType((first >> 4) & 0x03)
    token = b""
    payload_length: Optional[int] = None

    try:
        if long_type == LongHeaderType.INITIAL:
            token_len, consumed = decode_varint(data, offset)
            offset += consumed
            if offset + token_len > len(data):
                raise QuicParseError("truncated Initial token")
            token = data[offset:offset + token_len]
            offset += token_len
        if long_type == LongHeaderType.RETRY:
            # Retry: token runs to 16 bytes before the end (integrity tag).
            if len(data) - offset < 16:
                raise QuicParseError("Retry packet shorter than integrity tag")
            token = data[offset:len(data) - 16]
            return QuicHeader(
                is_long=True,
                first_byte=first,
                version=version,
                dcid=dcid,
                scid=scid,
                long_type=long_type,
                token=token,
                header_length=offset - start,
                wire_length=len(data) - start,
            )
        payload_length, consumed = decode_varint(data, offset)
        offset += consumed
    except TruncatedError as exc:
        raise QuicParseError(str(exc)) from exc

    pn_length = (first & 0x03) + 1
    total = offset + payload_length
    if total > len(data):
        raise QuicParseError(
            f"declared length {payload_length} overruns datagram "
            f"({total} > {len(data)})"
        )
    if payload_length < pn_length:
        raise QuicParseError("Length field smaller than packet number")
    return QuicHeader(
        is_long=True,
        first_byte=first,
        version=version,
        dcid=dcid,
        scid=scid,
        long_type=long_type,
        token=token,
        payload_length=payload_length,
        header_length=offset - start,
        wire_length=total - start,
    )


def _parse_short(data: bytes, first: int, dcid_len: int, start: int = 0) -> QuicHeader:
    if not first & FIXED_BIT:
        raise QuicParseError("fixed bit clear in short header")
    if start + 1 + dcid_len > len(data):
        raise QuicParseError("short header shorter than DCID")
    # A 1-RTT packet must still carry a packet number and at least a sample
    # of ciphertext; anything tiny is noise.
    if len(data) - start < 1 + dcid_len + 1 + 16:
        raise QuicParseError("short-header packet implausibly small")
    return QuicHeader(
        is_long=False,
        first_byte=first,
        version=None,
        dcid=data[start + 1:start + 1 + dcid_len],
        header_length=1 + dcid_len,
        # Short headers always extend to the end of the datagram.
        wire_length=len(data) - start,
    )


def parse_datagram(data: bytes, short_dcid_len: int = 8) -> List[QuicHeader]:
    """Parse all coalesced QUIC packets in one UDP datagram (RFC 9000 §12.2)."""
    headers: List[QuicHeader] = []
    offset = 0
    while offset < len(data):
        header = parse_one(data[offset:], short_dcid_len=short_dcid_len)
        headers.append(header)
        if header.wire_length <= 0:
            break
        offset += header.wire_length
        if not header.is_long:
            break  # short header consumes the rest of the datagram
    return headers


_KNOWN_VERSIONS = frozenset({QUIC_V1, QUIC_V2, 0})


def looks_like_quic(data: bytes) -> bool:
    """Structural test used by the DPI candidate matcher.

    Long headers are recognized by form bit + known version + parseable
    CID/length structure.  Short headers are too ambiguous to detect inside
    arbitrary payload bytes, so the DPI only claims them at offset 0 on flows
    that previously carried long-header packets (handled by the validator).
    """
    if len(data) < 7:
        return False
    first = data[0]
    if not first & FORM_BIT:
        return False
    version = int.from_bytes(data[1:5], "big")
    if version not in _KNOWN_VERSIONS:
        return False
    try:
        parse_one(data)
    except QuicParseError:
        return False
    return True
