"""QUIC variable-length integers (RFC 9000 §16)."""

from __future__ import annotations

from typing import Tuple

from repro.utils.bytesview import TruncatedError

_PREFIX_TO_LENGTH = {0b00: 1, 0b01: 2, 0b10: 4, 0b11: 8}


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint at *offset*; returns (value, bytes consumed)."""
    if offset >= len(data):
        raise TruncatedError("varint at end of buffer")
    length = _PREFIX_TO_LENGTH[data[offset] >> 6]
    if offset + length > len(data):
        raise TruncatedError(f"varint needs {length} bytes, buffer exhausted")
    value = data[offset] & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, length


def encode_varint(value: int) -> bytes:
    """Encode *value* in the smallest varint form."""
    if value < 0:
        raise ValueError("varints are unsigned")
    if value < 1 << 6:
        return bytes([value])
    if value < 1 << 14:
        return (value | 0x4000).to_bytes(2, "big")
    if value < 1 << 30:
        return (value | 0x80000000).to_bytes(4, "big")
    if value < 1 << 62:
        return (value | 0xC000000000000000).to_bytes(8, "big")
    raise ValueError("value exceeds 62 bits")
