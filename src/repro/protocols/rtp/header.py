"""RTP fixed header codec (RFC 3550 §5.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.protocols.rtp.extensions import HeaderExtension
from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError

RTP_VERSION = 2
FIXED_HEADER_LEN = 12


class RtpParseError(ValueError):
    """Raised when bytes cannot be parsed as an RTP packet."""


@dataclass(frozen=True)
class RtpPacket:
    """A parsed RTP packet.

    ``payload`` holds the media bytes after any CSRC list and header
    extension; for SRTP traffic it is ciphertext, which is fine — the study
    judges header structure, not media content.
    """

    payload_type: int
    sequence_number: int
    timestamp: int
    ssrc: int
    payload: bytes = b""
    marker: bool = False
    csrcs: List[int] = field(default_factory=list)
    extension: Optional[HeaderExtension] = None
    padding_length: int = 0
    # Set by non-strict parsing when the padding bit was set but the pad
    # count byte was impossible — surfaced to the compliance layer.
    invalid_padding: bool = False

    @property
    def has_padding(self) -> bool:
        return self.padding_length > 0

    @classmethod
    def parse(
        cls,
        data: bytes,
        strict: bool = True,
        start: int = 0,
        end: Optional[int] = None,
    ) -> "RtpPacket":
        """Parse the packet spanning ``data[start:end]`` without slicing it."""
        try:
            reader = ByteReader(data, start, end)
        except ValueError as exc:
            raise RtpParseError(str(exc)) from exc
        try:
            first = reader.u8()
            second = reader.u8()
            sequence_number = reader.u16()
            timestamp = reader.u32()
            ssrc = reader.u32()
        except TruncatedError as exc:
            raise RtpParseError(str(exc)) from exc
        version = first >> 6
        if version != RTP_VERSION:
            raise RtpParseError(f"RTP version {version} != 2")
        padding = bool(first & 0x20)
        has_extension = bool(first & 0x10)
        csrc_count = first & 0x0F
        marker = bool(second & 0x80)
        payload_type = second & 0x7F

        csrcs = []
        try:
            for _ in range(csrc_count):
                csrcs.append(reader.u32())
            extension = None
            if has_extension:
                profile = reader.u16()
                word_length = reader.u16()
                extension = HeaderExtension(profile=profile, data=reader.read(word_length * 4))
        except TruncatedError as exc:
            raise RtpParseError(str(exc)) from exc

        payload = reader.rest()
        padding_length = 0
        invalid_padding = False
        if padding:
            if not payload:
                raise RtpParseError("padding bit set but no payload bytes")
            padding_length = payload[-1]
            if padding_length == 0 or padding_length > len(payload):
                if strict:
                    raise RtpParseError(
                        f"invalid padding length {padding_length} for "
                        f"{len(payload)} payload bytes"
                    )
                padding_length = 0
                invalid_padding = True
            else:
                payload = payload[:-padding_length]

        return cls(
            payload_type=payload_type,
            sequence_number=sequence_number,
            timestamp=timestamp,
            ssrc=ssrc,
            payload=payload,
            marker=marker,
            csrcs=csrcs,
            extension=extension,
            padding_length=padding_length,
            invalid_padding=invalid_padding,
        )

    def build(self) -> bytes:
        if len(self.csrcs) > 15:
            raise ValueError("at most 15 CSRCs fit in the 4-bit CC field")
        writer = ByteWriter()
        first = (RTP_VERSION << 6) | len(self.csrcs)
        if self.padding_length:
            first |= 0x20
        if self.extension is not None:
            first |= 0x10
        writer.u8(first)
        writer.u8((0x80 if self.marker else 0) | (self.payload_type & 0x7F))
        writer.u16(self.sequence_number)
        writer.u32(self.timestamp)
        writer.u32(self.ssrc)
        for csrc in self.csrcs:
            writer.u32(csrc)
        if self.extension is not None:
            writer.write(self.extension.build())
        writer.write(self.payload)
        if self.padding_length:
            if self.padding_length < 1:
                raise ValueError("padding length must be >= 1")
            writer.write(bytes(self.padding_length - 1) + bytes([self.padding_length]))
        return writer.getvalue()

    @property
    def header_length(self) -> int:
        length = FIXED_HEADER_LEN + 4 * len(self.csrcs)
        if self.extension is not None:
            length += 4 + len(self.extension.data)
        return length

    @property
    def wire_length(self) -> int:
        return self.header_length + len(self.payload) + self.padding_length


def looks_like_rtp(data: bytes, start: int = 0) -> bool:
    """Structural test used by the DPI candidate matcher.

    Mirrors Peafowl's RTP pattern *minus* its payload-type restriction, as
    the paper prescribes (§4.1.1): version must be 2 and the declared CSRC
    list and extension block must fit in the buffer.  ``start`` tests the
    packet at a payload offset without copying the tail.
    """
    if len(data) - start < FIXED_HEADER_LEN or start < 0:
        return False
    first = data[start]
    if first >> 6 != RTP_VERSION:
        return False
    # Exclude the RTCP packet-type range so RTP/RTCP demultiplexing follows
    # RFC 5761 §4: PT values 64-95 (with marker bit → 192-223) are RTCP.
    if 192 <= data[start + 1] <= 223:
        return False
    csrc_count = first & 0x0F
    offset = start + FIXED_HEADER_LEN + 4 * csrc_count
    if offset > len(data):
        return False
    if first & 0x10:  # extension present
        if offset + 4 > len(data):
            return False
        word_length = int.from_bytes(data[offset + 2:offset + 4], "big")
        offset += 4 + word_length * 4
        if offset > len(data):
            return False
    return True
