"""RTP payload-type registry (RFC 3551 static assignments).

Payload types 96-127 are dynamic; anything in 0-95 not statically assigned is
unassigned-but-reserved.  RFC 3550 itself places no restriction on the
7-bit value, which is why the paper's DPI removes Peafowl's 30-value
restriction — and why the compliance layer treats *all* payload-type values
as structurally valid while still reporting what was observed (Table 5).
"""

from __future__ import annotations

from typing import Dict, Optional

#: Static assignments from RFC 3551 §6.
STATIC_PAYLOAD_TYPES: Dict[int, str] = {
    0: "PCMU",
    3: "GSM",
    4: "G723",
    5: "DVI4/8000",
    6: "DVI4/16000",
    7: "LPC",
    8: "PCMA",
    9: "G722",
    10: "L16/44100/2",
    11: "L16/44100/1",
    12: "QCELP",
    13: "CN",
    14: "MPA",
    15: "G728",
    16: "DVI4/11025",
    17: "DVI4/22050",
    18: "G729",
    25: "CelB",
    26: "JPEG",
    28: "nv",
    31: "H261",
    32: "MPV",
    33: "MP2T",
    34: "H263",
}

DYNAMIC_RANGE = range(96, 128)

#: 64-95 collide with RTCP packet types 192-223 when the marker bit is set
#: (RFC 5761 §4) — useful context for demultiplexing heuristics.
RTCP_CONFLICT_RANGE = range(64, 96)


def is_dynamic_payload_type(payload_type: int) -> bool:
    return payload_type in DYNAMIC_RANGE


def payload_type_name(payload_type: int) -> Optional[str]:
    if payload_type in STATIC_PAYLOAD_TYPES:
        return STATIC_PAYLOAD_TYPES[payload_type]
    if is_dynamic_payload_type(payload_type):
        return f"dynamic-{payload_type}"
    return None
