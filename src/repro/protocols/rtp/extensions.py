"""RTP header-extension codec (RFC 3550 §5.3.1 and RFC 8285).

RFC 8285 defines two packings inside the generic RFC 3550 extension block:

- one-byte elements under profile ``0xBEDE``: 4-bit ID, 4-bit (length-1);
  ID 0 is padding with special semantics (zero length, ignored);
- two-byte elements under profiles ``0x1000``-``0x100F``: 8-bit ID,
  8-bit length.

Several of the paper's findings live here (Discord's ID=0 elements with
non-zero lengths, Discord's out-of-range profiles, FaceTime's undefined
profiles), so the parser preserves every structural detail instead of
normalizing it away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

ONE_BYTE_PROFILE = 0xBEDE
TWO_BYTE_PROFILE_BASE = 0x1000
TWO_BYTE_PROFILE_MASK = 0xFFF0


@dataclass(frozen=True)
class ExtensionElement:
    """One RFC 8285 extension element."""

    ext_id: int
    data: bytes
    declared_length: int  # as encoded; may legally differ from len(data) only for id=0


@dataclass(frozen=True)
class HeaderExtension:
    """The generic RFC 3550 extension block: profile + 32-bit-word payload."""

    profile: int
    data: bytes

    @property
    def is_one_byte(self) -> bool:
        return self.profile == ONE_BYTE_PROFILE

    @property
    def is_two_byte(self) -> bool:
        return (self.profile & TWO_BYTE_PROFILE_MASK) == TWO_BYTE_PROFILE_BASE

    @property
    def word_length(self) -> int:
        return len(self.data) // 4

    def build(self) -> bytes:
        if len(self.data) % 4:
            raise ValueError("extension data must be a multiple of 4 bytes")
        return (
            self.profile.to_bytes(2, "big")
            + (len(self.data) // 4).to_bytes(2, "big")
            + self.data
        )

    def elements(self) -> List[ExtensionElement]:
        """Decode RFC 8285 elements; empty for non-8285 profiles."""
        if self.is_one_byte:
            return parse_one_byte_elements(self.data)
        if self.is_two_byte:
            return parse_two_byte_elements(self.data)
        return []


def parse_one_byte_elements(data: bytes) -> List[ExtensionElement]:
    """Parse one-byte-header elements, preserving anomalous ID-0 elements.

    Per RFC 8285 an ID of 0 is a padding byte and MUST have no length/data.
    Real traffic (Discord) violates this; to surface the violation we decode
    an ID-0 byte *with* its nibble-encoded length so the compliance layer
    can see ``declared_length > 0``.
    """
    elements: List[ExtensionElement] = []
    i = 0
    while i < len(data):
        byte = data[i]
        ext_id = byte >> 4
        length_minus_one = byte & 0x0F
        if byte == 0:
            # True padding byte (ID 0, zero length): ignored per RFC 8285.
            i += 1
            continue
        if ext_id == 15:
            # ID 15 terminates processing (RFC 8285 §4.2).
            break
        length = length_minus_one + 1
        chunk = data[i + 1:i + 1 + length]
        elements.append(
            ExtensionElement(ext_id=ext_id, data=chunk, declared_length=length)
        )
        i += 1 + length
    return elements


def parse_two_byte_elements(data: bytes) -> List[ExtensionElement]:
    elements: List[ExtensionElement] = []
    i = 0
    while i + 1 < len(data):
        ext_id = data[i]
        if ext_id == 0 and data[i + 1] == 0:
            i += 1  # padding byte
            continue
        length = data[i + 1]
        chunk = data[i + 2:i + 2 + length]
        elements.append(
            ExtensionElement(ext_id=ext_id, data=chunk, declared_length=length)
        )
        i += 2 + length
    return elements


def build_one_byte_extension(elements: List[tuple]) -> HeaderExtension:
    """Build a 0xBEDE extension from ``(id, data)`` pairs (1 <= len <= 16)."""
    out = bytearray()
    for ext_id, data in elements:
        if not 1 <= ext_id <= 14:
            raise ValueError(f"one-byte element id {ext_id} out of range")
        if not 1 <= len(data) <= 16:
            raise ValueError("one-byte element data must be 1-16 bytes")
        out.append((ext_id << 4) | (len(data) - 1))
        out.extend(data)
    while len(out) % 4:
        out.append(0)
    return HeaderExtension(profile=ONE_BYTE_PROFILE, data=bytes(out))


def build_two_byte_extension(
    elements: List[tuple], profile: int = TWO_BYTE_PROFILE_BASE
) -> HeaderExtension:
    """Build a two-byte-header extension from ``(id, data)`` pairs."""
    out = bytearray()
    for ext_id, data in elements:
        if not 1 <= ext_id <= 255:
            raise ValueError(f"two-byte element id {ext_id} out of range")
        if len(data) > 255:
            raise ValueError("two-byte element data must be <= 255 bytes")
        out.append(ext_id)
        out.append(len(data))
        out.extend(data)
    while len(out) % 4:
        out.append(0)
    return HeaderExtension(profile=profile, data=bytes(out))


def parse_extension_elements(extension: HeaderExtension) -> List[ExtensionElement]:
    """Module-level alias for :meth:`HeaderExtension.elements`."""
    return extension.elements()
