"""RTP wire format (RFC 3550) and header extensions (RFC 8285)."""

from repro.protocols.rtp.extensions import (
    ONE_BYTE_PROFILE,
    TWO_BYTE_PROFILE_BASE,
    TWO_BYTE_PROFILE_MASK,
    ExtensionElement,
    HeaderExtension,
    parse_extension_elements,
)
from repro.protocols.rtp.header import RtpPacket, RtpParseError, looks_like_rtp
from repro.protocols.rtp.payload_types import (
    STATIC_PAYLOAD_TYPES,
    is_dynamic_payload_type,
    payload_type_name,
)

__all__ = [
    "ONE_BYTE_PROFILE",
    "TWO_BYTE_PROFILE_BASE",
    "TWO_BYTE_PROFILE_MASK",
    "ExtensionElement",
    "HeaderExtension",
    "parse_extension_elements",
    "RtpPacket",
    "RtpParseError",
    "looks_like_rtp",
    "STATIC_PAYLOAD_TYPES",
    "is_dynamic_payload_type",
    "payload_type_name",
]
