"""TLS record parsing — just enough to extract SNI from ClientHello.

The stage-2 traffic filter (paper §3.2.2) classifies encrypted TCP streams
by the Server Name Indication sent in the clear during the handshake.
"""

from repro.protocols.tls.client_hello import (
    ClientHello,
    TlsParseError,
    build_client_hello,
    extract_sni,
    parse_client_hello,
)

__all__ = [
    "ClientHello",
    "TlsParseError",
    "build_client_hello",
    "extract_sni",
    "parse_client_hello",
]
