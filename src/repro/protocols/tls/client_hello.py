"""TLS ClientHello codec (RFC 8446 §4.1.2) with SNI extraction (RFC 6066)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError

RECORD_TYPE_HANDSHAKE = 22
HANDSHAKE_TYPE_CLIENT_HELLO = 1
EXTENSION_SNI = 0
SNI_TYPE_HOSTNAME = 0


class TlsParseError(ValueError):
    """Raised when bytes cannot be parsed as the expected TLS structure."""


@dataclass(frozen=True)
class ClientHello:
    """The fields of a ClientHello this library cares about."""

    legacy_version: int
    random: bytes
    session_id: bytes
    cipher_suites: List[int] = field(default_factory=list)
    extensions: List[Tuple[int, bytes]] = field(default_factory=list)

    @property
    def sni(self) -> Optional[str]:
        for ext_type, ext_data in self.extensions:
            if ext_type != EXTENSION_SNI:
                continue
            try:
                reader = ByteReader(ext_data)
                reader.u16()  # server name list length
                name_type = reader.u8()
                name_len = reader.u16()
                if name_type == SNI_TYPE_HOSTNAME:
                    return reader.read(name_len).decode("ascii", errors="replace")
            except TruncatedError:
                return None
        return None


def parse_client_hello(data: bytes) -> ClientHello:
    """Parse a TLS record containing a ClientHello handshake message."""
    reader = ByteReader(data)
    try:
        record_type = reader.u8()
        if record_type != RECORD_TYPE_HANDSHAKE:
            raise TlsParseError(f"record type {record_type} is not handshake")
        reader.u16()  # record legacy version
        record_len = reader.u16()
        record = reader.subreader(min(record_len, reader.remaining))
        hs_type = record.u8()
        if hs_type != HANDSHAKE_TYPE_CLIENT_HELLO:
            raise TlsParseError(f"handshake type {hs_type} is not ClientHello")
        hs_len = record.u24()
        body = record.subreader(min(hs_len, record.remaining))
        legacy_version = body.u16()
        rand = body.read(32)
        session_id = body.read(body.u8())
        suites_len = body.u16()
        suites_reader = body.subreader(suites_len)
        cipher_suites = [suites_reader.u16() for _ in range(suites_len // 2)]
        body.skip(body.u8())  # compression methods
        extensions: List[Tuple[int, bytes]] = []
        if body.remaining >= 2:
            ext_total = body.u16()
            ext_reader = body.subreader(min(ext_total, body.remaining))
            while ext_reader.remaining >= 4:
                ext_type = ext_reader.u16()
                ext_len = ext_reader.u16()
                extensions.append((ext_type, ext_reader.read(ext_len)))
    except TruncatedError as exc:
        raise TlsParseError(str(exc)) from exc
    return ClientHello(
        legacy_version=legacy_version,
        random=rand,
        session_id=session_id,
        cipher_suites=cipher_suites,
        extensions=extensions,
    )


def extract_sni(data: bytes) -> Optional[str]:
    """Best-effort SNI extraction; returns None for anything non-ClientHello."""
    try:
        return parse_client_hello(data).sni
    except TlsParseError:
        return None


def build_client_hello(
    sni: str,
    random_bytes: bytes = b"\x00" * 32,
    cipher_suites: Optional[List[int]] = None,
) -> bytes:
    """Build a minimal but well-formed ClientHello record carrying *sni*."""
    if cipher_suites is None:
        cipher_suites = [0x1301, 0x1302, 0x1303]  # TLS 1.3 suites
    if len(random_bytes) != 32:
        raise ValueError("ClientHello random must be 32 bytes")

    hostname = sni.encode("ascii")
    sni_entry = ByteWriter()
    sni_entry.u16(len(hostname) + 3)  # server name list length
    sni_entry.u8(SNI_TYPE_HOSTNAME)
    sni_entry.u16(len(hostname))
    sni_entry.write(hostname)
    sni_ext = sni_entry.getvalue()

    extensions = ByteWriter()
    extensions.u16(EXTENSION_SNI)
    extensions.u16(len(sni_ext))
    extensions.write(sni_ext)
    ext_bytes = extensions.getvalue()

    body = ByteWriter()
    body.u16(0x0303)  # legacy version TLS 1.2
    body.write(random_bytes)
    body.u8(0)  # empty session id
    body.u16(len(cipher_suites) * 2)
    for suite in cipher_suites:
        body.u16(suite)
    body.u8(1)
    body.u8(0)  # null compression
    body.u16(len(ext_bytes))
    body.write(ext_bytes)
    hs_body = body.getvalue()

    handshake = ByteWriter()
    handshake.u8(HANDSHAKE_TYPE_CLIENT_HELLO)
    handshake.u24(len(hs_body))
    handshake.write(hs_body)
    hs_bytes = handshake.getvalue()

    record = ByteWriter()
    record.u8(RECORD_TYPE_HANDSHAKE)
    record.u16(0x0301)
    record.u16(len(hs_bytes))
    record.write(hs_bytes)
    return record.getvalue()
