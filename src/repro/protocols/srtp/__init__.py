"""SRTP/SRTCP (RFC 3711): key derivation and packet protection.

A complete secure-RTP substrate: the AES-CM key-derivation function, and
sessions that protect/unprotect RTP and RTCP packets with AES-CM encryption
and HMAC-SHA1-80 authentication.  The Google Meet simulator's SRTCP framing
follows this format; this module makes the framing *real* — packets
protected here decrypt and authenticate back to their plaintext.
"""

from repro.protocols.srtp.kdf import KeyDerivationLabel, derive_key
from repro.protocols.srtp.session import (
    AuthenticationError,
    ReplayError,
    SrtcpCryptoContext,
    SrtpCryptoContext,
)

__all__ = [
    "KeyDerivationLabel",
    "derive_key",
    "AuthenticationError",
    "ReplayError",
    "SrtcpCryptoContext",
    "SrtpCryptoContext",
]
