"""SRTP/SRTCP packet protection contexts (RFC 3711 §3).

Default crypto suite: AES_CM_128_HMAC_SHA1_80.  One context protects a
single direction; RTP and RTCP use separate contexts because their derived
keys and index spaces differ.
"""

from __future__ import annotations

import hmac
import hashlib
from typing import Optional, Set, Tuple

from repro.crypto.aes import aes_ctr_keystream, xor_bytes
from repro.protocols.srtp.kdf import KeyDerivationLabel, derive_key

DEFAULT_AUTH_TAG_LEN = 10  # HMAC-SHA1-80


class AuthenticationError(ValueError):
    """Raised when an authentication tag does not verify."""


class ReplayError(ValueError):
    """Raised when a packet index was already seen."""


def _rtp_header_length(packet: bytes) -> int:
    """Byte length of the RTP header incl. CSRCs and extension block."""
    if len(packet) < 12:
        raise ValueError("truncated RTP packet")
    csrc_count = packet[0] & 0x0F
    length = 12 + 4 * csrc_count
    if packet[0] & 0x10:  # extension
        if len(packet) < length + 4:
            raise ValueError("truncated RTP extension")
        ext_words = int.from_bytes(packet[length + 2:length + 4], "big")
        length += 4 + 4 * ext_words
    if length > len(packet):
        raise ValueError("RTP header overruns packet")
    return length


def _keystream_for(session_key: bytes, session_salt: bytes,
                   ssrc: int, index: int, length: int) -> bytes:
    """AES-CM IV construction (RFC 3711 §4.1.1)."""
    iv = (
        (int.from_bytes(session_salt, "big") << 16)
        ^ (ssrc << 64)
        ^ (index << 16)
    )
    return aes_ctr_keystream(session_key, iv, length)


class SrtpCryptoContext:
    """Protect/unprotect RTP packets for one stream direction."""

    def __init__(
        self,
        master_key: bytes,
        master_salt: bytes,
        auth_tag_len: int = DEFAULT_AUTH_TAG_LEN,
    ):
        self._auth_tag_len = auth_tag_len
        self._key = derive_key(master_key, master_salt,
                               KeyDerivationLabel.RTP_ENCRYPTION, 16)
        self._salt = derive_key(master_key, master_salt,
                                KeyDerivationLabel.RTP_SALT, 14)
        self._auth_key = derive_key(master_key, master_salt,
                                    KeyDerivationLabel.RTP_AUTH, 20)
        self._seen: Set[Tuple[int, int]] = set()

    def _index(self, packet: bytes, roc: int) -> Tuple[int, int]:
        seq = int.from_bytes(packet[2:4], "big")
        return seq, (roc << 16) | seq

    def protect(self, packet: bytes, roc: int = 0) -> bytes:
        """Encrypt the payload and append the authentication tag."""
        header_len = _rtp_header_length(packet)
        ssrc = int.from_bytes(packet[8:12], "big")
        _seq, index = self._index(packet, roc)
        keystream = _keystream_for(self._key, self._salt, ssrc, index,
                                   len(packet) - header_len)
        protected = packet[:header_len] + xor_bytes(packet[header_len:], keystream)
        tag = self._auth_tag(protected, roc)
        return protected + tag

    def unprotect(self, packet: bytes, roc: int = 0) -> bytes:
        """Verify the tag, reject replays, and decrypt the payload."""
        if len(packet) < 12 + self._auth_tag_len:
            raise ValueError("packet shorter than header plus tag")
        body, tag = packet[:-self._auth_tag_len], packet[-self._auth_tag_len:]
        expected = self._auth_tag(body, roc)
        if not hmac.compare_digest(tag, expected):
            raise AuthenticationError("SRTP authentication tag mismatch")
        ssrc = int.from_bytes(body[8:12], "big")
        seq, index = self._index(body, roc)
        if (ssrc, index) in self._seen:
            raise ReplayError(f"replayed packet index {index}")
        self._seen.add((ssrc, index))
        header_len = _rtp_header_length(body)
        keystream = _keystream_for(self._key, self._salt, ssrc, index,
                                   len(body) - header_len)
        return body[:header_len] + xor_bytes(body[header_len:], keystream)

    def _auth_tag(self, protected: bytes, roc: int) -> bytes:
        mac = hmac.new(self._auth_key, protected + roc.to_bytes(4, "big"),
                       hashlib.sha1)
        return mac.digest()[: self._auth_tag_len]


class SrtcpCryptoContext:
    """Protect/unprotect RTCP packets (RFC 3711 §3.4).

    SRTCP carries its own explicit 31-bit index with an E flag; the whole
    packet after the first 8 bytes is encrypted.
    """

    def __init__(
        self,
        master_key: bytes,
        master_salt: bytes,
        auth_tag_len: int = DEFAULT_AUTH_TAG_LEN,
    ):
        self._auth_tag_len = auth_tag_len
        self._key = derive_key(master_key, master_salt,
                               KeyDerivationLabel.RTCP_ENCRYPTION, 16)
        self._salt = derive_key(master_key, master_salt,
                                KeyDerivationLabel.RTCP_SALT, 14)
        self._auth_key = derive_key(master_key, master_salt,
                                    KeyDerivationLabel.RTCP_AUTH, 20)
        self._next_index = 1
        self._seen: Set[int] = set()

    def protect(self, packet: bytes, index: Optional[int] = None) -> bytes:
        """Encrypt, append E‖index and the authentication tag."""
        if len(packet) < 8:
            raise ValueError("RTCP packet shorter than 8 bytes")
        if index is None:
            index = self._next_index
            self._next_index += 1
        if not 0 <= index < 1 << 31:
            raise ValueError("SRTCP index is 31 bits")
        ssrc = int.from_bytes(packet[4:8], "big")
        keystream = _keystream_for(self._key, self._salt, ssrc, index,
                                   len(packet) - 8)
        protected = packet[:8] + xor_bytes(packet[8:], keystream)
        index_word = ((1 << 31) | index).to_bytes(4, "big")
        tag = hmac.new(self._auth_key, protected + index_word,
                       hashlib.sha1).digest()[: self._auth_tag_len]
        return protected + index_word + tag

    def unprotect(self, packet: bytes) -> Tuple[bytes, int]:
        """Verify and decrypt; returns (plaintext RTCP, index)."""
        minimum = 8 + 4 + self._auth_tag_len
        if len(packet) < minimum:
            raise ValueError("SRTCP packet too short")
        tag = packet[-self._auth_tag_len:]
        index_word = packet[-self._auth_tag_len - 4:-self._auth_tag_len]
        protected = packet[: -self._auth_tag_len - 4]
        expected = hmac.new(self._auth_key, protected + index_word,
                            hashlib.sha1).digest()[: self._auth_tag_len]
        if not hmac.compare_digest(tag, expected):
            raise AuthenticationError("SRTCP authentication tag mismatch")
        word = int.from_bytes(index_word, "big")
        encrypted = bool(word >> 31)
        index = word & 0x7FFFFFFF
        if index in self._seen:
            raise ReplayError(f"replayed SRTCP index {index}")
        self._seen.add(index)
        if not encrypted:
            return protected, index
        ssrc = int.from_bytes(protected[4:8], "big")
        keystream = _keystream_for(self._key, self._salt, ssrc, index,
                                   len(protected) - 8)
        return protected[:8] + xor_bytes(protected[8:], keystream), index
