"""AES-CM key derivation (RFC 3711 §4.3)."""

from __future__ import annotations

import enum

from repro.crypto.aes import aes_ctr_keystream


class KeyDerivationLabel(enum.IntEnum):
    RTP_ENCRYPTION = 0x00
    RTP_AUTH = 0x01
    RTP_SALT = 0x02
    RTCP_ENCRYPTION = 0x03
    RTCP_AUTH = 0x04
    RTCP_SALT = 0x05


def derive_key(
    master_key: bytes,
    master_salt: bytes,
    label: int,
    length: int,
    index: int = 0,
    key_derivation_rate: int = 0,
) -> bytes:
    """Derive a session key of *length* bytes (RFC 3711 §4.3.1).

    ``key_id = label || (index DIV kdr)`` as a 7-byte quantity; the PRF
    input block is ``(key_id XOR master_salt) * 2^16``.
    """
    if len(master_salt) != 14:
        raise ValueError("the master salt is 112 bits (14 bytes)")
    if key_derivation_rate:
        derivation_index = index // key_derivation_rate
    else:
        derivation_index = 0
    key_id = (label << 48) | derivation_index
    x = int.from_bytes(master_salt, "big") ^ key_id
    initial_block = x << 16
    return aes_ctr_keystream(master_key, initial_block, length)
