"""SDP session descriptions (RFC 8866) with ICE attributes (RFC 8839).

The signaling plane the paper describes but does not dissect (it is
application-specific): offers/answers exchanging media sections, payload
type maps, and ICE candidates.  Having a real SDP codec closes the loop —
the candidate lines here carry the same :mod:`repro.ice` candidates the
connectivity layer checks.
"""

from repro.protocols.sdp.session import (
    MediaDescription,
    SdpParseError,
    SessionDescription,
    candidate_from_sdp,
    candidate_to_sdp,
)

__all__ = [
    "MediaDescription",
    "SdpParseError",
    "SessionDescription",
    "candidate_from_sdp",
    "candidate_to_sdp",
]
