"""SDP parsing and serialization.

Covers the subset WebRTC-era RTC applications exchange: session-level
origin/name/time lines, media sections with payload-type lists, ``a=rtpmap``
/ ``a=fmtp`` codec maps, ICE credentials, and ``a=candidate`` lines mapped
to/from :class:`repro.ice.Candidate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ice.candidates import Candidate, CandidateType


class SdpParseError(ValueError):
    """Raised on malformed session descriptions."""


_TYPE_TO_SDP = {
    CandidateType.HOST: "host",
    CandidateType.SERVER_REFLEXIVE: "srflx",
    CandidateType.PEER_REFLEXIVE: "prflx",
    CandidateType.RELAYED: "relay",
}
_SDP_TO_TYPE = {v: k for k, v in _TYPE_TO_SDP.items()}


def candidate_to_sdp(candidate: Candidate) -> str:
    """Serialize a candidate to an ``a=candidate`` attribute value."""
    parts = [
        candidate.foundation,
        str(candidate.component),
        "udp",
        str(candidate.priority),
        candidate.ip,
        str(candidate.port),
        "typ",
        _TYPE_TO_SDP[candidate.candidate_type],
    ]
    if candidate.related_ip is not None:
        parts += ["raddr", candidate.related_ip, "rport",
                  str(candidate.related_port or 0)]
    return " ".join(parts)


def candidate_from_sdp(value: str) -> Candidate:
    """Parse an ``a=candidate`` attribute value (RFC 8839 §5.1)."""
    tokens = value.split()
    if len(tokens) < 8 or tokens[6] != "typ":
        raise SdpParseError(f"malformed candidate line: {value!r}")
    if tokens[2].lower() != "udp":
        raise SdpParseError(f"only UDP candidates supported, got {tokens[2]}")
    try:
        candidate_type = _SDP_TO_TYPE[tokens[7]]
    except KeyError:
        raise SdpParseError(f"unknown candidate type {tokens[7]!r}") from None
    related_ip = related_port = None
    extra = tokens[8:]
    while len(extra) >= 2:
        key, val = extra[0], extra[1]
        if key == "raddr":
            related_ip = val
        elif key == "rport":
            related_port = int(val)
        extra = extra[2:]
    return Candidate(
        ip=tokens[4],
        port=int(tokens[5]),
        candidate_type=candidate_type,
        component=int(tokens[1]),
        related_ip=related_ip,
        related_port=related_port,
    )


@dataclass
class MediaDescription:
    """One ``m=`` section."""

    media: str                       # audio / video / application
    port: int
    protocol: str = "UDP/TLS/RTP/SAVPF"
    payload_types: List[int] = field(default_factory=list)
    rtpmap: Dict[int, str] = field(default_factory=dict)   # pt -> "opus/48000/2"
    fmtp: Dict[int, str] = field(default_factory=dict)
    candidates: List[Candidate] = field(default_factory=list)
    attributes: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    connection_ip: Optional[str] = None

    def codec_name(self, payload_type: int) -> Optional[str]:
        entry = self.rtpmap.get(payload_type)
        return entry.split("/")[0] if entry else None


@dataclass
class SessionDescription:
    """A full SDP document."""

    origin_username: str = "-"
    session_id: int = 0
    session_version: int = 0
    origin_ip: str = "127.0.0.1"
    session_name: str = "-"
    ice_ufrag: Optional[str] = None
    ice_pwd: Optional[str] = None
    attributes: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    media: List[MediaDescription] = field(default_factory=list)

    def serialize(self) -> str:
        lines = [
            "v=0",
            f"o={self.origin_username} {self.session_id} "
            f"{self.session_version} IN IP4 {self.origin_ip}",
            f"s={self.session_name}",
            "t=0 0",
        ]
        if self.ice_ufrag is not None:
            lines.append(f"a=ice-ufrag:{self.ice_ufrag}")
        if self.ice_pwd is not None:
            lines.append(f"a=ice-pwd:{self.ice_pwd}")
        for key, value in self.attributes:
            lines.append(f"a={key}" if value is None else f"a={key}:{value}")
        for section in self.media:
            pts = " ".join(str(pt) for pt in section.payload_types)
            lines.append(f"m={section.media} {section.port} {section.protocol} {pts}")
            if section.connection_ip:
                lines.append(f"c=IN IP4 {section.connection_ip}")
            for pt, mapping in section.rtpmap.items():
                lines.append(f"a=rtpmap:{pt} {mapping}")
            for pt, params in section.fmtp.items():
                lines.append(f"a=fmtp:{pt} {params}")
            for candidate in section.candidates:
                lines.append(f"a=candidate:{candidate_to_sdp(candidate)}")
            for key, value in section.attributes:
                lines.append(f"a={key}" if value is None else f"a={key}:{value}")
        return "\r\n".join(lines) + "\r\n"

    @classmethod
    def parse(cls, text: str) -> "SessionDescription":
        session = cls()
        current: Optional[MediaDescription] = None
        for raw_line in text.replace("\r\n", "\n").split("\n"):
            line = raw_line.strip()
            if not line:
                continue
            if len(line) < 2 or line[1] != "=":
                raise SdpParseError(f"malformed SDP line {line!r}")
            kind, value = line[0], line[2:]
            if kind == "v":
                if value != "0":
                    raise SdpParseError(f"unsupported SDP version {value}")
            elif kind == "o":
                fields = value.split()
                if len(fields) != 6:
                    raise SdpParseError(f"malformed origin line {value!r}")
                session.origin_username = fields[0]
                session.session_id = int(fields[1])
                session.session_version = int(fields[2])
                session.origin_ip = fields[5]
            elif kind == "s":
                session.session_name = value
            elif kind == "m":
                fields = value.split()
                if len(fields) < 3:
                    raise SdpParseError(f"malformed media line {value!r}")
                current = MediaDescription(
                    media=fields[0],
                    port=int(fields[1]),
                    protocol=fields[2],
                    payload_types=[int(pt) for pt in fields[3:]],
                )
                session.media.append(current)
            elif kind == "c" and current is not None:
                current.connection_ip = value.split()[-1]
            elif kind == "a":
                key, _, attr_value = value.partition(":")
                _dispatch_attribute(session, current, key,
                                    attr_value if _ else None)
            # b=, t=, etc. are accepted and ignored.
        return session


def _dispatch_attribute(
    session: SessionDescription,
    current: Optional[MediaDescription],
    key: str,
    value: Optional[str],
) -> None:
    if key == "ice-ufrag" and value is not None:
        session.ice_ufrag = value
        return
    if key == "ice-pwd" and value is not None:
        session.ice_pwd = value
        return
    if current is None:
        session.attributes.append((key, value))
        return
    if key == "rtpmap" and value:
        pt_str, _, mapping = value.partition(" ")
        current.rtpmap[int(pt_str)] = mapping
    elif key == "fmtp" and value:
        pt_str, _, params = value.partition(" ")
        current.fmtp[int(pt_str)] = params
    elif key == "candidate" and value:
        current.candidates.append(candidate_from_sdp(value))
    else:
        current.attributes.append((key, value))
