"""Wire-format codecs for the RTC media-transmission protocols.

Each subpackage provides parse/build for one protocol family:

- :mod:`repro.protocols.stun` — STUN and TURN (RFC 3489, 5389, 8489, 8656)
- :mod:`repro.protocols.rtp` — RTP (RFC 3550) with header extensions (RFC 8285)
- :mod:`repro.protocols.rtcp` — RTCP (RFC 3550, 4585, 3611) and SRTCP (RFC 3711)
- :mod:`repro.protocols.quic` — QUIC v1 headers (RFC 9000)
- :mod:`repro.protocols.tls` — TLS records / ClientHello SNI extraction

Parsers are deliberately permissive: they accept structurally well-formed
messages with *undefined* types or attributes, because the whole point of
the study is to observe those.  Judging legality is the compliance layer's
job (:mod:`repro.core`), not the codec's.
"""
