"""STUN/TURN wire format (RFC 3489, 5389, 8489, 8656).

TURN reuses the STUN message format, so the paper treats the pair jointly;
this package does too.  ChannelData framing (RFC 8656 §12.4) is included
because it shares TURN's data plane and shows up in several applications.
"""

from repro.protocols.stun.attributes import (
    AddressValue,
    ErrorCodeValue,
    StunAttribute,
    decode_address,
    decode_xor_address,
    encode_address,
    encode_xor_address,
)
from repro.protocols.stun.constants import (
    MAGIC_COOKIE,
    AttributeType,
    MessageClass,
    StunMethod,
    attribute_name,
    is_comprehension_required,
    message_class,
    message_method,
    message_type,
    message_type_name,
)
from repro.protocols.stun.message import (
    ChannelData,
    StunMessage,
    StunParseError,
    looks_like_stun,
)

__all__ = [
    "AddressValue",
    "ErrorCodeValue",
    "StunAttribute",
    "decode_address",
    "decode_xor_address",
    "encode_address",
    "encode_xor_address",
    "MAGIC_COOKIE",
    "AttributeType",
    "MessageClass",
    "StunMethod",
    "attribute_name",
    "is_comprehension_required",
    "message_class",
    "message_method",
    "message_type",
    "message_type_name",
    "ChannelData",
    "StunMessage",
    "StunParseError",
    "looks_like_stun",
]
