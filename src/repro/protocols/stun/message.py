"""STUN/TURN message parse/build, including classic RFC 3489 mode.

A modern (RFC 5389/8489) message carries the 0x2112A442 magic cookie in
bytes 4-8; a classic (RFC 3489) message instead has a 16-byte transaction ID
spanning bytes 4-20.  The parser records which flavour it saw so the
compliance layer can evaluate the message against the right specification —
the paper counts a message compliant if it adheres to *any* published RFC
version (footnote 2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.protocols.stun.attributes import StunAttribute, parse_attributes
from repro.protocols.stun.constants import (
    CHANNEL_NUMBER_MAX,
    CHANNEL_NUMBER_MIN,
    MAGIC_COOKIE,
    MessageClass,
    message_class,
    message_method,
    message_type_name,
)
from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError

HEADER_LEN = 20

#: Precompiled (msg_type, length) header prefix — one C-level read instead of
#: two ``int.from_bytes`` slices on the structural-test hot path.
_TYPE_LEN = struct.Struct("!HH")


class StunParseError(ValueError):
    """Raised when bytes cannot be parsed as a STUN message."""


@dataclass(frozen=True)
class StunMessage:
    """A parsed STUN/TURN message."""

    msg_type: int
    transaction_id: bytes  # 12 bytes (modern) or 16 bytes (classic)
    attributes: List[StunAttribute] = field(default_factory=list)
    classic: bool = False  # True when parsed/built in RFC 3489 framing

    @property
    def method(self) -> int:
        return message_method(self.msg_type)

    @property
    def msg_class(self) -> MessageClass:
        return message_class(self.msg_type)

    @property
    def type_name(self) -> Optional[str]:
        return message_type_name(self.msg_type)

    def attribute(self, attr_type: int) -> Optional[StunAttribute]:
        """First attribute of the given type, or None."""
        for attr in self.attributes:
            if attr.attr_type == attr_type:
                return attr
        return None

    def attribute_types(self) -> List[int]:
        return [attr.attr_type for attr in self.attributes]

    @property
    def body_length(self) -> int:
        return sum(4 + attr.padded_length for attr in self.attributes)

    @classmethod
    def parse(cls, data: bytes, strict: bool = True, start: int = 0) -> "StunMessage":
        """Parse a STUN message beginning at byte *start* of *data*.

        Accepts both modern and classic framing.  ``strict=False`` tolerates
        trailing garbage after the declared length.  ``start`` lets the DPI
        parse at a payload offset without slicing a fresh ``bytes`` window.
        """
        if not 0 <= start <= len(data):
            raise StunParseError(f"start {start} outside {len(data)}-byte buffer")
        reader = ByteReader(data, start)
        try:
            msg_type = reader.u16()
            length = reader.u16()
            cookie_or_txid = reader.read(4)
            txid_rest = reader.read(12)
        except TruncatedError as exc:
            raise StunParseError(str(exc)) from exc
        if msg_type & 0xC000:
            raise StunParseError(f"top bits of message type set: 0x{msg_type:04x}")
        if length % 4:
            raise StunParseError(f"length {length} not a multiple of 4")
        if length > reader.remaining:
            raise StunParseError(
                f"declared length {length} exceeds {reader.remaining} available bytes"
            )
        if not strict and length < reader.remaining:
            pass  # tolerated: DPI truncates to the declared length
        elif strict and length != reader.remaining:
            raise StunParseError(
                f"declared length {length} != {reader.remaining} body bytes"
            )
        classic = int.from_bytes(cookie_or_txid, "big") != MAGIC_COOKIE
        transaction_id = (cookie_or_txid + txid_rest) if classic else txid_rest
        body = reader.read(length)
        try:
            attributes = parse_attributes(body, strict=True)
        except TruncatedError as exc:
            raise StunParseError(str(exc)) from exc
        return cls(
            msg_type=msg_type,
            transaction_id=transaction_id,
            attributes=attributes,
            classic=classic,
        )

    def build(self) -> bytes:
        writer = ByteWriter()
        writer.u16(self.msg_type)
        writer.u16(self.body_length)
        if self.classic:
            if len(self.transaction_id) != 16:
                raise ValueError("classic STUN needs a 16-byte transaction ID")
            writer.write(self.transaction_id)
        else:
            if len(self.transaction_id) != 12:
                raise ValueError("modern STUN needs a 12-byte transaction ID")
            writer.u32(MAGIC_COOKIE)
            writer.write(self.transaction_id)
        for attr in self.attributes:
            writer.write(attr.build())
        return writer.getvalue()

    @property
    def wire_length(self) -> int:
        return HEADER_LEN + self.body_length


@dataclass(frozen=True)
class ChannelData:
    """TURN ChannelData framing (RFC 8656 §12.4)."""

    channel: int
    data: bytes

    HEADER_LEN = 4

    @property
    def channel_valid(self) -> bool:
        return CHANNEL_NUMBER_MIN <= self.channel <= CHANNEL_NUMBER_MAX

    @classmethod
    def parse(cls, data: bytes, strict: bool = True) -> "ChannelData":
        reader = ByteReader(data)
        try:
            channel = reader.u16()
            length = reader.u16()
        except TruncatedError as exc:
            raise StunParseError(str(exc)) from exc
        if not 0x4000 <= channel <= 0x7FFF:
            # 0x4000-0x4FFF valid, 0x5000-0x7FFF reserved but unambiguous.
            raise StunParseError(f"channel 0x{channel:04x} outside ChannelData range")
        if length > reader.remaining:
            raise StunParseError("ChannelData length exceeds available bytes")
        if strict and length != reader.remaining:
            # Over UDP no padding is used, so the frame should be exact.
            raise StunParseError("trailing bytes after ChannelData payload")
        return cls(channel=channel, data=reader.read(length))

    def build(self) -> bytes:
        writer = ByteWriter()
        writer.u16(self.channel)
        writer.u16(len(self.data))
        writer.write(self.data)
        return writer.getvalue()

    @property
    def wire_length(self) -> int:
        return self.HEADER_LEN + len(self.data)


def build_with_fingerprint(message: StunMessage) -> bytes:
    """Serialize *message*, appending a correctly computed FINGERPRINT.

    Per RFC 8489 §14.7 the CRC covers the message up to (but excluding) the
    FINGERPRINT attribute, with the header length field already counting it.
    """
    from repro.protocols.stun.attributes import StunAttribute, fingerprint_value
    from repro.protocols.stun.constants import AttributeType

    with_placeholder = StunMessage(
        msg_type=message.msg_type,
        transaction_id=message.transaction_id,
        attributes=message.attributes + [StunAttribute(int(AttributeType.FINGERPRINT), bytes(4))],
        classic=message.classic,
    )
    raw = bytearray(with_placeholder.build())
    raw[-4:] = fingerprint_value(bytes(raw[:-8]))
    return bytes(raw)


def looks_like_stun(data: bytes, start: int = 0) -> bool:
    """Cheap structural test used by the DPI candidate matcher.

    Requires only the invariants every published STUN version shares: two
    zero top bits and a 4-byte-aligned length that fits in the buffer.  The
    magic cookie is deliberately *not* required, so classic RFC 3489 traffic
    (e.g. Zoom's) is still surfaced as a candidate.  ``start`` checks the
    message at a payload offset without copying the tail.
    """
    if len(data) - start < HEADER_LEN or start < 0:
        return False
    msg_type, length = _TYPE_LEN.unpack_from(data, start)
    if msg_type & 0xC000:
        return False
    if length % 4:
        return False
    return start + HEADER_LEN + length <= len(data)
