"""STUN/TURN numeric registries.

Sources: RFC 3489 (classic STUN), RFC 5389 / RFC 8489 (STUN), RFC 8656
(TURN), RFC 8445 (ICE connectivity-check attributes), RFC 5780 (NAT
behaviour discovery), plus the libwebrtc additions the paper's specification
set ("public WebRTC documentations and RFCs") covers — e.g. GOOG-PING.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

MAGIC_COOKIE = 0x2112A442

# Top two bits of the 16-bit message-type field MUST be zero (RFC 8489 §5).
TYPE_FIELD_MASK = 0x3FFF


class MessageClass(enum.IntEnum):
    """The 2-bit class carried in bits C1/C0 of the message type."""

    REQUEST = 0b00
    INDICATION = 0b01
    SUCCESS_RESPONSE = 0b10
    ERROR_RESPONSE = 0b11


class StunMethod(enum.IntEnum):
    """Methods from RFC 8489 and RFC 8656 (plus legacy RFC 3489 values)."""

    BINDING = 0x001
    SHARED_SECRET = 0x002  # RFC 3489 only; removed by RFC 5389
    ALLOCATE = 0x003
    REFRESH = 0x004
    SEND = 0x006
    DATA = 0x007
    CREATE_PERMISSION = 0x008
    CHANNEL_BIND = 0x009
    # RFC 6062 (TURN over TCP)
    CONNECT = 0x00A
    CONNECTION_BIND = 0x00B
    CONNECTION_ATTEMPT = 0x00C
    # libwebrtc extension documented in the WebRTC source tree.
    GOOG_PING = 0x080


def message_type(method: int, msg_class: MessageClass) -> int:
    """Compose a 16-bit message type from method and class (RFC 8489 §5)."""
    if not 0 <= method <= 0xFFF:
        raise ValueError(f"method 0x{method:x} out of range")
    return (
        (method & 0x000F)
        | ((method & 0x0070) << 1)
        | ((method & 0x0F80) << 2)
        | ((msg_class & 0b01) << 4)
        | ((msg_class & 0b10) << 7)
    )


def message_method(msg_type: int) -> int:
    """Extract the 12-bit method from a 16-bit message type."""
    return (
        (msg_type & 0x000F)
        | ((msg_type & 0x00E0) >> 1)
        | ((msg_type & 0x3E00) >> 2)
    )


def message_class(msg_type: int) -> MessageClass:
    """Extract the 2-bit class from a 16-bit message type."""
    return MessageClass(((msg_type & 0x0010) >> 4) | ((msg_type & 0x0100) >> 7))


def _register_method(
    table: Dict[int, Tuple[str, str]],
    method: StunMethod,
    name: str,
    spec: str,
    classes: Tuple[MessageClass, ...],
) -> None:
    class_names = {
        MessageClass.REQUEST: "Request",
        MessageClass.INDICATION: "Indication",
        MessageClass.SUCCESS_RESPONSE: "Success Response",
        MessageClass.ERROR_RESPONSE: "Error Response",
    }
    for msg_class in classes:
        table[message_type(method, msg_class)] = (f"{name} {class_names[msg_class]}", spec)


_REQ_RESP = (
    MessageClass.REQUEST,
    MessageClass.SUCCESS_RESPONSE,
    MessageClass.ERROR_RESPONSE,
)

#: message type -> (human name, defining spec)
KNOWN_MESSAGE_TYPES: Dict[int, Tuple[str, str]] = {}
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.BINDING, "Binding", "RFC 8489",
                 _REQ_RESP + (MessageClass.INDICATION,))
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.SHARED_SECRET, "Shared Secret",
                 "RFC 3489", _REQ_RESP)
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.ALLOCATE, "Allocate", "RFC 8656", _REQ_RESP)
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.REFRESH, "Refresh", "RFC 8656", _REQ_RESP)
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.SEND, "Send", "RFC 8656",
                 (MessageClass.INDICATION,))
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.DATA, "Data", "RFC 8656",
                 (MessageClass.INDICATION,))
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.CREATE_PERMISSION, "CreatePermission",
                 "RFC 8656", _REQ_RESP)
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.CHANNEL_BIND, "ChannelBind",
                 "RFC 8656", _REQ_RESP)
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.CONNECT, "Connect", "RFC 6062", _REQ_RESP)
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.CONNECTION_BIND, "ConnectionBind",
                 "RFC 6062", _REQ_RESP)
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.CONNECTION_ATTEMPT, "ConnectionAttempt",
                 "RFC 6062", (MessageClass.INDICATION,))
_register_method(KNOWN_MESSAGE_TYPES, StunMethod.GOOG_PING, "GOOG-PING",
                 "WebRTC", (MessageClass.REQUEST, MessageClass.SUCCESS_RESPONSE))


def message_type_name(msg_type: int) -> Optional[str]:
    entry = KNOWN_MESSAGE_TYPES.get(msg_type)
    return entry[0] if entry else None


class AttributeType(enum.IntEnum):
    """Attribute types from the STUN/TURN/ICE registries."""

    # RFC 8489 / RFC 5389 comprehension-required
    MAPPED_ADDRESS = 0x0001
    RESPONSE_ADDRESS = 0x0002    # RFC 3489, deprecated
    CHANGE_REQUEST = 0x0003      # RFC 3489 / RFC 5780
    SOURCE_ADDRESS = 0x0004      # RFC 3489, deprecated
    CHANGED_ADDRESS = 0x0005     # RFC 3489, deprecated
    USERNAME = 0x0006
    PASSWORD = 0x0007            # RFC 3489, deprecated
    MESSAGE_INTEGRITY = 0x0008
    ERROR_CODE = 0x0009
    UNKNOWN_ATTRIBUTES = 0x000A
    REFLECTED_FROM = 0x000B      # RFC 3489, deprecated
    CHANNEL_NUMBER = 0x000C      # RFC 8656
    LIFETIME = 0x000D            # RFC 8656
    XOR_PEER_ADDRESS = 0x0012    # RFC 8656
    DATA = 0x0013                # RFC 8656
    REALM = 0x0014
    NONCE = 0x0015
    XOR_RELAYED_ADDRESS = 0x0016  # RFC 8656
    REQUESTED_ADDRESS_FAMILY = 0x0017  # RFC 8656
    EVEN_PORT = 0x0018           # RFC 8656
    REQUESTED_TRANSPORT = 0x0019  # RFC 8656
    DONT_FRAGMENT = 0x001A       # RFC 8656
    ACCESS_TOKEN = 0x001B        # RFC 7635
    MESSAGE_INTEGRITY_SHA256 = 0x001C  # RFC 8489
    PASSWORD_ALGORITHM = 0x001D  # RFC 8489
    USERHASH = 0x001E            # RFC 8489
    XOR_MAPPED_ADDRESS = 0x0020
    RESERVATION_TOKEN = 0x0022   # RFC 8656
    PRIORITY = 0x0024            # RFC 8445 (ICE)
    USE_CANDIDATE = 0x0025       # RFC 8445 (ICE)
    PADDING = 0x0026             # RFC 5780
    RESPONSE_PORT = 0x0027       # RFC 5780
    CONNECTION_ID = 0x002A       # RFC 6062
    ADDITIONAL_ADDRESS_FAMILY = 0x8000  # RFC 8656
    ADDRESS_ERROR_CODE = 0x8001  # RFC 8656
    PASSWORD_ALGORITHMS = 0x8002  # RFC 8489
    ALTERNATE_DOMAIN = 0x8003    # RFC 8489
    ICMP = 0x8004                # RFC 8656
    SOFTWARE = 0x8022
    ALTERNATE_SERVER = 0x8023
    TRANSACTION_TRANSMIT_COUNTER = 0x8025  # RFC 7982
    CACHE_TIMEOUT = 0x8027       # RFC 5780
    FINGERPRINT = 0x8028
    ICE_CONTROLLED = 0x8029      # RFC 8445
    ICE_CONTROLLING = 0x802A     # RFC 8445
    RESPONSE_ORIGIN = 0x802B     # RFC 5780
    OTHER_ADDRESS = 0x802C       # RFC 5780
    ECN_CHECK = 0x802D           # RFC 6679
    THIRD_PARTY_AUTHORIZATION = 0x802E  # RFC 7635
    MOBILITY_TICKET = 0x8030     # RFC 8016
    # libwebrtc additions (documented in the WebRTC source tree)
    GOOG_NETWORK_INFO = 0xC057
    GOOG_LAST_ICE_CHECK_RECEIVED = 0xC058
    GOOG_MISC_INFO = 0xC059
    GOOG_MESSAGE_INTEGRITY_32 = 0xC060
    GOOG_DELTA = 0xC061
    GOOG_DELTA_ACK = 0xC062


_ATTRIBUTE_SPECS: Dict[int, str] = {
    AttributeType.MAPPED_ADDRESS: "RFC 8489",
    AttributeType.RESPONSE_ADDRESS: "RFC 3489",
    AttributeType.CHANGE_REQUEST: "RFC 5780",
    AttributeType.SOURCE_ADDRESS: "RFC 3489",
    AttributeType.CHANGED_ADDRESS: "RFC 3489",
    AttributeType.USERNAME: "RFC 8489",
    AttributeType.PASSWORD: "RFC 3489",
    AttributeType.MESSAGE_INTEGRITY: "RFC 8489",
    AttributeType.ERROR_CODE: "RFC 8489",
    AttributeType.UNKNOWN_ATTRIBUTES: "RFC 8489",
    AttributeType.REFLECTED_FROM: "RFC 3489",
    AttributeType.CHANNEL_NUMBER: "RFC 8656",
    AttributeType.LIFETIME: "RFC 8656",
    AttributeType.XOR_PEER_ADDRESS: "RFC 8656",
    AttributeType.DATA: "RFC 8656",
    AttributeType.REALM: "RFC 8489",
    AttributeType.NONCE: "RFC 8489",
    AttributeType.XOR_RELAYED_ADDRESS: "RFC 8656",
    AttributeType.REQUESTED_ADDRESS_FAMILY: "RFC 8656",
    AttributeType.EVEN_PORT: "RFC 8656",
    AttributeType.REQUESTED_TRANSPORT: "RFC 8656",
    AttributeType.DONT_FRAGMENT: "RFC 8656",
    AttributeType.ACCESS_TOKEN: "RFC 7635",
    AttributeType.MESSAGE_INTEGRITY_SHA256: "RFC 8489",
    AttributeType.PASSWORD_ALGORITHM: "RFC 8489",
    AttributeType.USERHASH: "RFC 8489",
    AttributeType.XOR_MAPPED_ADDRESS: "RFC 8489",
    AttributeType.RESERVATION_TOKEN: "RFC 8656",
    AttributeType.PRIORITY: "RFC 8445",
    AttributeType.USE_CANDIDATE: "RFC 8445",
    AttributeType.PADDING: "RFC 5780",
    AttributeType.RESPONSE_PORT: "RFC 5780",
    AttributeType.CONNECTION_ID: "RFC 6062",
    AttributeType.ADDITIONAL_ADDRESS_FAMILY: "RFC 8656",
    AttributeType.ADDRESS_ERROR_CODE: "RFC 8656",
    AttributeType.PASSWORD_ALGORITHMS: "RFC 8489",
    AttributeType.ALTERNATE_DOMAIN: "RFC 8489",
    AttributeType.ICMP: "RFC 8656",
    AttributeType.SOFTWARE: "RFC 8489",
    AttributeType.ALTERNATE_SERVER: "RFC 8489",
    AttributeType.TRANSACTION_TRANSMIT_COUNTER: "RFC 7982",
    AttributeType.CACHE_TIMEOUT: "RFC 5780",
    AttributeType.FINGERPRINT: "RFC 8489",
    AttributeType.ICE_CONTROLLED: "RFC 8445",
    AttributeType.ICE_CONTROLLING: "RFC 8445",
    AttributeType.RESPONSE_ORIGIN: "RFC 5780",
    AttributeType.OTHER_ADDRESS: "RFC 5780",
    AttributeType.ECN_CHECK: "RFC 6679",
    AttributeType.THIRD_PARTY_AUTHORIZATION: "RFC 7635",
    AttributeType.MOBILITY_TICKET: "RFC 8016",
    AttributeType.GOOG_NETWORK_INFO: "WebRTC",
    AttributeType.GOOG_LAST_ICE_CHECK_RECEIVED: "WebRTC",
    AttributeType.GOOG_MISC_INFO: "WebRTC",
    AttributeType.GOOG_MESSAGE_INTEGRITY_32: "WebRTC",
    AttributeType.GOOG_DELTA: "WebRTC",
    AttributeType.GOOG_DELTA_ACK: "WebRTC",
}

KNOWN_ATTRIBUTE_TYPES = frozenset(int(t) for t in _ATTRIBUTE_SPECS)


def attribute_name(attr_type: int) -> Optional[str]:
    try:
        return AttributeType(attr_type).name.replace("_", "-")
    except ValueError:
        return None


def attribute_spec(attr_type: int) -> Optional[str]:
    return _ATTRIBUTE_SPECS.get(attr_type)


def is_comprehension_required(attr_type: int) -> bool:
    """Attributes 0x0000-0x7FFF are comprehension-required (RFC 8489 §14)."""
    return attr_type < 0x8000


class AddressFamily(enum.IntEnum):
    """Address family codes used inside address-bearing attributes."""

    IPV4 = 0x01
    IPV6 = 0x02


#: Error codes defined across RFC 8489 / 8656 / 8445.
KNOWN_ERROR_CODES = frozenset(
    {
        300, 400, 401, 403, 420, 437, 438, 440, 441, 442, 443,
        446, 447, 486, 487, 500, 508,
    }
)

#: TURN channel numbers (RFC 8656 §12): valid range for channel data.
CHANNEL_NUMBER_MIN = 0x4000
CHANNEL_NUMBER_MAX = 0x4FFF
