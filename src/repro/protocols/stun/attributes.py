"""STUN attribute TLV codec and typed value helpers."""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.protocols.stun.constants import (
    MAGIC_COOKIE,
    AddressFamily,
    AttributeType,
    attribute_name,
)
from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError


@dataclass(frozen=True)
class StunAttribute:
    """One TLV-encoded attribute: 2-byte type, 2-byte length, padded value."""

    attr_type: int
    value: bytes

    @property
    def name(self) -> str:
        return attribute_name(self.attr_type) or f"UNKNOWN-0x{self.attr_type:04X}"

    @property
    def padded_length(self) -> int:
        return (len(self.value) + 3) & ~3

    def build(self) -> bytes:
        writer = ByteWriter()
        writer.u16(self.attr_type)
        writer.u16(len(self.value))
        writer.write(self.value)
        writer.pad_to_multiple(4)
        return writer.getvalue()


def parse_attributes(data: bytes, strict: bool = True) -> List[StunAttribute]:
    """Walk the attribute region as a sequence of TLVs.

    With ``strict=False`` a trailing truncated attribute is dropped instead of
    raising, which the DPI candidate matcher uses when probing arbitrary byte
    windows.
    """
    reader = ByteReader(data)
    attributes: List[StunAttribute] = []
    while reader.remaining >= 4:
        attr_type = reader.u16()
        length = reader.u16()
        padded = (length + 3) & ~3
        if padded > reader.remaining:
            if strict:
                raise TruncatedError(
                    f"attribute 0x{attr_type:04x} declares {length} bytes, "
                    f"{reader.remaining} available"
                )
            break
        value = reader.read(length)
        reader.skip(padded - length)
        attributes.append(StunAttribute(attr_type, value))
    if strict and reader.remaining:
        raise TruncatedError(f"{reader.remaining} stray bytes after last attribute")
    return attributes


@dataclass(frozen=True)
class AddressValue:
    """Decoded (XOR-)MAPPED-ADDRESS style value."""

    family: int
    port: int
    ip: str

    @property
    def family_valid(self) -> bool:
        return self.family in (AddressFamily.IPV4, AddressFamily.IPV6)


def decode_address(value: bytes) -> AddressValue:
    """Decode a plain address attribute value (RFC 8489 §14.1)."""
    if len(value) not in (8, 20):
        raise ValueError(f"address attribute must be 8 or 20 bytes, got {len(value)}")
    _reserved, family, port = struct.unpack("!BBH", value[:4])
    raw_ip = value[4:]
    if family == AddressFamily.IPV4 and len(raw_ip) == 4:
        ip = str(ipaddress.IPv4Address(raw_ip))
    elif family == AddressFamily.IPV6 and len(raw_ip) == 16:
        ip = str(ipaddress.IPv6Address(raw_ip))
    else:
        # Non-standard family: surface raw bytes so compliance can flag it.
        ip = raw_ip.hex()
    return AddressValue(family=family, port=port, ip=ip)


def encode_address(ip: str, port: int, family: Optional[int] = None) -> bytes:
    addr = ipaddress.ip_address(ip)
    if family is None:
        family = AddressFamily.IPV4 if addr.version == 4 else AddressFamily.IPV6
    return struct.pack("!BBH", 0, family, port) + addr.packed


def decode_xor_address(value: bytes, transaction_id: bytes) -> AddressValue:
    """Decode an XOR-* address attribute value (RFC 8489 §14.2)."""
    if len(value) not in (8, 20):
        raise ValueError(f"xor address attribute must be 8 or 20 bytes, got {len(value)}")
    _reserved, family, xport = struct.unpack("!BBH", value[:4])
    port = xport ^ (MAGIC_COOKIE >> 16)
    raw_ip = value[4:]
    if family == AddressFamily.IPV4 and len(raw_ip) == 4:
        xored = int.from_bytes(raw_ip, "big") ^ MAGIC_COOKIE
        ip = str(ipaddress.IPv4Address(xored))
    elif family == AddressFamily.IPV6 and len(raw_ip) == 16:
        key = MAGIC_COOKIE.to_bytes(4, "big") + transaction_id
        ip = str(ipaddress.IPv6Address(bytes(a ^ b for a, b in zip(raw_ip, key))))
    else:
        ip = raw_ip.hex()
    return AddressValue(family=family, port=port, ip=ip)


def encode_xor_address(
    ip: str, port: int, transaction_id: bytes, family: Optional[int] = None
) -> bytes:
    addr = ipaddress.ip_address(ip)
    if family is None:
        family = AddressFamily.IPV4 if addr.version == 4 else AddressFamily.IPV6
    xport = port ^ (MAGIC_COOKIE >> 16)
    if addr.version == 4:
        xip = (int(addr) ^ MAGIC_COOKIE).to_bytes(4, "big")
    else:
        key = MAGIC_COOKIE.to_bytes(4, "big") + transaction_id
        xip = bytes(a ^ b for a, b in zip(addr.packed, key))
    return struct.pack("!BBH", 0, family, xport) + xip


@dataclass(frozen=True)
class ErrorCodeValue:
    """Decoded ERROR-CODE value (RFC 8489 §14.8)."""

    code: int
    reason: str

    @property
    def error_class(self) -> int:
        return self.code // 100

    @property
    def number(self) -> int:
        return self.code % 100


def decode_error_code(value: bytes) -> ErrorCodeValue:
    if len(value) < 4:
        raise ValueError("ERROR-CODE value shorter than 4 bytes")
    _reserved, err_class, number = struct.unpack("!HBB", value[:4])
    reason = value[4:].decode("utf-8", errors="replace")
    return ErrorCodeValue(code=(err_class & 0x07) * 100 + number, reason=reason)


def encode_error_code(code: int, reason: str = "") -> bytes:
    return struct.pack("!HBB", 0, code // 100, code % 100) + reason.encode("utf-8")


def make(attr_type: int, value: bytes) -> StunAttribute:
    """Convenience constructor mirroring :class:`StunAttribute`."""
    return StunAttribute(attr_type, value)


def channel_number_value(channel: int) -> bytes:
    """CHANNEL-NUMBER attribute value: channel + 2-byte RFFU (RFC 8656 §18.1)."""
    return struct.pack("!HH", channel, 0)


def lifetime_value(seconds: int) -> bytes:
    return struct.pack("!I", seconds)


def requested_transport_value(protocol: int = 17) -> bytes:
    """REQUESTED-TRANSPORT value: protocol number + 3 RFFU bytes."""
    return struct.pack("!B3x", protocol)


def fingerprint_value(message_so_far: bytes) -> bytes:
    """FINGERPRINT value: CRC-32 of the message XORed with 0x5354554e."""
    import zlib

    return struct.pack("!I", (zlib.crc32(message_so_far) & 0xFFFFFFFF) ^ 0x5354554E)


#: Maximum value lengths for variable-size attributes (RFC 8489 §14).
ATTRIBUTE_MAX_LENGTHS = {
    int(AttributeType.USERNAME): 513,
    int(AttributeType.REALM): 763,
    int(AttributeType.NONCE): 763,
    int(AttributeType.SOFTWARE): 763,
    int(AttributeType.ERROR_CODE): 4 + 763,
    int(AttributeType.USERHASH): 32,
}

ATTRIBUTE_FIXED_LENGTHS = {
    int(AttributeType.CHANNEL_NUMBER): 4,
    int(AttributeType.LIFETIME): 4,
    int(AttributeType.REQUESTED_TRANSPORT): 4,
    int(AttributeType.EVEN_PORT): 1,
    int(AttributeType.REQUESTED_ADDRESS_FAMILY): 4,
    int(AttributeType.DONT_FRAGMENT): 0,
    int(AttributeType.RESERVATION_TOKEN): 8,
    int(AttributeType.PRIORITY): 4,
    int(AttributeType.USE_CANDIDATE): 0,
    int(AttributeType.FINGERPRINT): 4,
    int(AttributeType.MESSAGE_INTEGRITY): 20,
    int(AttributeType.MESSAGE_INTEGRITY_SHA256): 32,
    int(AttributeType.ICE_CONTROLLED): 8,
    int(AttributeType.ICE_CONTROLLING): 8,
    int(AttributeType.RESPONSE_PORT): 4,
    int(AttributeType.CONNECTION_ID): 4,
    int(AttributeType.CHANGE_REQUEST): 4,
    int(AttributeType.CACHE_TIMEOUT): 4,
}
