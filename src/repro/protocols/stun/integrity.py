"""STUN MESSAGE-INTEGRITY computation and verification (RFC 8489 §14.5).

Short-term credentials key on the password directly; long-term credentials
key on ``MD5(username ":" realm ":" password)``.  The HMAC-SHA1 covers the
message up to (but excluding) the MESSAGE-INTEGRITY attribute, with the
header length field already counting it — the same adjust-then-hash dance
as FINGERPRINT.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import StunMessage

_MI = int(AttributeType.MESSAGE_INTEGRITY)
_FP = int(AttributeType.FINGERPRINT)


def short_term_key(password: str) -> bytes:
    """Short-term credential key (RFC 8489 §9.1.1): the password itself."""
    return password.encode("utf-8")


def long_term_key(username: str, realm: str, password: str) -> bytes:
    """Long-term credential key (RFC 8489 §9.2.2)."""
    material = f"{username}:{realm}:{password}".encode("utf-8")
    return hashlib.md5(material).digest()


def add_message_integrity(message: StunMessage, key: bytes) -> bytes:
    """Serialize *message* with a correctly computed MESSAGE-INTEGRITY.

    Any placeholder MESSAGE-INTEGRITY/FINGERPRINT attributes already on the
    message are dropped first; callers wanting FINGERPRINT too should wrap
    the result with :func:`repro.protocols.stun.message.build_with_fingerprint`
    semantics (MI first, FINGERPRINT last).
    """
    attributes = [
        a for a in message.attributes if a.attr_type not in (_MI, _FP)
    ]
    with_placeholder = StunMessage(
        msg_type=message.msg_type,
        transaction_id=message.transaction_id,
        attributes=attributes + [StunAttribute(_MI, bytes(20))],
        classic=message.classic,
    )
    raw = bytearray(with_placeholder.build())
    # HMAC input: everything before the MESSAGE-INTEGRITY attribute, with
    # the length field as serialized (already counts the 24-byte MI TLV).
    digest = hmac.new(key, bytes(raw[:-24]), hashlib.sha1).digest()
    raw[-20:] = digest
    return bytes(raw)


def verify_message_integrity(raw: bytes, key: bytes) -> bool:
    """Check the MESSAGE-INTEGRITY of a serialized message.

    Follows RFC 8489 §14.5: attributes after MESSAGE-INTEGRITY other than
    FINGERPRINT are ignored, and the length field is rewritten as if the
    message ended at the MI attribute before hashing.
    """
    try:
        message = StunMessage.parse(raw, strict=False)
    except Exception:
        return False
    offset = 20 if not message.classic else 20
    mi_offset: Optional[int] = None
    position = offset
    for attribute in message.attributes:
        if attribute.attr_type == _MI:
            mi_offset = position
            break
        position += 4 + attribute.padded_length
    if mi_offset is None:
        return False
    mi_value = raw[mi_offset + 4:mi_offset + 24]
    if len(mi_value) != 20:
        return False
    # Rewrite the length field to end right after the MI attribute.
    adjusted = bytearray(raw[:mi_offset])
    covered_length = (mi_offset + 24) - 20
    adjusted[2:4] = covered_length.to_bytes(2, "big")
    digest = hmac.new(key, bytes(adjusted), hashlib.sha1).digest()
    return hmac.compare_digest(digest, mi_value)
