"""Online mode of the two-stage filter: observe records, finalize at flush.

Filtering a live feed cannot re-scan a materialized record list the way
:meth:`TwoStageFilter.apply` historically did — the 3-tuple heuristic
needs every endpoint seen outside the call window and the local-IP
heuristic every pre-call IP pair.  :class:`OnlineTwoStageFilter` collects
both sets incrementally while grouping records into streams, then makes
the per-stream keep/drop decisions at :meth:`finalize` with exactly the
batch pipeline's logic, so the resulting :class:`FilterResult` — stage
accounting, kept-stream order, precision/recall — is bit-identical to a
batch run over the same records.  ``TwoStageFilter.apply`` is now a thin
loop over this class, so there is only one filtering implementation.

Keep/drop decisions are inherently provisional until the capture ends: a
stream that looks call-aligned can still be discarded at flush because
its 3-tuple shows up in post-call traffic.  What *can* be decided early
is doom — a stream whose first packet precedes the extended window, or
that stays active past it, can never survive stage 1.  With
``low_memory=True`` such streams are drained on the spot: their buffered
packets are released and only the counters the accounting and
ground-truth evaluation need are kept.  The resulting ``FilterResult``
has identical counts and evaluation but empty packet lists for drained
(always removed) streams, which is why the mode is opt-in.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.apps.background import DEFAULT_SNI_BLOCKLIST
from repro.filtering.heuristics import (
    DEFAULT_EXCLUDED_PORTS,
    EndpointTuple,
    LocalIpFilter,
    PortFilter,
    SniFilter,
    ThreeTupleFilter,
)
from repro.filtering.timespan import TimespanFilter
from repro.packets.packet import PacketRecord, TrafficCategory
from repro.streams.flow import FlowKey, Stream
from repro.streams.timeline import CallWindow


class DrainedStream:
    """Counter-only stand-in for a stream whose packets were released.

    Presents the slice of the :class:`Stream` interface the stage-1 split
    and the accounting read — transport, packet count, timespan — plus
    the ground-truth label counters the filter evaluation needs.  Only
    streams that are already certain to be removed are ever drained, so
    stage-2 heuristics (which inspect payloads) never see one.
    """

    __slots__ = ("key", "packets", "packet_count", "byte_count",
                 "_first_ts", "_last_ts", "truth_counts")

    def __init__(self, stream: Stream):
        self.key = stream.key
        self.packets: List[PacketRecord] = []
        self.packet_count = stream.packet_count
        self.byte_count = stream.byte_count
        self._first_ts = min(p.timestamp for p in stream.packets)
        self._last_ts = max(p.timestamp for p in stream.packets)
        rtc = non_rtc = 0
        for record in stream.packets:
            if record.truth is None:
                continue
            if record.truth.category is TrafficCategory.BACKGROUND:
                non_rtc += 1
            else:
                rtc += 1
        #: (rtc, non_rtc) labelled-packet counts for precision/recall.
        self.truth_counts: Tuple[int, int] = (rtc, non_rtc)

    @property
    def transport(self) -> str:
        return self.key[2]

    @property
    def first_timestamp(self) -> float:
        return self._first_ts

    @property
    def last_timestamp(self) -> float:
        return self._last_ts

    def add(self, record: PacketRecord) -> None:
        self.packet_count += 1
        self.byte_count += len(record.payload)
        ts = record.timestamp
        self._first_ts = min(self._first_ts, ts)
        self._last_ts = max(self._last_ts, ts)
        if record.truth is not None:
            rtc, non_rtc = self.truth_counts
            if record.truth.category is TrafficCategory.BACKGROUND:
                non_rtc += 1
            else:
                rtc += 1
            self.truth_counts = (rtc, non_rtc)

    def sort(self) -> None:
        pass

    def __len__(self) -> int:
        return self.packet_count


class OnlineTwoStageFilter:
    """Incremental front half of :class:`TwoStageFilter`.

    Call :meth:`observe` for every record in capture order, then
    :meth:`finalize` once to obtain the :class:`FilterResult`.
    """

    def __init__(
        self,
        window: CallWindow,
        sni_blocklist: Iterable[str] = DEFAULT_SNI_BLOCKLIST,
        excluded_ports: Iterable[int] = DEFAULT_EXCLUDED_PORTS,
        enabled_heuristics: Sequence[str] = ("3tuple", "sni", "local_ip", "port"),
        low_memory: bool = False,
        seed_outside: Iterable[EndpointTuple] = (),
        seed_precall: Iterable[FrozenSet[str]] = (),
    ):
        self._window = window
        self._sni_blocklist = frozenset(sni_blocklist)
        self._excluded_ports = frozenset(excluded_ports)
        self._enabled = tuple(enabled_heuristics)
        self._low_memory = low_memory
        self._streams: Dict[FlowKey, object] = {}
        # The 3-tuple and local-IP heuristics need *capture-global* state
        # (every endpoint outside the window, every pre-call IP pair).  A
        # flow-sharded run observes only its own partition, so the sharded
        # executor pre-collects both sets in its partitioning pass and
        # seeds each shard's filter with them — making per-shard keep/drop
        # decisions identical to a global run over the same capture.
        self._outside: Set[EndpointTuple] = set(seed_outside)
        self._precall: Set[FrozenSet[str]] = set(seed_precall)
        self._observed = 0
        self._finalized = False

    @property
    def observed(self) -> int:
        """Records seen so far."""
        return self._observed

    @property
    def buffered_packets(self) -> int:
        """Packets currently held in memory (drained streams count zero)."""
        return sum(len(s.packets) for s in self._streams.values())

    def observe(self, record: PacketRecord) -> None:
        """Group one record and update the window-scoped heuristic state."""
        if self._finalized:
            raise RuntimeError("observe() after finalize()")
        self._observed += 1
        window = self._window
        ts = record.timestamp
        if not (window.extended_start <= ts <= window.extended_end):
            self._outside.add((record.src_ip, record.src_port, record.transport))
            self._outside.add((record.dst_ip, record.dst_port, record.transport))
        if ts < window.call_start:
            self._precall.add(frozenset((record.src_ip, record.dst_ip)))

        key = record.flow_key
        stream = self._streams.get(key)
        if stream is None:
            stream = Stream(key=key)
            self._streams[key] = stream
        stream.add(record)
        if self._low_memory and self._doomed(stream):
            self._streams[key] = DrainedStream(stream)

    def _doomed(self, stream: object) -> bool:
        """True when *stream* can never survive stage 1.

        A stream that started before the extended window or is still
        active after it is certain to be removed, so its payloads can be
        released early; only the counters the accounting needs survive.
        """
        if not isinstance(stream, Stream):
            return False
        window = self._window
        return (
            stream.first_timestamp < window.extended_start
            or stream.last_timestamp > window.extended_end
        )

    def evict(self, watermark: float = 0.0) -> int:
        """Drain every stream already doomed to removal; return the count.

        The on-demand counterpart of ``low_memory=True``'s per-record
        drain: a long-running session sweeps this periodically so junk
        flows (pre-call background, post-window chatter) never accumulate
        payloads, while provisional keep/drop decisions stay untouched —
        kept-looking streams must buffer until :meth:`finalize` because a
        later record can still revoke them.  *watermark* is accepted for
        signature uniformity with the stage protocol; doom is a function
        of the call window alone.  Accounting, evaluation, and kept
        output are unchanged by draining (pinned by the parity tests).
        """
        if self._finalized:
            return 0
        drained = 0
        for key, stream in self._streams.items():
            if self._doomed(stream):
                self._streams[key] = DrainedStream(stream)
                drained += 1
        return drained

    def finalize(self) -> "FilterResult":
        """Apply both filtering stages to everything observed."""
        from repro.filtering.pipeline import (
            FilterResult,
            StageCounts,
            _evaluate,
        )

        if self._finalized:
            raise RuntimeError("finalize() may only be called once")
        self._finalized = True

        streams = list(self._streams.values())
        for stream in streams:
            stream.sort()
        raw = StageCounts.of(streams)
        removed_by: Dict[str, List[Stream]] = {}

        stage1 = TimespanFilter(self._window)
        kept, removed = stage1.split(streams)
        removed_by[stage1.name] = removed
        stage1_counts = StageCounts.of(removed)

        heuristics = []
        if "3tuple" in self._enabled:
            heuristics.append(ThreeTupleFilter.from_outside_tuples(self._outside))
        if "sni" in self._enabled:
            heuristics.append(SniFilter(self._sni_blocklist))
        if "local_ip" in self._enabled:
            heuristics.append(LocalIpFilter.from_precall_pairs(self._precall))
        if "port" in self._enabled:
            heuristics.append(PortFilter(self._excluded_ports))

        surviving: List[Stream] = []
        for stream in kept:
            verdict = None
            for heuristic in heuristics:
                if not heuristic.keeps(stream):
                    verdict = heuristic.name
                    break
            if verdict is None:
                surviving.append(stream)
            else:
                removed_by.setdefault(verdict, []).append(stream)

        stage2_counts = StageCounts.of(
            stream
            for name, streams_ in removed_by.items()
            if name != stage1.name
            for stream in streams_
        )
        return FilterResult(
            raw=raw,
            stage1_removed=stage1_counts,
            stage2_removed=stage2_counts,
            kept=StageCounts.of(surviving),
            kept_streams=surviving,
            removed_by=removed_by,
            evaluation=_evaluate(surviving, removed_by),
        )
