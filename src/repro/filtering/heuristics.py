"""Stage-2 filtering heuristics (paper §3.2.2).

Four protocol-aware heuristics catch intra-call background activity that
evades the stage-1 timespan filter: 3-tuple timing, TLS SNI blocklisting,
local-IP scoping, and well-known-port exclusion.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Set, Tuple

from repro.apps.background import DEFAULT_SNI_BLOCKLIST
from repro.packets.ip import is_private_address
from repro.packets.packet import PacketRecord
from repro.protocols.tls.client_hello import extract_sni
from repro.streams.flow import Stream
from repro.streams.timeline import CallWindow

#: Ports reserved for non-RTC services (IANA registry subset the paper cites
#: plus the LAN-management ports seen on idle phones).
DEFAULT_EXCLUDED_PORTS: FrozenSet[int] = frozenset(
    {53, 67, 68, 123, 137, 138, 139, 546, 547, 1900, 5353}
)

EndpointTuple = Tuple[str, int, str]


class ThreeTupleFilter:
    """Removes in-window streams whose endpoint 3-tuple is active outside it.

    Background services (e.g. APNS) keep a fixed (IP, port, protocol)
    destination while NAT rebinding varies the source port, splitting one
    logical connection into several 5-tuple streams.  A 3-tuple observed
    outside the call window marks every in-window stream sharing it.
    """

    name = "3tuple"

    def __init__(self, all_records: Sequence[PacketRecord], window: CallWindow):
        self._outside: Set[EndpointTuple] = set()
        for record in all_records:
            if window.extended_start <= record.timestamp <= window.extended_end:
                continue
            self.observe_outside(record)

    @classmethod
    def from_outside_tuples(
        cls, outside: Iterable[EndpointTuple]
    ) -> "ThreeTupleFilter":
        """Build from an incrementally collected outside-window endpoint set.

        The online filter feeds every out-of-window record through
        :meth:`observe_outside` as it arrives instead of re-scanning a
        materialized record list; the resulting set is identical.
        """
        instance = cls.__new__(cls)
        instance._outside = set(outside)
        return instance

    def observe_outside(self, record: PacketRecord) -> None:
        """Register one record already known to lie outside the window."""
        self._outside.add((record.src_ip, record.src_port, record.transport))
        self._outside.add((record.dst_ip, record.dst_port, record.transport))

    def keeps(self, stream: Stream) -> bool:
        (ip_a, port_a), (ip_b, port_b), transport = (
            stream.endpoint_a, stream.endpoint_b, stream.transport,
        )
        if (ip_a, port_a, transport) in self._outside:
            return False
        if (ip_b, port_b, transport) in self._outside:
            return False
        return True


class SniFilter:
    """Removes TCP streams whose TLS ClientHello SNI is on the blocklist."""

    name = "sni"

    def __init__(self, blocklist: Iterable[str] = DEFAULT_SNI_BLOCKLIST):
        self._blocklist = frozenset(blocklist)

    def keeps(self, stream: Stream) -> bool:
        if stream.transport != "TCP":
            return True
        for record in stream.packets:
            sni = extract_sni(record.payload)
            if sni is not None:
                return sni not in self._blocklist
        return True


class LocalIpFilter:
    """Removes local-network management streams.

    A stream is removed when either endpoint is a private/link-local address
    *and* the same IP pair already appeared in the pre-call capture — the
    second condition is what preserves legitimate P2P media between the two
    call participants (§3.2.2).
    """

    name = "local_ip"

    def __init__(self, all_records: Sequence[PacketRecord], window: CallWindow):
        self._precall_pairs: Set[FrozenSet[str]] = set()
        for record in all_records:
            if record.timestamp < window.call_start:
                self.observe_precall(record)

    @classmethod
    def from_precall_pairs(
        cls, pairs: Iterable[FrozenSet[str]]
    ) -> "LocalIpFilter":
        """Build from an incrementally collected pre-call IP-pair set."""
        instance = cls.__new__(cls)
        instance._precall_pairs = set(pairs)
        return instance

    def observe_precall(self, record: PacketRecord) -> None:
        """Register one record already known to precede the call start."""
        self._precall_pairs.add(frozenset((record.src_ip, record.dst_ip)))

    def keeps(self, stream: Stream) -> bool:
        ip_a, ip_b = stream.ips()
        if not (_is_local(ip_a) or _is_local(ip_b)):
            return True
        return frozenset((ip_a, ip_b)) not in self._precall_pairs


def _is_local(ip: str) -> bool:
    try:
        return is_private_address(ip) or ip.startswith(("224.", "239.", "ff"))
    except ValueError:
        return False


class PortFilter:
    """Removes streams using transport ports reserved for non-RTC services."""

    name = "port"

    def __init__(self, excluded_ports: Iterable[int] = DEFAULT_EXCLUDED_PORTS):
        self._ports = frozenset(excluded_ports)

    def keeps(self, stream: Stream) -> bool:
        port_a, port_b = stream.ports()
        return port_a not in self._ports and port_b not in self._ports
