"""Two-stage unrelated-traffic filtering (paper §3.2)."""

from repro.filtering.heuristics import (
    DEFAULT_EXCLUDED_PORTS,
    LocalIpFilter,
    PortFilter,
    SniFilter,
    ThreeTupleFilter,
)
from repro.filtering.online import OnlineTwoStageFilter
from repro.filtering.pipeline import (
    FilterEvaluation,
    FilterResult,
    StageCounts,
    TwoStageFilter,
)
from repro.filtering.timespan import TimespanFilter

__all__ = [
    "DEFAULT_EXCLUDED_PORTS",
    "LocalIpFilter",
    "PortFilter",
    "SniFilter",
    "ThreeTupleFilter",
    "FilterEvaluation",
    "FilterResult",
    "OnlineTwoStageFilter",
    "StageCounts",
    "TwoStageFilter",
    "TimespanFilter",
]
