"""Two-stage unrelated-traffic filtering (paper §3.2)."""

from repro.filtering.heuristics import (
    DEFAULT_EXCLUDED_PORTS,
    LocalIpFilter,
    PortFilter,
    SniFilter,
    ThreeTupleFilter,
)
from repro.filtering.pipeline import (
    FilterEvaluation,
    FilterResult,
    StageCounts,
    TwoStageFilter,
)
from repro.filtering.timespan import TimespanFilter

__all__ = [
    "DEFAULT_EXCLUDED_PORTS",
    "LocalIpFilter",
    "PortFilter",
    "SniFilter",
    "ThreeTupleFilter",
    "FilterEvaluation",
    "FilterResult",
    "StageCounts",
    "TwoStageFilter",
    "TimespanFilter",
]
