"""The two-stage filtering pipeline and its accounting (paper §3.2, Table 1).

Stage 1 removes streams misaligned with the call window; stage 2 applies the
four protocol-aware heuristics to what remains.  The result object tracks,
per transport, how many streams/packets each stage removed — exactly the
columns of the paper's Table 1 — and, when ground-truth labels are present,
the filter's precision and recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.apps.background import DEFAULT_SNI_BLOCKLIST
from repro.filtering.heuristics import DEFAULT_EXCLUDED_PORTS
from repro.filtering.timespan import TimespanFilter
from repro.packets.packet import PacketRecord
from repro.streams.flow import Stream
from repro.streams.timeline import CallWindow


@dataclass(frozen=True)
class StageCounts:
    """Streams and packets attributed to one pipeline stage, per transport."""

    udp_streams: int = 0
    udp_packets: int = 0
    tcp_streams: int = 0
    tcp_packets: int = 0

    @classmethod
    def of(cls, streams: Iterable[Stream]) -> "StageCounts":
        udp_s = udp_p = tcp_s = tcp_p = 0
        for stream in streams:
            if stream.transport == "UDP":
                udp_s += 1
                udp_p += stream.packet_count
            else:
                tcp_s += 1
                tcp_p += stream.packet_count
        return cls(udp_s, udp_p, tcp_s, tcp_p)


@dataclass(frozen=True)
class FilterEvaluation:
    """Ground-truth-based quality metrics (only for labelled traces)."""

    kept_rtc: int
    kept_non_rtc: int
    removed_rtc: int
    removed_non_rtc: int

    @property
    def precision(self) -> float:
        kept = self.kept_rtc + self.kept_non_rtc
        return self.kept_rtc / kept if kept else 1.0

    @property
    def recall(self) -> float:
        total_rtc = self.kept_rtc + self.removed_rtc
        return self.kept_rtc / total_rtc if total_rtc else 1.0


@dataclass
class FilterResult:
    """Everything the pipeline decided, with per-stage accounting."""

    raw: StageCounts
    stage1_removed: StageCounts
    stage2_removed: StageCounts
    kept: StageCounts
    kept_streams: List[Stream]
    removed_by: Dict[str, List[Stream]]
    evaluation: Optional[FilterEvaluation] = None
    _kept_records: Optional[List[PacketRecord]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def kept_records(self) -> List[PacketRecord]:
        """Every kept packet in timestamp order (computed once, then cached).

        This sits on the hot path between filtering and DPI and is read
        from ~10 call sites; re-concatenating and re-sorting the full
        packet list on every access was pure waste.  Callers share the
        cached list, so treat it as read-only.
        """
        if self._kept_records is None:
            records: List[PacketRecord] = []
            for stream in self.kept_streams:
                records.extend(stream.packets)
            records.sort(key=lambda r: r.timestamp)
            self._kept_records = records
        return self._kept_records

    def stage2_by_heuristic(self) -> Dict[str, StageCounts]:
        return {
            name: StageCounts.of(streams)
            for name, streams in self.removed_by.items()
            if name != TimespanFilter.name
        }


class TwoStageFilter:
    """The paper's full filtering pipeline.

    Individual stage-2 heuristics can be disabled via ``enabled_heuristics``
    for ablation studies.
    """

    ALL_HEURISTICS = ("3tuple", "sni", "local_ip", "port")

    def __init__(
        self,
        window: CallWindow,
        sni_blocklist: Iterable[str] = DEFAULT_SNI_BLOCKLIST,
        excluded_ports: Iterable[int] = DEFAULT_EXCLUDED_PORTS,
        enabled_heuristics: Sequence[str] = ALL_HEURISTICS,
    ):
        unknown = set(enabled_heuristics) - set(self.ALL_HEURISTICS)
        if unknown:
            raise ValueError(f"unknown heuristics {sorted(unknown)}")
        self._window = window
        self._sni_blocklist = frozenset(sni_blocklist)
        self._excluded_ports = frozenset(excluded_ports)
        self._enabled = tuple(enabled_heuristics)

    @property
    def window(self) -> CallWindow:
        return self._window

    def apply(self, records: Sequence[PacketRecord]) -> FilterResult:
        """Batch entry point: one pass of the online filter over *records*.

        Batch and streaming callers share a single implementation (see
        :mod:`repro.filtering.online`), so their results are identical by
        construction rather than by parallel maintenance.
        """
        online = self.online()
        for record in records:
            online.observe(record)
        return online.finalize()

    def online(
        self,
        low_memory: bool = False,
        seed_outside: Iterable = (),
        seed_precall: Iterable = (),
    ) -> "OnlineTwoStageFilter":
        """An incremental filter session with this pipeline's configuration.

        ``seed_outside``/``seed_precall`` pre-load the capture-global state
        of the window heuristics — the flow-sharded executor uses them so
        a session that observes only one shard still decides like one that
        saw the whole capture (see :mod:`repro.pipeline.sharded`).
        """
        from repro.filtering.online import OnlineTwoStageFilter

        return OnlineTwoStageFilter(
            window=self._window,
            sni_blocklist=self._sni_blocklist,
            excluded_ports=self._excluded_ports,
            enabled_heuristics=self._enabled,
            low_memory=low_memory,
            seed_outside=seed_outside,
            seed_precall=seed_precall,
        )


def _evaluate(
    kept_streams: Sequence[Stream], removed_by: Dict[str, List[Stream]]
) -> Optional[FilterEvaluation]:
    from repro.packets.packet import TrafficCategory

    def label_counts(streams: Iterable[Stream]):
        # Signaling is call-related: the paper's pipeline keeps in-call
        # signaling too (the "RTC TCP" column of Table 1), so only true
        # background counts against precision.
        rtc = non_rtc = labelled = 0
        for stream in streams:
            counts = getattr(stream, "truth_counts", None)
            if counts is not None:
                # Drained stream (low-memory online mode): packets were
                # released, but the label counters were kept.
                rtc += counts[0]
                non_rtc += counts[1]
                labelled += counts[0] + counts[1]
                continue
            for record in stream.packets:
                if record.truth is None:
                    continue
                labelled += 1
                if record.truth.category is TrafficCategory.BACKGROUND:
                    non_rtc += 1
                else:
                    rtc += 1
        return rtc, non_rtc, labelled

    kept_rtc, kept_non, kept_labelled = label_counts(kept_streams)
    removed_rtc, removed_non, removed_labelled = label_counts(
        stream for streams in removed_by.values() for stream in streams
    )
    if kept_labelled + removed_labelled == 0:
        return None
    return FilterEvaluation(
        kept_rtc=kept_rtc,
        kept_non_rtc=kept_non,
        removed_rtc=removed_rtc,
        removed_non_rtc=removed_non,
    )
