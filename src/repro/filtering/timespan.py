"""Stage-1 filtering: stream-timespan alignment with the call window (§3.2.1).

Streams that begin before the call starts, end after it ends, or span both
are removed: legitimate RTC sessions start and end in synchrony with the
user-initiated call.  The window is expanded by ±2 s to absorb timing
offsets and delayed packet delivery.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.streams.flow import Stream
from repro.streams.timeline import CallWindow


class TimespanFilter:
    """Removes streams whose active timespan is not enclosed by the window."""

    name = "timespan"

    def __init__(self, window: CallWindow):
        self._window = window

    def keeps(self, stream: Stream) -> bool:
        return self._window.encloses(stream.first_timestamp, stream.last_timestamp)

    def split(self, streams: Iterable[Stream]) -> Tuple[List[Stream], List[Stream]]:
        """Partition *streams* into (kept, removed)."""
        kept: List[Stream] = []
        removed: List[Stream] = []
        for stream in streams:
            (kept if self.keeps(stream) else removed).append(stream)
        return kept, removed
