"""Stdlib-only HTTP/SSE surface for the always-on compliance service.

No web framework: :class:`ComplianceService` owns the session registry
and ingest threads, and a :class:`http.server.ThreadingHTTPServer`
handler maps five routes onto it —

* ``GET  /healthz`` — liveness plus session counts.
* ``POST /sessions`` — create a session from a JSON spec (app, network,
  impairment, pacing, eviction, queue policy).
* ``DELETE /sessions/{id}`` — stop ingest, close, and forget a session.
* ``GET  /sessions/{id}/stats`` — session snapshot + queue counters
  (the :meth:`StageStats.to_json` schema, shared with
  ``rtc-compliance pipeline-stats --json``).
* ``GET  /sessions/{id}/events`` — Server-Sent Events: periodic
  ``snapshot`` events while the session feeds, then — once the source
  is exhausted and the session closes — every verdict as a ``verdict``
  event **in exact batch order**, a ``summary`` event, and ``end``.

Verdicts stream at close rather than live because two layers are
deliberately lazy: keep/drop decisions are provisional until the capture
ends and STUN verdicts need whole-session context (see
:mod:`repro.service.session`).  What the service guarantees instead is
the strongest thing it can: the SSE verdict sequence is bit-identical to
the batch run over the same records.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.apps import NetworkCondition, get_simulator
from repro.core.metrics import ComplianceSummary
from repro.service.ingest import (
    DEFAULT_BATCH_SIZE,
    BoundedQueue,
    PcapDirectoryWatcher,
    ReplaySource,
    produce,
    pump,
)
from repro.service.session import AnalysisSession, EvictionPolicy, SessionResult


class ServiceError(ValueError):
    """A request the service understands but must refuse (HTTP 4xx)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _summary_json(summary: ComplianceSummary) -> Dict[str, object]:
    return {
        "app": summary.app,
        "volume": {
            "compliant": summary.volume.compliant,
            "total": summary.volume.total,
        },
        "volume_by_protocol": {
            protocol: {"compliant": vol.compliant, "total": vol.total}
            for protocol, vol in summary.volume_by_protocol.items()
        },
        "types": [
            {
                "protocol": entry.protocol,
                "type": entry.type_label,
                "total": entry.total,
                "non_compliant": entry.non_compliant,
            }
            for entry in summary.types.values()
        ],
    }


class ServiceSession:
    """One daemon-managed session: analysis + ingest threads + lifecycle.

    ``state`` moves ``running`` → ``closed`` exactly once, under
    ``lock``; ``done`` is set afterwards so SSE streams and shutdown can
    wait without polling the registry.
    """

    def __init__(
        self,
        session_id: str,
        spec: Dict[str, object],
        session: AnalysisSession,
        queue: BoundedQueue,
        app: str,
    ):
        self.id = session_id
        self.spec = spec
        self.session = session
        self.queue = queue
        self.app = app
        self.created = time.time()
        self.state = "running"
        self.error: Optional[str] = None
        self.result: Optional[SessionResult] = None
        self.lock = threading.Lock()
        self.done = threading.Event()
        self.stop = threading.Event()
        self.threads: List[threading.Thread] = []

    def finish(self) -> None:
        """Close the analysis session once and publish the result."""
        with self.lock:
            if self.state == "closed":
                return
            try:
                self.result = self.session.close()
            except Exception as exc:  # pragma: no cover - defensive
                self.error = f"{type(exc).__name__}: {exc}"
            self.state = "closed"
        self.done.set()

    def stats_json(self) -> Dict[str, object]:
        snapshot = self.session.snapshot()
        payload = snapshot.to_json()
        payload["id"] = self.id
        payload["state"] = self.state
        payload["queue"] = dict(
            self.queue.counters.to_json(), depth=len(self.queue)
        )
        if self.error:
            payload["error"] = self.error
        return payload


class ComplianceService:
    """Session registry + ingest orchestration behind the HTTP surface.

    Deliberately HTTP-free so tests (and future surfaces) can drive it
    directly: every route handler is a thin call into this class.
    """

    def __init__(self, defaults: Optional[Dict[str, object]] = None):
        #: Per-session spec defaults (the serve CLI's execution flags);
        #: a POSTed spec only overrides the keys it names.
        self._defaults = dict(defaults or {})
        self._sessions: Dict[str, ServiceSession] = {}
        self._lock = threading.Lock()
        self._started = time.time()
        self._shutting_down = False

    # -- registry ----------------------------------------------------

    def health(self) -> Dict[str, object]:
        with self._lock:
            sessions = list(self._sessions.values())
        return {
            "status": "shutting-down" if self._shutting_down else "ok",
            "uptime_seconds": time.time() - self._started,
            "sessions": {
                "running": sum(1 for s in sessions if s.state == "running"),
                "closed": sum(1 for s in sessions if s.state == "closed"),
            },
        }

    def get(self, session_id: str) -> ServiceSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(404, f"no such session: {session_id}")
        return session

    def list_sessions(self) -> List[Dict[str, object]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [
            {"id": s.id, "state": s.state, "app": s.app, "spec": s.spec}
            for s in sessions
        ]

    # -- lifecycle ---------------------------------------------------

    def create_session(self, spec: Dict[str, object]) -> Dict[str, object]:
        """Create a session from a JSON spec and start its ingest threads.

        Spec keys (all optional unless noted): ``source`` (``"replay"``,
        the default, needs ``app``; or ``{"kind": "pcap_dir",
        "directory": ...}``), ``network``, ``impairment``, ``duration``,
        ``scale``, ``seed``, ``pace`` (``"afap"``/``"clock"``),
        ``speed``, ``chunk_size``, ``eviction`` (mode string or
        ``{"mode", "idle_gap", "sweep_interval"}``), ``queue``
        (``{"maxsize", "policy"}``).
        """
        if self._shutting_down:
            raise ServiceError(503, "service is shutting down")
        spec = {**self._defaults, **spec}
        try:
            handle = self._build_session(spec)
        except (ValueError, KeyError, TypeError) as exc:
            if isinstance(exc, ServiceError):
                raise
            raise ServiceError(400, f"bad session spec: {exc}") from exc
        with self._lock:
            self._sessions[handle.id] = handle
        for thread in handle.threads:
            thread.start()
        return {"id": handle.id, "state": handle.state}

    def _build_session(self, spec: Dict[str, object]) -> ServiceSession:
        eviction_spec = spec.get("eviction", "deadline")
        if isinstance(eviction_spec, str):
            eviction = EvictionPolicy(mode=eviction_spec)
        else:
            eviction = EvictionPolicy(
                mode=eviction_spec.get("mode", "deadline"),
                idle_gap=eviction_spec.get("idle_gap", 5.0),
                sweep_interval=eviction_spec.get("sweep_interval", 1.0),
            )
        chunk_size = int(spec.get("chunk_size", DEFAULT_BATCH_SIZE))
        queue_spec = spec.get("queue", {})
        queue = BoundedQueue(
            maxsize=int(queue_spec.get("maxsize", 64)),
            policy=queue_spec.get("policy", "block"),
        )
        source_spec = spec.get("source", "replay")

        session_id = uuid.uuid4().hex[:12]
        if source_spec == "replay" or (
            isinstance(source_spec, dict) and source_spec.get("kind") == "replay"
        ):
            app = spec.get("app")
            if not app:
                raise ServiceError(400, "replay sessions need an 'app'")
            from repro.apps import CallConfig

            network = NetworkCondition(spec.get("network", "wifi_relay"))
            call_config = CallConfig(
                network=network,
                seed=int(spec.get("seed", 0)),
                call_duration=float(spec.get("duration", 8.0)),
                media_scale=float(spec.get("scale", 0.3)),
                impairment=spec.get("impairment", "none"),
            )
            records = list(get_simulator(app).iter_records(call_config))
            source = ReplaySource(
                records,
                batch_size=chunk_size,
                pace=spec.get("pace", "afap"),
                speed=float(spec.get("speed", 1.0)),
            )
            session = AnalysisSession(
                window=call_config.window(),
                chunk_size=chunk_size,
                eviction=eviction,
            )
            handle = ServiceSession(session_id, spec, session, queue, app=app)
        elif isinstance(source_spec, dict) and source_spec.get("kind") == "pcap_dir":
            directory = source_spec.get("directory")
            if not directory:
                raise ServiceError(400, "pcap_dir sessions need a 'directory'")
            handle_stop = threading.Event()
            source = PcapDirectoryWatcher(
                str(directory),
                batch_size=chunk_size,
                poll_interval=float(source_spec.get("poll_interval", 0.5)),
                stop=handle_stop,
            )
            # No call window is known for arbitrary captures, so the
            # session runs filterless with idle eviction keeping live
            # flow state bounded.
            if eviction.mode == "deadline":
                eviction = EvictionPolicy(
                    mode="idle",
                    idle_gap=eviction.idle_gap,
                    sweep_interval=eviction.sweep_interval,
                )
            session = AnalysisSession(chunk_size=chunk_size, eviction=eviction)
            handle = ServiceSession(
                session_id, spec, session, queue, app=str(directory)
            )
            handle.stop = handle_stop
        else:
            raise ServiceError(400, f"unknown source: {source_spec!r}")

        producer = threading.Thread(
            target=produce, args=(source, queue),
            name=f"ingest-{session_id}", daemon=True,
        )

        def _feed_then_close() -> None:
            try:
                pump(queue, handle.session.feed)
            except Exception as exc:  # pragma: no cover - defensive
                handle.error = f"{type(exc).__name__}: {exc}"
            handle.finish()

        feeder = threading.Thread(
            target=_feed_then_close, name=f"feed-{session_id}", daemon=True
        )
        handle.threads = [producer, feeder]
        return handle

    def close_session(self, session_id: str) -> Dict[str, object]:
        """Stop ingest, close the session, and report its final state."""
        handle = self.get(session_id)
        handle.stop.set()
        handle.queue.close()
        for thread in handle.threads:
            thread.join(timeout=10.0)
        handle.finish()
        payload: Dict[str, object] = {"id": handle.id, "state": handle.state}
        if handle.error:
            payload["error"] = handle.error
        elif handle.result is not None:
            payload["verdicts"] = len(handle.result.verdicts)
        return payload

    def delete_session(self, session_id: str) -> Dict[str, object]:
        payload = self.close_session(session_id)
        with self._lock:
            self._sessions.pop(session_id, None)
        payload["deleted"] = True
        return payload

    def shutdown(self) -> None:
        """Drain every session: stop ingest, close, keep results readable."""
        self._shutting_down = True
        with self._lock:
            ids = list(self._sessions)
        for session_id in ids:
            try:
                self.close_session(session_id)
            except ServiceError:
                pass

    # -- SSE ---------------------------------------------------------

    def events(
        self, session_id: str, snapshot_interval: float = 0.5
    ) -> "EventStream":
        return EventStream(self.get(session_id), snapshot_interval)


class EventStream:
    """Iterator of SSE frames for one session's ``/events`` stream."""

    def __init__(self, handle: ServiceSession, snapshot_interval: float):
        self._handle = handle
        self._interval = snapshot_interval

    @staticmethod
    def frame(event: str, data: object) -> bytes:
        return (
            f"event: {event}\ndata: {json.dumps(data)}\n\n".encode("utf-8")
        )

    def __iter__(self):
        handle = self._handle
        while not handle.done.wait(timeout=self._interval):
            yield self.frame("snapshot", handle.stats_json())
        yield self.frame("snapshot", handle.stats_json())
        result = handle.result
        if handle.error or result is None:
            yield self.frame(
                "error", {"error": handle.error or "session produced no result"}
            )
        else:
            for index, verdict in enumerate(result.verdicts):
                protocol, type_label = verdict.message.type_key()
                yield self.frame(
                    "verdict",
                    {
                        "index": index,
                        "timestamp": verdict.message.timestamp,
                        "protocol": protocol,
                        "type": type_label,
                        "compliant": verdict.compliant,
                        "violations": verdict.violation_keys(),
                    },
                )
            yield self.frame(
                "summary", _summary_json(result.summary(handle.app))
            )
        yield self.frame("end", {"id": handle.id})


class _Handler(BaseHTTPRequestHandler):
    """Route table over the service; one instance per request."""

    service: ComplianceService  # set by make_server
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet by default; the CLI prints its own lifecycle lines

    def _send_json(self, status: int, payload: object) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            raise ServiceError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, ...]:
        return tuple(part for part in self.path.split("?")[0].split("/") if part)

    # -- verbs -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        try:
            route = self._route()
            if route == ("healthz",):
                self._send_json(200, self.service.health())
            elif route == ("sessions",):
                self._send_json(200, {"sessions": self.service.list_sessions()})
            elif len(route) == 3 and route[0] == "sessions" and route[2] == "stats":
                self._send_json(200, self.service.get(route[1]).stats_json())
            elif len(route) == 3 and route[0] == "sessions" and route[2] == "events":
                self._send_events(route[1])
            else:
                self._send_json(404, {"error": f"no such route: {self.path}"})
        except ServiceError as exc:
            self._send_json(exc.status, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802
        try:
            route = self._route()
            if route == ("sessions",):
                spec = self._read_json()
                self._send_json(201, self.service.create_session(spec))
            else:
                self._send_json(404, {"error": f"no such route: {self.path}"})
        except ServiceError as exc:
            self._send_json(exc.status, {"error": str(exc)})

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            route = self._route()
            if len(route) == 2 and route[0] == "sessions":
                self._send_json(200, self.service.delete_session(route[1]))
            else:
                self._send_json(404, {"error": f"no such route: {self.path}"})
        except ServiceError as exc:
            self._send_json(exc.status, {"error": str(exc)})

    def _send_events(self, session_id: str) -> None:
        stream = self.service.events(session_id)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for frame in stream:
                self.wfile.write(frame)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
        self.close_connection = True


def make_server(
    host: str, port: int, service: Optional[ComplianceService] = None
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server wired to *service* (a fresh one if
    omitted); the caller owns ``serve_forever``/``shutdown``."""
    if service is None:
        service = ComplianceService()
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server
