"""Always-on compliance service: sessions, ingest sources, HTTP/SSE.

The batch pipeline wrapped in a lifecycle an operator can deploy:
:class:`AnalysisSession` (feed / snapshot / close, bit-identical to the
batch run), the ingest layer (:mod:`repro.service.ingest` — bounded
queue, replay and pcap-directory sources), and the stdlib-only HTTP/SSE
surface (:mod:`repro.service.http`, ``rtc-compliance serve``).
"""

from repro.service.session import (
    AnalysisSession,
    EvictionPolicy,
    SessionResult,
    SessionSnapshot,
)

__all__ = [
    "AnalysisSession",
    "EvictionPolicy",
    "SessionResult",
    "SessionSnapshot",
]
