"""Session-oriented execution of the compliance pipeline.

:class:`AnalysisSession` is the long-running counterpart of
``run_cell_pipeline``: the same three layers (online filter → DPI stream
session → checker stream) behind an explicit lifecycle — ``feed`` records
as they arrive, ``snapshot`` the live instrumentation at any point, and
``close`` once to obtain the exact artifacts the batch adapter returns.
Batch execution *is* a session now (``run_cell_pipeline`` feeds one and
closes it), so there is a single code path to keep bit-identical.

The hard part of living past the end of a capture is that two of the
layers are deliberately lazy: keep/drop decisions are provisional until
the capture ends (:mod:`repro.filtering.online`), and verdict order plus
the deferred STUN context are only settled once every analysis exists.
The session therefore splits the pipeline in two:

* a **front** pipeline holding the filter, fed live; the only thing it
  can finalize early is certain removal, so eviction sweeps drain doomed
  streams' payloads (bounding memory) without touching any provisional
  decision;
* a **back** pipeline (DPI → checker), fed at ``close`` in the filtered
  configuration or live when no window/filter is configured.

During the close drain the session knows every kept record, so each
DPI flow gets an exact deadline — its last record's timestamp — and is
finalized the moment the drain watermark passes it.  That eviction is
provably lossless: no later record can belong to an already-deadlined
flow.  Analyses therefore leave the DPI stage out of batch order, and
the stage's emission log (``(timestamp, serial, position)`` per
analysis — see :class:`repro.pipeline.stages.DpiStage`) is the total
order that restores the batch sequence with one sort; verdicts follow
their analyses by slicing the checker's index-ordered output per
analysis.  This is what makes a session with eviction enabled
bit-identical to the batch run — the contract the 18-cell parity tests
pin.

Watermarks are **capture time** (the largest record timestamp fed so
far), never wall-clock: eviction is a pure function of the record
stream, so replaying a capture evicts — and emits — identically on
every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.checker import ComplianceChecker
from repro.core.metrics import ComplianceSummary
from repro.core.verdict import MessageVerdict
from repro.dpi.engine import DpiEngine, DpiResult
from repro.dpi.messages import DatagramAnalysis
from repro.filtering.pipeline import FilterResult, TwoStageFilter
from repro.packets.packet import PacketRecord
from repro.pipeline.stage import DEFAULT_CHUNK_SIZE, Pipeline, StageStats
from repro.pipeline.stages import CheckStage, DpiStage, FilterStage
from repro.streams.timeline import CallWindow


@dataclass(frozen=True)
class EvictionPolicy:
    """When and how a session finalizes per-flow state early.

    ``mode``:

    * ``"none"`` — never evict; every layer buffers until ``close``.
      This is the batch adapter's mode: it reproduces the historical
      run-to-exhaustion instrumentation (e.g. the filter's high-water
      mark equals the record count) exactly.
    * ``"deadline"`` — bound memory without giving up bit-identity.
      While feeding, the filter drains streams already doomed to
      removal; at the close drain, DPI flows are finalized the moment
      the watermark passes their last record.  Exact by construction.
    * ``"idle"`` — everything ``"deadline"`` does, plus: in a
      *filterless* session (no call window) DPI flows idle longer than
      ``idle_gap`` capture-seconds are finalized mid-feed.  The one
      policy with a caveat: a flow that resumes after eviction restarts
      without the evicted context, so pick ``idle_gap`` larger than any
      real intra-flow gap if batch parity matters.

    ``sweep_interval`` throttles eviction sweeps: one sweep each time
    the watermark advances that many capture-seconds past the last one.
    """

    mode: str = "none"
    idle_gap: float = 5.0
    sweep_interval: float = 1.0

    def __post_init__(self):
        if self.mode not in ("none", "deadline", "idle"):
            raise ValueError(f"unknown eviction mode: {self.mode!r}")
        if self.idle_gap <= 0:
            raise ValueError("idle_gap must be positive")
        if self.sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")


@dataclass
class SessionSnapshot:
    """A point-in-time, detached view of a session's progress.

    Safe to take from another thread while the session keeps feeding:
    every ``StageStats`` is a copy, never the live counter record.
    """

    records_fed: int
    watermark: Optional[float]
    closed: bool
    #: Verdicts emitted so far (final and complete only after close).
    verdicts_ready: int
    stages: List[StageStats] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "records_fed": self.records_fed,
            "watermark": self.watermark,
            "closed": self.closed,
            "verdicts_ready": self.verdicts_ready,
            "stages": [stat.to_json() for stat in self.stages],
        }


@dataclass
class SessionResult:
    """Everything a closed session produced — the ``PipelineRun`` shape.

    ``filter_result`` is ``None`` for filterless sessions (pre-filtered
    input, e.g. ``run_streaming``).  ``verdicts`` are in exact batch
    order (``ComplianceChecker.check`` over the batch DPI output), and
    ``dpi.analyses`` in exact batch flush order, whatever eviction
    interleaving actually produced them.
    """

    filter_result: Optional[FilterResult]
    dpi: DpiResult
    verdicts: List[MessageVerdict]
    stage_stats: Dict[str, StageStats]

    def summary(self, app: str) -> ComplianceSummary:
        """The per-app compliance summary the reports aggregate."""
        return ComplianceSummary.from_verdicts(app, self.verdicts)


class AnalysisSession:
    """One live run of the compliance pipeline with an explicit lifecycle.

    With a ``window`` the session runs the full filtered pipeline and
    produces a :class:`FilterResult`; without one it assumes the caller
    feeds pre-filtered records and runs DPI → checker only.  ``engine``
    and ``checker`` default to fresh instances so sessions are isolated
    unless a caller deliberately shares warm engine caches.
    """

    def __init__(
        self,
        window: Optional[CallWindow] = None,
        engine: Optional[DpiEngine] = None,
        checker: Optional[ComplianceChecker] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        eviction: EvictionPolicy = EvictionPolicy(),
    ):
        if engine is None:
            engine = DpiEngine()
        if checker is None:
            checker = ComplianceChecker()
        self._eviction = eviction
        self._chunk_size = chunk_size
        self._dpi_stage = DpiStage(
            engine,
            collect=True,
            track_order=True,
            idle_gap=eviction.idle_gap if eviction.mode == "idle" else None,
        )
        self._back = Pipeline(
            [self._dpi_stage, CheckStage(checker)], chunk_size=chunk_size
        )
        self._filter_stage: Optional[FilterStage] = None
        self._front: Optional[Pipeline] = None
        if window is not None:
            self._filter_stage = FilterStage(TwoStageFilter(window))
            self._front = Pipeline([self._filter_stage], chunk_size=chunk_size)
        #: ``(global_message_index, verdict)`` pairs in emission order.
        self._indexed: List[Tuple[int, MessageVerdict]] = []
        self._records_fed = 0
        self._watermark: Optional[float] = None
        self._last_sweep: Optional[float] = None
        self._closed = False
        self._result: Optional[SessionResult] = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def records_fed(self) -> int:
        return self._records_fed

    @property
    def watermark(self) -> Optional[float]:
        """Largest record timestamp fed so far (capture time, not wall)."""
        return self._watermark

    def feed(self, records: Iterable[PacketRecord]) -> None:
        """Push records through the live half of the pipeline.

        Accepts any iterable and consumes it incrementally in
        ``chunk_size`` batches — feeding one fully materialized capture
        dispatches exactly like ``Pipeline.run`` over the same source,
        which is what keeps the batch adapter's instrumentation
        identical to the historical single-pipeline run.  Eviction
        sweeps (per :class:`EvictionPolicy`) run between batches.
        """
        if self._closed:
            raise RuntimeError("feed() after close()")
        live = self._front if self._front is not None else self._back
        iterator = iter(records)
        while True:
            chunk = list(islice(iterator, self._chunk_size))
            if not chunk:
                break
            self._records_fed += len(chunk)
            high = max(record.timestamp for record in chunk)
            if self._watermark is None or high > self._watermark:
                self._watermark = high
            emitted = live.feed_chunk(chunk)
            if live is self._back:
                self._indexed.extend(emitted)
            self._maybe_sweep()

    def _maybe_sweep(self) -> None:
        if self._eviction.mode == "none" or self._watermark is None:
            return
        if (
            self._last_sweep is not None
            and self._watermark - self._last_sweep < self._eviction.sweep_interval
        ):
            return
        self._last_sweep = self._watermark
        if self._front is not None:
            # Doom-drain only: keep decisions stay provisional, so the
            # sweep releases payloads of certainly-removed streams and
            # emits nothing downstream.
            self._front.evict(self._watermark)
        elif self._eviction.mode == "idle":
            self._indexed.extend(self._back.evict(self._watermark))

    def snapshot(self) -> SessionSnapshot:
        """Detached copies of every stage's counters, front-to-back."""
        stages: List[StageStats] = []
        if self._front is not None:
            stages.extend(self._front.snapshot())
        stages.extend(self._back.snapshot())
        return SessionSnapshot(
            records_fed=self._records_fed,
            watermark=self._watermark,
            closed=self._closed,
            verdicts_ready=len(self._indexed),
            stages=stages,
        )

    def close(self) -> SessionResult:
        """Finalize everything and return the batch-shaped artifacts.

        Idempotent: the first call computes the result, later calls
        return the same object.
        """
        if self._closed:
            assert self._result is not None
            return self._result
        self._closed = True

        filter_result: Optional[FilterResult] = None
        if self._front is not None:
            kept = self._front.flush()
            assert self._filter_stage is not None
            filter_result = self._filter_stage.result
            if self._eviction.mode != "none":
                # Exact deadlines: the drain input is fully materialized,
                # so each flow's last record timestamp is known and a
                # flow is finalized the moment the watermark passes it.
                deadlines: Dict[object, float] = {}
                for record in kept:
                    if record.transport == "UDP":
                        deadlines[record.flow_key] = max(
                            deadlines.get(record.flow_key, record.timestamp),
                            record.timestamp,
                        )
                self._dpi_stage.set_flow_deadlines(deadlines)
                for start in range(0, len(kept), self._chunk_size):
                    chunk = kept[start:start + self._chunk_size]
                    self._indexed.extend(self._back.feed_chunk(chunk))
                    self._indexed.extend(
                        self._back.evict(chunk[-1].timestamp)
                    )
            else:
                for start in range(0, len(kept), self._chunk_size):
                    self._indexed.extend(
                        self._back.feed_chunk(kept[start:start + self._chunk_size])
                    )
        self._indexed.extend(self._back.flush())

        verdicts, analyses = self._restore_batch_order()
        dpi = DpiResult(analyses=analyses)
        dpi.stats = self._dpi_stage.stats()
        dpi.cache_hits = dpi.stats.cache_hits
        dpi.cache_misses = dpi.stats.cache_misses

        stage_stats: Dict[str, StageStats] = {}
        if self._front is not None:
            for stat in self._front.stats():
                stage_stats[stat.name] = stat
        for stat in self._back.stats():
            stage_stats[stat.name] = stat

        self._result = SessionResult(
            filter_result=filter_result,
            dpi=dpi,
            verdicts=verdicts,
            stage_stats=stage_stats,
        )
        return self._result

    def _restore_batch_order(
        self,
    ) -> Tuple[List[MessageVerdict], List[DatagramAnalysis]]:
        """Reorder emissions into the exact batch sequence.

        The DPI stage's emission log parallels its collected analyses
        1:1, and ``(timestamp, serial, position)`` is precisely the key
        the batch flush sorts by (streams concatenated in first-seen
        order, then a stable timestamp sort).  The checker's global
        indices number messages in emission order and each analysis's
        messages are consecutive, so index-sorting the verdicts and
        slicing per analysis pairs every verdict with its analysis; the
        slices then follow their analyses into batch order.
        """
        log = self._dpi_stage.emission_log
        collected = self._dpi_stage._analyses
        assert collected is not None and len(collected) == len(log)
        flat = [
            verdict
            for _, verdict in sorted(self._indexed, key=lambda pair: pair[0])
        ]
        starts: List[int] = []
        cursor = 0
        for entry in log:
            starts.append(cursor)
            cursor += entry[3]
        assert cursor == len(flat), "verdict/message count mismatch"
        order = sorted(range(len(log)), key=lambda i: log[i][:3])
        verdicts: List[MessageVerdict] = []
        for i in order:
            verdicts.extend(flat[starts[i]:starts[i] + log[i][3]])
        return verdicts, [collected[i] for i in order]
