"""Ingest layer for the always-on service: sources → bounded queue → session.

Two pluggable record sources — :class:`ReplaySource` (feed a synthesized
cell back through the pipeline, clock-paced or as fast as possible) and
:class:`PcapDirectoryWatcher` (tail a directory that a rotating capture
process drops ``.pcap`` files into) — push record batches into a
:class:`BoundedQueue`, and :func:`pump` moves batches from the queue into
an :class:`~repro.service.session.AnalysisSession` until the source is
exhausted.

The queue is where ingest policy lives.  A capture feed does not slow
down because analysis is behind, so the queue is explicitly bounded and
the overflow behavior is a named choice: ``"block"`` (apply backpressure
to the producer — right for replay, where the producer *can* wait) or
``"drop_oldest"`` (shed the oldest batch — right for live capture,
where falling behind must cost data, not memory).  Both paths count what
they did (``puts``/``drops``/``blocked``) so an operator can see
shedding happen instead of guessing.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Sequence

from repro.packets.packet import PacketRecord

#: Records per batch a source emits unless configured otherwise.
DEFAULT_BATCH_SIZE = 256


@dataclass
class QueueCounters:
    """What the queue did, for the ``/stats`` endpoint and tests."""

    puts: int = 0
    drops: int = 0
    #: ``put`` calls that had to wait for space (block policy only).
    blocked: int = 0

    def to_json(self) -> dict:
        return {"puts": self.puts, "drops": self.drops, "blocked": self.blocked}


class BoundedQueue:
    """Thread-safe bounded batch queue with an explicit overflow policy.

    ``policy="block"`` makes :meth:`put` wait for space; ``"drop_oldest"``
    makes it evict the oldest queued batch instead.  :meth:`close` wakes
    every waiter; :meth:`get` returns ``None`` once the queue is closed
    and drained.
    """

    def __init__(self, maxsize: int = 64, policy: str = "block"):
        if maxsize < 1:
            raise ValueError("maxsize must be a positive integer")
        if policy not in ("block", "drop_oldest"):
            raise ValueError(f"unknown backpressure policy: {policy!r}")
        self._maxsize = maxsize
        self._policy = policy
        self._batches: Deque[List[PacketRecord]] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.counters = QueueCounters()

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._batches)

    def put(self, batch: Sequence[PacketRecord]) -> bool:
        """Enqueue one batch; returns False if the queue is closed.

        Under ``"block"`` this waits for space (backpressure reaches the
        producer); under ``"drop_oldest"`` it never waits — when full,
        the oldest queued batch is shed and counted.
        """
        batch = list(batch)
        with self._lock:
            if self._closed:
                return False
            if self._policy == "block":
                while len(self._batches) >= self._maxsize and not self._closed:
                    self.counters.blocked += 1
                    self._not_full.wait()
                if self._closed:
                    return False
            elif len(self._batches) >= self._maxsize:
                self._batches.popleft()
                self.counters.drops += 1
            self._batches.append(batch)
            self.counters.puts += 1
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Optional[List[PacketRecord]]:
        """Dequeue one batch; ``None`` when closed-and-empty or timed out."""
        with self._lock:
            if not self._batches:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
                if not self._batches:
                    return None
            batch = self._batches.popleft()
            self._not_full.notify()
            return batch

    def close(self) -> None:
        """No more puts; queued batches remain readable until drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()


class ReplaySource:
    """Re-feed a record list or a capture file, optionally at capture pace.

    ``pace="afap"`` yields batches as fast as the consumer takes them.
    ``pace="clock"`` sleeps between batches so the feed advances at
    ``speed``× capture time (``speed=2.0`` replays an 8-second cell in
    ~4 wall seconds) — the shape a live capture source has, which is what
    the soak and smoke tests exercise.  Pacing affects wall-clock only;
    the batch contents and order are identical either way.

    :meth:`from_pcap` builds a replay straight off a capture file via the
    mmap batch decoder — batches stream out of the file per chunk, so
    peak memory is one batch, not the whole trace.
    """

    def __init__(
        self,
        records: Sequence[PacketRecord],
        batch_size: int = DEFAULT_BATCH_SIZE,
        pace: str = "afap",
        speed: float = 1.0,
    ):
        if pace not in ("afap", "clock"):
            raise ValueError(f"unknown pace: {pace!r}")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self._records = list(records)
        self._path: Optional[str] = None
        self._batch_size = batch_size
        self._pace = pace
        self._speed = speed

    @classmethod
    def from_pcap(
        cls,
        path: str,
        batch_size: int = DEFAULT_BATCH_SIZE,
        pace: str = "afap",
        speed: float = 1.0,
    ) -> "ReplaySource":
        """Replay a ``.pcap``/``.pcapng`` file without materializing it."""
        source = cls([], batch_size=batch_size, pace=pace, speed=speed)
        source._path = str(path)
        return source

    def _batches(self) -> Iterator[List[PacketRecord]]:
        if self._path is not None:
            from repro.packets.batch import iter_capture_chunks

            yield from iter_capture_chunks(self._path, self._batch_size)
            return
        records = self._records
        for index in range(0, len(records), self._batch_size):
            yield records[index:index + self._batch_size]

    def __iter__(self) -> Iterator[List[PacketRecord]]:
        start_capture: Optional[float] = None
        start_wall = 0.0
        for batch in self._batches():
            if self._pace == "clock":
                if start_capture is None:
                    start_capture = batch[0].timestamp
                    start_wall = time.monotonic()
                due = (batch[0].timestamp - start_capture) / self._speed
                delay = due - (time.monotonic() - start_wall)
                if delay > 0:
                    time.sleep(delay)
            yield batch


class PcapDirectoryWatcher:
    """Tail a directory a rotating capture process writes ``.pcap`` files to.

    Polls every ``poll_interval`` seconds; a file is picked up once its
    size has been stable across two polls (the writer has moved on),
    streamed through the mmap batch decoder one batch at a time, and
    never re-read.  The mmap length is pinned when the file is opened,
    so a file that starts growing again *after* pickup (a writer that
    reopened it) yields exactly the records present at open — the next
    rotation, not a torn read.  Iteration ends when ``stop`` is set (or,
    with ``drain_once=True``, after the first sweep — the batch-shaped
    mode tests use).
    """

    def __init__(
        self,
        directory: str,
        batch_size: int = DEFAULT_BATCH_SIZE,
        poll_interval: float = 0.5,
        stop: Optional[threading.Event] = None,
        drain_once: bool = False,
    ):
        self._directory = directory
        self._batch_size = batch_size
        self._poll_interval = poll_interval
        self._stop = stop if stop is not None else threading.Event()
        self._drain_once = drain_once
        self._seen: dict = {}
        self._done: set = set()

    @property
    def stop(self) -> threading.Event:
        return self._stop

    def _ready_files(self) -> List[str]:
        try:
            names = sorted(os.listdir(self._directory))
        except OSError:
            return []
        ready = []
        for name in names:
            if not name.endswith((".pcap", ".pcapng")) or name in self._done:
                continue
            path = os.path.join(self._directory, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if self._seen.get(name) == size:
                ready.append(path)
                self._done.add(name)
            else:
                self._seen[name] = size
        return ready

    def __iter__(self) -> Iterator[List[PacketRecord]]:
        from repro.packets.batch import iter_capture_chunks

        while not self._stop.is_set():
            for path in self._ready_files():
                # Manual next() so a malformed file (or one truncated by
                # the writer) drops just that file, mid-stream, instead
                # of aborting the watcher.
                chunk_iter = iter_capture_chunks(path, self._batch_size)
                while True:
                    try:
                        batch = next(chunk_iter)
                    except StopIteration:
                        break
                    except (OSError, ValueError):
                        break
                    yield batch
            if self._drain_once:
                # One extra sweep picks up files whose size just became
                # stable, then the iterator ends.
                if not self._seen or all(n in self._done for n in self._seen):
                    return
            self._stop.wait(self._poll_interval)


def produce(
    source: Iterable[Sequence[PacketRecord]], queue: BoundedQueue
) -> None:
    """Push every batch of *source* into *queue*, then close it."""
    try:
        for batch in source:
            if not queue.put(batch):
                return
    finally:
        queue.close()


def pump(
    queue: BoundedQueue,
    feed: Callable[[Sequence[PacketRecord]], None],
    poll_timeout: float = 0.2,
    stop: Optional[threading.Event] = None,
) -> int:
    """Drain *queue* into *feed* until it closes; returns records fed.

    The consumer half of the ingest pipeline — the service runs this on
    a session's feeder thread with ``feed=session.feed``.  ``stop`` ends
    the pump early (graceful shutdown) without closing the queue.
    """
    fed = 0
    while stop is None or not stop.is_set():
        batch = queue.get(timeout=poll_timeout)
        if batch is None:
            if queue.closed and len(queue) == 0:
                return fed
            continue
        feed(batch)
        fed += len(batch)
    return fed
