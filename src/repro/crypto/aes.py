"""AES block cipher (FIPS-197), encryption direction only.

Counter-mode usage (SRTP's AES-CM, RFC 3711 §4.1.1) never needs the
decryption direction, so only the forward cipher is implemented.  Supports
AES-128/192/256 keys.
"""

from __future__ import annotations

from typing import List

_SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76"
    "ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d83115"
    "04c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f84"
    "53d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa8"
    "51a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d1973"
    "60814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479"
    "e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a"
    "703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df"
    "8ca1890dbfe6426841992d0fb054bb16"
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8)


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


class AES:
    """The AES block cipher; :meth:`encrypt_block` processes 16 bytes."""

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES keys are 16, 24 or 32 bytes")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> List[List[int]]:
        key_words = len(key) // 4
        words = [list(key[4 * i:4 * i + 4]) for i in range(key_words)]
        total_words = 4 * (self._rounds + 1)
        for i in range(key_words, total_words):
            temp = list(words[i - 1])
            if i % key_words == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // key_words - 1]
            elif key_words > 6 and i % key_words == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - key_words], temp)])
        # Group into 16-byte round keys (column-major state order).
        return [
            [byte for word in words[4 * r:4 * r + 4] for byte in word]
            for r in range(self._rounds + 1)
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES blocks are 16 bytes")
        state = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for round_index in range(1, self._rounds):
            state = _sub_shift(state)
            state = _mix_columns(state)
            state = [b ^ k for b, k in zip(state, self._round_keys[round_index])]
        state = _sub_shift(state)
        return bytes(b ^ k for b, k in zip(state, self._round_keys[-1]))


def _sub_shift(state: List[int]) -> List[int]:
    """SubBytes followed by ShiftRows on the column-major state."""
    substituted = [_SBOX[b] for b in state]
    # state[r + 4c]; row r rotates left by r.
    out = [0] * 16
    for column in range(4):
        for row in range(4):
            out[row + 4 * column] = substituted[row + 4 * ((column + row) % 4)]
    return out


def _mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for column in range(4):
        a = state[4 * column:4 * column + 4]
        out[4 * column + 0] = _xtime(a[0]) ^ (_xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3]
        out[4 * column + 1] = a[0] ^ _xtime(a[1]) ^ (_xtime(a[2]) ^ a[2]) ^ a[3]
        out[4 * column + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ (_xtime(a[3]) ^ a[3])
        out[4 * column + 3] = (_xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ _xtime(a[3])
    return out


def aes_ctr_keystream(key: bytes, initial_block: int, length: int) -> bytes:
    """Keystream of *length* bytes: AES(counter), counter starting at
    *initial_block* as a 128-bit big-endian integer."""
    cipher = AES(key)
    out = bytearray()
    counter = initial_block
    while len(out) < length:
        out.extend(cipher.encrypt_block(counter.to_bytes(16, "big")))
        counter = (counter + 1) % (1 << 128)
    return bytes(out[:length])


def xor_bytes(data: bytes, keystream: bytes) -> bytes:
    if len(keystream) < len(data):
        raise ValueError("keystream shorter than data")
    return bytes(a ^ b for a, b in zip(data, keystream))
