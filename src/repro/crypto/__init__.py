"""Minimal cryptographic primitives for the SRTP/SRTCP substrate.

Pure-Python AES (FIPS-197) in counter mode — slow but dependency-free and
sufficient for protocol-level work: key derivation, packet protection, and
authentication-tag generation in tests and simulators.  Not intended for
production encryption workloads.
"""

from repro.crypto.aes import AES, aes_ctr_keystream, xor_bytes

__all__ = ["AES", "aes_ctr_keystream", "xor_bytes"]
