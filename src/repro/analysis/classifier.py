"""Application fingerprinting from protocol-compliance signatures.

The paper's operator-facing motivation: proprietary deviations "blind
measurement and security tools".  Turned around, those same deviations are
*fingerprints* — each studied application modifies the protocols in a
unique way.  This classifier scores an unlabeled trace against the quirk
inventory of §5.2/§5.3 and names the application.

Signals used (all derived from DPI output, no ports or IPs):

- Zoom: SFU headers with 0x00/0x04 direction bytes, 1000-byte fillers,
  fixed SSRC prefix 0x10004xx, classic STUN with attribute 0x0101;
- FaceTime: 0x6000 relay headers, 0xDEADBEEFCAFE beacons, undefined RTP
  extension profiles 0x8001/0x8500/0x8D00, QUIC alongside RTP;
- WhatsApp: STUN types 0x0803-0x0805 and the 0x0801 burst;
- Messenger: the Meta 0x0801 burst plus a full TURN control plane;
- Discord: RTCP 3-byte direction trailers, no STUN at all;
- Google Meet: GOOG-PING (0x0200/0x0300), SRTCP with/without tags,
  ChannelData-wrapped media.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dpi.messages import DatagramAnalysis, DatagramClass, Protocol
from repro.protocols.stun.message import ChannelData, StunMessage

FACETIME_BEACON = bytes.fromhex("DEADBEEFCAFE")
UNDEFINED_FT_PROFILES = {0x8001, 0x8500, 0x8D00}


@dataclass
class FingerprintScores:
    """Per-app evidence scores for one trace."""

    scores: Dict[str, float] = field(default_factory=dict)
    evidence: Dict[str, List[str]] = field(default_factory=dict)

    def add(self, app: str, weight: float, reason: str) -> None:
        self.scores[app] = self.scores.get(app, 0.0) + weight
        self.evidence.setdefault(app, []).append(reason)

    @property
    def best(self) -> Optional[str]:
        if not self.scores:
            return None
        return max(self.scores, key=self.scores.get)

    @property
    def confident(self) -> bool:
        """True when the winner leads the runner-up by 2x."""
        ranked = sorted(self.scores.values(), reverse=True)
        if not ranked:
            return False
        if len(ranked) == 1:
            return ranked[0] > 0
        return ranked[0] >= 2 * ranked[1] and ranked[0] > 0


def classify_application(analyses: Sequence[DatagramAnalysis]) -> FingerprintScores:
    """Score the §5.2/§5.3 quirk signatures over one trace's DPI output."""
    scores = FingerprintScores()
    stun_types: Counter = Counter()
    rtcp_trailer3 = 0
    rtcp_srtcp = 0
    rtcp_total = 0
    rtp_ft_profiles = 0
    rtp_total = 0
    channel_wrapped = 0
    quic_seen = False
    zoom_headers = 0
    facetime_headers = 0
    fillers = 0
    beacons = 0
    zoom_ssrc_prefix = 0
    classic_0101_attr = 0
    goog_ping = 0

    for analysis in analyses:
        payload = analysis.record.payload
        header = analysis.proprietary_header
        if header:
            if len(header) >= 24 and header[0] in (0, 1, 4, 5) and header[1] == 0x64:
                zoom_headers += 1
            elif header.startswith(b"\x60\x00"):
                facetime_headers += 1
        if analysis.classification is DatagramClass.FULLY_PROPRIETARY:
            if len(payload) == 1000 and len(set(payload)) == 1:
                fillers += 1
            elif payload.startswith(FACETIME_BEACON):
                beacons += 1
        for extracted in analysis.messages:
            message = extracted.message
            if extracted.protocol is Protocol.STUN_TURN:
                if isinstance(message, ChannelData):
                    channel_wrapped += 1
                    continue
                stun_types[message.msg_type] += 1
                if message.msg_type in (0x0200, 0x0300):
                    goog_ping += 1
                if message.classic and message.attribute(0x0101) is not None:
                    classic_0101_attr += 1
            elif extracted.protocol is Protocol.RTP:
                rtp_total += 1
                if (message.ssrc >> 12) == 0x1000 or (message.ssrc >> 12) == 0x1001:
                    zoom_ssrc_prefix += 1
                extension = message.extension
                if extension is not None and extension.profile in UNDEFINED_FT_PROFILES:
                    rtp_ft_profiles += 1
            elif extracted.protocol is Protocol.RTCP:
                rtcp_total += 1
                if len(extracted.trailer) == 3:
                    rtcp_trailer3 += 1
                elif len(extracted.trailer) in (4, 14):
                    rtcp_srtcp += 1
            elif extracted.protocol is Protocol.QUIC:
                quic_seen = True

    # --- Zoom ---------------------------------------------------------------
    if zoom_headers > 10:
        scores.add("zoom", 3.0, f"{zoom_headers} SFU-style proprietary headers")
    if fillers > 5:
        scores.add("zoom", 2.0, f"{fillers} 1000-byte filler datagrams")
    if rtp_total and zoom_ssrc_prefix / rtp_total > 0.5:
        scores.add("zoom", 1.0, "deterministic 0x100xxxx SSRC block")
    if classic_0101_attr:
        scores.add("zoom", 1.0, "classic STUN with proprietary attribute 0x0101")

    # --- FaceTime -----------------------------------------------------------
    if facetime_headers > 10:
        scores.add("facetime", 2.0, f"{facetime_headers} 0x6000 relay headers")
    if beacons > 5:
        scores.add("facetime", 2.0, f"{beacons} 0xDEADBEEFCAFE beacons")
    if rtp_total and rtp_ft_profiles / rtp_total > 0.5:
        scores.add("facetime", 2.0,
                   "undefined RTP extension profiles on all media")
    if quic_seen and rtp_total:
        scores.add("facetime", 1.0, "QUIC next to RTP media")

    # --- Meta apps ----------------------------------------------------------
    burst = stun_types.get(0x0801, 0) and stun_types.get(0x0802, 0)
    if burst:
        if any(stun_types.get(t) for t in (0x0803, 0x0804, 0x0805)):
            scores.add("whatsapp", 3.0, "0x0801 burst plus 0x0803-0x0805 probes")
        turn_plane = sum(
            stun_types.get(t, 0) for t in (0x0009, 0x0109, 0x0016, 0x0118)
        )
        if turn_plane:
            scores.add("messenger", 3.0, "0x0801 burst plus full TURN control plane")

    # --- Discord ------------------------------------------------------------
    if rtcp_total and rtcp_trailer3 / rtcp_total > 0.5 and not stun_types:
        scores.add("discord", 3.0,
                   "3-byte RTCP direction trailers and no STUN at all")

    # --- Google Meet ----------------------------------------------------------
    if goog_ping:
        scores.add("meet", 2.0, f"{goog_ping} GOOG-PING messages")
    if rtcp_total and rtcp_srtcp / rtcp_total > 0.5 and goog_ping:
        scores.add("meet", 1.0, "SRTCP-framed control traffic")
    if channel_wrapped > 50 and goog_ping:
        scores.add("meet", 1.0, "media in ChannelData frames")

    return scores
