"""Stream-quality analytics over extracted RTP/RTCP messages.

The measurement studies the paper cites (and contrasts itself against)
compute loss, jitter and bitrate; having them here makes the library a
complete passive RTC analysis toolkit rather than a compliance checker
only.
"""

from repro.analysis.quality import RtpStreamQuality, analyze_rtp_quality

__all__ = ["RtpStreamQuality", "analyze_rtp_quality"]
