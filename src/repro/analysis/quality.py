"""Per-stream RTP quality metrics: loss, reordering, jitter, bitrate.

Loss and reordering follow RFC 3550 appendix A.1's extended-sequence-number
bookkeeping; interarrival jitter is the appendix A.8 estimator evaluated
over capture timestamps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.dpi.messages import ExtractedMessage, Protocol


@dataclass
class RtpStreamQuality:
    """Quality summary for one (flow, SSRC) RTP stream."""

    ssrc: int
    payload_types: Tuple[int, ...]
    packets: int
    expected: int
    lost: int
    reordered: int
    duplicate: int
    jitter_seconds: float
    duration: float
    bytes_received: int

    @property
    def loss_rate(self) -> float:
        return self.lost / self.expected if self.expected else 0.0

    @property
    def bitrate_bps(self) -> float:
        return 8 * self.bytes_received / self.duration if self.duration else 0.0

    @property
    def packet_rate(self) -> float:
        return self.packets / self.duration if self.duration else 0.0


def analyze_rtp_quality(
    messages: Sequence[ExtractedMessage],
    clock_rate: int = 90000,
) -> Dict[Tuple[tuple, int], RtpStreamQuality]:
    """Compute quality metrics for every RTP stream among *messages*.

    Returns ``{(flow_key, ssrc): RtpStreamQuality}``.  ``clock_rate`` is
    needed to convert RTP timestamps for the jitter estimator; passive
    observers guess it from the payload type in practice.
    """
    groups: Dict[Tuple[tuple, int], List[ExtractedMessage]] = defaultdict(list)
    for extracted in messages:
        if extracted.protocol is Protocol.RTP:
            groups[(extracted.stream_key, extracted.message.ssrc)].append(extracted)

    out: Dict[Tuple[tuple, int], RtpStreamQuality] = {}
    for key, group in groups.items():
        group.sort(key=lambda m: m.timestamp)
        out[key] = _analyze_group(key[1], group, clock_rate)
    return out


def _analyze_group(
    ssrc: int, group: Sequence[ExtractedMessage], clock_rate: int
) -> RtpStreamQuality:
    # Extended sequence numbers (RFC 3550 A.1): unwrap 16-bit wraparound.
    cycles = 0
    previous_seq = None
    extended: List[int] = []
    payload_types = set()
    bytes_received = 0
    for extracted in group:
        packet = extracted.message
        payload_types.add(packet.payload_type)
        bytes_received += len(packet.payload)
        seq = packet.sequence_number
        if previous_seq is not None and seq < previous_seq and previous_seq - seq > 0x8000:
            cycles += 1 << 16
        extended.append(cycles + seq)
        previous_seq = seq

    seen = set()
    duplicate = 0
    reordered = 0
    highest = extended[0]
    for ext_seq in extended:
        if ext_seq in seen:
            duplicate += 1
            continue
        seen.add(ext_seq)
        if ext_seq < highest:
            reordered += 1
        highest = max(highest, ext_seq)

    base = min(seen)
    expected = highest - base + 1
    received_unique = len(seen)
    lost = max(0, expected - received_unique)

    # Interarrival jitter (RFC 3550 A.8), in seconds.
    jitter = 0.0
    previous: Tuple[float, float] = None
    for extracted in group:
        arrival = extracted.timestamp
        rtp_time = extracted.message.timestamp / clock_rate
        if previous is not None:
            transit = arrival - rtp_time
            prev_transit = previous[0] - previous[1]
            d = abs(transit - prev_transit)
            jitter += (d - jitter) / 16.0
        previous = (arrival, rtp_time)

    duration = group[-1].timestamp - group[0].timestamp
    return RtpStreamQuality(
        ssrc=ssrc,
        payload_types=tuple(sorted(payload_types)),
        packets=len(group),
        expected=expected,
        lost=lost,
        reordered=reordered,
        duplicate=duplicate,
        jitter_seconds=jitter,
        duration=duration,
        bytes_received=bytes_received,
    )
