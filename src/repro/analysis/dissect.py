"""Human-readable dissection of RTC datagrams.

A Wireshark-flavoured text rendering of what the DPI found in a datagram:
the proprietary prefix (hexdumped), every extracted message with its parsed
fields, trailers, and the compliance verdict.  Used by the ``dissect`` CLI
command and handy in notebooks when investigating a single packet.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core import ComplianceChecker
from repro.core.verdict import MessageVerdict
from repro.dpi.messages import DatagramAnalysis, ExtractedMessage, Protocol
from repro.protocols.quic.header import QuicHeader
from repro.protocols.rtcp.packets import RtcpPacket
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.constants import attribute_name
from repro.protocols.stun.message import ChannelData, StunMessage
from repro.utils.hexdump import hexdump


def dissect_datagram(
    analysis: DatagramAnalysis,
    verdicts: Optional[Sequence[MessageVerdict]] = None,
) -> str:
    """Render one analyzed datagram as indented text."""
    record = analysis.record
    lines = [
        f"Datagram @ {record.timestamp:.6f}s  "
        f"{record.src_ip}:{record.src_port} -> {record.dst_ip}:{record.dst_port}  "
        f"{len(record.payload)} bytes  [{analysis.classification.value}]"
    ]
    header = analysis.proprietary_header
    if header:
        lines.append(f"  Proprietary header ({len(header)} bytes):")
        lines.extend("    " + line for line in hexdump(header).splitlines())
    verdict_by_id = {}
    if verdicts:
        verdict_by_id = {id(v.message): v for v in verdicts}
    if not analysis.messages:
        lines.append("  No recognizable protocol message.")
    for message in analysis.messages:
        lines.extend(_dissect_message(message))
        verdict = verdict_by_id.get(id(message))
        if verdict is not None:
            if verdict.compliant:
                lines.append("    Compliance: COMPLIANT")
            else:
                lines.append(f"    Compliance: NON-COMPLIANT — "
                             f"{verdict.first_violation}")
    return "\n".join(lines)


def _dissect_message(extracted: ExtractedMessage) -> List[str]:
    label = extracted.protocol.value.upper().replace("_", "/")
    lines = [f"  {label} message @ offset {extracted.offset}, "
             f"{extracted.length} bytes"]
    message = extracted.message
    if isinstance(message, StunMessage):
        lines.extend(_dissect_stun(message))
    elif isinstance(message, ChannelData):
        lines.append(f"    ChannelData channel=0x{message.channel:04X} "
                     f"({len(message.data)} data bytes)")
    elif isinstance(message, RtpPacket):
        lines.extend(_dissect_rtp(message))
    elif isinstance(message, RtcpPacket):
        lines.extend(_dissect_rtcp(message))
    elif isinstance(message, QuicHeader):
        lines.extend(_dissect_quic(message))
    if extracted.trailer:
        lines.append(f"    Trailer ({len(extracted.trailer)} bytes): "
                     f"{extracted.trailer.hex()}")
    return lines


def _dissect_stun(message: StunMessage) -> List[str]:
    name = message.type_name or "UNDEFINED"
    flavour = "classic/RFC3489" if message.classic else "RFC5389/8489"
    lines = [
        f"    Type: 0x{message.msg_type:04X} ({name}), {flavour}",
        f"    Transaction ID: {message.transaction_id.hex()}",
    ]
    for attribute in message.attributes:
        attr_label = attribute_name(attribute.attr_type) or "UNDEFINED"
        preview = attribute.value[:16].hex()
        if len(attribute.value) > 16:
            preview += "…"
        lines.append(
            f"    Attribute 0x{attribute.attr_type:04X} ({attr_label}), "
            f"{len(attribute.value)} bytes: {preview}"
        )
    return lines


def _dissect_rtp(packet: RtpPacket) -> List[str]:
    lines = [
        f"    PT={packet.payload_type}  seq={packet.sequence_number}  "
        f"ts={packet.timestamp}  ssrc=0x{packet.ssrc:08X}"
        f"{'  M' if packet.marker else ''}"
        f"{'  P(' + str(packet.padding_length) + ')' if packet.padding_length else ''}",
    ]
    if packet.csrcs:
        lines.append(f"    CSRCs: {[hex(c) for c in packet.csrcs]}")
    extension = packet.extension
    if extension is not None:
        lines.append(f"    Extension profile=0x{extension.profile:04X} "
                     f"({len(extension.data)} bytes)")
        for element in extension.elements():
            lines.append(f"      element id={element.ext_id} "
                         f"len={element.declared_length} "
                         f"data={element.data.hex()}")
    lines.append(f"    Payload: {len(packet.payload)} bytes")
    return lines


def _dissect_rtcp(packet: RtcpPacket) -> List[str]:
    from repro.protocols.rtcp.constants import RTCP_TYPE_NAMES
    name = RTCP_TYPE_NAMES.get(packet.packet_type, "UNDEFINED")
    lines = [
        f"    PT={packet.packet_type} ({name})  count/fmt={packet.header.count}  "
        f"length={packet.header.wire_length} bytes",
    ]
    if packet.ssrc is not None:
        lines.append(f"    Sender SSRC: 0x{packet.ssrc:08X}")
    return lines


def _dissect_quic(header: QuicHeader) -> List[str]:
    if header.is_version_negotiation:
        kind = "Version Negotiation"
    elif header.is_long:
        kind = f"Long ({header.long_type.name})"
    else:
        kind = "Short (1-RTT)"
    lines = [f"    {kind}  dcid={header.dcid.hex() or '-'}"]
    if header.is_long:
        lines.append(f"    version=0x{header.version:08X}  "
                     f"scid={header.scid.hex() or '-'}")
        if header.payload_length is not None:
            lines.append(f"    declared length={header.payload_length}")
    return lines


def dissect_records(records, max_offset: int = 200,
                    limit: Optional[int] = None) -> str:
    """End-to-end helper: DPI + compliance + dissection for a record list."""
    from repro.dpi import DpiEngine

    result = DpiEngine(max_offset=max_offset).analyze_records(records)
    verdicts = ComplianceChecker().check(result.messages())
    blocks = []
    for analysis in result.analyses[:limit]:
        blocks.append(dissect_datagram(analysis, verdicts))
    return "\n\n".join(blocks)
