"""Call-timeline model: the annotated pre-call / call / post-call phases."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Phase(enum.Enum):
    PRE_CALL = "pre_call"
    CALL = "call"
    POST_CALL = "post_call"


@dataclass(frozen=True)
class CallWindow:
    """The experiment timeline (paper §3.1.2).

    ``margin`` is the ±2 s slack the timespan filter applies around the call
    window to absorb timing offsets and delayed delivery (§3.2.1).
    """

    capture_start: float
    call_start: float
    call_end: float
    capture_end: float
    margin: float = 2.0

    def __post_init__(self) -> None:
        if not self.capture_start <= self.call_start <= self.call_end <= self.capture_end:
            raise ValueError("timeline boundaries out of order")

    @property
    def call_duration(self) -> float:
        return self.call_end - self.call_start

    @property
    def extended_start(self) -> float:
        return self.call_start - self.margin

    @property
    def extended_end(self) -> float:
        return self.call_end + self.margin

    def phase_of(self, timestamp: float) -> Phase:
        if timestamp < self.call_start:
            return Phase.PRE_CALL
        if timestamp <= self.call_end:
            return Phase.CALL
        return Phase.POST_CALL

    def encloses(self, first_ts: float, last_ts: float) -> bool:
        """True when [first_ts, last_ts] fits inside the extended call window."""
        return first_ts >= self.extended_start and last_ts <= self.extended_end

    @classmethod
    def standard(
        cls,
        call_start: float = 60.0,
        call_duration: float = 300.0,
        pre_call: float = 60.0,
        post_call: float = 60.0,
    ) -> "CallWindow":
        """The paper's standard timeline: 60 s pre, 5 min call, 60 s post."""
        return cls(
            capture_start=call_start - pre_call,
            call_start=call_start,
            call_end=call_start + call_duration,
            capture_end=call_start + call_duration + post_call,
        )
