"""Transport-stream grouping and call-timeline models (paper §3.2)."""

from repro.streams.flow import Stream, StreamStats, group_streams
from repro.streams.timeline import CallWindow, Phase

__all__ = ["Stream", "StreamStats", "group_streams", "CallWindow", "Phase"]
