"""Grouping packets into 5-tuple transport streams.

The paper groups IP packets into *streams* by transport 5-tuple (both
directions of a conversation belong to one stream) because protocol
behaviours — keepalives, multi-packet media delivery — span packets, and
because unrelated traffic manifests as separable streams (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.packets.packet import PacketRecord

FlowKey = Tuple[Tuple[str, int], Tuple[str, int], str]


@dataclass
class Stream:
    """All packets of one bidirectional transport conversation, time-ordered."""

    key: FlowKey
    packets: List[PacketRecord] = field(default_factory=list)

    @property
    def transport(self) -> str:
        return self.key[2]

    @property
    def endpoint_a(self) -> Tuple[str, int]:
        return self.key[0]

    @property
    def endpoint_b(self) -> Tuple[str, int]:
        return self.key[1]

    @property
    def first_timestamp(self) -> float:
        return self.packets[0].timestamp

    @property
    def last_timestamp(self) -> float:
        return self.packets[-1].timestamp

    @property
    def timespan(self) -> Tuple[float, float]:
        return (self.first_timestamp, self.last_timestamp)

    @property
    def packet_count(self) -> int:
        return len(self.packets)

    @property
    def byte_count(self) -> int:
        return sum(len(p.payload) for p in self.packets)

    def add(self, packet: PacketRecord) -> None:
        self.packets.append(packet)

    def sort(self) -> None:
        self.packets.sort(key=lambda p: p.timestamp)

    def ports(self) -> Tuple[int, int]:
        return (self.key[0][1], self.key[1][1])

    def ips(self) -> Tuple[str, str]:
        return (self.key[0][0], self.key[1][0])

    def __iter__(self):
        return iter(self.packets)

    def __len__(self) -> int:
        return len(self.packets)


@dataclass(frozen=True)
class StreamStats:
    """Summary counters used in Table 1 style reporting."""

    stream_count: int
    packet_count: int
    byte_count: int

    @classmethod
    def of(cls, streams: Iterable[Stream]) -> "StreamStats":
        streams = list(streams)
        return cls(
            stream_count=len(streams),
            packet_count=sum(s.packet_count for s in streams),
            byte_count=sum(s.byte_count for s in streams),
        )

    def __add__(self, other: "StreamStats") -> "StreamStats":
        return StreamStats(
            stream_count=self.stream_count + other.stream_count,
            packet_count=self.packet_count + other.packet_count,
            byte_count=self.byte_count + other.byte_count,
        )


def group_streams(records: Iterable[PacketRecord]) -> Dict[FlowKey, Stream]:
    """Group *records* into bidirectional streams, each time-sorted."""
    streams: Dict[FlowKey, Stream] = {}
    for record in records:
        key = record.flow_key
        stream = streams.get(key)
        if stream is None:
            stream = Stream(key=key)
            streams[key] = stream
        stream.add(record)
    for stream in streams.values():
        stream.sort()
    return streams
