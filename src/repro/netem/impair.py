"""Deterministic fault injection over a simulated record stream.

An :class:`Impairer` applies one :class:`~repro.netem.profiles.ImpairmentProfile`
to a list of :class:`~repro.packets.packet.PacketRecord` as a **pure
transform**: the output is a function of (profile, seed, label, input
records) and nothing else, so it composes with ``run_cell_pipeline``,
the flow-sharded runner, and both DPI backends unchanged, and the same
seed always yields the same impaired sequence.

Semantics, in application order:

1. **UDP blackout** (``udp_blocked``): every ground-truth RTC UDP flow
   is re-emitted as TURN ChannelData frames over TCP port 443 (the
   app-level relay fallback); all other UDP traffic is dropped.  TCP
   records pass through.
2. **Loss**: independent random loss plus a per-flow Gilbert-Elliott
   burst chain.  UDP only — TCP retransmission hides transport loss
   from a payload-level capture.
3. **Duplication**: a kept UDP packet is occasionally re-delivered a
   fraction of a millisecond later.
4. **Bounded reordering**: a kept UDP packet is occasionally delayed by
   up to ``reorder_delay`` seconds.  Reordering is realized as a
   *timestamp* shift followed by the final re-sort, because every
   consumer orders streams by timestamp — a feed-order shuffle alone
   would be invisible by construction.
5. **NAT rebinding**: at ``at_fraction`` of the capture span, the
   device-side port of every still-active UDP socket is rewritten —
   fresh ports, or (``collide=True``) the affected sockets adopt each
   other's original ports, merging post-rebind packets into flow keys
   other streams already occupy.

Randomness is drawn from per-flow children of ``derive(seed, label)``
keyed by the flow's stable endpoint label, so one flow's decisions
never depend on which other flows exist.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.netem.profiles import ImpairmentProfile, get_profile
from repro.packets.packet import Direction, PacketRecord
from repro.protocols.stun.message import ChannelData
from repro.utils.rand import DeterministicRandom, derive

#: TURN servers listen for the TCP fallback on 443 to traverse
#: UDP-hostile middleboxes (RFC 8656 §2.1 deployment guidance).
TURN_TCP_PORT = 443

#: First device-side TCP source port assigned to fallback connections.
FALLBACK_PORT_BASE = 51000

#: First TURN channel number bound per fallback connection (0x4000-0x4FFF).
FALLBACK_CHANNEL_BASE = 0x4000

#: Device-side ports for post-rebind sockets land in this range.
REBIND_PORT_RANGE = (40000, 60000)

#: A duplicate is re-delivered this far after the original (seconds).
_DUP_DELAY = (0.0002, 0.002)


def _flow_label(record: PacketRecord) -> str:
    """Stable per-flow RNG label: sorted endpoints plus transport."""
    (a_ip, a_port), (b_ip, b_port), transport = record.flow_key
    return f"{a_ip}:{a_port}-{b_ip}:{b_port}/{transport}"


def _device_endpoint(record: PacketRecord) -> Tuple[str, int]:
    """The capture device's side of the conversation."""
    if record.direction is Direction.OUTBOUND:
        return (record.src_ip, record.src_port)
    return (record.dst_ip, record.dst_port)


class _GilbertElliottState:
    """One flow's position in the two-state burst-loss chain."""

    __slots__ = ("bad",)

    def __init__(self) -> None:
        self.bad = False


class Impairer:
    """Applies one impairment profile to record streams, deterministically.

    ``label`` namespaces the randomness (conventionally
    ``"{app}/{network}/{call_index}"``), so sibling cells impaired with
    the same seed draw independent streams, exactly like the simulators'
    own ``rng_for`` derivation.
    """

    def __init__(
        self,
        profile: Union[ImpairmentProfile, str],
        seed: Union[int, str] = 0,
        label: str = "",
    ):
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile = profile
        self._root = derive(seed, f"netem/{label}")

    def _flow_rng(self, record: PacketRecord, purpose: str) -> DeterministicRandom:
        return self._root.child(f"{purpose}/{_flow_label(record)}")

    def apply(self, records: Sequence[PacketRecord]) -> List[PacketRecord]:
        """Transform *records*; the input sequence is never mutated."""
        profile = self.profile
        out = list(records)
        if profile.is_noop:
            return out
        if profile.udp_blocked:
            out = self._apply_udp_blocked(out)
        if (
            profile.loss_rate > 0.0
            or profile.burst is not None
            or profile.duplicate_rate > 0.0
            or profile.reorder_rate > 0.0
        ):
            out = self._apply_per_packet(out)
        if profile.rebind is not None:
            out = self._apply_rebind(out)
        out.sort(key=lambda r: r.timestamp)
        return out

    # -- UDP blackout → TURN-over-TCP fallback ------------------------------

    def _apply_udp_blocked(self, records: List[PacketRecord]) -> List[PacketRecord]:
        """Drop all UDP; re-home ground-truth RTC flows into TCP/443.

        Only flows the *application* owns fall back (it re-routes its own
        media through its relay); background UDP has no such recourse and
        simply dies.  Records without truth labels (real pcaps) count as
        background — impairment is a simulation-layer transform.
        """
        rtc_flows = sorted({
            record.flow_key
            for record in records
            if record.transport == "UDP"
            and record.truth is not None
            and record.truth.is_rtc
        })
        mapping = {
            flow: (FALLBACK_PORT_BASE + index,
                   FALLBACK_CHANNEL_BASE + (index % 0x1000))
            for index, flow in enumerate(rtc_flows)
        }
        out: List[PacketRecord] = []
        for record in records:
            if record.transport != "UDP":
                out.append(record)
                continue
            assignment = mapping.get(record.flow_key)
            if assignment is None:
                continue
            device_port, channel = assignment
            frame = ChannelData(channel=channel, data=record.payload).build()
            # RFC 8656 §12.4: over TCP the frame is padded to 4 bytes.
            frame += b"\x00" * (-len(frame) % 4)
            device = _device_endpoint(record)
            remote = (
                (record.dst_ip, record.dst_port)
                if device == (record.src_ip, record.src_port)
                else (record.src_ip, record.src_port)
            )
            if record.direction is Direction.OUTBOUND:
                src = (device[0], device_port)
                dst = (remote[0], TURN_TCP_PORT)
            else:
                src = (remote[0], TURN_TCP_PORT)
                dst = (device[0], device_port)
            out.append(PacketRecord(
                timestamp=record.timestamp,
                src_ip=src[0],
                src_port=src[1],
                dst_ip=dst[0],
                dst_port=dst[1],
                transport="TCP",
                payload=frame,
                direction=record.direction,
                truth=record.truth,
            ))
        return out

    # -- loss / duplication / bounded reordering ----------------------------

    def _apply_per_packet(self, records: List[PacketRecord]) -> List[PacketRecord]:
        profile = self.profile
        burst = profile.burst
        rngs: Dict[object, DeterministicRandom] = {}
        states: Dict[object, _GilbertElliottState] = {}
        out: List[PacketRecord] = []
        for record in records:
            if record.transport != "UDP":
                out.append(record)
                continue
            key = record.flow_key
            rng = rngs.get(key)
            if rng is None:
                rng = self._flow_rng(record, "pkt")
                rngs[key] = rng
            dropped = False
            if profile.loss_rate > 0.0 and rng.random() < profile.loss_rate:
                dropped = True
            if burst is not None:
                state = states.get(key)
                if state is None:
                    state = _GilbertElliottState()
                    states[key] = state
                loss_p = burst.loss_bad if state.bad else burst.loss_good
                if rng.random() < loss_p:
                    dropped = True
                if state.bad:
                    if rng.random() < burst.p_exit:
                        state.bad = False
                elif rng.random() < burst.p_enter:
                    state.bad = True
            if dropped:
                continue
            timestamp = record.timestamp
            if profile.reorder_rate > 0.0 and rng.random() < profile.reorder_rate:
                timestamp += rng.uniform(0.0, profile.reorder_delay)
            kept = (
                record if timestamp == record.timestamp
                else replace(record, timestamp=timestamp)
            )
            out.append(kept)
            if profile.duplicate_rate > 0.0 and rng.random() < profile.duplicate_rate:
                out.append(replace(
                    kept, timestamp=timestamp + rng.uniform(*_DUP_DELAY)
                ))
        return out

    # -- mid-call NAT rebinding ---------------------------------------------

    def _apply_rebind(self, records: List[PacketRecord]) -> List[PacketRecord]:
        rebind = self.profile.rebind
        assert rebind is not None
        timestamps = [r.timestamp for r in records]
        if not timestamps:
            return records
        t0, t1 = min(timestamps), max(timestamps)
        if t1 <= t0:
            return records
        t_rebind = t0 + rebind.at_fraction * (t1 - t0)
        # A *socket* rebinds, not a flow: one local port talking to
        # several remotes (ICE checks, relay plus peer) moves as a unit.
        # Only the app's own RTC sockets are rewritten — rebinding
        # background sockets has no downstream observable (they are
        # filtered either way) but rotating their ports onto RTC sockets
        # would alias call media into endpoints the window heuristics
        # have already condemned, which models a filter bug, not a NAT.
        active: Dict[Tuple[str, int], List[bool]] = {}
        for record in records:
            if record.transport != "UDP":
                continue
            if record.truth is None or not record.truth.is_rtc:
                continue
            flags = active.setdefault(_device_endpoint(record), [False, False])
            flags[record.timestamp >= t_rebind] = True
        affected = sorted(
            endpoint for endpoint, flags in active.items() if flags[0] and flags[1]
        )
        if not affected:
            return records
        used_ports: Set[int] = set()
        for record in records:
            used_ports.add(record.src_port)
            used_ports.add(record.dst_port)
        new_ports: Dict[Tuple[str, int], int] = {}
        if rebind.collide and len(affected) >= 2:
            # Port-reuse collision: socket i adopts socket i+1's old port,
            # steering its post-rebind packets into an already-locked flow.
            for index, endpoint in enumerate(affected):
                new_ports[endpoint] = affected[(index + 1) % len(affected)][1]
        else:
            lo, hi = REBIND_PORT_RANGE
            for endpoint in affected:
                rng = self._root.child(f"rebind/{endpoint[0]}:{endpoint[1]}")
                port = lo + rng.randrange(hi - lo)
                while port in used_ports:
                    port = lo + rng.randrange(hi - lo)
                used_ports.add(port)
                new_ports[endpoint] = port
        out: List[PacketRecord] = []
        for record in records:
            if record.transport != "UDP" or record.timestamp < t_rebind:
                out.append(record)
                continue
            port = new_ports.get(_device_endpoint(record))
            if port is None:
                out.append(record)
            elif record.direction is Direction.OUTBOUND:
                out.append(replace(record, src_port=port))
            else:
                out.append(replace(record, dst_port=port))
        return out


def build_impairer(
    impairment: Union[ImpairmentProfile, str],
    seed: Union[int, str],
    label: str,
) -> Optional[Impairer]:
    """An :class:`Impairer` for *impairment*, or ``None`` when it is a no-op.

    The ``None`` fast path keeps the clean matrix byte-for-byte on its
    historical code path — no transform object, no RNG derivation.
    """
    profile = (
        get_profile(impairment) if isinstance(impairment, str) else impairment
    )
    if profile.is_noop:
        return None
    return Impairer(profile, seed, label)
