"""Deterministic network-impairment layer (the fourth matrix axis).

``repro.netem`` transforms a simulated record stream post-synthesis:
loss (random and Gilbert-Elliott bursts), bounded reordering,
duplication, mid-call NAT rebinding, and UDP blackout with
TURN-over-TCP fallback — each a pure, seeded ``records -> records``
transform that composes with every pipeline execution shape unchanged.
"""

from repro.netem.impair import Impairer, build_impairer
from repro.netem.profiles import (
    PROFILE_NAMES,
    PROFILES,
    GilbertElliott,
    ImpairmentProfile,
    NatRebind,
    get_profile,
)

__all__ = [
    "GilbertElliott",
    "Impairer",
    "ImpairmentProfile",
    "NatRebind",
    "PROFILES",
    "PROFILE_NAMES",
    "build_impairer",
    "get_profile",
]
