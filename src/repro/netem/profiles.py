"""Named network-impairment profiles — the fourth matrix axis.

The paper's matrix runs six apps over three *clean* network
configurations (§3.1.1).  Real RTC traffic additionally survives loss,
reordering, duplication, mid-call NAT rebinding, and networks that block
UDP outright (forcing TURN-over-TCP fallback) — exactly where protocol
behavior diverges from spec and where a compliance pipeline's own
machinery (flow-sticky fast path, online filter, sharded merge) is most
likely to be wrong.  An :class:`ImpairmentProfile` describes one such
path condition; :class:`~repro.netem.impair.Impairer` applies it as a
pure, seeded ``records -> records`` transform.

Profiles are plain frozen dataclasses so they pickle across process
pools and hash into planner cache keys.  The named registry
(:data:`PROFILES`) backs the ``--impairment`` CLI axis; arbitrary custom
profiles compose the same knobs freely (the hypothesis parity suite
generates them at random).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Modeled extra per-unit cost of a mid-call rebind: every rebound flow
#: splits (or collides) mid-stream, forcing the fast-path learner to
#: fall back, re-sweep, and relearn its framing signature.
REBIND_COST_FACTOR = 1.15

#: Floor for the planner volume factor — even a near-total blackout
#: still pays filter/stream bookkeeping per surviving record.
MIN_VOLUME_FACTOR = 0.05


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov burst-loss model (Gilbert-Elliott).

    Per packet the chain moves GOOD -> BAD with ``p_enter`` and
    BAD -> GOOD with ``p_exit``; packets drop with ``loss_good`` /
    ``loss_bad`` according to the current state.  The classic model for
    clustered radio/queue loss, as opposed to independent random loss.
    """

    p_enter: float = 0.02
    p_exit: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def __post_init__(self) -> None:
        for name in ("p_enter", "p_exit", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")

    def stationary_loss(self) -> float:
        """Long-run loss probability of the chain (for cost modeling)."""
        denom = self.p_enter + self.p_exit
        if denom <= 0.0:
            return self.loss_good
        pi_bad = self.p_enter / denom
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad


@dataclass(frozen=True)
class NatRebind:
    """A mid-call NAT rebinding that rewrites the device-side 5-tuple.

    At ``at_fraction`` of the capture span every active UDP flow's
    device-side port is rewritten — the capture-level view of a NAT
    table expiry / ICE local-socket restart.  ``collide=True`` models
    aggressive port reuse: instead of fresh ports, rebinding flows adopt
    *each other's* original device ports, so post-rebind packets of one
    media stream land on a flow key another stream already locked —
    precisely the case the fast-path learner must detect (fallback,
    re-sweep, relearn) rather than silently mis-attribute.
    """

    at_fraction: float = 0.5
    collide: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.at_fraction < 1.0:
            raise ValueError(
                f"at_fraction must be inside (0, 1), got {self.at_fraction!r}"
            )


@dataclass(frozen=True)
class ImpairmentProfile:
    """One deterministic fault-injection recipe for a record stream.

    All knobs compose; loss, duplication, and reordering apply to UDP
    only (TCP retransmission hides transport loss from a payload-level
    capture).  ``reorder_delay`` bounds how far a delayed packet can
    move, so reordering stays *bounded* — the tolerance the online
    filter and incremental checker are required to have.

    ``cost_scale`` overrides the planner's modeled record-volume factor
    (see :meth:`volume_factor`) for profiles whose cost is not a simple
    function of loss/duplication — e.g. ``udp_blocked`` halves DPI work
    because fallback traffic rides in TCP, which the UDP engine skips.
    """

    name: str = "custom"
    loss_rate: float = 0.0
    burst: Optional[GilbertElliott] = None
    reorder_rate: float = 0.0
    reorder_delay: float = 0.03
    duplicate_rate: float = 0.0
    rebind: Optional[NatRebind] = None
    udp_blocked: bool = False
    cost_scale: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("loss_rate", "reorder_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")
        if self.reorder_delay < 0.0:
            raise ValueError(f"reorder_delay must be >= 0, got {self.reorder_delay!r}")

    @property
    def is_noop(self) -> bool:
        """True when applying this profile cannot change any record."""
        return (
            self.loss_rate == 0.0
            and self.burst is None
            and self.reorder_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.rebind is None
            and not self.udp_blocked
        )

    def expected_loss(self) -> float:
        """Combined long-run loss probability of random + burst loss."""
        survive = 1.0 - self.loss_rate
        if self.burst is not None:
            survive *= 1.0 - self.burst.stationary_loss()
        return 1.0 - survive

    def volume_factor(self) -> float:
        """Expected record-volume (and modeled cost) multiplier.

        ``expected_cell_cost`` and the calibration cache multiply a
        cell's configured work units by this factor, so impaired cells
        are neither under-modeled (duplication, rebind relearn churn)
        nor over-modeled (loss, UDP blackout) by ``submission_order``
        and ``--plan auto``.
        """
        if self.cost_scale is not None:
            return self.cost_scale
        factor = (1.0 - self.expected_loss()) * (1.0 + self.duplicate_rate)
        if self.rebind is not None:
            factor *= REBIND_COST_FACTOR
        return max(factor, MIN_VOLUME_FACTOR)


#: The named profiles behind ``--impairment``.  ``none`` is the exact
#: historical behavior (no transform object is even constructed).
PROFILES: Dict[str, ImpairmentProfile] = {
    "none": ImpairmentProfile(name="none"),
    # Independent random loss with light reordering and duplication —
    # a congested but unremarkable access link.
    "lossy": ImpairmentProfile(
        name="lossy",
        loss_rate=0.02,
        reorder_rate=0.03,
        reorder_delay=0.04,
        duplicate_rate=0.01,
    ),
    # Clustered Gilbert-Elliott loss — radio fades / queue overflows.
    "burst": ImpairmentProfile(
        name="burst",
        burst=GilbertElliott(p_enter=0.02, p_exit=0.3, loss_good=0.0, loss_bad=0.5),
        reorder_rate=0.01,
        duplicate_rate=0.005,
    ),
    # Mid-call NAT rebinding with colliding port reuse plus light loss:
    # the fast-path learner's worst case — foreign SSRCs appear inside
    # an already-locked stream and must trigger fallback + relearn.
    "rebind": ImpairmentProfile(
        name="rebind",
        loss_rate=0.005,
        rebind=NatRebind(at_fraction=0.5, collide=True),
    ),
    # UDP blackout: RTC flows fall back to TURN ChannelData over TCP
    # port 443; non-RTC UDP simply dies.  DPI work collapses (the UDP
    # engine skips TCP), hence the explicit cost override.
    "udp_blocked": ImpairmentProfile(
        name="udp_blocked",
        udp_blocked=True,
        cost_scale=0.5,
    ),
}

PROFILE_NAMES: Tuple[str, ...] = tuple(PROFILES)


def get_profile(name: str) -> ImpairmentProfile:
    """Look up a named profile; unknown names list the valid choices."""
    try:
        return PROFILES[name]
    except KeyError:
        choices = ", ".join(PROFILE_NAMES)
        raise ValueError(
            f"unknown impairment profile {name!r}; expected one of: {choices}"
        ) from None
