"""RTCP compliance rules (criteria 1-5), including SRTCP framing.

Sources: RFC 3550 (SR/RR/SDES/BYE/APP), RFC 4585 (feedback), RFC 3611 (XR),
RFC 3711 (SRTCP).  Encrypted bodies are common in RTC traffic, so body-level
checks only run when the message is plaintext; framing checks (trailers,
SRTCP authentication tags) always run.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.verdict import Criterion, Violation
from repro.dpi.messages import ExtractedMessage
from repro.protocols.rtcp.constants import (
    KNOWN_PSFB_FORMATS,
    KNOWN_RTPFB_FORMATS,
    KNOWN_XR_BLOCK_TYPES,
    RTCP_TYPE_NAMES,
    RtcpPacketType,
)
from repro.protocols.rtcp.packets import (
    RtcpPacket,
    RtcpParseError,
    SdesPacket,
)

#: SRTCP trailer lengths: E-flag ‖ index word alone, or with the 10-byte
#: HMAC-SHA1-80 authentication tag.
SRTCP_TAGLESS_LEN = 4
SRTCP_TAGGED_LEN = 14
#: Indexes count control packets; plausible values are small.
MAX_PLAUSIBLE_INDEX = 1 << 24


def _srtcp_index(trailer: bytes, offset: int) -> Optional[int]:
    word = int.from_bytes(trailer[offset:offset + 4], "big")
    index = word & 0x7FFFFFFF
    return index if index < MAX_PLAUSIBLE_INDEX else None


def classify_trailer(trailer: bytes) -> str:
    """Classify bytes following the declared RTCP length.

    Returns one of: ``"none"``, ``"srtcp"`` (full trailer with auth tag),
    ``"srtcp-no-tag"`` (E‖index but no tag — the Google Meet violation),
    ``"proprietary"`` (anything else — e.g. Discord's 3-byte trailer).
    """
    if not trailer:
        return "none"
    if len(trailer) == SRTCP_TAGGED_LEN and _srtcp_index(trailer, 0) is not None:
        return "srtcp"
    if len(trailer) == SRTCP_TAGLESS_LEN and _srtcp_index(trailer, 0) is not None:
        return "srtcp-no-tag"
    return "proprietary"


def check_rtcp(extracted: ExtractedMessage, sequential: bool = True) -> List[Violation]:
    """Run the five criteria over one RTCP message."""
    packet: RtcpPacket = extracted.message
    violations: List[Violation] = []

    def done() -> bool:
        return sequential and bool(violations)

    # Criterion 1: packet type defined.
    if packet.packet_type not in RTCP_TYPE_NAMES:
        violations.append(
            Violation(
                Criterion.MESSAGE_TYPE,
                "undefined-packet-type",
                f"RTCP packet type {packet.packet_type} is not defined "
                f"(expected 200-207)",
            )
        )
    if done():
        return violations

    trailer_kind = classify_trailer(extracted.trailer)
    encrypted = trailer_kind in ("srtcp", "srtcp-no-tag")

    # Criterion 2: header fields — count vs length arithmetic.
    problem = _check_count_consistency(packet)
    if problem is not None:
        violations.append(Violation(Criterion.HEADER_FIELDS, *problem))
    if done():
        return violations

    # Criteria 3-4: body structure — only meaningful for plaintext bodies.
    if not encrypted:
        violations.extend(_check_body(packet, sequential))
        if done():
            return violations

    # Criterion 5: framing semantics.
    if trailer_kind == "srtcp-no-tag":
        violations.append(
            Violation(
                Criterion.SEMANTICS,
                "srtcp-missing-auth-tag",
                "SRTCP message carries the E-flag and index but no "
                "authentication tag; RFC 3711 §3.4 makes the tag mandatory",
            )
        )
    elif trailer_kind == "proprietary":
        violations.append(
            Violation(
                Criterion.SEMANTICS,
                "undefined-trailing-bytes",
                f"{len(extracted.trailer)} bytes beyond the declared RTCP "
                f"length are not defined by any RTCP/SRTCP specification",
            )
        )
    return violations


def _check_count_consistency(packet: RtcpPacket):
    """The 5-bit count field must fit the declared length."""
    count = packet.header.count
    body = len(packet.body)
    if packet.packet_type == RtcpPacketType.SR and body < 24 + count * 24:
        return ("count-length-mismatch",
                f"SR with RC={count} needs {24 + count * 24} body bytes, has {body}")
    if packet.packet_type == RtcpPacketType.RR and body < 4 + count * 24:
        return ("count-length-mismatch",
                f"RR with RC={count} needs {4 + count * 24} body bytes, has {body}")
    if packet.packet_type == RtcpPacketType.BYE and body < count * 4:
        return ("count-length-mismatch",
                f"BYE with SC={count} needs {count * 4} body bytes, has {body}")
    if packet.packet_type == RtcpPacketType.APP and body < 8:
        return ("count-length-mismatch", f"APP needs 8 body bytes, has {body}")
    if (
        packet.packet_type in (RtcpPacketType.RTPFB, RtcpPacketType.PSFB)
        and body < 8
    ):
        return ("count-length-mismatch",
                f"feedback packet needs 8 body bytes, has {body}")
    return None


def _check_body(packet: RtcpPacket, sequential: bool) -> List[Violation]:
    violations: List[Violation] = []

    def add(criterion: Criterion, code: str, detail: str) -> bool:
        violations.append(Violation(criterion, code, detail))
        return sequential

    if packet.packet_type == RtcpPacketType.SDES:
        try:
            sdes = SdesPacket.from_packet(packet)
        except RtcpParseError as exc:
            add(Criterion.ATTRIBUTE_VALUES, "malformed-sdes", str(exc))
            return violations
        for chunk in sdes.chunks:
            for item in chunk.items:
                if not 1 <= item.item_type <= 8:
                    if add(
                        Criterion.ATTRIBUTE_TYPES,
                        "undefined-sdes-item",
                        f"SDES item type {item.item_type} outside 1-8 "
                        f"(RFC 3550 §6.5)",
                    ):
                        return violations
    elif packet.packet_type == RtcpPacketType.RTPFB:
        if packet.header.count not in KNOWN_RTPFB_FORMATS:
            add(
                Criterion.ATTRIBUTE_TYPES,
                "undefined-feedback-format",
                f"RTPFB FMT {packet.header.count} is not registered "
                f"(RFC 4585 §6.2)",
            )
    elif packet.packet_type == RtcpPacketType.PSFB:
        if packet.header.count not in KNOWN_PSFB_FORMATS:
            add(
                Criterion.ATTRIBUTE_TYPES,
                "undefined-feedback-format",
                f"PSFB FMT {packet.header.count} is not registered "
                f"(RFC 4585 §6.3)",
            )
    elif packet.packet_type == RtcpPacketType.APP:
        name = packet.body[4:8] if len(packet.body) >= 8 else b""
        if not all(0x20 <= b < 0x7F for b in name):
            add(
                Criterion.ATTRIBUTE_VALUES,
                "bad-app-name",
                f"APP name {name!r} is not printable ASCII (RFC 3550 §6.7)",
            )
    elif packet.packet_type == RtcpPacketType.XR:
        offset = 4
        body = packet.body
        while offset + 4 <= len(body):
            block_type = body[offset]
            block_len = int.from_bytes(body[offset + 2:offset + 4], "big") * 4
            if block_type not in KNOWN_XR_BLOCK_TYPES:
                if add(
                    Criterion.ATTRIBUTE_TYPES,
                    "undefined-xr-block",
                    f"XR block type {block_type} is not registered (RFC 3611)",
                ):
                    return violations
            offset += 4 + block_len
    return violations
