"""QUIC compliance rules (criteria 1-5).

Source: RFC 9000.  QUIC payloads (and most header bits) are encrypted, so
— as in the paper — only invariant structure is judged: header form, fixed
bit, version, connection-ID lengths, and per-type framing.  Structural
errors are rejected at parse time; what reaches the checker is largely
compliant, which is exactly the paper's finding (QUIC: 100%).
"""

from __future__ import annotations

from typing import List

from repro.core.verdict import Criterion, Violation
from repro.dpi.messages import ExtractedMessage
from repro.protocols.quic.header import QUIC_V1, QUIC_V2, QuicHeader


def check_quic(extracted: ExtractedMessage, sequential: bool = True) -> List[Violation]:
    header: QuicHeader = extracted.message
    violations: List[Violation] = []

    # Criterion 1: packet type. Long types 0-3 and the short form are the
    # only encodings, and the parser guarantees them; version negotiation
    # (version 0) is likewise defined.

    # Criterion 2: header fields.
    if not header.is_version_negotiation and not header.fixed_bit:
        violations.append(
            Violation(
                Criterion.HEADER_FIELDS,
                "fixed-bit-clear",
                "the fixed bit (0x40) must be 1 in v1 packets (RFC 9000 §17)",
            )
        )
        if sequential:
            return violations
    if header.version is not None and header.version not in (0, QUIC_V1, QUIC_V2):
        violations.append(
            Violation(
                Criterion.HEADER_FIELDS,
                "unknown-version",
                f"QUIC version 0x{header.version:08X} is not a published version",
            )
        )
        if sequential:
            return violations
    if len(header.dcid) > 20 or len(header.scid) > 20:
        violations.append(
            Violation(
                Criterion.HEADER_FIELDS,
                "cid-too-long",
                "connection IDs must not exceed 20 bytes (RFC 9000 §17.2)",
            )
        )

    # Criteria 3-5: attribute-level and semantic rules operate on frame
    # contents, which are encrypted — nothing further is judgeable from
    # passive observation.
    return violations
