"""The two compliance metrics of §5.1.

- **volume metric**: share of compliant messages over all messages;
- **message-type metric**: each distinct (protocol, message type) pair is
  one unit, compliant only if *every* observed instance is compliant.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.verdict import MessageVerdict
from repro.dpi.messages import Protocol

TypeKey = Tuple[str, str]  # (protocol value, message-type label)


@dataclass(frozen=True)
class VolumeCompliance:
    """Compliant/total message counts."""

    compliant: int
    total: int

    @property
    def ratio(self) -> float:
        return self.compliant / self.total if self.total else 1.0

    def __add__(self, other: "VolumeCompliance") -> "VolumeCompliance":
        return VolumeCompliance(
            compliant=self.compliant + other.compliant,
            total=self.total + other.total,
        )


@dataclass
class TypeComplianceEntry:
    """All observations of one message type."""

    protocol: str
    type_label: str
    total: int = 0
    non_compliant: int = 0
    example_violations: List[str] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return self.non_compliant == 0


def volume_metric(
    verdicts: Sequence[MessageVerdict],
    protocol: Optional[Protocol] = None,
) -> VolumeCompliance:
    """Volume-based compliance, optionally restricted to one protocol."""
    compliant = total = 0
    for verdict in verdicts:
        if protocol is not None and verdict.message.protocol is not protocol:
            continue
        total += 1
        if verdict.compliant:
            compliant += 1
    return VolumeCompliance(compliant=compliant, total=total)


def message_type_metric(
    verdicts: Sequence[MessageVerdict],
) -> Dict[TypeKey, TypeComplianceEntry]:
    """Message-type-based compliance: one entry per observed type."""
    entries: Dict[TypeKey, TypeComplianceEntry] = {}
    for verdict in verdicts:
        key = verdict.message.type_key()
        entry = entries.get(key)
        if entry is None:
            entry = TypeComplianceEntry(protocol=key[0], type_label=key[1])
            entries[key] = entry
        entry.total += 1
        if not verdict.compliant:
            entry.non_compliant += 1
            if len(entry.example_violations) < 3:
                entry.example_violations.append(str(verdict.first_violation))
    return entries


@dataclass
class ComplianceSummary:
    """Aggregated compliance for one application (or any message set)."""

    app: str
    volume: VolumeCompliance
    volume_by_protocol: Dict[str, VolumeCompliance]
    types: Dict[TypeKey, TypeComplianceEntry]

    @classmethod
    def from_verdicts(cls, app: str, verdicts: Sequence[MessageVerdict]):
        by_protocol: Dict[str, VolumeCompliance] = {}
        for protocol in Protocol:
            volume = volume_metric(verdicts, protocol)
            if volume.total:
                by_protocol[protocol.value] = volume
        return cls(
            app=app,
            volume=volume_metric(verdicts),
            volume_by_protocol=by_protocol,
            types=message_type_metric(verdicts),
        )

    def type_ratio(self, protocol: Optional[str] = None) -> Tuple[int, int]:
        """(compliant types, total types), optionally for one protocol."""
        compliant = total = 0
        for entry in self.types.values():
            if protocol is not None and entry.protocol != protocol:
                continue
            total += 1
            if entry.compliant:
                compliant += 1
        return compliant, total

    def observed_types(self, protocol: str) -> Dict[str, TypeComplianceEntry]:
        return {
            entry.type_label: entry
            for entry in self.types.values()
            if entry.protocol == protocol
        }


def merge_type_entries(
    summaries: Iterable[ComplianceSummary], protocol: str
) -> Tuple[int, int]:
    """Protocol-centric type metric across apps (Table 3's bottom row).

    A type used by multiple applications counts once *per application*,
    because each vendor interprets the same protocol element independently.
    """
    compliant = total = 0
    for summary in summaries:
        c, t = summary.type_ratio(protocol)
        compliant += c
        total += t
    return compliant, total
