"""The two compliance metrics of §5.1.

- **volume metric**: share of compliant messages over all messages;
- **message-type metric**: each distinct (protocol, message type) pair is
  one unit, compliant only if *every* observed instance is compliant.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.verdict import MessageVerdict
from repro.dpi.messages import Protocol

TypeKey = Tuple[str, str]  # (protocol value, message-type label)


@dataclass(frozen=True)
class VolumeCompliance:
    """Compliant/total message counts."""

    compliant: int
    total: int

    @property
    def ratio(self) -> float:
        return self.compliant / self.total if self.total else 1.0

    def __add__(self, other: "VolumeCompliance") -> "VolumeCompliance":
        return VolumeCompliance(
            compliant=self.compliant + other.compliant,
            total=self.total + other.total,
        )


@dataclass
class TypeComplianceEntry:
    """All observations of one message type."""

    protocol: str
    type_label: str
    total: int = 0
    non_compliant: int = 0
    example_violations: List[str] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return self.non_compliant == 0


def volume_metric(
    verdicts: Sequence[MessageVerdict],
    protocol: Optional[Protocol] = None,
) -> VolumeCompliance:
    """Volume-based compliance, optionally restricted to one protocol."""
    compliant = total = 0
    for verdict in verdicts:
        if protocol is not None and verdict.message.protocol is not protocol:
            continue
        total += 1
        if verdict.compliant:
            compliant += 1
    return VolumeCompliance(compliant=compliant, total=total)


def message_type_metric(
    verdicts: Sequence[MessageVerdict],
) -> Dict[TypeKey, TypeComplianceEntry]:
    """Message-type-based compliance: one entry per observed type."""
    entries: Dict[TypeKey, TypeComplianceEntry] = {}
    for verdict in verdicts:
        key = verdict.message.type_key()
        entry = entries.get(key)
        if entry is None:
            entry = TypeComplianceEntry(protocol=key[0], type_label=key[1])
            entries[key] = entry
        entry.total += 1
        if not verdict.compliant:
            entry.non_compliant += 1
            if len(entry.example_violations) < 3:
                entry.example_violations.append(str(verdict.first_violation))
    return entries


@dataclass
class ComplianceSummary:
    """Aggregated compliance for one application (or any message set)."""

    app: str
    volume: VolumeCompliance
    volume_by_protocol: Dict[str, VolumeCompliance]
    types: Dict[TypeKey, TypeComplianceEntry]

    @classmethod
    def from_verdicts(cls, app: str, verdicts: Sequence[MessageVerdict]):
        by_protocol: Dict[str, VolumeCompliance] = {}
        for protocol in Protocol:
            volume = volume_metric(verdicts, protocol)
            if volume.total:
                by_protocol[protocol.value] = volume
        return cls(
            app=app,
            volume=volume_metric(verdicts),
            volume_by_protocol=by_protocol,
            types=message_type_metric(verdicts),
        )

    def type_ratio(self, protocol: Optional[str] = None) -> Tuple[int, int]:
        """(compliant types, total types), optionally for one protocol."""
        compliant = total = 0
        for entry in self.types.values():
            if protocol is not None and entry.protocol != protocol:
                continue
            total += 1
            if entry.compliant:
                compliant += 1
        return compliant, total

    def observed_types(self, protocol: str) -> Dict[str, TypeComplianceEntry]:
        return {
            entry.type_label: entry
            for entry in self.types.values()
            if entry.protocol == protocol
        }


class StreamingSummary:
    """Build a :class:`ComplianceSummary` from verdicts as they stream.

    Accepts verdicts one at a time — in any order — without ever holding
    the verdict list: pass the verdict's global message index (as emitted
    by :class:`repro.core.checker.CheckerStream`) and the finished
    summary is *identical* to ``ComplianceSummary.from_verdicts`` over
    the index-ordered batch, including type-entry insertion order and
    the first-three example-violation cap, both of which are defined by
    message order rather than arrival order.  Memory is O(distinct
    message types), not O(messages).
    """

    _EXAMPLE_CAP = 3

    def __init__(self, app: str):
        self.app = app
        self._added = 0
        self._volume = [0, 0]  # [compliant, total]
        self._by_protocol: Dict[str, List[int]] = {}
        self._entries: Dict[TypeKey, TypeComplianceEntry] = {}
        self._first_seen: Dict[TypeKey, int] = {}
        #: per type: up to three (index, text) examples, smallest indices win.
        self._examples: Dict[TypeKey, List[Tuple[int, str]]] = {}

    @property
    def added(self) -> int:
        return self._added

    def add(self, verdict: MessageVerdict, index: Optional[int] = None) -> None:
        """Fold one verdict in; *index* defaults to arrival order."""
        if index is None:
            index = self._added
        self._added += 1
        compliant = verdict.compliant
        self._volume[1] += 1
        proto = verdict.message.protocol.value
        proto_counts = self._by_protocol.setdefault(proto, [0, 0])
        proto_counts[1] += 1
        if compliant:
            self._volume[0] += 1
            proto_counts[0] += 1

        key = verdict.message.type_key()
        entry = self._entries.get(key)
        if entry is None:
            entry = TypeComplianceEntry(protocol=key[0], type_label=key[1])
            self._entries[key] = entry
            self._first_seen[key] = index
        elif index < self._first_seen[key]:
            self._first_seen[key] = index
        entry.total += 1
        if not compliant:
            entry.non_compliant += 1
            examples = self._examples.setdefault(key, [])
            examples.append((index, str(verdict.first_violation)))
            examples.sort(key=lambda pair: pair[0])
            del examples[self._EXAMPLE_CAP:]

    def result(self) -> ComplianceSummary:
        """The finished summary, bit-identical to the batch construction."""
        by_protocol = {
            protocol.value: VolumeCompliance(*self._by_protocol[protocol.value])
            for protocol in Protocol
            if self._by_protocol.get(protocol.value, (0, 0))[1]
        }
        types: Dict[TypeKey, TypeComplianceEntry] = {}
        for key in sorted(self._entries, key=self._first_seen.__getitem__):
            entry = self._entries[key]
            entry.example_violations = [
                text for _, text in self._examples.get(key, [])
            ]
            types[key] = entry
        return ComplianceSummary(
            app=self.app,
            volume=VolumeCompliance(*self._volume),
            volume_by_protocol=by_protocol,
            types=types,
        )


def merge_type_entries(
    summaries: Iterable[ComplianceSummary], protocol: str
) -> Tuple[int, int]:
    """Protocol-centric type metric across apps (Table 3's bottom row).

    A type used by multiple applications counts once *per application*,
    because each vendor interprets the same protocol element independently.
    """
    compliant = total = 0
    for summary in summaries:
        c, t = summary.type_ratio(protocol)
        compliant += c
        total += t
    return compliant, total
