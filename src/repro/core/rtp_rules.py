"""RTP compliance rules (criteria 1-5).

Sources: RFC 3550 (header), RFC 3551 (payload types — informative only; the
7-bit PT field itself admits any value) and RFC 8285 (header extensions).
"""

from __future__ import annotations

from typing import List

from repro.core.verdict import Criterion, Violation
from repro.dpi.messages import ExtractedMessage
from repro.protocols.rtp.extensions import (
    ONE_BYTE_PROFILE,
    TWO_BYTE_PROFILE_BASE,
    TWO_BYTE_PROFILE_MASK,
)
from repro.protocols.rtp.header import RtpPacket


def _profile_defined(profile: int) -> bool:
    """RFC 8285 defines 0xBEDE and the 0x1000-0x100F appbits range."""
    return profile == ONE_BYTE_PROFILE or (profile & TWO_BYTE_PROFILE_MASK) == TWO_BYTE_PROFILE_BASE


def check_rtp(extracted: ExtractedMessage, sequential: bool = True) -> List[Violation]:
    """Run the five criteria over one RTP message."""
    packet: RtpPacket = extracted.message
    violations: List[Violation] = []

    def done() -> bool:
        return sequential and bool(violations)

    # Criterion 1: the "message type" of RTP is its payload type — a 7-bit
    # field with no reserved encodings, so every value is structurally
    # defined (the paper removed Peafowl's PT restriction for this reason).
    # Version != 2 is rejected at parse time.

    # Criterion 2: header fields.
    if packet.invalid_padding:
        violations.append(
            Violation(
                Criterion.HEADER_FIELDS,
                "bad-padding",
                "padding bit set but the pad-count octet is zero or exceeds "
                "the payload (RFC 3550 §5.1)",
            )
        )
    if done():
        return violations

    extension = packet.extension
    if extension is None:
        return violations

    # Criterion 3: extension profile must be publicly defined.
    if not _profile_defined(extension.profile):
        violations.append(
            Violation(
                Criterion.ATTRIBUTE_TYPES,
                "undefined-extension-profile",
                f"header-extension profile 0x{extension.profile:04X} is not "
                f"0xBEDE or 0x1000-0x100F (RFC 8285)",
            )
        )
    if done():
        return violations

    # Criterion 4: extension element values.
    for element in extension.elements():
        if element.ext_id == 0 and element.declared_length > 0:
            violations.append(
                Violation(
                    Criterion.ATTRIBUTE_VALUES,
                    "id-zero-with-length",
                    "one-byte extension element with ID 0 must be a padding "
                    "byte with no length/data (RFC 8285 §4.2), but its length "
                    f"field encodes {element.declared_length} data bytes",
                )
            )
            if sequential:
                return violations
        elif element.declared_length > len(element.data):
            violations.append(
                Violation(
                    Criterion.ATTRIBUTE_VALUES,
                    "truncated-extension-element",
                    f"element id {element.ext_id} declares "
                    f"{element.declared_length} bytes but only "
                    f"{len(element.data)} remain in the extension block",
                )
            )
            if sequential:
                return violations

    # Criterion 5: no RTP-specific cross-message rule marks messages
    # non-compliant in this model (multi-RTP datagrams and non-random SSRCs
    # are reported as findings, not violations — paper §5.3).
    return violations
