"""STUN/TURN compliance rules (criteria 1-5).

Sources: RFC 3489, RFC 5389, RFC 8489 (STUN), RFC 8656 (TURN), RFC 8445
(ICE) plus the WebRTC-documented extensions.  A message is compliant if it
adheres to *any* published version (paper footnote 2), so the rules accept
both classic and magic-cookie framing.
"""

from __future__ import annotations

import zlib
from typing import Dict, FrozenSet, List, Optional

from repro.core.verdict import Criterion, Violation
from repro.dpi.messages import ExtractedMessage
from repro.protocols.stun.attributes import (
    ATTRIBUTE_FIXED_LENGTHS,
    ATTRIBUTE_MAX_LENGTHS,
    decode_error_code,
)
from repro.protocols.stun.constants import (
    CHANNEL_NUMBER_MAX,
    CHANNEL_NUMBER_MIN,
    KNOWN_ATTRIBUTE_TYPES,
    KNOWN_MESSAGE_TYPES,
    AddressFamily,
    AttributeType,
    attribute_name,
)
from repro.protocols.stun.message import ChannelData, StunMessage

_A = AttributeType

#: Address-bearing attributes: 4-byte prelude + 4 or 16 address bytes.
_ADDRESS_ATTRIBUTES = frozenset(
    int(a)
    for a in (
        _A.MAPPED_ADDRESS, _A.RESPONSE_ADDRESS, _A.SOURCE_ADDRESS,
        _A.CHANGED_ADDRESS, _A.REFLECTED_FROM, _A.XOR_MAPPED_ADDRESS,
        _A.XOR_PEER_ADDRESS, _A.XOR_RELAYED_ADDRESS, _A.ALTERNATE_SERVER,
        _A.RESPONSE_ORIGIN, _A.OTHER_ADDRESS,
    )
)

#: Attributes only meaningful in ICE *requests* (RFC 8445 §7.1); their
#: presence in a success response is the paper's criterion-4 example.
_REQUEST_ONLY_ATTRIBUTES = frozenset(
    int(a) for a in (_A.PRIORITY, _A.USE_CANDIDATE)
)

#: Per-message-type attribute whitelists where the RFC closes the set.
#: Data Indication: XOR-PEER-ADDRESS + DATA (or ICMP), nothing else
#: (RFC 8656 §11.6); Send Indication adds DONT-FRAGMENT (§11.4).
_CLOSED_ATTRIBUTE_SETS: Dict[int, FrozenSet[int]] = {
    0x0017: frozenset({int(_A.XOR_PEER_ADDRESS), int(_A.DATA), int(_A.ICMP)}),
    0x0016: frozenset({int(_A.XOR_PEER_ADDRESS), int(_A.DATA), int(_A.DONT_FRAGMENT)}),
}

#: Thresholds for the criterion-5 pattern detectors.
REPEAT_TXID_MIN = 5          # unanswered same-transaction retransmissions
REPEAT_TXID_MIN_SPAN = 5.0   # ...spread over at least this many seconds
ALLOCATE_PINGPONG_MIN = 10   # periodic Allocate Requests in one stream
ALLOCATE_PINGPONG_CV = 0.5   # max coefficient of variation of intervals
#: Criterion-2 example from §4.2: transaction IDs "that appear sequential
#: rather than randomly generated".  A run of this many new transactions
#: whose IDs increase by tiny steps cannot plausibly be random.
SEQUENTIAL_TXID_RUN = 5
SEQUENTIAL_TXID_MAX_STEP = 16


class StunSessionContext:
    """Cross-message state the criterion-5 checks need."""

    def __init__(self, messages: List[ExtractedMessage]):
        self.flagged_txids: FrozenSet[bytes] = frozenset()
        self.pingpong_streams: FrozenSet = frozenset()
        self.sequential_txids: FrozenSet[bytes] = frozenset()
        requests: Dict[bytes, List[float]] = {}
        answered: set = set()
        allocate_times: Dict[object, List[float]] = {}
        request_order: Dict[object, List[bytes]] = {}
        for extracted in messages:
            message = extracted.message
            if not isinstance(message, StunMessage):
                continue
            msg_class = message.msg_type & 0x0110
            if msg_class == 0x0000:  # request
                requests.setdefault(message.transaction_id, []).append(
                    extracted.timestamp
                )
                order = request_order.setdefault(extracted.stream_key, [])
                if not order or order[-1] != message.transaction_id:
                    order.append(message.transaction_id)
                if message.msg_type == 0x0003:
                    allocate_times.setdefault(extracted.stream_key, []).append(
                        extracted.timestamp
                    )
            elif msg_class in (0x0100, 0x0110):  # success / error response
                answered.add(message.transaction_id)
        self.sequential_txids = _find_sequential_runs(request_order)

        flagged = set()
        for txid, times in requests.items():
            if txid in answered or len(times) < REPEAT_TXID_MIN:
                continue
            if max(times) - min(times) >= REPEAT_TXID_MIN_SPAN:
                flagged.add(txid)
        self.flagged_txids = frozenset(flagged)

        pingpong = set()
        for stream_key, times in allocate_times.items():
            if len(times) < ALLOCATE_PINGPONG_MIN:
                continue
            times.sort()
            intervals = [b - a for a, b in zip(times, times[1:])]
            mean = sum(intervals) / len(intervals)
            if mean <= 0:
                continue
            variance = sum((x - mean) ** 2 for x in intervals) / len(intervals)
            if (variance ** 0.5) / mean <= ALLOCATE_PINGPONG_CV:
                pingpong.add(stream_key)
        self.pingpong_streams = frozenset(pingpong)


def _find_sequential_runs(
    request_order: Dict[object, List[bytes]]
) -> FrozenSet[bytes]:
    """Transaction IDs belonging to a long small-increment run."""
    flagged = set()
    for order in request_order.values():
        run: List[bytes] = []
        for txid in order:
            if run:
                try:
                    delta = int.from_bytes(txid, "big") - int.from_bytes(
                        run[-1], "big"
                    )
                except ValueError:  # pragma: no cover - txids are bytes
                    delta = None
                if delta is not None and 1 <= delta <= SEQUENTIAL_TXID_MAX_STEP:
                    run.append(txid)
                    continue
            if len(run) >= SEQUENTIAL_TXID_RUN:
                flagged.update(run)
            run = [txid]
        if len(run) >= SEQUENTIAL_TXID_RUN:
            flagged.update(run)
    return frozenset(flagged)


def check_stun(
    extracted: ExtractedMessage,
    context: StunSessionContext,
    sequential: bool = True,
) -> List[Violation]:
    """Run the five criteria over one STUN/TURN message."""
    message = extracted.message
    if isinstance(message, ChannelData):
        return _check_channel_data(extracted, sequential)
    violations: List[Violation] = []

    def done() -> bool:
        return sequential and bool(violations)

    # Criterion 1: message type defined.
    if message.msg_type not in KNOWN_MESSAGE_TYPES:
        violations.append(
            Violation(
                Criterion.MESSAGE_TYPE,
                "undefined-message-type",
                f"STUN message type 0x{message.msg_type:04X} is not defined "
                f"in any considered specification",
            )
        )
    if done():
        return violations

    # Criterion 2: header fields.  Framing errors (length, top bits) are
    # rejected at parse time; what remains is transaction-ID sanity.
    if len(message.transaction_id) not in (12, 16):
        violations.append(
            Violation(
                Criterion.HEADER_FIELDS,
                "bad-transaction-id",
                f"transaction ID of {len(message.transaction_id)} bytes",
            )
        )
    if done():
        return violations
    if message.transaction_id in context.sequential_txids:
        violations.append(
            Violation(
                Criterion.HEADER_FIELDS,
                "sequential-transaction-id",
                "transaction IDs increment sequentially across requests; "
                "RFC 8489 §5 requires cryptographically random IDs",
            )
        )
    if done():
        return violations

    # Criterion 3: attribute types defined.
    for attr in message.attributes:
        if attr.attr_type not in KNOWN_ATTRIBUTE_TYPES:
            violations.append(
                Violation(
                    Criterion.ATTRIBUTE_TYPES,
                    "undefined-attribute",
                    f"attribute type 0x{attr.attr_type:04X} is not defined "
                    f"in any considered specification",
                )
            )
            if sequential:
                return violations

    # Criterion 4: attribute values.
    violations.extend(_check_attribute_values(extracted, message, sequential))
    if done():
        return violations

    # Criterion 5: semantics.
    if message.transaction_id in context.flagged_txids:
        violations.append(
            Violation(
                Criterion.SEMANTICS,
                "unanswered-retransmission",
                "request retransmitted with an unchanged transaction ID and "
                "never answered — diverges from STUN retransmission semantics",
            )
        )
    if done():
        return violations
    if (
        message.msg_type == 0x0003
        and extracted.stream_key in context.pingpong_streams
    ):
        violations.append(
            Violation(
                Criterion.SEMANTICS,
                "allocate-pingpong",
                "periodic Allocate Requests used as connectivity checks; "
                "Allocate is intended for session setup only",
            )
        )
    return violations


def _check_attribute_values(
    extracted: ExtractedMessage, message: StunMessage, sequential: bool
) -> List[Violation]:
    violations: List[Violation] = []

    def add(code: str, detail: str) -> bool:
        violations.append(Violation(Criterion.ATTRIBUTE_VALUES, code, detail))
        return sequential

    closed_set = _CLOSED_ATTRIBUTE_SETS.get(message.msg_type)
    is_response = bool(message.msg_type & 0x0100)

    for attr in message.attributes:
        if attr.attr_type not in KNOWN_ATTRIBUTE_TYPES:
            continue  # judged under criterion 3
        name = attribute_name(attr.attr_type) or hex(attr.attr_type)

        fixed = ATTRIBUTE_FIXED_LENGTHS.get(attr.attr_type)
        if fixed is not None and len(attr.value) != fixed:
            if add("bad-attribute-length",
                   f"{name} must be {fixed} bytes, got {len(attr.value)}"):
                return violations
            continue
        maximum = ATTRIBUTE_MAX_LENGTHS.get(attr.attr_type)
        if maximum is not None and len(attr.value) > maximum:
            if add("bad-attribute-length",
                   f"{name} exceeds its maximum of {maximum} bytes "
                   f"({len(attr.value)} observed)"):
                return violations
            continue

        if attr.attr_type in _ADDRESS_ATTRIBUTES:
            if len(attr.value) < 4:
                if add("bad-attribute-length", f"{name} shorter than 4 bytes"):
                    return violations
                continue
            family = attr.value[1]
            body = len(attr.value) - 4
            if family == AddressFamily.IPV4 and body == 4:
                pass
            elif family == AddressFamily.IPV6 and body == 16:
                pass
            else:
                if add(
                    "bad-address-family",
                    f"{name} has address family 0x{family:02X} with "
                    f"{body} address bytes; RFC mandates 0x01/IPv4 or 0x02/IPv6",
                ):
                    return violations

        if attr.attr_type == _A.CHANNEL_NUMBER and len(attr.value) == 4:
            channel = int.from_bytes(attr.value[:2], "big")
            if not CHANNEL_NUMBER_MIN <= channel <= CHANNEL_NUMBER_MAX:
                if add(
                    "bad-channel-number",
                    f"channel 0x{channel:04X} outside 0x4000-0x4FFF",
                ):
                    return violations

        if attr.attr_type == _A.ERROR_CODE:
            try:
                error = decode_error_code(attr.value)
            except ValueError as exc:
                if add("bad-error-code", str(exc)):
                    return violations
            else:
                if not 3 <= error.error_class <= 6:
                    if add("bad-error-code",
                           f"error class {error.error_class} outside 3-6"):
                        return violations

        if attr.attr_type == _A.FINGERPRINT:
            problem = _check_fingerprint(extracted, message, attr)
            if problem is not None:
                if add("bad-fingerprint", problem):
                    return violations

        if closed_set is not None and attr.attr_type not in closed_set:
            if add(
                "attribute-not-allowed",
                f"{name} is not permitted in "
                f"{KNOWN_MESSAGE_TYPES[message.msg_type][0]}",
            ):
                return violations

        if is_response and attr.attr_type in _REQUEST_ONLY_ATTRIBUTES:
            if add(
                "attribute-not-allowed",
                f"request-only attribute {name} present in a response",
            ):
                return violations

    return violations


def _check_fingerprint(
    extracted: ExtractedMessage, message: StunMessage, attr
) -> Optional[str]:
    """Verify FINGERPRINT placement and CRC (RFC 8489 §14.7)."""
    if message.attributes[-1].attr_type != _A.FINGERPRINT:
        return "FINGERPRINT is not the last attribute"
    raw = extracted.raw[: 20 + message.body_length] if not message.classic else extracted.raw
    if len(raw) < 28:
        return "message too short to carry FINGERPRINT"
    expected = (zlib.crc32(raw[:-8]) & 0xFFFFFFFF) ^ 0x5354554E
    actual = int.from_bytes(attr.value, "big") if len(attr.value) == 4 else None
    if actual != expected:
        return f"FINGERPRINT CRC mismatch (got {actual}, expected {expected})"
    return None


def _check_channel_data(
    extracted: ExtractedMessage, sequential: bool
) -> List[Violation]:
    frame: ChannelData = extracted.message
    violations: List[Violation] = []
    if not frame.channel_valid:
        violations.append(
            Violation(
                Criterion.HEADER_FIELDS,
                "bad-channel-number",
                f"ChannelData channel 0x{frame.channel:04X} outside 0x4000-0x4FFF",
            )
        )
        if sequential:
            return violations
    if extracted.trailer:
        violations.append(
            Violation(
                Criterion.SEMANTICS,
                "channeldata-padding",
                f"{len(extracted.trailer)} padding bytes after ChannelData — "
                f"RFC 8656 §12.4 forbids padding over UDP",
            )
        )
    return violations
