"""The compliance checker: applies the five-criterion model to every
extracted message, with session context for the cross-message rules."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.quic_rules import check_quic
from repro.core.rtcp_rules import check_rtcp
from repro.core.rtp_rules import check_rtp
from repro.core.stun_rules import StunSessionContext, check_stun
from repro.core.verdict import Criterion, MessageVerdict, Violation
from repro.dpi.messages import ExtractedMessage, Protocol


class ComplianceChecker:
    """Evaluates extracted messages against their protocol specifications.

    ``sequential=True`` (the paper's methodology) stops at the first failed
    criterion per message; ``sequential=False`` collects every violation,
    which the ablation benchmarks use.

    ``strict_compound=True`` additionally enforces RFC 3550 §6.1's compound
    rule that every RTCP datagram must begin with an SR or RR.  The paper
    does not apply this rule (it would flag applications it reports as
    RTCP-compliant, since real implementations send standalone feedback
    packets per RFC 5506's reduced-size profile), so it defaults off.
    """

    def __init__(self, sequential: bool = True, strict_compound: bool = False):
        self._sequential = sequential
        self._strict_compound = strict_compound

    def check(self, messages: Sequence[ExtractedMessage]) -> List[MessageVerdict]:
        """Judge a whole session's messages (context rules need all of them)."""
        stun_context = StunSessionContext(
            [m for m in messages if m.protocol is Protocol.STUN_TURN]
        )
        compound_heads = (
            self._compound_heads(messages) if self._strict_compound else None
        )
        verdicts: List[MessageVerdict] = []
        for extracted in messages:
            if extracted.protocol is Protocol.STUN_TURN:
                violations = check_stun(extracted, stun_context, self._sequential)
            elif extracted.protocol is Protocol.RTP:
                violations = check_rtp(extracted, self._sequential)
            elif extracted.protocol is Protocol.RTCP:
                violations = check_rtcp(extracted, self._sequential)
                if (
                    compound_heads is not None
                    and (not violations or not self._sequential)
                    and id(extracted) in compound_heads
                    and extracted.message.packet_type not in (200, 201)
                ):
                    violations.append(
                        Violation(
                            Criterion.SEMANTICS,
                            "compound-must-start-with-report",
                            "an RTCP compound must begin with SR or RR "
                            "(RFC 3550 §6.1); this datagram starts with "
                            f"packet type {extracted.message.packet_type}",
                        )
                    )
            elif extracted.protocol is Protocol.QUIC:
                violations = check_quic(extracted, self._sequential)
            else:  # pragma: no cover - exhaustive over Protocol
                violations = []
            verdicts.append(MessageVerdict(message=extracted, violations=violations))
        return verdicts

    @staticmethod
    def _compound_heads(messages: Sequence[ExtractedMessage]) -> set:
        """ids of the first RTCP message of each datagram."""
        heads = {}
        for extracted in messages:
            if extracted.protocol is not Protocol.RTCP:
                continue
            key = id(extracted.record)
            current = heads.get(key)
            if current is None or extracted.offset < current.offset:
                heads[key] = extracted
        return {id(extracted) for extracted in heads.values()}

    def check_one(self, message: ExtractedMessage) -> MessageVerdict:
        """Judge a single message (criterion-5 context rules see only it)."""
        return self.check([message])[0]
