"""The compliance checker: applies the five-criterion model to every
extracted message, with session context for the cross-message rules."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.quic_rules import check_quic
from repro.core.rtcp_rules import check_rtcp
from repro.core.rtp_rules import check_rtp
from repro.core.stun_rules import StunSessionContext, check_stun
from repro.core.verdict import Criterion, MessageVerdict, Violation
from repro.dpi.messages import ExtractedMessage, Protocol


class ComplianceChecker:
    """Evaluates extracted messages against their protocol specifications.

    ``sequential=True`` (the paper's methodology) stops at the first failed
    criterion per message; ``sequential=False`` collects every violation,
    which the ablation benchmarks use.

    ``strict_compound=True`` additionally enforces RFC 3550 §6.1's compound
    rule that every RTCP datagram must begin with an SR or RR.  The paper
    does not apply this rule (it would flag applications it reports as
    RTCP-compliant, since real implementations send standalone feedback
    packets per RFC 5506's reduced-size profile), so it defaults off.
    """

    def __init__(self, sequential: bool = True, strict_compound: bool = False):
        self._sequential = sequential
        self._strict_compound = strict_compound

    def check(self, messages: Sequence[ExtractedMessage]) -> List[MessageVerdict]:
        """Judge a whole session's messages (context rules need all of them)."""
        stun_context = StunSessionContext(
            [m for m in messages if m.protocol is Protocol.STUN_TURN]
        )
        compound_heads = (
            self._compound_heads(messages) if self._strict_compound else None
        )
        return [
            MessageVerdict(
                message=extracted,
                violations=self._violations(
                    extracted,
                    stun_context,
                    compound_heads is not None and id(extracted) in compound_heads,
                ),
            )
            for extracted in messages
        ]

    def stream(self) -> "CheckerStream":
        """An incremental session: per-datagram verdicts, STUN at flush."""
        return CheckerStream(self)

    def _violations(
        self,
        extracted: ExtractedMessage,
        stun_context: StunSessionContext,
        compound_head: bool,
    ) -> List[Violation]:
        """One message's violations (shared by batch and streaming modes)."""
        if extracted.protocol is Protocol.STUN_TURN:
            return check_stun(extracted, stun_context, self._sequential)
        if extracted.protocol is Protocol.RTP:
            return check_rtp(extracted, self._sequential)
        if extracted.protocol is Protocol.RTCP:
            violations = check_rtcp(extracted, self._sequential)
            if (
                compound_head
                and (not violations or not self._sequential)
                and extracted.message.packet_type not in (200, 201)
            ):
                violations.append(
                    Violation(
                        Criterion.SEMANTICS,
                        "compound-must-start-with-report",
                        "an RTCP compound must begin with SR or RR "
                        "(RFC 3550 §6.1); this datagram starts with "
                        f"packet type {extracted.message.packet_type}",
                    )
                )
            return violations
        if extracted.protocol is Protocol.QUIC:
            return check_quic(extracted, self._sequential)
        return []  # pragma: no cover - exhaustive over Protocol

    @staticmethod
    def _compound_heads(messages: Sequence[ExtractedMessage]) -> set:
        """ids of the first RTCP message of each datagram."""
        heads = {}
        for extracted in messages:
            if extracted.protocol is not Protocol.RTCP:
                continue
            key = id(extracted.record)
            current = heads.get(key)
            if current is None or extracted.offset < current.offset:
                heads[key] = extracted
        return {id(extracted) for extracted in heads.values()}

    def check_one(self, message: ExtractedMessage) -> MessageVerdict:
        """Judge a single message (criterion-5 context rules see only it)."""
        return self.check([message])[0]


class CheckerStream:
    """Incremental compliance checking over a stream of datagram analyses.

    STUN/TURN rules need session context (transaction pairing, allocate
    ordering) that only exists once the whole session has been seen, so
    those messages are deferred to :meth:`flush`; everything else is
    judged the moment its datagram arrives.  Verdicts carry the global
    message index they were fed at, so a batch adapter can restore the
    exact ``ComplianceChecker.check`` output order with one sort while
    order-insensitive aggregators consume them as they come.
    """

    def __init__(self, checker: ComplianceChecker):
        self._checker = checker
        self._index = 0
        self._deferred: List[Tuple[int, ExtractedMessage]] = []
        self._flushed = False
        # STUN context for non-deferred checks is empty by construction;
        # built once here so feed() never allocates it per datagram.
        self._empty_context = StunSessionContext([])

    @property
    def fed(self) -> int:
        """Messages seen so far (immediate and deferred)."""
        return self._index

    @property
    def deferred(self) -> int:
        """STUN/TURN messages held back for session-context checks."""
        return len(self._deferred)

    def feed(
        self, messages: Sequence[ExtractedMessage]
    ) -> List[Tuple[int, MessageVerdict]]:
        """Judge one datagram's messages (offset order, as DPI emits them).

        Returns ``(global_index, verdict)`` pairs for every message that
        could be judged immediately; STUN/TURN verdicts arrive at flush.
        """
        if self._flushed:
            raise RuntimeError("feed() after flush()")
        checker = self._checker
        compound_head: Optional[ExtractedMessage] = None
        if checker._strict_compound:
            rtcp = [m for m in messages if m.protocol is Protocol.RTCP]
            if rtcp:
                compound_head = min(rtcp, key=lambda m: m.offset)
        out: List[Tuple[int, MessageVerdict]] = []
        for extracted in messages:
            index = self._index
            self._index += 1
            if extracted.protocol is Protocol.STUN_TURN:
                self._deferred.append((index, extracted))
                continue
            violations = checker._violations(
                extracted, self._empty_context, extracted is compound_head
            )
            out.append(
                (index, MessageVerdict(message=extracted, violations=violations))
            )
        return out

    def flush(self) -> List[Tuple[int, MessageVerdict]]:
        """Judge the deferred STUN/TURN messages with full session context."""
        if self._flushed:
            return []
        self._flushed = True
        context = StunSessionContext([m for _, m in self._deferred])
        checker = self._checker
        out = [
            (
                index,
                MessageVerdict(
                    message=extracted,
                    violations=checker._violations(extracted, context, False),
                ),
            )
            for index, extracted in self._deferred
        ]
        self._deferred = []
        return out
