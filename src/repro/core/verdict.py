"""Verdict data model for the compliance checker."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dpi.messages import ExtractedMessage


class Criterion(enum.IntEnum):
    """The five sequential criteria of the compliance model (§4.2)."""

    MESSAGE_TYPE = 1
    HEADER_FIELDS = 2
    ATTRIBUTE_TYPES = 3
    ATTRIBUTE_VALUES = 4
    SEMANTICS = 5


@dataclass(frozen=True)
class Violation:
    """One compliance violation found in a message."""

    criterion: Criterion
    code: str     # stable machine-readable identifier, e.g. "undefined-attribute"
    detail: str   # human-readable specifics

    def __str__(self) -> str:
        return f"[C{int(self.criterion)}:{self.code}] {self.detail}"

    def key(self) -> tuple:
        """Stable ``(criterion, code)`` pair for golden-file serialization.

        The human-readable ``detail`` is deliberately excluded so rewording
        a message does not invalidate recorded conformance corpora.
        """
        return (int(self.criterion), self.code)


@dataclass
class MessageVerdict:
    """The checker's decision for one extracted message."""

    message: ExtractedMessage
    violations: List[Violation] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.violations

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    @property
    def failed_criterion(self) -> Optional[Criterion]:
        return self.violations[0].criterion if self.violations else None

    def violation_keys(self) -> List[tuple]:
        """``(criterion, code)`` pairs in evaluation order."""
        return [violation.key() for violation in self.violations]
