"""The five-criterion compliance model (paper §4.2) and its metrics (§5.1).

A message is compliant only if it passes, in order:

1. **Message type definition** — the type is defined in a public spec.
2. **Header field validity** — all header fields are syntactically and
   semantically valid.
3. **Attribute type validity** — every TLV attribute (or RTP extension
   profile / RTCP item) is publicly defined.
4. **Attribute value validity** — each defined attribute's value obeys the
   spec's structure, lengths and allowed-placement rules.
5. **Syntax & semantic integrity** — cross-field and cross-message
   behaviour (transaction patterns, trailers, SRTCP framing) is coherent.

Evaluation is sequential: the first failed criterion classifies the message
as non-compliant and later criteria are skipped (avoiding cascading errors),
matching the paper's methodology.
"""

from repro.core.checker import CheckerStream, ComplianceChecker
from repro.core.metrics import (
    ComplianceSummary,
    StreamingSummary,
    TypeComplianceEntry,
    message_type_metric,
    volume_metric,
)
from repro.core.verdict import Criterion, MessageVerdict, Violation

__all__ = [
    "CheckerStream",
    "ComplianceChecker",
    "ComplianceSummary",
    "StreamingSummary",
    "TypeComplianceEntry",
    "message_type_metric",
    "volume_metric",
    "Criterion",
    "MessageVerdict",
    "Violation",
]
