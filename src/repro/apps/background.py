"""Background (unrelated) traffic generators.

Reproduces the noise classes the paper's two-stage filter removes (§3.2):
OS push services with NAT rebinding, TLS flows to tracker/app-store domains,
LAN management chatter, and well-known-port services.  Every record carries
``Truth(BACKGROUND)`` so filter precision/recall is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.apps.base import (
    DEVICE_LINK_LOCAL,
    ROUTER_IP,
    CallConfig,
    NetworkCondition,
)
from repro.packets.packet import Direction, PacketRecord, TrafficCategory, Truth
from repro.protocols.tls.client_hello import build_client_hello
from repro.streams.timeline import CallWindow
from repro.utils.rand import DeterministicRandom

#: Domains the paper's 7.5-hour idle capture would put on the blocklist.
DEFAULT_SNI_BLOCKLIST = frozenset(
    {
        "oauth2.googleapis.com",
        "web.facebook.com",
        "itunes.apple.com",
        "init.push.apple.com",
        "app-measurement.com",
        "graph.instagram.com",
        "mobile.events.data.microsoft.com",
        "ssl.google-analytics.com",
        "api-adservices.apple.com",
        "gsp-ssl.ls.apple.com",
    }
)

_APNS_IP = "17.57.146.20"
_DNS_SERVER = "192.168.1.1"
_TRACKER_IPS = {
    "oauth2.googleapis.com": "142.250.65.74",
    "itunes.apple.com": "17.253.25.205",
    "app-measurement.com": "142.250.65.78",
    "ssl.google-analytics.com": "142.250.65.72",
    "init.push.apple.com": "17.57.146.84",
}


def _truth(detail: str) -> Truth:
    return Truth(category=TrafficCategory.BACKGROUND, app="os", detail=detail)


@dataclass
class BackgroundNoiseGenerator:
    """Synthesizes the unrelated traffic mixed into every experiment trace."""

    config: CallConfig
    device_ip: str
    rng: DeterministicRandom

    def generate(self, window: CallWindow) -> List[PacketRecord]:
        records: List[PacketRecord] = []
        records.extend(self._dns_chatter(window))
        records.extend(self._apns_persistent(window))
        records.extend(self._tracker_tls(window))
        records.extend(self._intra_call_tls(window))
        if self.config.network is not NetworkCondition.CELLULAR:
            records.extend(self._lan_services(window))
        records.extend(self._ntp(window))
        return records

    # -- stage-1 fodder: streams that straddle the call window ---------------

    def _dns_chatter(self, window: CallWindow) -> List[PacketRecord]:
        """Short DNS lookups sprinkled over the whole capture (port filter)."""
        records = []
        t = window.capture_start + self.rng.uniform(0.5, 3.0)
        while t < window.capture_end:
            sport = self.rng.randint(49152, 65535)
            query = self.rng.rand_bytes(self.rng.randint(30, 60))
            records.append(
                PacketRecord(
                    timestamp=t,
                    src_ip=self.device_ip,
                    src_port=sport,
                    dst_ip=_DNS_SERVER,
                    dst_port=53,
                    transport="UDP",
                    payload=query,
                    direction=Direction.OUTBOUND,
                    truth=_truth("dns"),
                )
            )
            records.append(
                PacketRecord(
                    timestamp=t + 0.02,
                    src_ip=_DNS_SERVER,
                    src_port=53,
                    dst_ip=self.device_ip,
                    dst_port=sport,
                    transport="UDP",
                    payload=self.rng.rand_bytes(self.rng.randint(60, 180)),
                    direction=Direction.INBOUND,
                    truth=_truth("dns"),
                )
            )
            t += self.rng.uniform(4.0, 15.0)
        return records

    def _apns_persistent(self, window: CallWindow) -> List[PacketRecord]:
        """Apple-push-style persistent TCP with NAT rebinding (3-tuple filter).

        The destination 3-tuple stays fixed across the capture while the
        source port changes mid-call, splitting the activity into several
        5-tuple streams — the evasion the 3-tuple timing filter targets.
        """
        records = []
        # Rebind a couple of times; one segment is entirely inside the call
        # window so only the 3-tuple filter can catch it.
        boundaries = [
            window.capture_start + 1.0,
            window.call_start + window.call_duration * 0.25,
            window.call_start + window.call_duration * 0.6,
            window.capture_end - 1.0,
        ]
        for start, end in zip(boundaries, boundaries[1:]):
            sport = self.rng.randint(49152, 65535)
            t = start
            while t < end:
                records.append(
                    PacketRecord(
                        timestamp=t,
                        src_ip=self.device_ip,
                        src_port=sport,
                        dst_ip=_APNS_IP,
                        dst_port=5223,
                        transport="TCP",
                        payload=self.rng.rand_bytes(self.rng.randint(40, 120)),
                        direction=Direction.OUTBOUND,
                        truth=_truth("apns"),
                    )
                )
                records.append(
                    PacketRecord(
                        timestamp=t + 0.05,
                        src_ip=_APNS_IP,
                        src_port=5223,
                        dst_ip=self.device_ip,
                        dst_port=sport,
                        transport="TCP",
                        payload=self.rng.rand_bytes(self.rng.randint(40, 200)),
                        direction=Direction.INBOUND,
                        truth=_truth("apns"),
                    )
                )
                t += self.rng.uniform(8.0, 20.0)
        return records

    # -- stage-2 fodder: activity entirely inside the call window ------------

    def _tracker_tls(self, window: CallWindow) -> List[PacketRecord]:
        """TLS flows to blocklisted domains starting pre-call (stage 1 catches)."""
        records = []
        for domain in sorted(DEFAULT_SNI_BLOCKLIST)[:4]:
            ip = _TRACKER_IPS.get(domain, "203.0.113.77")
            start = window.capture_start + self.rng.uniform(1.0, 20.0)
            records.extend(self._tls_flow(domain, ip, start, duration=self.rng.uniform(2, 8)))
        return records

    def _intra_call_tls(self, window: CallWindow) -> List[PacketRecord]:
        """Short-lived TLS flows fully inside the call (SNI filter catches)."""
        records = []
        for domain in ("oauth2.googleapis.com", "itunes.apple.com", "app-measurement.com"):
            ip = _TRACKER_IPS.get(domain, "203.0.113.88")
            start = window.call_start + self.rng.uniform(
                5.0, max(6.0, window.call_duration - 10.0)
            )
            records.extend(self._tls_flow(domain, ip, start, duration=self.rng.uniform(1, 4)))
        return records

    def _tls_flow(
        self, domain: str, server_ip: str, start: float, duration: float
    ) -> List[PacketRecord]:
        sport = self.rng.randint(49152, 65535)
        hello = build_client_hello(domain, random_bytes=self.rng.rand_bytes(32))
        records = [
            PacketRecord(
                timestamp=start,
                src_ip=self.device_ip,
                src_port=sport,
                dst_ip=server_ip,
                dst_port=443,
                transport="TCP",
                payload=hello,
                direction=Direction.OUTBOUND,
                truth=_truth(f"tls:{domain}"),
            )
        ]
        t = start + 0.05
        while t < start + duration:
            inbound = self.rng.random() < 0.6
            records.append(
                PacketRecord(
                    timestamp=t,
                    src_ip=server_ip if inbound else self.device_ip,
                    src_port=443 if inbound else sport,
                    dst_ip=self.device_ip if inbound else server_ip,
                    dst_port=sport if inbound else 443,
                    transport="TCP",
                    payload=self.rng.rand_bytes(self.rng.randint(100, 1200)),
                    direction=Direction.INBOUND if inbound else Direction.OUTBOUND,
                    truth=_truth(f"tls:{domain}"),
                )
            )
            t += self.rng.uniform(0.05, 0.4)
        return records

    def _lan_services(self, window: CallWindow) -> List[PacketRecord]:
        """SSDP/mDNS/DHCP chatter (port + local-IP filters).

        The link-local pair also appears pre-call, which is the condition the
        local-IP filter uses to distinguish LAN management from legitimate
        P2P media between the two phones.
        """
        records = []
        # SSDP NOTIFY multicasts from the router, across all phases.
        t = window.capture_start + 2.0
        while t < window.capture_end:
            records.append(
                PacketRecord(
                    timestamp=t,
                    src_ip=ROUTER_IP,
                    src_port=1900,
                    dst_ip="239.255.255.250",
                    dst_port=1900,
                    transport="UDP",
                    payload=b"NOTIFY * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\n\r\n",
                    direction=Direction.INBOUND,
                    truth=_truth("ssdp"),
                )
            )
            t += self.rng.uniform(20.0, 40.0)
        # mDNS queries from the device, including some inside the call.
        for offset in (3.0, window.call_duration * 0.4, window.call_duration * 0.9):
            records.append(
                PacketRecord(
                    timestamp=window.call_start + offset,
                    src_ip=self.device_ip,
                    src_port=5353,
                    dst_ip="224.0.0.251",
                    dst_port=5353,
                    transport="UDP",
                    payload=self.rng.rand_bytes(80),
                    direction=Direction.OUTBOUND,
                    truth=_truth("mdns"),
                )
            )
        # IPv6 link-local neighbour chatter seen both pre-call and mid-call.
        precall_t = max(window.capture_start + 0.5, window.call_start - 30.0)
        for timestamp in (precall_t, window.call_start + window.call_duration * 0.5):
            records.append(
                PacketRecord(
                    timestamp=timestamp,
                    src_ip=DEVICE_LINK_LOCAL,
                    src_port=546,
                    dst_ip="fe80::1",
                    dst_port=547,
                    transport="UDP",
                    payload=self.rng.rand_bytes(60),
                    direction=Direction.OUTBOUND,
                    truth=_truth("dhcpv6"),
                )
            )
        return records

    def _ntp(self, window: CallWindow) -> List[PacketRecord]:
        records = []
        t = window.capture_start + self.rng.uniform(5, 30)
        while t < window.capture_end:
            sport = self.rng.randint(49152, 65535)
            for direction, (sip, spt, dip, dpt) in (
                (Direction.OUTBOUND, (self.device_ip, sport, "17.253.4.125", 123)),
                (Direction.INBOUND, ("17.253.4.125", 123, self.device_ip, sport)),
            ):
                records.append(
                    PacketRecord(
                        timestamp=t if direction is Direction.OUTBOUND else t + 0.03,
                        src_ip=sip,
                        src_port=spt,
                        dst_ip=dip,
                        dst_port=dpt,
                        transport="UDP",
                        payload=self.rng.rand_bytes(48),
                        direction=direction,
                        truth=_truth("ntp"),
                    )
                )
            t += self.rng.uniform(60.0, 120.0)
        return records


def build_sni_blocklist(idle_records: Sequence[PacketRecord]) -> frozenset:
    """Derive a blocklist from idle-phone traffic, as the paper does (§3.2.2).

    Any SNI observed while no call is running is, by construction, not an
    RTC media domain.
    """
    from repro.protocols.tls.client_hello import extract_sni

    domains = set()
    for record in idle_records:
        if record.transport != "TCP":
            continue
        sni = extract_sni(record.payload)
        if sni:
            domains.add(sni)
    return frozenset(domains)
