"""Google Meet call simulator.

Reproduces the Google Meet behaviours documented in the paper:

- the most standards-faithful STUN/TURN usage of the studied apps and by
  far the highest STUN/TURN message share (~20%): continuous ICE checks,
  WebRTC GOOG-PING (0x0200/0x0300), a full TURN control plane, and relay
  media carried inside compliant ChannelData frames;
- the only non-compliant STUN/TURN type is the Allocate Request (0x0003),
  which Meet repurposes as a periodic connectivity check — the ping-pong
  pattern the paper's fifth criterion flags;
- fully compliant RTP over payload types 35, 36, 63, 96, 97, 100, 103,
  104, 109, 111, 114;
- SRTCP-protected RTCP (types 200-202, 204-207): every message ends with
  the E-flag ‖ 31-bit index word, but in relay-mode Wi-Fi most messages
  omit the mandatory 10-byte authentication tag (RFC 3711 violation),
  making all seven RTCP types non-compliant;
- cellular calls start in relay mode and switch to P2P after ~30 s.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.apps.base import (
    AppSimulator,
    CallConfig,
    Direction,
    Endpoint,
    NetworkCondition,
    RtpStreamState,
    Trace,
    TransmissionMode,
)
from repro.apps.background import BackgroundNoiseGenerator
from repro.apps.signaling import signaling_flows
from repro.protocols.rtcp.packets import RtcpPacket
from repro.protocols.rtp.extensions import build_one_byte_extension
from repro.protocols.stun.attributes import (
    StunAttribute,
    channel_number_value,
    encode_error_code,
    encode_xor_address,
    lifetime_value,
    requested_transport_value,
)
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import ChannelData, StunMessage, build_with_fingerprint

RELAY_SERVER = Endpoint("142.250.82.85", 19305)
RELAYED_ADDRESS = ("142.250.82.119", 25012)
PEER_REFLEXIVE = ("198.51.100.23", 42310)
SIGNALING_DOMAIN = "meetings.googleapis.com"
SIGNALING_IP = "142.250.82.14"

AUDIO_PT = 111
VIDEO_PT = 96
AUX_PTS = (35, 36, 63, 97, 100, 103, 104, 109, 114)
P2P_SWITCH_AFTER = 30.0
CHANNEL = 0x4000

#: Fraction of relay-mode Wi-Fi SRTCP messages missing the auth tag (§5.2.3).
TAGLESS_FRACTION = 0.9


class GoogleMeetSimulator(AppSimulator):
    """Synthesizes Google Meet 1-on-1 call traffic."""

    name = "meet"

    def simulate(self, config: CallConfig) -> Trace:
        window = config.window()
        trace = Trace(app=self.name, config=config, window=window)
        rng = self.rng_for(config, "main")
        device_ip = self.device_ip(config)
        device = Endpoint(device_ip, rng.randint(50000, 60000))
        peer = Endpoint(self.peer_device_ip(config), rng.randint(50000, 60000))

        segments = self._mode_segments(config, window)
        trace.mode_timeline.extend((start, mode) for start, _end, mode in segments)

        self._emit_turn_control(trace, config, device, segments)
        self._emit_ice(trace, config, device, peer, segments)
        self._emit_media(trace, config, device, peer, segments)
        self._emit_srtcp(trace, config, device, peer, segments)
        trace.records.extend(
            signaling_flows(
                app=self.name,
                domain=SIGNALING_DOMAIN,
                server_ip=SIGNALING_IP,
                device_ip=device_ip,
                window=window,
                rng=self.rng_for(config, "signaling"),
                in_call_volume=25,
            )
        )
        if config.include_background:
            noise = BackgroundNoiseGenerator(
                config=config, device_ip=device_ip, rng=self.rng_for(config, "noise")
            )
            trace.records.extend(noise.generate(window))
        trace.sort()
        return trace

    def _mode_segments(self, config: CallConfig, window):
        if config.network is NetworkCondition.WIFI_P2P:
            return [(window.call_start, window.call_end, TransmissionMode.P2P)]
        if config.network is NetworkCondition.WIFI_RELAY:
            return [(window.call_start, window.call_end, TransmissionMode.RELAY)]
        switch = window.call_start + min(P2P_SWITCH_AFTER, window.call_duration / 2)
        return [
            (window.call_start, switch, TransmissionMode.RELAY),
            (switch, window.call_end, TransmissionMode.P2P),
        ]

    def _remote_for(self, mode: TransmissionMode, peer: Endpoint) -> Endpoint:
        return RELAY_SERVER if mode is TransmissionMode.RELAY else peer

    # -- TURN control plane --------------------------------------------------------

    def _emit_turn_control(self, trace, config, device, segments) -> None:
        rng = self.rng_for(config, "turn")
        window = trace.window
        truth = self.control_truth("turn")
        records = trace.records
        t = window.call_start + 0.05

        def send(payload: bytes, direction: Direction, at: float) -> None:
            records.append(self.packet(at, device, RELAY_SERVER, payload, direction, truth))

        # Standard allocation handshake: 401 challenge then success.
        txid1 = rng.transaction_id()
        send(
            StunMessage(
                msg_type=0x0003,
                transaction_id=txid1,
                attributes=[
                    StunAttribute(int(AttributeType.REQUESTED_TRANSPORT),
                                  requested_transport_value()),
                ],
            ).build(),
            Direction.OUTBOUND, t,
        )
        send(
            StunMessage(
                msg_type=0x0113,
                transaction_id=txid1,
                attributes=[
                    StunAttribute(int(AttributeType.ERROR_CODE),
                                  encode_error_code(401, "Unauthorized")),
                    StunAttribute(int(AttributeType.REALM), b"goog"),
                    StunAttribute(int(AttributeType.NONCE), rng.rand_bytes(12).hex().encode()),
                ],
            ).build(),
            Direction.INBOUND, t + 0.04,
        )
        txid2 = rng.transaction_id()
        send(
            StunMessage(
                msg_type=0x0003,
                transaction_id=txid2,
                attributes=[
                    StunAttribute(int(AttributeType.REQUESTED_TRANSPORT),
                                  requested_transport_value()),
                    StunAttribute(int(AttributeType.USERNAME), b"goog:meet"),
                    StunAttribute(int(AttributeType.REALM), b"goog"),
                    StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
                ],
            ).build(),
            Direction.OUTBOUND, t + 0.1,
        )
        send(
            StunMessage(
                msg_type=0x0103,
                transaction_id=txid2,
                attributes=[
                    StunAttribute(int(AttributeType.XOR_RELAYED_ADDRESS),
                                  encode_xor_address(*RELAYED_ADDRESS, txid2)),
                    StunAttribute(int(AttributeType.XOR_MAPPED_ADDRESS),
                                  encode_xor_address(device.ip, device.port, txid2)),
                    StunAttribute(int(AttributeType.LIFETIME), lifetime_value(600)),
                ],
            ).build(),
            Direction.INBOUND, t + 0.14,
        )

        # CreatePermission + ChannelBind (compliant pairs).
        txid3 = rng.transaction_id()
        send(
            StunMessage(
                msg_type=0x0008,
                transaction_id=txid3,
                attributes=[
                    StunAttribute(int(AttributeType.XOR_PEER_ADDRESS),
                                  encode_xor_address(*PEER_REFLEXIVE, txid3)),
                    StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
                ],
            ).build(),
            Direction.OUTBOUND, t + 0.2,
        )
        send(StunMessage(msg_type=0x0108, transaction_id=txid3).build(),
             Direction.INBOUND, t + 0.24)
        txid4 = rng.transaction_id()
        send(
            StunMessage(
                msg_type=0x0009,
                transaction_id=txid4,
                attributes=[
                    StunAttribute(int(AttributeType.CHANNEL_NUMBER),
                                  channel_number_value(CHANNEL)),
                    StunAttribute(int(AttributeType.XOR_PEER_ADDRESS),
                                  encode_xor_address(*PEER_REFLEXIVE, txid4)),
                    StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
                ],
            ).build(),
            Direction.OUTBOUND, t + 0.3,
        )
        send(StunMessage(msg_type=0x0109, transaction_id=txid4).build(),
             Direction.INBOUND, t + 0.34)

        # Early media through Send/Data Indications (compliant).
        ti = t + 0.4
        for i in range(16):
            txid = rng.transaction_id()
            msg_type = 0x0016 if i % 2 == 0 else 0x0017
            direction = Direction.OUTBOUND if i % 2 == 0 else Direction.INBOUND
            send(
                StunMessage(
                    msg_type=msg_type,
                    transaction_id=txid,
                    attributes=[
                        StunAttribute(int(AttributeType.XOR_PEER_ADDRESS),
                                      encode_xor_address(*PEER_REFLEXIVE, txid)),
                        StunAttribute(int(AttributeType.DATA), rng.rand_bytes(120)),
                    ],
                ).build(),
                direction, ti,
            )
            ti += 0.02

        # Refresh pairs (compliant).
        refresh_at = window.call_start + 12.0
        while refresh_at < window.call_end:
            txid = rng.transaction_id()
            send(
                StunMessage(
                    msg_type=0x0004,
                    transaction_id=txid,
                    attributes=[StunAttribute(int(AttributeType.LIFETIME),
                                              lifetime_value(600))],
                ).build(),
                Direction.OUTBOUND, refresh_at,
            )
            send(
                StunMessage(
                    msg_type=0x0104,
                    transaction_id=txid,
                    attributes=[StunAttribute(int(AttributeType.LIFETIME),
                                              lifetime_value(600))],
                ).build(),
                Direction.INBOUND, refresh_at + 0.03,
            )
            refresh_at += rng.jitter(20.0, 0.1)

        # The ping-pong: Allocate Requests repurposed as connectivity checks,
        # evenly spaced for the whole call (criterion-5 violation, §4.2).
        ping_at = window.call_start + 2.0
        while ping_at < window.call_end:
            send(
                StunMessage(
                    msg_type=0x0003,
                    transaction_id=rng.transaction_id(),
                    attributes=[
                        StunAttribute(int(AttributeType.REQUESTED_TRANSPORT),
                                      requested_transport_value()),
                    ],
                ).build(),
                Direction.OUTBOUND, ping_at,
            )
            ping_at += 1.0

    def _emit_ice(self, trace, config, device, peer, segments) -> None:
        """High-rate ICE checks + GOOG-PING — Meet's hallmark STUN volume."""
        rng = self.rng_for(config, "ice")
        truth = self.control_truth("ice")
        for start, end, mode in segments:
            remote = self._remote_for(mode, peer)
            rate = 16.0 * config.media_scale
            t = start + 0.5
            i = 0
            while t < end:
                if i % 4 == 3:
                    # GOOG-PING request/response (WebRTC-documented).
                    txid = rng.transaction_id()
                    ping = StunMessage(
                        msg_type=0x0200,
                        transaction_id=txid,
                        attributes=[
                            StunAttribute(int(AttributeType.GOOG_MESSAGE_INTEGRITY_32),
                                          rng.rand_bytes(4)),
                        ],
                    )
                    pong = StunMessage(msg_type=0x0300, transaction_id=txid)
                    trace.records.append(
                        self.packet(t, device, remote, ping.build(),
                                    Direction.OUTBOUND, truth)
                    )
                    trace.records.append(
                        self.packet(t + 0.015, device, remote, pong.build(),
                                    Direction.INBOUND, truth)
                    )
                else:
                    txid = rng.transaction_id()
                    request = StunMessage(
                        msg_type=0x0001,
                        transaction_id=txid,
                        attributes=[
                            StunAttribute(int(AttributeType.USERNAME), b"goog:peer"),
                            StunAttribute(int(AttributeType.PRIORITY),
                                          rng.u32().to_bytes(4, "big")),
                            StunAttribute(int(AttributeType.ICE_CONTROLLED),
                                          rng.rand_bytes(8)),
                            StunAttribute(int(AttributeType.MESSAGE_INTEGRITY),
                                          rng.rand_bytes(20)),
                        ],
                    )
                    response = StunMessage(
                        msg_type=0x0101,
                        transaction_id=txid,
                        attributes=[
                            StunAttribute(
                                int(AttributeType.XOR_MAPPED_ADDRESS),
                                encode_xor_address(device.ip, device.port, txid),
                            ),
                            StunAttribute(int(AttributeType.MESSAGE_INTEGRITY),
                                          rng.rand_bytes(20)),
                        ],
                    )
                    trace.records.append(
                        self.packet(t, device, remote, build_with_fingerprint(request),
                                    Direction.OUTBOUND, truth)
                    )
                    trace.records.append(
                        self.packet(t + 0.015, device, remote,
                                    build_with_fingerprint(response),
                                    Direction.INBOUND, truth)
                    )
                t += rng.jitter(1.0 / max(rate, 0.5), 0.15)
                i += 1

    # -- media -----------------------------------------------------------------------

    def _emit_media(self, trace, config, device, peer, segments) -> None:
        rng = self.rng_for(config, "media")
        directions = [Direction.OUTBOUND, Direction.INBOUND]
        # Group calls: the SFU forwards one extra inbound stream pair per
        # additional participant.
        directions.extend([Direction.INBOUND] * config.extra_participants)
        for kind, pt, pps, size, ts_inc in (
            ("audio", AUDIO_PT, 50, (70, 160), 480),
            ("video", VIDEO_PT, 85, (650, 1150), 3000),
        ):
            for direction in directions:
                state = RtpStreamState(
                    ssrc=rng.u32(), payload_type=pt, clock_rate=90000, rng=rng
                )
                for start, end, mode in segments:
                    remote = self._remote_for(mode, peer)
                    # Relay audio rides in compliant ChannelData frames — a big
                    # chunk of Meet's unusually high STUN/TURN share.
                    wrap_channel = mode is TransmissionMode.RELAY and kind == "audio"
                    self._emit_segment(
                        trace.records, device, remote, direction, state, rng,
                        start, end, pps * config.media_scale, size, ts_inc,
                        kind, wrap_channel,
                    )

    def _emit_segment(
        self, records, device, remote, direction, state, rng,
        t0, t1, pps, size, ts_inc, kind, wrap_channel,
    ) -> None:
        interval = 1.0 / pps
        t = t0 + rng.uniform(0, interval)
        index = 0
        truth = self.media_truth(f"rtp-{kind}")
        aux = AUX_PTS
        while t < t1:
            override = None
            if index % 29 == 9:
                override = aux[(index // 29) % len(aux)]
            extension = None
            if index % 2 == 0:
                extension = build_one_byte_extension(
                    [(1, bytes([rng.randint(0, 127)])),
                     (4, rng.randint(0, 0xFFFFFF).to_bytes(3, "big"))]
                )
            packet = state.next_packet(
                payload=rng.rand_bytes(rng.randint(*size)),
                ts_increment=ts_inc,
                marker=index % 15 == 0,
                extension=extension,
                payload_type=override,
            )
            raw = packet.build()
            if wrap_channel:
                raw = ChannelData(channel=CHANNEL, data=raw).build()
            records.append(self.packet(t, device, remote, raw, direction, truth))
            t += rng.jitter(interval, 0.05)
            index += 1

    # -- SRTCP ------------------------------------------------------------------------

    def _emit_srtcp(self, trace, config, device, peer, segments) -> None:
        """Real SRTCP (RFC 3711): AES-CM encryption + HMAC-SHA1-80 tags.

        Each direction has its own crypto context; the non-compliant
        relay-Wi-Fi messages are genuine SRTCP with the mandatory tag
        stripped (§5.2.3), so with the session keys the compliant messages
        authenticate and decrypt back to their plaintext reports.
        """
        from repro.protocols.srtp.session import SrtcpCryptoContext

        rng = self.rng_for(config, "rtcp")
        truth = self.control_truth("srtcp")
        ssrc_a, ssrc_b = rng.u32(), rng.u32()
        state = RtpStreamState(ssrc=ssrc_a, payload_type=AUDIO_PT, clock_rate=48000, rng=rng)
        contexts = {
            Direction.OUTBOUND: SrtcpCryptoContext(rng.rand_bytes(16), rng.rand_bytes(14)),
            Direction.INBOUND: SrtcpCryptoContext(rng.rand_bytes(16), rng.rand_bytes(14)),
        }
        rate = 20.0 * config.media_scale
        relay_wifi = config.network is NetworkCondition.WIFI_RELAY
        from repro.protocols.rtcp.packets import (
            AppPacket,
            FeedbackPacket,
            XrBlock,
            XrPacket,
        )
        builders = [
            lambda: self.make_sender_report(state, ssrc_b, rng, 0.0),
            lambda: self.make_receiver_report(ssrc_a, ssrc_b, rng),
            lambda: self.make_sdes(ssrc_a, f"meet-{ssrc_a:x}"),
            lambda: AppPacket(ssrc=ssrc_a, name=b"GOOG", data=rng.rand_bytes(8)).to_packet(),
            lambda: FeedbackPacket(packet_type=205, fmt=15, sender_ssrc=ssrc_a,
                                   media_ssrc=ssrc_b, fci=rng.rand_bytes(8)).to_packet(),
            lambda: FeedbackPacket(packet_type=206, fmt=1, sender_ssrc=ssrc_a,
                                   media_ssrc=ssrc_b).to_packet(),
            lambda: XrPacket(ssrc=ssrc_a, blocks=[
                XrBlock(block_type=4, type_specific=0, data=rng.rand_bytes(8))
            ]).to_packet(),
        ]
        for start, end, mode in segments:
            remote = self._remote_for(mode, peer)
            t = start + 1.0
            i = 0
            while t < end:
                plain = builders[i % len(builders)]()
                include_tag = not (relay_wifi and rng.random() < TAGLESS_FRACTION)
                direction = Direction.OUTBOUND if i % 2 == 0 else Direction.INBOUND
                payload = contexts[direction].protect(plain.build())
                if not include_tag:
                    payload = payload[:-10]  # drop the mandatory auth tag
                trace.records.append(self.packet(t, device, remote, payload, direction, truth))
                t += rng.jitter(1.0 / max(rate, 0.5), 0.2)
                i += 1
