"""Behaviours shared by WhatsApp and Messenger (both Meta apps).

Both applications exhibit the same proprietary STUN dialect in the paper:
the 0x0801/0x0802 burst before the callee joins, the undefined 0x0800
message at call termination, and undefined 0x400x attributes layered onto
otherwise standard messages.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.base import Direction, Endpoint
from repro.packets.packet import PacketRecord, Truth
from repro.protocols.stun.attributes import StunAttribute, encode_xor_address
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import StunMessage, build_with_fingerprint
from repro.utils.rand import DeterministicRandom

#: Meta-proprietary attribute types (undefined in any specification).
ATTR_CALL_END = 0x4000
ATTR_SESSION = 0x4001
ATTR_RESPONSE_META = 0x4002
ATTR_FLAG = 0x4003
ATTR_ZERO_FILL = 0x4004


def burst_0801_0802(
    packet_fn,
    device: Endpoint,
    remote: Endpoint,
    start_time: float,
    rng: DeterministicRandom,
    truth: Truth,
    pairs: int = 16,
) -> List[PacketRecord]:
    """The pre-join burst: 16 request/response pairs within ~2.2 ms.

    0x0801 messages are 500 bytes with a zero-filled 0x4004 attribute;
    0x0802 replies are 40 bytes; both carry 0x4003 = 0xFF and each pair
    shares one transaction ID (paper §5.2.1).
    """
    records: List[PacketRecord] = []
    t = start_time
    # 500 bytes total = 20 header + 8 (0x4003 TLV) + 4 + 468 (0x4004 TLV).
    zero_fill = bytes(468)
    for _ in range(pairs):
        txid = rng.transaction_id()
        request = StunMessage(
            msg_type=0x0801,
            transaction_id=txid,
            attributes=[
                StunAttribute(ATTR_FLAG, b"\xff"),
                StunAttribute(ATTR_ZERO_FILL, zero_fill),
            ],
        )
        # 40 bytes total = 20 header + 8 (0x4003 TLV) + 12 (0x4001 TLV).
        response = StunMessage(
            msg_type=0x0802,
            transaction_id=txid,
            attributes=[
                StunAttribute(ATTR_FLAG, b"\xff"),
                StunAttribute(ATTR_SESSION, rng.rand_bytes(8)),
            ],
        )
        records.append(packet_fn(t, device, remote, request.build(), Direction.OUTBOUND, truth))
        records.append(
            packet_fn(t + 0.00006, device, remote, response.build(), Direction.INBOUND, truth)
        )
        t += 0.000138  # 16 pairs spread across ~2.2 ms
    return records


def call_end_0800(
    packet_fn,
    device: Endpoint,
    remote: Endpoint,
    end_time: float,
    relayed_ip: str,
    relayed_port: int,
    rng: DeterministicRandom,
    truth: Truth,
    count: int,
) -> List[PacketRecord]:
    """Undefined type 0x0800 messages sent to the relay at call termination.

    Each carries the undefined 0x4000 attribute plus a standard
    XOR-RELAYED-ADDRESS (paper §5.2.1).
    """
    records: List[PacketRecord] = []
    t = end_time - 0.4
    for _ in range(count):
        txid = rng.transaction_id()
        msg = StunMessage(
            msg_type=0x0800,
            transaction_id=txid,
            attributes=[
                StunAttribute(ATTR_CALL_END, rng.rand_bytes(4)),
                StunAttribute(
                    int(AttributeType.XOR_RELAYED_ADDRESS),
                    encode_xor_address(relayed_ip, relayed_port, txid),
                ),
            ],
        )
        records.append(packet_fn(t, device, remote, msg.build(), Direction.OUTBOUND, truth))
        t += 0.05
    return records


def ice_binding_pair(
    device: Endpoint,
    remote: Endpoint,
    rng: DeterministicRandom,
    response_extra: Tuple[int, bytes] = None,
) -> Tuple[bytes, bytes]:
    """A standard ICE Binding Request and its Success Response.

    ``response_extra`` injects one additional attribute into the response
    (used by both Meta apps to add the undefined 0x4002 attribute, which is
    what makes their 0x0101 messages non-compliant).
    """
    txid = rng.transaction_id()
    request = StunMessage(
        msg_type=0x0001,
        transaction_id=txid,
        attributes=[
            StunAttribute(int(AttributeType.USERNAME), b"remote:local"),
            StunAttribute(int(AttributeType.PRIORITY), rng.u32().to_bytes(4, "big")),
            StunAttribute(int(AttributeType.ICE_CONTROLLING), rng.rand_bytes(8)),
            StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
        ],
    )
    response_attrs = [
        StunAttribute(
            int(AttributeType.XOR_MAPPED_ADDRESS),
            encode_xor_address(device.ip, device.port, txid),
        ),
        StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
    ]
    if response_extra is not None:
        attr_type, value = response_extra
        response_attrs.insert(1, StunAttribute(attr_type, value))
    response = StunMessage(msg_type=0x0101, transaction_id=txid, attributes=response_attrs)
    return build_with_fingerprint(request), build_with_fingerprint(response)
