"""Facebook Messenger call simulator.

Reproduces the Messenger behaviours documented in the paper:

- the richest TURN usage of the studied apps: Allocate (with the undefined
  0x4001 attribute → non-compliant), 401/403 error responses, Refresh,
  CreatePermission, ChannelBind, Send/Data Indications and ChannelData —
  the latter group fully compliant (Table 4);
- ICE Binding Requests/Responses carrying the undefined 0x4002 attribute
  (both 0x0001 and 0x0101 non-compliant);
- the Meta-proprietary 0x0801/0x0802 pre-join burst and six 0x0800
  messages at call termination;
- compliant RTP (payload types 97, 98, 101, 126, 127) and a notably high
  RTCP share (~10% of messages; SR 200, RR 201, RTPFB 205, PSFB 206);
- cellular calls start in relay mode and switch to P2P after ~30 s.
"""

from __future__ import annotations

from repro.apps.base import (
    AppSimulator,
    CallConfig,
    Direction,
    Endpoint,
    NetworkCondition,
    RtpStreamState,
    Trace,
    TransmissionMode,
)
from repro.apps.background import BackgroundNoiseGenerator
from repro.apps.meta_common import (
    ATTR_RESPONSE_META,
    ATTR_SESSION,
    burst_0801_0802,
    call_end_0800,
    ice_binding_pair,
)
from repro.apps.signaling import signaling_flows
from repro.protocols.rtcp.packets import FeedbackPacket
from repro.protocols.rtp.extensions import build_one_byte_extension
from repro.protocols.stun.attributes import (
    StunAttribute,
    channel_number_value,
    encode_error_code,
    encode_xor_address,
    lifetime_value,
    requested_transport_value,
)
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import ChannelData, StunMessage, build_with_fingerprint

RELAY_SERVER = Endpoint("157.240.22.48", 3478)
RELAYED_ADDRESS = ("157.240.22.61", 40022)
PEER_REFLEXIVE = ("203.0.113.54", 41888)
SIGNALING_DOMAIN = "edge-mqtt.facebook.com"
SIGNALING_IP = "157.240.22.35"

AUDIO_PT = 97
VIDEO_PT = 98
AUX_PTS = (101, 126, 127)
P2P_SWITCH_AFTER = 30.0
CHANNEL = 0x4001


class MessengerSimulator(AppSimulator):
    """Synthesizes Facebook Messenger 1-on-1 call traffic."""

    name = "messenger"

    def simulate(self, config: CallConfig) -> Trace:
        if config.participants != 2:
            raise ValueError(
                "messenger group calls use a different media topology and are "
                "not modelled; only 1-on-1 calls are supported"
            )
        window = config.window()
        trace = Trace(app=self.name, config=config, window=window)
        rng = self.rng_for(config, "main")
        device_ip = self.device_ip(config)
        device = Endpoint(device_ip, rng.randint(50000, 60000))
        peer = Endpoint(self.peer_device_ip(config), rng.randint(50000, 60000))

        segments = self._mode_segments(config, window)
        trace.mode_timeline.extend((start, mode) for start, _end, mode in segments)

        self._emit_turn_setup(trace, config, device)
        self._emit_ice(trace, config, device, peer, segments)
        self._emit_media(trace, config, device, peer, segments)
        self._emit_rtcp(trace, config, device, peer, segments)
        trace.records.extend(
            signaling_flows(
                app=self.name,
                domain=SIGNALING_DOMAIN,
                server_ip=SIGNALING_IP,
                device_ip=device_ip,
                window=window,
                rng=self.rng_for(config, "signaling"),
                in_call_volume=15,
            )
        )
        if config.include_background:
            noise = BackgroundNoiseGenerator(
                config=config, device_ip=device_ip, rng=self.rng_for(config, "noise")
            )
            trace.records.extend(noise.generate(window))
        trace.sort()
        return trace

    def _mode_segments(self, config: CallConfig, window):
        if config.network is NetworkCondition.WIFI_P2P:
            return [(window.call_start, window.call_end, TransmissionMode.P2P)]
        if config.network is NetworkCondition.WIFI_RELAY:
            return [(window.call_start, window.call_end, TransmissionMode.RELAY)]
        switch = window.call_start + min(P2P_SWITCH_AFTER, window.call_duration / 2)
        return [
            (window.call_start, switch, TransmissionMode.RELAY),
            (switch, window.call_end, TransmissionMode.P2P),
        ]

    def _remote_for(self, mode: TransmissionMode, peer: Endpoint) -> Endpoint:
        return RELAY_SERVER if mode is TransmissionMode.RELAY else peer

    # -- TURN control plane ------------------------------------------------------

    def _emit_turn_setup(self, trace, config, device) -> None:
        """The full TURN handshake plus periodic refresh/indication traffic."""
        rng = self.rng_for(config, "turn")
        window = trace.window
        truth = self.control_truth("turn")
        records = trace.records
        t = window.call_start + 0.05

        def send(payload: bytes, direction: Direction, at: float) -> None:
            records.append(self.packet(at, device, RELAY_SERVER, payload, direction, truth))

        # Allocate (undefined 0x4001 attr) -> 401 -> Allocate -> Success (0x4002).
        txid1 = rng.transaction_id()
        allocate = StunMessage(
            msg_type=0x0003,
            transaction_id=txid1,
            attributes=[
                StunAttribute(int(AttributeType.REQUESTED_TRANSPORT),
                              requested_transport_value()),
                StunAttribute(ATTR_SESSION, rng.rand_bytes(12)),
            ],
        )
        error_401 = StunMessage(
            msg_type=0x0113,
            transaction_id=txid1,
            attributes=[
                StunAttribute(int(AttributeType.ERROR_CODE),
                              encode_error_code(401, "Unauthorized")),
                StunAttribute(int(AttributeType.REALM), b"fbturn"),
                StunAttribute(int(AttributeType.NONCE), rng.rand_bytes(16).hex().encode()),
            ],
        )
        send(allocate.build(), Direction.OUTBOUND, t)
        send(error_401.build(), Direction.INBOUND, t + 0.04)
        txid2 = rng.transaction_id()
        allocate2 = StunMessage(
            msg_type=0x0003,
            transaction_id=txid2,
            attributes=[
                StunAttribute(int(AttributeType.REQUESTED_TRANSPORT),
                              requested_transport_value()),
                StunAttribute(int(AttributeType.USERNAME), b"fb:caller"),
                StunAttribute(int(AttributeType.REALM), b"fbturn"),
                StunAttribute(ATTR_SESSION, rng.rand_bytes(12)),
                StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
            ],
        )
        success = StunMessage(
            msg_type=0x0103,
            transaction_id=txid2,
            attributes=[
                StunAttribute(int(AttributeType.XOR_RELAYED_ADDRESS),
                              encode_xor_address(*RELAYED_ADDRESS, txid2)),
                StunAttribute(int(AttributeType.LIFETIME), lifetime_value(600)),
                StunAttribute(ATTR_RESPONSE_META, rng.rand_bytes(4)),
            ],
        )
        send(allocate2.build(), Direction.OUTBOUND, t + 0.1)
        send(success.build(), Direction.INBOUND, t + 0.14)

        # CreatePermission: one 403 error then a success (both compliant).
        txid3 = rng.transaction_id()
        create_perm = StunMessage(
            msg_type=0x0008,
            transaction_id=txid3,
            attributes=[
                StunAttribute(int(AttributeType.XOR_PEER_ADDRESS),
                              encode_xor_address(*PEER_REFLEXIVE, txid3)),
                StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
            ],
        )
        perm_error = StunMessage(
            msg_type=0x0118,
            transaction_id=txid3,
            attributes=[
                StunAttribute(int(AttributeType.ERROR_CODE),
                              encode_error_code(403, "Forbidden")),
            ],
        )
        send(create_perm.build(), Direction.OUTBOUND, t + 0.2)
        send(perm_error.build(), Direction.INBOUND, t + 0.24)
        txid4 = rng.transaction_id()
        create_perm2 = StunMessage(
            msg_type=0x0008,
            transaction_id=txid4,
            attributes=[
                StunAttribute(int(AttributeType.XOR_PEER_ADDRESS),
                              encode_xor_address(*PEER_REFLEXIVE, txid4)),
                StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
            ],
        )
        perm_ok = StunMessage(msg_type=0x0108, transaction_id=txid4, attributes=[])
        send(create_perm2.build(), Direction.OUTBOUND, t + 0.3)
        send(perm_ok.build(), Direction.INBOUND, t + 0.34)

        # ChannelBind pair.
        txid5 = rng.transaction_id()
        channel_bind = StunMessage(
            msg_type=0x0009,
            transaction_id=txid5,
            attributes=[
                StunAttribute(int(AttributeType.CHANNEL_NUMBER),
                              channel_number_value(CHANNEL)),
                StunAttribute(int(AttributeType.XOR_PEER_ADDRESS),
                              encode_xor_address(*PEER_REFLEXIVE, txid5)),
                StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), rng.rand_bytes(20)),
            ],
        )
        bind_ok = StunMessage(msg_type=0x0109, transaction_id=txid5, attributes=[])
        send(channel_bind.build(), Direction.OUTBOUND, t + 0.4)
        send(bind_ok.build(), Direction.INBOUND, t + 0.44)

        # Early media as Send/Data Indications, then periodic Refresh pairs.
        ti = t + 0.5
        for i in range(20):
            txid = rng.transaction_id()
            if i % 2 == 0:
                indication = StunMessage(
                    msg_type=0x0016,
                    transaction_id=txid,
                    attributes=[
                        StunAttribute(int(AttributeType.XOR_PEER_ADDRESS),
                                      encode_xor_address(*PEER_REFLEXIVE, txid)),
                        StunAttribute(int(AttributeType.DATA), rng.rand_bytes(160)),
                    ],
                )
                send(indication.build(), Direction.OUTBOUND, ti)
            else:
                indication = StunMessage(
                    msg_type=0x0017,
                    transaction_id=txid,
                    attributes=[
                        StunAttribute(int(AttributeType.XOR_PEER_ADDRESS),
                                      encode_xor_address(*PEER_REFLEXIVE, txid)),
                        StunAttribute(int(AttributeType.DATA), rng.rand_bytes(160)),
                    ],
                )
                send(indication.build(), Direction.INBOUND, ti)
            ti += 0.03

        refresh_at = window.call_start + 10.0
        while refresh_at < window.call_end:
            txid = rng.transaction_id()
            refresh = StunMessage(
                msg_type=0x0004,
                transaction_id=txid,
                attributes=[StunAttribute(int(AttributeType.LIFETIME), lifetime_value(600))],
            )
            refresh_ok = StunMessage(
                msg_type=0x0104,
                transaction_id=txid,
                attributes=[StunAttribute(int(AttributeType.LIFETIME), lifetime_value(600))],
            )
            send(refresh.build(), Direction.OUTBOUND, refresh_at)
            send(refresh_ok.build(), Direction.INBOUND, refresh_at + 0.04)
            refresh_at += rng.jitter(15.0, 0.1)

        # Meta burst + call-end 0x0800 messages (six for Messenger).
        trace.records.extend(
            burst_0801_0802(self.packet, device, RELAY_SERVER,
                            window.call_start + 0.02, rng, truth)
        )
        trace.records.extend(
            call_end_0800(self.packet, device, RELAY_SERVER, window.call_end,
                          RELAYED_ADDRESS[0], RELAYED_ADDRESS[1], rng, truth, count=6)
        )

    def _emit_ice(self, trace, config, device, peer, segments) -> None:
        rng = self.rng_for(config, "ice")
        truth = self.control_truth("ice")
        for start, end, mode in segments:
            remote = self._remote_for(mode, peer)
            t = start + 0.6
            while t < end:
                request, response = ice_binding_pair(
                    device, remote, rng,
                    response_extra=(ATTR_RESPONSE_META, rng.rand_bytes(4)),
                )
                # Messenger's requests also carry the undefined attribute;
                # rebuild with a fresh FINGERPRINT so only the undefined
                # attribute is at fault.
                msg = StunMessage.parse(request)
                tampered = StunMessage(
                    msg_type=msg.msg_type,
                    transaction_id=msg.transaction_id,
                    attributes=msg.attributes[:-1]
                    + [StunAttribute(ATTR_RESPONSE_META, rng.rand_bytes(4))],
                )
                trace.records.append(
                    self.packet(t, device, remote, build_with_fingerprint(tampered),
                                Direction.OUTBOUND, truth)
                )
                trace.records.append(
                    self.packet(t + 0.02, device, remote, response, Direction.INBOUND, truth)
                )
                t += rng.jitter(2.5, 0.2)

    # -- media ---------------------------------------------------------------------

    def _emit_media(self, trace, config, device, peer, segments) -> None:
        rng = self.rng_for(config, "media")
        for kind, pt, pps, size, ts_inc, aux in (
            ("audio", AUDIO_PT, 50, (70, 160), 480, (AUX_PTS[0],)),
            ("video", VIDEO_PT, 85, (650, 1150), 3000, AUX_PTS[1:]),
        ):
            for direction in (Direction.OUTBOUND, Direction.INBOUND):
                state = RtpStreamState(
                    ssrc=rng.u32(), payload_type=pt, clock_rate=90000, rng=rng
                )
                for start, end, mode in segments:
                    remote = self._remote_for(mode, peer)
                    wrap_channel = mode is TransmissionMode.RELAY and kind == "audio"
                    self._emit_segment(
                        trace.records, device, remote, direction, state, rng,
                        start, end, pps * config.media_scale, size, ts_inc, aux,
                        kind, wrap_channel,
                    )

    def _emit_segment(
        self, records, device, remote, direction, state, rng,
        t0, t1, pps, size, ts_inc, aux_pts, kind, wrap_channel,
    ) -> None:
        interval = 1.0 / pps
        t = t0 + rng.uniform(0, interval)
        index = 0
        truth = self.media_truth(f"rtp-{kind}")
        while t < t1:
            override = None
            if aux_pts and index % 47 == 11:
                override = aux_pts[(index // 47) % len(aux_pts)]
            extension = None
            if index % 2 == 1:
                extension = build_one_byte_extension(
                    [(2, rng.rand_bytes(3))]
                )
            packet = state.next_packet(
                payload=rng.rand_bytes(rng.randint(*size)),
                ts_increment=ts_inc,
                marker=index % 15 == 0,
                extension=extension,
                payload_type=override,
            )
            raw = packet.build()
            # A slice of early relay audio rides inside ChannelData frames.
            if wrap_channel and index < 60:
                raw = ChannelData(channel=CHANNEL, data=raw).build()
            records.append(self.packet(t, device, remote, raw, direction, truth))
            t += rng.jitter(interval, 0.05)
            index += 1

    def _emit_rtcp(self, trace, config, device, peer, segments) -> None:
        """Messenger's RTCP share is ~10% of messages — much chattier."""
        rng = self.rng_for(config, "rtcp")
        truth = self.control_truth("rtcp")
        ssrc_a, ssrc_b = rng.u32(), rng.u32()
        state = RtpStreamState(ssrc=ssrc_a, payload_type=AUDIO_PT, clock_rate=48000, rng=rng)
        for start, end, mode in segments:
            remote = self._remote_for(mode, peer)
            # ~24 packets/second at scale 1 to reach the ~10% share.
            rate = 24.0 * config.media_scale
            t = start + 0.8
            i = 0
            while t < end:
                kind = i % 4
                if kind == 0:
                    payload = self.make_sender_report(state, ssrc_b, rng, t).build()
                elif kind == 1:
                    payload = self.make_receiver_report(ssrc_a, ssrc_b, rng).build()
                elif kind == 2:
                    payload = FeedbackPacket(
                        packet_type=205, fmt=15, sender_ssrc=ssrc_a, media_ssrc=ssrc_b,
                        fci=rng.rand_bytes(8),
                    ).to_packet().build()
                else:
                    payload = FeedbackPacket(
                        packet_type=206, fmt=1, sender_ssrc=ssrc_a, media_ssrc=ssrc_b,
                    ).to_packet().build()
                direction = Direction.OUTBOUND if i % 2 == 0 else Direction.INBOUND
                trace.records.append(self.packet(t, device, remote, payload, direction, truth))
                t += rng.jitter(1.0 / max(rate, 0.5), 0.2)
                i += 1
