"""Zoom call simulator.

Reproduces the Zoom behaviours documented in the paper:

- every RTP/RTCP datagram is preceded by a 24-39 byte proprietary header
  with an SFU section (direction byte 0x00/0x04, or 0x01/0x05 when the
  type-7 wrapper is present; constant 4-byte media ID per stream) and a
  media section (type 15 audio RTP, 16 video RTP, 33-35 RTCP, 7 wrapper);
- ~6.9% of RTP/RTCP packets use the type-7 wrapper (cellular and
  P2P-disabled Wi-Fi only);
- legacy RFC 3489 STUN with undefined attributes 0x0101 (Binding Request,
  20-byte ASCII ``1234567890`` twice) and 0x0103 (Shared Secret Request,
  8 bytes); launch-time STUN plus mid-call STUN in Wi-Fi P2P mode only;
- fixed, network-dependent SSRC sets (never randomized across calls);
- filler datagrams: 1000 identical bytes, bursts at stream start ramping
  to 500 pkt/s (relay) / 180 pkt/s (P2P), ~53% of fully proprietary volume;
- 0.21% of audio datagrams carry two RTP messages (payload type 110,
  7-byte first payload, same SSRC/timestamp, consecutive sequence numbers).
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.base import (
    AppSimulator,
    CallConfig,
    Direction,
    Endpoint,
    NetworkCondition,
    RtpStreamState,
    Trace,
    TransmissionMode,
)
from repro.apps.background import BackgroundNoiseGenerator
from repro.apps.signaling import signaling_flows
from repro.packets.packet import PacketRecord
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.message import StunMessage
from repro.utils.rand import DeterministicRandom

SFU_SERVER = Endpoint("170.114.52.2", 8801)
STUN_SERVER = Endpoint("170.114.10.74", 3478)
SIGNALING_DOMAIN = "zoomgov-live.zoom.us"
SIGNALING_IP = "170.114.12.30"

#: Media-section type codes (after Michel et al., IMC '22).
TYPE_AUDIO_RTP = 15
TYPE_VIDEO_RTP = 16
TYPE_RTCP = 33
TYPE_WRAPPER = 7

#: Fixed SSRC sets per network configuration (paper §5.2.2).
OUTBOUND_SSRCS = {
    NetworkCondition.CELLULAR: (0x1001401, 0x1001402),
    NetworkCondition.WIFI_P2P: (0x1000801, 0x1000802),
    NetworkCondition.WIFI_RELAY: (0x1000C01, 0x1000C02),
}
INBOUND_SSRCS = (0x1000401, 0x1000402)

#: Payload types observed in Zoom traffic (paper Table 5).
MISC_PAYLOAD_TYPES = (
    [0, 3, 4, 5, 10, 12, 13, 19, 20, 25, 33, 35, 38, 41, 45, 46, 49, 59,
     68, 69, 74, 75, 82, 83, 89, 92, 93, 95, 98, 99]
    + list(range(102, 122))
    + [123, 126, 127]
)
AUDIO_PT = 110
VIDEO_PT = 98

WRAPPER_FRACTION = 0.069
DUAL_RTP_FRACTION = 0.0021


class ZoomSimulator(AppSimulator):
    """Synthesizes Zoom 1-on-1 call traffic."""

    name = "zoom"

    def simulate(self, config: CallConfig) -> Trace:
        window = config.window()
        trace = Trace(app=self.name, config=config, window=window)
        mode = (
            TransmissionMode.P2P
            if config.network is NetworkCondition.WIFI_P2P
            else TransmissionMode.RELAY
        )
        trace.mode_timeline.append((window.call_start, mode))

        device_ip = self.device_ip(config)
        rng = self.rng_for(config, "main")
        media_port = rng.randint(50000, 60000)
        if mode is TransmissionMode.RELAY:
            remote = SFU_SERVER
        else:
            remote = Endpoint(self.peer_device_ip(config), 8801)
        device = Endpoint(device_ip, media_port)

        self._emit_launch_stun(trace, config, device_ip)
        self._emit_media(trace, config, device, remote, mode)
        if config.network is NetworkCondition.WIFI_P2P:
            self._emit_midcall_stun(trace, config, device, remote)
        trace.records.extend(
            signaling_flows(
                app=self.name,
                domain=SIGNALING_DOMAIN,
                server_ip=SIGNALING_IP,
                device_ip=device_ip,
                window=window,
                rng=self.rng_for(config, "signaling"),
                in_call_volume=40,
            )
        )
        if config.include_background:
            noise = BackgroundNoiseGenerator(
                config=config, device_ip=device_ip, rng=self.rng_for(config, "noise")
            )
            trace.records.extend(noise.generate(window))
        trace.sort()
        return trace

    # -- proprietary framing --------------------------------------------------

    def _proprietary_header(
        self,
        media_type: int,
        direction: Direction,
        media_id: int,
        session_tag: bytes,
        seq: int,
        inner_len: int,
        wrapped: bool,
    ) -> bytes:
        """Build the 24- or 32-byte Zoom header preceding each media message."""
        if wrapped:
            direction_byte = 0x01 if direction is Direction.OUTBOUND else 0x05
        else:
            direction_byte = 0x00 if direction is Direction.OUTBOUND else 0x04
        sfu = bytes([direction_byte, 0x64]) + media_id.to_bytes(4, "big")
        sfu += session_tag + (seq & 0xFFFF).to_bytes(2, "big")
        media = bytes([TYPE_WRAPPER if wrapped else media_type, 0x00])
        media += (inner_len & 0xFFFF).to_bytes(2, "big")
        media += ((seq * 960) & 0xFFFFFFFF).to_bytes(4, "big")
        header = sfu + media
        if wrapped:
            # The wrapper nests another media section carrying the real type.
            inner = bytes([media_type, 0x00]) + inner_len.to_bytes(2, "big")
            inner += ((seq * 960) & 0xFFFFFFFF).to_bytes(4, "big")
            header += inner
        return header

    def _emit_media(
        self,
        trace: Trace,
        config: CallConfig,
        device: Endpoint,
        remote: Endpoint,
        mode: TransmissionMode,
    ) -> None:
        window = trace.window
        rng = self.rng_for(config, "media")
        t0, t1 = window.call_start, window.call_end
        out_audio_ssrc, out_video_ssrc = OUTBOUND_SSRCS[config.network]
        in_audio_ssrc, in_video_ssrc = INBOUND_SSRCS
        session_tag = rng.rand_bytes(8)
        allow_wrapper = config.network is not NetworkCondition.WIFI_P2P

        plans = [
            # (ssrc, base_pt, media_type, direction, pps, size)
            (out_audio_ssrc, AUDIO_PT, TYPE_AUDIO_RTP, Direction.OUTBOUND, 50, (90, 180)),
            (in_audio_ssrc, AUDIO_PT, TYPE_AUDIO_RTP, Direction.INBOUND, 50, (90, 180)),
            (out_video_ssrc, VIDEO_PT, TYPE_VIDEO_RTP, Direction.OUTBOUND, 95, (700, 1150)),
            (in_video_ssrc, VIDEO_PT, TYPE_VIDEO_RTP, Direction.INBOUND, 95, (700, 1150)),
        ]
        # Group calls: the SFU fans in one stream pair per extra participant,
        # continuing Zoom's deterministic SSRC numbering.
        for extra in range(config.extra_participants):
            plans.append((in_audio_ssrc + 2 * (extra + 1), AUDIO_PT,
                          TYPE_AUDIO_RTP, Direction.INBOUND, 50, (90, 180)))
            plans.append((in_video_ssrc + 2 * (extra + 1), VIDEO_PT,
                          TYPE_VIDEO_RTP, Direction.INBOUND, 95, (700, 1150)))
        # One media ID per transport stream (5-tuple): constant for the
        # whole call (§5.3).  All media shares one 5-tuple here, so all
        # plans share the ID.
        media_id = rng.u32()
        stream_states = {}
        for ssrc, pt, media_type, direction, pps, size in plans:
            pps *= config.media_scale
            state = RtpStreamState(ssrc=ssrc, payload_type=pt, clock_rate=90000, rng=rng)
            stream_states[(ssrc, direction)] = state
            seq_counter = [0]
            is_audio = media_type == TYPE_AUDIO_RTP

            def wrap(raw: bytes, d: Direction, index: int, _mt=media_type,
                     _mid=media_id, _sc=seq_counter) -> bytes:
                wrapped = allow_wrapper and rng.random() < WRAPPER_FRACTION
                header = self._proprietary_header(
                    _mt, d, _mid, session_tag, _sc[0], len(raw), wrapped
                )
                _sc[0] += 1
                return header + raw

            # Audio stream: occasionally emit the dual-RTP datagram by hand.
            if is_audio:
                self._emit_audio_with_duals(
                    trace.records, config, device, remote, direction,
                    state, rng, t0, t1, pps, (90, 180), wrap,
                )
            else:
                # Video stream cycles through Zoom's long payload-type list at
                # a low rate so every observed type appears (Table 5).  Each
                # direction starts the rotation elsewhere so short calls
                # still cover the whole list between them.
                cycle_offset = (
                    len(MISC_PAYLOAD_TYPES) // 2
                    if direction is Direction.INBOUND
                    else 0
                )

                def ext_pt(index: int, _off=cycle_offset) -> Optional[int]:
                    if index % 37 == 5:
                        return MISC_PAYLOAD_TYPES[
                            (index // 37 + _off) % len(MISC_PAYLOAD_TYPES)
                        ]
                    return None

                self._emit_video_with_misc(
                    trace.records, device, remote, direction, state, rng,
                    t0, t1, pps, (700, 1150), wrap, ext_pt,
                )

        # RTCP: SR + SDES, compliant, wrapped with media-section type 33.
        self._emit_rtcp(trace, config, device, remote, stream_states,
                        session_tag, allow_wrapper, media_id)
        # Filler bursts and other fully proprietary datagrams.
        self._emit_filler(trace, config, device, remote, mode)

    def _emit_audio_with_duals(
        self, records, config, device, remote, direction, state, rng,
        t0, t1, pps, size_range, wrap,
    ) -> None:
        interval = 1.0 / pps
        t = t0 + rng.uniform(0, interval)
        index = 0
        truth = self.media_truth("rtp-audio")
        while t < t1:
            if rng.random() < DUAL_RTP_FRACTION:
                # Two RTP messages in one datagram: 7-byte probe + real frame,
                # same SSRC and timestamp, consecutive sequence numbers.
                first = state.next_packet(payload=rng.rand_bytes(7), ts_increment=0)
                second = state.next_packet(
                    payload=rng.rand_bytes(1000), ts_increment=960
                )
                raw = first.build() + second.build()
            else:
                raw = state.next_packet(
                    payload=rng.rand_bytes(rng.randint(*size_range)), ts_increment=960
                ).build()
            records.append(
                self.packet(t, device, remote, wrap(raw, direction, index), direction, truth)
            )
            t += rng.jitter(interval, 0.05)
            index += 1

    def _emit_video_with_misc(
        self, records, device, remote, direction, state, rng,
        t0, t1, pps, size_range, wrap, pt_override,
    ) -> None:
        interval = 1.0 / pps
        t = t0 + rng.uniform(0, interval)
        index = 0
        truth = self.media_truth("rtp-video")
        while t < t1:
            override = pt_override(index)
            payload_len = 120 if override is not None else rng.randint(*size_range)
            packet = state.next_packet(
                payload=rng.rand_bytes(payload_len),
                ts_increment=3000,
                marker=index % 10 == 0,
                payload_type=override,
            )
            records.append(
                self.packet(
                    t, device, remote, wrap(packet.build(), direction, index),
                    direction, truth,
                )
            )
            t += rng.jitter(interval, 0.05)
            index += 1

    def _emit_rtcp(
        self, trace, config, device, remote, stream_states, session_tag,
        allow_wrapper, media_id,
    ) -> None:
        rng = self.rng_for(config, "rtcp")
        window = trace.window
        truth = self.control_truth("rtcp")
        seq = 0
        t = window.call_start + 1.0
        out_audio = stream_states[(OUTBOUND_SSRCS[config.network][0], Direction.OUTBOUND)]
        in_audio = stream_states[(INBOUND_SSRCS[0], Direction.INBOUND)]
        while t < window.call_end:
            for direction, state, remote_ssrc in (
                (Direction.OUTBOUND, out_audio, INBOUND_SSRCS[0]),
                (Direction.INBOUND, in_audio, OUTBOUND_SSRCS[config.network][0]),
            ):
                compound = (
                    self.make_sender_report(state, remote_ssrc, rng, t).build()
                    + self.make_sdes(state.ssrc, f"zoom-{state.ssrc:x}").build()
                )
                wrapped = allow_wrapper and rng.random() < WRAPPER_FRACTION
                header = self._proprietary_header(
                    TYPE_RTCP, direction, media_id, session_tag, seq, len(compound), wrapped
                )
                trace.records.append(
                    self.packet(t, device, remote, header + compound, direction, truth)
                )
                seq += 1
            t += rng.jitter(0.6 / max(config.media_scale, 0.05), 0.2)

    def _emit_filler(self, trace, config, device, remote, mode) -> None:
        """Bandwidth-probe fillers plus other fully proprietary datagrams."""
        rng = self.rng_for(config, "filler")
        window = trace.window
        peak = 500.0 if mode is TransmissionMode.RELAY else 180.0
        peak *= config.media_scale
        # 10-20 s on the paper's 5-minute calls, i.e. 3-7% of the call —
        # scaled proportionally so shortened calls keep the same traffic mix.
        burst_len = window.call_duration * rng.uniform(0.033, 0.067)
        burst_len = min(burst_len, 20.0)
        truth = self.control_truth("filler")
        for direction in (Direction.OUTBOUND, Direction.INBOUND):
            fill_byte = rng.choice([0x01, 0x02, 0x03])
            # Linear ramp 0 -> peak over burst_len: cumulative count is
            # peak*t^2/(2*burst_len), so the i-th packet fires at
            # burst_len*sqrt(i/total).
            total = max(8, int(peak * burst_len / 2))
            for i in range(total):
                t = window.call_start + burst_len * ((i + 1) / total) ** 0.5
                trace.records.append(
                    self.packet(
                        t, device, remote, bytes([fill_byte]) * 1000, direction, truth
                    )
                )
        # Other fully proprietary control datagrams spread over the call.
        other_truth = self.control_truth("proprietary-control")
        t = window.call_start + 0.5
        rate = 30.0 * config.media_scale
        while t < window.call_end:
            payload = bytes([0x05, 0x1F]) + rng.rand_bytes(58)
            direction = Direction.OUTBOUND if rng.random() < 0.5 else Direction.INBOUND
            trace.records.append(self.packet(t, device, remote, payload, direction, other_truth))
            t += rng.jitter(1.0 / max(rate, 1.0), 0.3)

    # -- STUN ------------------------------------------------------------------

    def _binding_request(self, rng: DeterministicRandom) -> bytes:
        """Classic RFC 3489 Binding Request with the undefined 0x0101 attribute."""
        return StunMessage(
            msg_type=0x0001,
            transaction_id=rng.rand_bytes(16),
            attributes=[StunAttribute(0x0101, b"12345678901234567890")],
            classic=True,
        ).build()

    def _shared_secret_request(self, rng: DeterministicRandom) -> bytes:
        """Server-originated Shared Secret Request with undefined 0x0103."""
        return StunMessage(
            msg_type=0x0002,
            transaction_id=rng.rand_bytes(16),
            attributes=[StunAttribute(0x0103, rng.rand_bytes(8))],
            classic=True,
        ).build()

    def _emit_launch_stun(self, trace: Trace, config: CallConfig, device_ip: str) -> None:
        """App-launch STUN in the pre-call phase (filtered out downstream)."""
        rng = self.rng_for(config, "stun-launch")
        device = Endpoint(device_ip, rng.randint(49152, 65535))
        truth = self.control_truth("stun-launch")
        t = trace.window.capture_start + rng.uniform(2.0, 6.0)
        for _ in range(4):
            trace.records.append(
                self.packet(t, device, STUN_SERVER, self._binding_request(rng),
                            Direction.OUTBOUND, truth)
            )
            trace.records.append(
                self.packet(t + 0.08, device, STUN_SERVER, self._shared_secret_request(rng),
                            Direction.INBOUND, truth)
            )
            t += rng.uniform(0.5, 1.5)

    def _emit_midcall_stun(
        self, trace: Trace, config: CallConfig, device: Endpoint, remote: Endpoint
    ) -> None:
        """Wi-Fi P2P connectivity checks inside the call window."""
        rng = self.rng_for(config, "stun-midcall")
        window = trace.window
        truth = self.control_truth("stun-midcall")
        t = window.call_start + 2.0
        while t < window.call_end:
            trace.records.append(
                self.packet(t, device, remote, self._binding_request(rng),
                            Direction.OUTBOUND, truth)
            )
            trace.records.append(
                self.packet(t + 0.03, device, remote, self._shared_secret_request(rng),
                            Direction.INBOUND, truth)
            )
            t += rng.jitter(5.0, 0.2)
