"""WhatsApp call simulator.

Reproduces the WhatsApp behaviours documented in the paper:

- undefined STUN message types 0x0800-0x0805: the 0x0801/0x0802 pre-join
  burst (16 pairs in ~2.2 ms; 500-byte requests with a zero-filled 0x4004
  attribute, 40-byte replies, shared transaction IDs), four 0x0800
  messages at call termination carrying 0x4000 + XOR-RELAYED-ADDRESS, and
  sporadic 0x0803-0x0805 probes;
- standard, compliant ICE Binding Requests (0x0001) — the app's only
  compliant STUN type — while Binding Success (0x0101) and Allocate
  Success (0x0103) carry the undefined 0x4002 attribute and Allocate
  Requests (0x0003) carry the undefined 0x4001 attribute;
- fully compliant RTP (payload types 97, 103, 105, 106, 120) and RTCP
  (SR 200, SDES 202, RTPFB 205, PSFB 206);
- cellular calls start in relay mode and switch to P2P after ~30 s.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import (
    AppSimulator,
    CallConfig,
    Direction,
    Endpoint,
    NetworkCondition,
    RtpStreamState,
    Trace,
    TransmissionMode,
)
from repro.apps.background import BackgroundNoiseGenerator
from repro.apps.meta_common import (
    ATTR_RESPONSE_META,
    ATTR_SESSION,
    burst_0801_0802,
    call_end_0800,
    ice_binding_pair,
)
from repro.apps.signaling import signaling_flows
from repro.packets.packet import PacketRecord
from repro.protocols.rtcp.packets import FeedbackPacket
from repro.protocols.rtp.extensions import build_one_byte_extension
from repro.protocols.stun.attributes import (
    StunAttribute,
    encode_xor_address,
    lifetime_value,
    requested_transport_value,
)
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import StunMessage
from repro.utils.rand import DeterministicRandom

RELAY_SERVER = Endpoint("157.240.195.55", 3478)
RELAYED_ADDRESS = ("157.240.195.60", 41234)
SIGNALING_DOMAIN = "g.whatsapp.net"
SIGNALING_IP = "157.240.195.15"

AUDIO_PT = 120
VIDEO_PT = 97
AUX_PTS = (103, 105, 106)
P2P_SWITCH_AFTER = 30.0


class WhatsAppSimulator(AppSimulator):
    """Synthesizes WhatsApp 1-on-1 call traffic."""

    name = "whatsapp"

    def simulate(self, config: CallConfig) -> Trace:
        if config.participants != 2:
            raise ValueError(
                "whatsapp group calls use a different media topology and are "
                "not modelled; only 1-on-1 calls are supported"
            )
        window = config.window()
        trace = Trace(app=self.name, config=config, window=window)
        rng = self.rng_for(config, "main")
        device_ip = self.device_ip(config)
        device = Endpoint(device_ip, rng.randint(50000, 60000))
        peer = Endpoint(self.peer_device_ip(config), rng.randint(50000, 60000))

        segments = self._mode_segments(config, window)
        trace.mode_timeline.extend((start, mode) for start, _end, mode in segments)

        self._emit_stun(trace, config, device, peer, segments)
        self._emit_media(trace, config, device, peer, segments)
        self._emit_rtcp(trace, config, device, peer, segments)
        self._emit_fully_proprietary(trace, config, device, peer)
        trace.records.extend(
            signaling_flows(
                app=self.name,
                domain=SIGNALING_DOMAIN,
                server_ip=SIGNALING_IP,
                device_ip=device_ip,
                window=window,
                rng=self.rng_for(config, "signaling"),
                in_call_volume=8,
            )
        )
        if config.include_background:
            noise = BackgroundNoiseGenerator(
                config=config, device_ip=device_ip, rng=self.rng_for(config, "noise")
            )
            trace.records.extend(noise.generate(window))
        trace.sort()
        return trace

    def _mode_segments(self, config: CallConfig, window):
        """(start, end, mode) segments; cellular switches relay→P2P (§3.1.1)."""
        if config.network is NetworkCondition.WIFI_P2P:
            return [(window.call_start, window.call_end, TransmissionMode.P2P)]
        if config.network is NetworkCondition.WIFI_RELAY:
            return [(window.call_start, window.call_end, TransmissionMode.RELAY)]
        switch = window.call_start + min(P2P_SWITCH_AFTER, window.call_duration / 2)
        return [
            (window.call_start, switch, TransmissionMode.RELAY),
            (switch, window.call_end, TransmissionMode.P2P),
        ]

    def _remote_for(self, mode: TransmissionMode, peer: Endpoint) -> Endpoint:
        return RELAY_SERVER if mode is TransmissionMode.RELAY else peer

    # -- STUN -------------------------------------------------------------------

    def _emit_stun(self, trace, config, device, peer, segments) -> None:
        rng = self.rng_for(config, "stun")
        window = trace.window
        truth = self.control_truth("stun")

        # Pre-join 0x0801/0x0802 burst, right after call initiation.
        trace.records.extend(
            burst_0801_0802(
                self.packet, device, RELAY_SERVER, window.call_start + 0.05, rng, truth
            )
        )

        uses_relay = any(mode is TransmissionMode.RELAY for _s, _e, mode in segments)
        if uses_relay:
            # Allocate exchange with Meta's undefined attributes on both legs.
            t = window.call_start + 0.1
            for _ in range(2):
                txid = rng.transaction_id()
                allocate = StunMessage(
                    msg_type=0x0003,
                    transaction_id=txid,
                    attributes=[
                        StunAttribute(
                            int(AttributeType.REQUESTED_TRANSPORT),
                            requested_transport_value(),
                        ),
                        StunAttribute(ATTR_SESSION, rng.rand_bytes(12)),
                    ],
                )
                success = StunMessage(
                    msg_type=0x0103,
                    transaction_id=txid,
                    attributes=[
                        StunAttribute(
                            int(AttributeType.XOR_RELAYED_ADDRESS),
                            encode_xor_address(*RELAYED_ADDRESS, txid),
                        ),
                        StunAttribute(int(AttributeType.LIFETIME), lifetime_value(600)),
                        StunAttribute(ATTR_RESPONSE_META, rng.rand_bytes(4)),
                    ],
                )
                trace.records.append(
                    self.packet(t, device, RELAY_SERVER, allocate.build(),
                                Direction.OUTBOUND, truth)
                )
                trace.records.append(
                    self.packet(t + 0.05, device, RELAY_SERVER, success.build(),
                                Direction.INBOUND, truth)
                )
                t += 0.2

        # ICE connectivity checks throughout the call; responses carry the
        # undefined 0x4002 attribute (making 0x0101 non-compliant).
        for start, end, mode in segments:
            remote = self._remote_for(mode, peer)
            t = start + 0.5
            while t < end:
                request, response = ice_binding_pair(
                    device, remote, rng,
                    response_extra=(ATTR_RESPONSE_META, rng.rand_bytes(4)),
                )
                trace.records.append(
                    self.packet(t, device, remote, request, Direction.OUTBOUND, truth)
                )
                trace.records.append(
                    self.packet(t + 0.02, device, remote, response, Direction.INBOUND, truth)
                )
                t += rng.jitter(2.5, 0.2)

        # Sporadic 0x0803-0x0805 probes mid-call.
        t = window.call_start + 2.0
        probe_types = (0x0803, 0x0804, 0x0805)
        i = 0
        while t < window.call_end:
            msg = StunMessage(
                msg_type=probe_types[i % 3],
                transaction_id=rng.transaction_id(),
                attributes=[StunAttribute(ATTR_SESSION, rng.rand_bytes(8))],
            )
            trace.records.append(
                self.packet(t, device, RELAY_SERVER, msg.build(), Direction.OUTBOUND, truth)
            )
            t += rng.jitter(6.0, 0.3)
            i += 1

        # Call termination: four 0x0800 messages to the allocation server.
        trace.records.extend(
            call_end_0800(
                self.packet, device, RELAY_SERVER, window.call_end,
                RELAYED_ADDRESS[0], RELAYED_ADDRESS[1], rng, truth, count=4,
            )
        )

    # -- media -------------------------------------------------------------------

    def _emit_media(self, trace, config, device, peer, segments) -> None:
        rng = self.rng_for(config, "media")
        for kind, pt, pps, size, ts_inc, aux in (
            ("audio", AUDIO_PT, 50, (70, 160), 480, ()),
            ("video", VIDEO_PT, 95, (650, 1150), 3000, AUX_PTS),
        ):
            for direction in (Direction.OUTBOUND, Direction.INBOUND):
                state = RtpStreamState(
                    ssrc=rng.u32(), payload_type=pt, clock_rate=90000, rng=rng
                )
                for start, end, mode in segments:
                    remote = self._remote_for(mode, peer)
                    self._emit_segment(
                        trace.records, device, remote, direction, state, rng,
                        start, end, pps * config.media_scale, size, ts_inc, aux, kind,
                    )

    def _emit_segment(
        self, records, device, remote, direction, state, rng,
        t0, t1, pps, size, ts_inc, aux_pts, kind,
    ) -> None:
        interval = 1.0 / pps
        t = t0 + rng.uniform(0, interval)
        index = 0
        truth = self.media_truth(f"rtp-{kind}")
        while t < t1:
            override = None
            if aux_pts and index % 41 == 3:
                override = aux_pts[(index // 41) % len(aux_pts)]
            extension = None
            if index % 2 == 0:
                # Compliant one-byte extensions (audio level / TWCC style).
                extension = build_one_byte_extension(
                    [(1, bytes([rng.randint(0, 127)])),
                     (3, rng.randint(0, 0xFFFF).to_bytes(2, "big"))]
                )
            packet = state.next_packet(
                payload=rng.rand_bytes(rng.randint(*size)),
                ts_increment=ts_inc,
                marker=index % 15 == 0,
                extension=extension,
                payload_type=override,
            )
            records.append(self.packet(t, device, remote, packet.build(), direction, truth))
            t += rng.jitter(interval, 0.05)
            index += 1

    def _emit_rtcp(self, trace, config, device, peer, segments) -> None:
        rng = self.rng_for(config, "rtcp")
        truth = self.control_truth("rtcp")
        ssrc_a, ssrc_b = rng.u32(), rng.u32()
        state = RtpStreamState(ssrc=ssrc_a, payload_type=AUDIO_PT, clock_rate=48000, rng=rng)
        for start, end, mode in segments:
            remote = self._remote_for(mode, peer)
            t = start + 1.0
            i = 0
            while t < end:
                if i % 3 == 0:
                    payload = (
                        self.make_sender_report(state, ssrc_b, rng, t).build()
                        + self.make_sdes(ssrc_a, f"wa-{ssrc_a:x}").build()
                    )
                elif i % 3 == 1:
                    payload = FeedbackPacket(
                        packet_type=205, fmt=1, sender_ssrc=ssrc_a, media_ssrc=ssrc_b,
                        fci=rng.u32().to_bytes(4, "big"),
                    ).to_packet().build()
                else:
                    payload = FeedbackPacket(
                        packet_type=206, fmt=1, sender_ssrc=ssrc_a, media_ssrc=ssrc_b,
                    ).to_packet().build()
                direction = Direction.OUTBOUND if i % 2 == 0 else Direction.INBOUND
                trace.records.append(self.packet(t, device, remote, payload, direction, truth))
                t += rng.jitter(0.35 / max(config.media_scale, 0.05), 0.2)
                i += 1

    def _emit_fully_proprietary(self, trace, config, device, peer) -> None:
        """Occasional unparseable keepalives (~0.4% of datagrams)."""
        rng = self.rng_for(config, "fp")
        window = trace.window
        truth = self.control_truth("keepalive")
        t = window.call_start + 0.7
        while t < window.call_end:
            payload = bytes([0xFE, 0xFE]) + rng.rand_bytes(6)
            trace.records.append(
                self.packet(t, device, RELAY_SERVER, payload, Direction.OUTBOUND, truth)
            )
            t += rng.jitter(1.0 / max(config.media_scale, 0.05), 0.3)
