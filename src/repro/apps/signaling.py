"""Signaling-plane traffic shared by the app simulators.

Every application runs a TLS control channel next to its media streams
(paper §2.1).  Two flavours are emitted:

- a *persistent* channel that predates the call and outlives it — removed by
  the stage-1 timespan filter, mirroring how the paper's pipeline discards
  long-lived control connections;
- an *in-call* burst fully inside the call window — this is the small "RTC
  TCP" remainder visible in Table 1.
"""

from __future__ import annotations

from typing import List

from repro.packets.packet import Direction, PacketRecord, TrafficCategory, Truth
from repro.protocols.tls.client_hello import build_client_hello
from repro.streams.timeline import CallWindow
from repro.utils.rand import DeterministicRandom


def signaling_flows(
    app: str,
    domain: str,
    server_ip: str,
    device_ip: str,
    window: CallWindow,
    rng: DeterministicRandom,
    in_call_volume: int = 20,
) -> List[PacketRecord]:
    """Emit the persistent and in-call signaling flows for one experiment."""
    truth = Truth(category=TrafficCategory.SIGNALING, app=app, detail=f"tls:{domain}")
    records: List[PacketRecord] = []

    # Persistent channel spanning the whole capture (stage-1 fodder).
    sport = rng.randint(49152, 65535)
    records.append(
        PacketRecord(
            timestamp=window.capture_start + rng.uniform(0.5, 2.0),
            src_ip=device_ip,
            src_port=sport,
            dst_ip=server_ip,
            dst_port=443,
            transport="TCP",
            payload=build_client_hello(domain, random_bytes=rng.rand_bytes(32)),
            direction=Direction.OUTBOUND,
            truth=truth,
        )
    )
    t = window.capture_start + 3.0
    while t < window.capture_end - 1.0:
        inbound = rng.random() < 0.5
        records.append(
            PacketRecord(
                timestamp=t,
                src_ip=server_ip if inbound else device_ip,
                src_port=443 if inbound else sport,
                dst_ip=device_ip if inbound else server_ip,
                dst_port=sport if inbound else 443,
                transport="TCP",
                payload=rng.rand_bytes(rng.randint(60, 400)),
                direction=Direction.INBOUND if inbound else Direction.OUTBOUND,
                truth=truth,
            )
        )
        t += rng.uniform(5.0, 15.0)

    # In-call burst: session negotiation right after call start, periodic
    # keepalives afterwards; ends with the call.  It targets a different
    # front-end IP than the persistent channel (as load-balanced services
    # do), so the 3-tuple filter does not collaterally remove it.
    parts = server_ip.split(".")
    parts[-1] = str((int(parts[-1]) + 1) % 256)
    call_server_ip = ".".join(parts)
    server_ip = call_server_ip
    sport2 = rng.randint(49152, 65535)
    start = window.call_start + rng.uniform(0.1, 0.8)
    records.append(
        PacketRecord(
            timestamp=start,
            src_ip=device_ip,
            src_port=sport2,
            dst_ip=server_ip,
            dst_port=443,
            transport="TCP",
            payload=build_client_hello(domain, random_bytes=rng.rand_bytes(32)),
            direction=Direction.OUTBOUND,
            truth=truth,
        )
    )
    span = window.call_duration - 2.0
    for i in range(in_call_volume):
        offset = 0.2 + span * (i / max(in_call_volume, 1)) * rng.uniform(0.9, 1.0)
        inbound = rng.random() < 0.5
        records.append(
            PacketRecord(
                timestamp=start + offset,
                src_ip=server_ip if inbound else device_ip,
                src_port=443 if inbound else sport2,
                dst_ip=device_ip if inbound else server_ip,
                dst_port=sport2 if inbound else 443,
                transport="TCP",
                payload=rng.rand_bytes(rng.randint(80, 600)),
                direction=Direction.INBOUND if inbound else Direction.OUTBOUND,
                truth=truth,
            )
        )
    return records
