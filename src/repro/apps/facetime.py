"""FaceTime call simulator.

Reproduces the FaceTime behaviours documented in the paper:

- every RTP message carries header extensions with undefined profile
  identifiers (0x8001, 0x8500, 0x8D00) across payload types 100, 104, 108,
  13 and 20 — rendering all RTP non-compliant;
- relay mode prepends an 8-19 byte proprietary header starting with the
  fixed 2-byte value 0x6000 followed by a 2-byte total-length field to
  89.2% of datagrams; P2P calls show fewer than 50 such headers;
- STUN Binding Requests with the undefined attribute 0x8007 (values
  0x00000009 everywhere, 0x00000000 on Wi-Fi P2P, 0x00000005 on cellular
  P2P), retransmitted once per second with an unchanged transaction ID and
  never answered;
- ~29.4% of Binding Success Responses carry an ALTERNATE-SERVER attribute
  with illegal address family 0x00 plus the undefined attribute 0x8008;
- TURN Data Indications carrying an out-of-place CHANNEL-NUMBER attribute
  with constant value 0x00000000;
- QUIC (the only fully compliant protocol): Initial/0-RTT/Handshake long
  headers plus short-header packets;
- cellular calls (always P2P) interleave fully proprietary 36-byte
  datagrams starting 0xDEADBEEFCAFE with two trailing 4-byte counters at a
  fixed 20 packets/second.
"""

from __future__ import annotations

import struct
from typing import List

from repro.apps.base import (
    AppSimulator,
    CallConfig,
    Direction,
    Endpoint,
    NetworkCondition,
    RtpStreamState,
    Trace,
    TransmissionMode,
)
from repro.apps.background import BackgroundNoiseGenerator
from repro.apps.signaling import signaling_flows
from repro.protocols.quic.varint import encode_varint
from repro.protocols.rtp.extensions import HeaderExtension
from repro.protocols.stun.attributes import (
    StunAttribute,
    encode_address,
    encode_xor_address,
)
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import ChannelData, StunMessage
from repro.utils.rand import DeterministicRandom

RELAY_SERVER = Endpoint("17.188.143.33", 3478)
QUIC_SERVER = Endpoint("17.57.144.84", 443)
SIGNALING_DOMAIN = "ids.apple.com"
SIGNALING_IP = "17.57.12.20"

UNDEFINED_EXT_PROFILES = (0x8001, 0x8500, 0x8D00)
PAYLOAD_TYPES = {"video": 100, "audio": 104, "screen": 108, "cn": 13, "aux": 20}

PROPRIETARY_MAGIC = 0x6000
CELLULAR_BEACON_PREFIX = bytes.fromhex("DEADBEEFCAFE")
RELAY_HEADER_FRACTION = 0.892


class FaceTimeSimulator(AppSimulator):
    """Synthesizes FaceTime 1-on-1 call traffic."""

    name = "facetime"

    def simulate(self, config: CallConfig) -> Trace:
        if config.participants != 2:
            raise ValueError(
                "facetime group calls use a different media topology and are "
                "not modelled; only 1-on-1 calls are supported"
            )
        window = config.window()
        trace = Trace(app=self.name, config=config, window=window)
        # FaceTime used P2P on cellular in the paper's measurements (§3.1.1).
        mode = (
            TransmissionMode.RELAY
            if config.network is NetworkCondition.WIFI_RELAY
            else TransmissionMode.P2P
        )
        trace.mode_timeline.append((window.call_start, mode))

        rng = self.rng_for(config, "main")
        device_ip = self.device_ip(config)
        device = Endpoint(device_ip, rng.randint(50000, 60000))
        if mode is TransmissionMode.RELAY:
            remote = RELAY_SERVER
        else:
            remote = Endpoint(self.peer_device_ip(config), rng.randint(50000, 60000))

        self._emit_stun_turn(trace, config, device, remote, mode)
        self._emit_media(trace, config, device, remote, mode)
        self._emit_quic(trace, config, device_ip)
        if config.network is NetworkCondition.CELLULAR:
            self._emit_cellular_beacons(trace, config, device, remote)
        trace.records.extend(
            signaling_flows(
                app=self.name,
                domain=SIGNALING_DOMAIN,
                server_ip=SIGNALING_IP,
                device_ip=device_ip,
                window=window,
                rng=self.rng_for(config, "signaling"),
                in_call_volume=10,
            )
        )
        if config.include_background:
            noise = BackgroundNoiseGenerator(
                config=config, device_ip=device_ip, rng=self.rng_for(config, "noise")
            )
            trace.records.extend(noise.generate(window))
        trace.sort()
        return trace

    # -- framing ---------------------------------------------------------------

    def _proprietary_header(self, inner_len: int, rng: DeterministicRandom) -> bytes:
        """0x6000 ‖ u16(total remaining) ‖ 4-15 opaque bytes."""
        extra = rng.randint(4, 15)
        header = struct.pack("!HH", PROPRIETARY_MAGIC, extra + inner_len)
        return header + rng.rand_bytes(extra)

    def _undefined_extension(self, rng: DeterministicRandom) -> HeaderExtension:
        profile = rng.choice(UNDEFINED_EXT_PROFILES)
        words = rng.randint(1, 3)
        return HeaderExtension(profile=profile, data=rng.rand_bytes(words * 4))

    def _emit_media(self, trace, config, device, remote, mode) -> None:
        rng = self.rng_for(config, "media")
        window = trace.window
        t0, t1 = window.call_start, window.call_end
        relay = mode is TransmissionMode.RELAY
        # A hard cap keeps P2P proprietary headers below 50 per call (§5.3).
        p2p_header_budget = [rng.randint(20, 49)]

        def wrap(raw: bytes, direction: Direction, index: int) -> bytes:
            if relay:
                if rng.random() < RELAY_HEADER_FRACTION:
                    return self._proprietary_header(len(raw), rng) + raw
                return raw
            if p2p_header_budget[0] > 0 and rng.random() < 0.002:
                p2p_header_budget[0] -= 1
                return self._proprietary_header(len(raw), rng) + raw
            return raw

        plans = [
            ("audio", Direction.OUTBOUND, 50, (80, 170), 480),
            ("audio", Direction.INBOUND, 50, (80, 170), 480),
            ("video", Direction.OUTBOUND, 95, (650, 1150), 3000),
            ("video", Direction.INBOUND, 95, (650, 1150), 3000),
        ]
        for kind, direction, pps, size, ts_inc in plans:
            pps *= config.media_scale
            state = RtpStreamState(
                ssrc=rng.u32(), payload_type=PAYLOAD_TYPES[kind], clock_rate=90000, rng=rng
            )
            aux_pts = (
                [PAYLOAD_TYPES["cn"], PAYLOAD_TYPES["aux"]]
                if kind == "audio"
                else [PAYLOAD_TYPES["screen"]]
            )
            interval = 1.0 / pps
            t = t0 + rng.uniform(0, interval)
            index = 0
            truth = self.media_truth(f"rtp-{kind}")
            while t < t1:
                override = None
                if index % 53 == 7:
                    override = aux_pts[(index // 53) % len(aux_pts)]
                packet = state.next_packet(
                    payload=rng.rand_bytes(rng.randint(*size)),
                    ts_increment=ts_inc,
                    marker=index % 12 == 0,
                    extension=self._undefined_extension(rng),
                    payload_type=override,
                )
                trace.records.append(
                    self.packet(
                        t, device, remote, wrap(packet.build(), direction, index),
                        direction, truth,
                    )
                )
                t += rng.jitter(interval, 0.05)
                index += 1

    # -- STUN / TURN -----------------------------------------------------------

    def _emit_stun_turn(self, trace, config, device, remote, mode) -> None:
        rng = self.rng_for(config, "stun")
        window = trace.window
        truth = self.control_truth("stun")

        # The repeated, never-answered Binding Requests with attribute 0x8007.
        values = [b"\x00\x00\x00\x09"]
        if mode is TransmissionMode.P2P:
            if config.network is NetworkCondition.CELLULAR:
                values.append(b"\x00\x00\x00\x05")
            else:
                values.append(b"\x00\x00\x00\x00")
        fixed_txid = rng.transaction_id()
        duration = min(60.0, window.call_duration)
        t = window.call_start + 0.2
        second = 0
        while t < window.call_start + duration:
            msg = StunMessage(
                msg_type=0x0001,
                transaction_id=fixed_txid,
                attributes=[StunAttribute(0x8007, values[second % len(values)])],
            )
            trace.records.append(
                self.packet(t, device, remote, msg.build(), Direction.OUTBOUND, truth)
            )
            t += 1.0
            second += 1

        # Binding Success Responses: 29.4% with family-0x00 ALTERNATE-SERVER
        # plus undefined 0x8008; the rest structurally fine.
        t = window.call_start + 0.5
        while t < window.call_end:
            txid = rng.transaction_id()
            if rng.random() < 0.294:
                bad_alternate = struct.pack("!BBH", 0, 0x00, 3478) + bytes(4)
                attrs = [
                    StunAttribute(
                        int(AttributeType.XOR_MAPPED_ADDRESS),
                        encode_xor_address(device.ip, device.port, txid),
                    ),
                    StunAttribute(int(AttributeType.ALTERNATE_SERVER), bad_alternate),
                    StunAttribute(0x8008, rng.rand_bytes(16)),
                ]
            else:
                attrs = [
                    StunAttribute(
                        int(AttributeType.XOR_MAPPED_ADDRESS),
                        encode_xor_address(device.ip, device.port, txid),
                    )
                ]
            msg = StunMessage(msg_type=0x0101, transaction_id=txid, attributes=attrs)
            trace.records.append(
                self.packet(t, device, remote, msg.build(), Direction.INBOUND, truth)
            )
            t += rng.jitter(4.0, 0.2)

        if mode is TransmissionMode.RELAY:
            # Data Indications with the out-of-place CHANNEL-NUMBER attribute.
            t = window.call_start + 1.0
            while t < window.call_end:
                msg = StunMessage(
                    msg_type=0x0017,
                    transaction_id=rng.transaction_id(),
                    attributes=[
                        StunAttribute(
                            int(AttributeType.XOR_PEER_ADDRESS),
                            encode_xor_address(
                                self.peer_device_ip(config), 4500, bytes(12)
                            ),
                        ),
                        StunAttribute(int(AttributeType.DATA), rng.rand_bytes(24)),
                        StunAttribute(int(AttributeType.CHANNEL_NUMBER), bytes(4)),
                    ],
                )
                trace.records.append(
                    self.packet(t, device, remote, msg.build(), Direction.INBOUND, truth)
                )
                t += rng.jitter(6.0, 0.2)

            # ChannelData frames with trailing padding bytes, which RFC 8656
            # §12.4 forbids over UDP (non-compliant).
            t = window.call_start + 1.5
            while t < window.call_end:
                frame = ChannelData(channel=0x4101, data=rng.rand_bytes(41))
                padding = bytes(rng.randint(1, 3))
                trace.records.append(
                    self.packet(t, device, remote, frame.build() + padding,
                                Direction.OUTBOUND, truth)
                )
                t += rng.jitter(7.0, 0.2)

    # -- QUIC --------------------------------------------------------------------

    def _emit_quic(self, trace, config, device_ip: str) -> None:
        rng = self.rng_for(config, "quic")
        window = trace.window
        device = Endpoint(device_ip, rng.randint(50000, 60000))
        truth = self.control_truth("quic")
        dcid = rng.rand_bytes(8)
        scid = rng.rand_bytes(8)

        def long_packet(long_type: int, payload_len: int, token: bytes = b"") -> bytes:
            first = 0xC0 | (long_type << 4) | 0x01  # fixed bit, 2-byte pn
            out = bytes([first]) + struct.pack("!I", 1)
            out += bytes([len(dcid)]) + dcid + bytes([len(scid)]) + scid
            if long_type == 0:
                out += encode_varint(len(token)) + token
            out += encode_varint(payload_len) + rng.rand_bytes(payload_len)
            return out

        def short_packet(payload_len: int) -> bytes:
            return bytes([0x41]) + dcid + rng.rand_bytes(payload_len)

        t = window.call_start + 0.3
        handshake = [
            (Direction.OUTBOUND, long_packet(0, 1180)),             # Initial
            (Direction.INBOUND, long_packet(0, 160, token=b"")),
            (Direction.OUTBOUND, long_packet(1, 320)),              # 0-RTT
            (Direction.INBOUND, long_packet(2, 600)),               # Handshake
            (Direction.OUTBOUND, long_packet(2, 80)),
        ]
        for direction, payload in handshake:
            trace.records.append(
                self.packet(t, device, QUIC_SERVER, payload, direction, truth)
            )
            t += 0.04
        while t < window.call_end:
            direction = Direction.OUTBOUND if rng.random() < 0.5 else Direction.INBOUND
            trace.records.append(
                self.packet(
                    t, device, QUIC_SERVER, short_packet(rng.randint(40, 200)),
                    direction, truth,
                )
            )
            t += rng.jitter(3.0, 0.3)

    # -- cellular beacons --------------------------------------------------------

    def _emit_cellular_beacons(self, trace, config, device, remote) -> None:
        """36-byte 0xDEADBEEFCAFE datagrams at a fixed 20 packets/second."""
        rng = self.rng_for(config, "beacon")
        window = trace.window
        truth = self.control_truth("cellular-beacon")
        for direction in (Direction.OUTBOUND, Direction.INBOUND):
            counter_a = rng.randint(0, 1000)
            counter_b = rng.randint(0, 1000)
            middle = rng.rand_bytes(22)
            t = window.call_start + (0.0 if direction is Direction.OUTBOUND else 0.025)
            while t < window.call_end:
                payload = (
                    CELLULAR_BEACON_PREFIX
                    + middle
                    + struct.pack("!II", counter_a & 0xFFFFFFFF, counter_b & 0xFFFFFFFF)
                )
                trace.records.append(self.packet(t, device, remote, payload, direction, truth))
                counter_a += 1
                counter_b += 2
                t += 0.05  # exactly 20 packets per second, even spacing
