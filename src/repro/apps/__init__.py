"""Application traffic emulators.

These replace the paper's iPhone captures of six closed-source apps.  Each
simulator synthesizes a full 1-on-1 call trace at the UDP/TCP payload level,
byte-for-byte reproducing the protocol quirks the paper documents in
Sections 5.2 and 5.3, plus realistic background noise for the filtering
pipeline to remove.
"""

from repro.apps.base import (
    AppSimulator,
    CallConfig,
    NetworkCondition,
    Trace,
    TransmissionMode,
)
from repro.apps.background import BackgroundNoiseGenerator, DEFAULT_SNI_BLOCKLIST
from repro.apps.discord import DiscordSimulator
from repro.apps.facetime import FaceTimeSimulator
from repro.apps.meet import GoogleMeetSimulator
from repro.apps.messenger import MessengerSimulator
from repro.apps.whatsapp import WhatsAppSimulator
from repro.apps.zoom import ZoomSimulator

SIMULATORS = {
    "zoom": ZoomSimulator,
    "facetime": FaceTimeSimulator,
    "whatsapp": WhatsAppSimulator,
    "messenger": MessengerSimulator,
    "discord": DiscordSimulator,
    "meet": GoogleMeetSimulator,
}

APP_NAMES = tuple(SIMULATORS)


def get_simulator(app: str) -> AppSimulator:
    """Instantiate the simulator for *app* (one of :data:`APP_NAMES`)."""
    try:
        return SIMULATORS[app]()
    except KeyError:
        raise ValueError(f"unknown app {app!r}; expected one of {APP_NAMES}") from None


__all__ = [
    "AppSimulator",
    "CallConfig",
    "NetworkCondition",
    "Trace",
    "TransmissionMode",
    "BackgroundNoiseGenerator",
    "DEFAULT_SNI_BLOCKLIST",
    "DiscordSimulator",
    "FaceTimeSimulator",
    "GoogleMeetSimulator",
    "MessengerSimulator",
    "WhatsAppSimulator",
    "ZoomSimulator",
    "SIMULATORS",
    "APP_NAMES",
    "get_simulator",
]
