"""Discord call simulator.

Reproduces the Discord behaviours documented in the paper:

- RTP and RTCP only — no STUN/TURN at all; media always flows through
  Discord's relay infrastructure in every network configuration;
- one-byte (0xBEDE) RTP header extensions whose element ID is 0 but whose
  length field is non-zero, violating RFC 8285 padding semantics (~4.91%
  of RTP messages, payload types 96/101/102);
- undefined header-extension profiles in the 0x0084-0xFBD2 range,
  exclusively on payload type 120 (~2.58% of RTP messages);
- RTCP bodies encrypted with a proprietary (non-SRTCP) scheme; every RTCP
  message ends with a 3-byte trailer — a 2-byte monotonic counter plus a
  direction byte (0x80 client→server, 0x00 server→client) undefined in
  any RTCP specification;
- sender SSRC = 0 in ~25% of Transport Layer Feedback (205) messages;
- small fully proprietary keepalive datagrams (~0.7% of traffic).
"""

from __future__ import annotations

import struct

from repro.apps.base import (
    AppSimulator,
    CallConfig,
    Direction,
    Endpoint,
    RtpStreamState,
    Trace,
    TransmissionMode,
)
from repro.apps.background import BackgroundNoiseGenerator
from repro.apps.signaling import signaling_flows
from repro.protocols.rtcp.packets import RtcpHeader, RtcpPacket
from repro.protocols.rtp.extensions import HeaderExtension, build_one_byte_extension
from repro.utils.rand import DeterministicRandom

RELAY_SERVER = Endpoint("66.22.241.15", 50012)
SIGNALING_DOMAIN = "gateway.discord.gg"
SIGNALING_IP = "162.159.135.232"

AUDIO_PT = 120
VIDEO_PTS = (101, 102)
PROBE_PT = 96

ID_ZERO_FRACTION = 0.0491
UNDEFINED_PROFILE_FRACTION = 0.0258
SSRC_ZERO_FRACTION = 0.25
RTCP_TYPES = (200, 201, 204, 205, 206)


class DiscordSimulator(AppSimulator):
    """Synthesizes Discord 1-on-1 call traffic."""

    name = "discord"

    def simulate(self, config: CallConfig) -> Trace:
        window = config.window()
        trace = Trace(app=self.name, config=config, window=window)
        trace.mode_timeline.append((window.call_start, TransmissionMode.RELAY))

        rng = self.rng_for(config, "main")
        device_ip = self.device_ip(config)
        device = Endpoint(device_ip, rng.randint(50000, 60000))

        self._emit_media(trace, config, device)
        self._emit_rtcp(trace, config, device)
        self._emit_keepalives(trace, config, device)
        trace.records.extend(
            signaling_flows(
                app=self.name,
                domain=SIGNALING_DOMAIN,
                server_ip=SIGNALING_IP,
                device_ip=device_ip,
                window=window,
                rng=self.rng_for(config, "signaling"),
                in_call_volume=12,
            )
        )
        if config.include_background:
            noise = BackgroundNoiseGenerator(
                config=config, device_ip=device_ip, rng=self.rng_for(config, "noise")
            )
            trace.records.extend(noise.generate(window))
        trace.sort()
        return trace

    # -- RTP -------------------------------------------------------------------

    def _id_zero_extension(self, rng: DeterministicRandom) -> HeaderExtension:
        """A 0xBEDE extension whose first element has ID 0 but length > 0."""
        length_nibble = rng.randint(1, 3)  # declared length field > 0
        first = bytes([length_nibble]) + rng.rand_bytes(length_nibble + 1)
        # Follow with a well-formed element so the block looks intentional.
        rest = bytes([(2 << 4) | 1]) + rng.rand_bytes(2)
        data = first + rest
        data += bytes(-len(data) % 4)
        return HeaderExtension(profile=0xBEDE, data=data)

    def _undefined_profile_extension(self, rng: DeterministicRandom) -> HeaderExtension:
        profile = rng.randint(0x0084, 0xFBD2)
        # Stay clear of the defined 0xBEDE / 0x100x values.
        while profile == 0xBEDE or (profile & 0xFFF0) == 0x1000:
            profile = rng.randint(0x0084, 0xFBD2)
        return HeaderExtension(profile=profile, data=rng.rand_bytes(4 * rng.randint(1, 3)))

    def _normal_extension(self, rng: DeterministicRandom) -> HeaderExtension:
        return build_one_byte_extension([(1, bytes([rng.randint(0, 127)]))])

    def _emit_media(self, trace, config, device) -> None:
        rng = self.rng_for(config, "media")
        window = trace.window
        plans = [
            (AUDIO_PT, Direction.OUTBOUND, 50, (70, 160), 480),
            (AUDIO_PT, Direction.INBOUND, 50, (70, 160), 480),
            (VIDEO_PTS[0], Direction.OUTBOUND, 80, (650, 1150), 3000),
            (VIDEO_PTS[1], Direction.INBOUND, 80, (650, 1150), 3000),
            (PROBE_PT, Direction.OUTBOUND, 8, (120, 300), 960),
            (PROBE_PT, Direction.INBOUND, 8, (120, 300), 960),
        ]
        # Group calls: the voice server mixes in each extra participant as
        # another inbound audio/video stream pair.
        for _extra in range(config.extra_participants):
            plans.append((AUDIO_PT, Direction.INBOUND, 50, (70, 160), 480))
            plans.append((VIDEO_PTS[1], Direction.INBOUND, 80, (650, 1150), 3000))
        for pt, direction, pps, size, ts_inc in plans:
            pps *= config.media_scale
            state = RtpStreamState(ssrc=rng.u32(), payload_type=pt, clock_rate=90000, rng=rng)
            interval = 1.0 / pps
            t = window.call_start + rng.uniform(0, interval)
            index = 0
            truth = self.media_truth(f"rtp-{pt}")
            while t < window.call_end:
                roll = rng.random()
                if pt == AUDIO_PT and roll < UNDEFINED_PROFILE_FRACTION / 0.35:
                    # PT 120 carries all of the undefined-profile extensions.
                    extension = self._undefined_profile_extension(rng)
                elif pt != AUDIO_PT and roll < ID_ZERO_FRACTION / 0.65:
                    extension = self._id_zero_extension(rng)
                elif rng.random() < 0.5:
                    extension = self._normal_extension(rng)
                else:
                    extension = None
                packet = state.next_packet(
                    payload=rng.rand_bytes(rng.randint(*size)),
                    ts_increment=ts_inc,
                    marker=index % 20 == 0,
                    extension=extension,
                )
                trace.records.append(
                    self.packet(t, device, RELAY_SERVER, packet.build(), direction, truth)
                )
                t += rng.jitter(interval, 0.05)
                index += 1

    # -- RTCP -------------------------------------------------------------------

    def _encrypted_rtcp(
        self,
        packet_type: int,
        count: int,
        body_words: int,
        ssrc: int,
        counter: int,
        direction: Direction,
        rng: DeterministicRandom,
    ) -> bytes:
        """An RTCP packet with proprietary-encrypted body and 3-byte trailer."""
        body = ssrc.to_bytes(4, "big")
        if packet_type == 204:
            # The APP name field stays in the clear in Discord's scheme.
            body += b"dsc " + rng.rand_bytes(body_words * 4 - 4)
        else:
            body += rng.rand_bytes(body_words * 4)
        header = RtcpHeader(
            version=2, padding=False, count=count,
            packet_type=packet_type, length_words=len(body) // 4,
        )
        direction_byte = 0x80 if direction is Direction.OUTBOUND else 0x00
        trailer = struct.pack("!HB", counter & 0xFFFF, direction_byte)
        return header.build() + body + trailer

    def _emit_rtcp(self, trace, config, device) -> None:
        rng = self.rng_for(config, "rtcp")
        window = trace.window
        truth = self.control_truth("rtcp")
        ssrc = rng.u32()
        counters = {Direction.OUTBOUND: rng.randint(0, 500),
                    Direction.INBOUND: rng.randint(0, 500)}
        rate = 22.0 * config.media_scale
        t = window.call_start + 0.9
        i = 0
        while t < window.call_end:
            packet_type = RTCP_TYPES[i % len(RTCP_TYPES)]
            direction = Direction.OUTBOUND if i % 2 == 0 else Direction.INBOUND
            sender_ssrc = ssrc
            if packet_type == 205 and rng.random() < SSRC_ZERO_FRACTION:
                sender_ssrc = 0
            count = {200: 1, 201: 1, 204: 3, 205: 15, 206: 1}[packet_type]
            body_words = {200: 11, 201: 6, 204: 4, 205: 3, 206: 2}[packet_type]
            payload = self._encrypted_rtcp(
                packet_type, count, body_words, sender_ssrc,
                counters[direction], direction, rng,
            )
            counters[direction] += 1
            trace.records.append(
                self.packet(t, device, RELAY_SERVER, payload, direction, truth)
            )
            t += rng.jitter(1.0 / max(rate, 0.5), 0.2)
            i += 1

    def _emit_keepalives(self, trace, config, device) -> None:
        """8-byte fully proprietary keepalives (~0.7% of datagrams)."""
        rng = self.rng_for(config, "keepalive")
        window = trace.window
        truth = self.control_truth("keepalive")
        counter = rng.randint(0, 10000)
        t = window.call_start + 0.3
        while t < window.call_end:
            payload = struct.pack("!II", 0x13370000, counter)
            trace.records.append(
                self.packet(t, device, RELAY_SERVER, payload, Direction.OUTBOUND, truth)
            )
            counter += 1
            t += rng.jitter(0.8 / max(config.media_scale, 0.05), 0.2)
