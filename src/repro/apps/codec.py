"""Codec traffic models: what media streams look like on the wire.

Standalone generators for realistic RTP payload schedules:

- :class:`OpusTalkspurtModel` — voice with a two-state (talk/silence)
  Markov process and DTX comfort-noise frames during silence, matching how
  Opus-with-DTX traffic appears in captures;
- :class:`VideoGopModel` — video with a group-of-pictures structure:
  periodic large keyframes fragmented across several packets, smaller
  delta frames in between, and a slowly varying target bitrate.

The six application simulators deliberately use simple uniform payload
models (their job is protocol structure, and the paper's findings do not
depend on media statistics); these models exist for workloads that need
realistic rate dynamics — bandwidth-estimation experiments, quality
analytics tests, or richer synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.utils.rand import DeterministicRandom


@dataclass(frozen=True)
class MediaPacket:
    """One scheduled RTP payload: relative time, size, marker flag."""

    offset: float
    size: int
    marker: bool


class OpusTalkspurtModel:
    """Voice traffic with talkspurts, pauses, and DTX comfort noise.

    During a talkspurt a 20 ms frame is emitted per tick; during silence,
    DTX sends a small comfort-noise frame every 400 ms.  Spurt and pause
    durations are exponential, matching classic voice-activity models
    (Brady's on/off telephone conversation model).
    """

    def __init__(
        self,
        rng: DeterministicRandom,
        frame_interval: float = 0.02,
        talk_mean: float = 1.2,
        silence_mean: float = 0.8,
        frame_size: Tuple[int, int] = (60, 140),
        dtx_interval: float = 0.4,
        dtx_size: int = 8,
    ):
        self._rng = rng
        self._frame_interval = frame_interval
        self._talk_mean = talk_mean
        self._silence_mean = silence_mean
        self._frame_size = frame_size
        self._dtx_interval = dtx_interval
        self._dtx_size = dtx_size

    def schedule(self, duration: float) -> List[MediaPacket]:
        packets: List[MediaPacket] = []
        t = 0.0
        talking = self._rng.random() < 0.6
        while t < duration:
            state_len = self._rng.expovariate(
                1.0 / (self._talk_mean if talking else self._silence_mean)
            )
            state_end = min(duration, t + state_len)
            if talking:
                first = True
                while t < state_end:
                    packets.append(
                        MediaPacket(
                            offset=t,
                            size=self._rng.randint(*self._frame_size),
                            marker=first,  # marker starts a talkspurt (RFC 3551)
                        )
                    )
                    first = False
                    t += self._frame_interval
            else:
                while t < state_end:
                    packets.append(
                        MediaPacket(offset=t, size=self._dtx_size, marker=False)
                    )
                    t += self._dtx_interval
                t = state_end
            talking = not talking
        return packets


class VideoGopModel:
    """Video traffic with keyframes, delta frames and fragmentation.

    Every ``gop_frames``-th frame is a keyframe roughly ``keyframe_ratio``
    times the size of a delta frame.  Frames larger than ``mtu_payload``
    fragment into multiple packets; the last packet of each frame carries
    the RTP marker (end-of-frame, RFC 6184-style).  The target bitrate
    performs a bounded random walk to mimic encoder rate adaptation.
    """

    def __init__(
        self,
        rng: DeterministicRandom,
        fps: float = 30.0,
        target_bps: int = 1_200_000,
        gop_frames: int = 60,
        keyframe_ratio: float = 6.0,
        mtu_payload: int = 1150,
        adaptation: float = 0.1,
    ):
        self._rng = rng
        self._fps = fps
        self._target_bps = target_bps
        self._gop = gop_frames
        self._keyframe_ratio = keyframe_ratio
        self._mtu = mtu_payload
        self._adaptation = adaptation

    def schedule(self, duration: float) -> List[MediaPacket]:
        packets: List[MediaPacket] = []
        frame_interval = 1.0 / self._fps
        bitrate = float(self._target_bps)
        # Size budget: keyframes take keyframe_ratio shares, deltas one.
        shares = self._keyframe_ratio + (self._gop - 1)
        frame_index = 0
        t = 0.0
        while t < duration:
            gop_bytes = bitrate / 8.0 * (self._gop / self._fps)
            is_key = frame_index % self._gop == 0
            share = self._keyframe_ratio if is_key else 1.0
            frame_bytes = max(64, int(gop_bytes * share / shares
                                      * self._rng.uniform(0.85, 1.15)))
            remaining = frame_bytes
            while remaining > 0:
                size = min(self._mtu, remaining)
                remaining -= size
                packets.append(
                    MediaPacket(offset=t, size=size, marker=remaining == 0)
                )
            # Encoder rate adaptation: bounded multiplicative random walk.
            bitrate *= 1.0 + self._rng.uniform(-self._adaptation,
                                               self._adaptation) / self._fps
            bitrate = min(max(bitrate, self._target_bps * 0.5),
                          self._target_bps * 1.5)
            frame_index += 1
            t += frame_interval
        return packets


def schedule_to_rtp(
    schedule: List[MediaPacket],
    ssrc: int,
    payload_type: int,
    clock_rate: int,
    rng: DeterministicRandom,
    start_time: float = 0.0,
) -> List[Tuple[float, bytes]]:
    """Turn a media schedule into (wall time, RTP packet bytes) pairs.

    Packets of one frame share an RTP timestamp; the timestamp advances
    with the frame clock, as real encoders do.
    """
    from repro.protocols.rtp.header import RtpPacket

    out: List[Tuple[float, bytes]] = []
    seq = rng.u16()
    base_ts = rng.u32()
    for packet in schedule:
        rtp_ts = (base_ts + int(packet.offset * clock_rate)) & 0xFFFFFFFF
        raw = RtpPacket(
            payload_type=payload_type,
            sequence_number=seq,
            timestamp=rtp_ts,
            ssrc=ssrc,
            payload=rng.rand_bytes(packet.size),
            marker=packet.marker,
        ).build()
        out.append((start_time + packet.offset, raw))
        seq = (seq + 1) & 0xFFFF
    return out
