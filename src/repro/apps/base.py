"""Shared infrastructure for application call simulators.

A simulator produces a :class:`Trace`: every packet the capture device would
record during one experiment — pre-call app startup, the 5-minute (scaled)
call, post-call tail, plus background noise.  All packets carry ground-truth
labels so filter precision/recall can be measured, which the paper could not
do for closed-source applications.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.netem import build_impairer, get_profile
from repro.packets.packet import Direction, PacketRecord, TrafficCategory, Truth
from repro.protocols.rtp.extensions import HeaderExtension
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.rtcp.packets import (
    ReceiverReport,
    ReportBlock,
    RtcpPacket,
    SdesChunk,
    SdesItem,
    SdesPacket,
    SenderReport,
)
from repro.streams.timeline import CallWindow
from repro.utils.rand import DeterministicRandom, derive


class NetworkCondition(enum.Enum):
    """The three network configurations of the experiment matrix (§3.1.1)."""

    WIFI_P2P = "wifi_p2p"
    WIFI_RELAY = "wifi_relay"
    CELLULAR = "cellular"

    @property
    def is_wifi(self) -> bool:
        return self in (NetworkCondition.WIFI_P2P, NetworkCondition.WIFI_RELAY)


class TransmissionMode(enum.Enum):
    P2P = "p2p"
    RELAY = "relay"


@dataclass(frozen=True)
class CallConfig:
    """Parameters of one simulated call experiment.

    ``participants`` extends the paper's 1-on-1 scope (its declared future
    work): SFU-based applications (Zoom, Google Meet, Discord) fan in one
    additional inbound audio+video stream pair per extra participant.  The
    P2P-oriented simulators reject group configurations explicitly.

    ``impairment`` names a :mod:`repro.netem` profile applied to the
    record stream post-synthesis (loss, reordering, duplication, NAT
    rebinding, UDP blackout).  ``"none"`` — the default — keeps the
    historical clean-path behavior exactly.
    """

    network: NetworkCondition
    seed: int = 0
    call_index: int = 0
    call_duration: float = 30.0   # paper: 300 s; scaled down for laptop runs
    media_scale: float = 1.0      # multiplier on media packet rates
    include_background: bool = True
    participants: int = 2
    impairment: str = "none"

    def __post_init__(self) -> None:
        if self.participants < 2:
            raise ValueError("a call needs at least 2 participants")
        # Fail at configuration time, not mid-simulation.
        get_profile(self.impairment)

    @property
    def extra_participants(self) -> int:
        return self.participants - 2

    def window(self) -> CallWindow:
        pre = min(60.0, max(10.0, self.call_duration / 3))
        post = pre
        return CallWindow(
            capture_start=0.0,
            call_start=pre,
            call_end=pre + self.call_duration,
            capture_end=pre + self.call_duration + post,
        )


@dataclass
class Trace:
    """The output of one simulated experiment."""

    app: str
    config: CallConfig
    window: CallWindow
    records: List[PacketRecord] = field(default_factory=list)
    mode_timeline: List[Tuple[float, TransmissionMode]] = field(default_factory=list)

    def sort(self) -> None:
        self.records.sort(key=lambda r: r.timestamp)

    @property
    def udp_records(self) -> List[PacketRecord]:
        return [r for r in self.records if r.transport == "UDP"]

    @property
    def tcp_records(self) -> List[PacketRecord]:
        return [r for r in self.records if r.transport == "TCP"]

    def rtc_truth(self) -> List[PacketRecord]:
        """Ground-truth RTC packets (what a perfect filter would keep)."""
        return [r for r in self.records if r.truth is not None and r.truth.is_rtc]


@dataclass
class Endpoint:
    ip: str
    port: int

    def as_tuple(self) -> Tuple[str, int]:
        return (self.ip, self.port)


#: Device/infrastructure addressing shared by all simulators.
DEVICE_WIFI_IP = "192.168.1.23"
PEER_WIFI_IP = "192.168.1.57"
DEVICE_CELL_IP = "10.120.14.5"      # carrier CGNAT address
PEER_CELL_PUBLIC_IP = "172.58.96.41"
ROUTER_IP = "192.168.1.1"
DEVICE_LINK_LOCAL = "fe80::1c2d:3e4f:5a6b:7c8d"


class RtpStreamState:
    """Sequence/timestamp bookkeeping for one outgoing RTP stream."""

    def __init__(
        self,
        ssrc: int,
        payload_type: int,
        clock_rate: int,
        rng: DeterministicRandom,
        start_seq: Optional[int] = None,
        start_ts: Optional[int] = None,
    ):
        self.ssrc = ssrc
        self.payload_type = payload_type
        self.clock_rate = clock_rate
        self.seq = start_seq if start_seq is not None else rng.u16()
        self.rtp_ts = start_ts if start_ts is not None else rng.u32()
        self.packet_count = 0
        self.octet_count = 0

    def next_packet(
        self,
        payload: bytes,
        ts_increment: int,
        marker: bool = False,
        extension: Optional[HeaderExtension] = None,
        payload_type: Optional[int] = None,
    ) -> RtpPacket:
        packet = RtpPacket(
            payload_type=self.payload_type if payload_type is None else payload_type,
            sequence_number=self.seq,
            timestamp=self.rtp_ts,
            ssrc=self.ssrc,
            payload=payload,
            marker=marker,
            extension=extension,
        )
        self.seq = (self.seq + 1) & 0xFFFF
        self.rtp_ts = (self.rtp_ts + ts_increment) & 0xFFFFFFFF
        self.packet_count += 1
        self.octet_count += len(payload)
        return packet


WrapFn = Callable[[bytes, Direction, int], bytes]
ExtensionFn = Callable[[int, DeterministicRandom], Optional[HeaderExtension]]


class AppSimulator(abc.ABC):
    """Base class for per-application call simulators."""

    #: Application name, e.g. ``"zoom"``; set by subclasses.
    name: str = ""

    @abc.abstractmethod
    def simulate(self, config: CallConfig) -> Trace:
        """Produce the full experiment trace for *config*."""

    def iter_records(self, config: CallConfig) -> Iterator[PacketRecord]:
        """Yield the trace's records in capture order, one at a time.

        This is the streaming pipeline's source stage.  The default
        materializes the trace and yields from it — simulators build
        their schedules whole-call anyway — but downstream stages only
        ever see one record at a time, so a subclass backed by a live
        capture can override this without touching the rest of the
        pipeline.

        ``config.impairment`` is applied *here*, between synthesis and
        the pipeline: per-app ``simulate`` stays clean-path, and every
        consumer — batch, streaming, sharded, planner-probed — sees the
        same impaired sequence because they all source from this method.
        """
        records = self.simulate(config).records
        impairer = build_impairer(
            config.impairment,
            config.seed,
            f"{self.name}/{config.network.value}/{config.call_index}",
        )
        if impairer is not None:
            records = impairer.apply(records)
        yield from records

    # -- common helpers ------------------------------------------------------

    def rng_for(self, config: CallConfig, label: str) -> DeterministicRandom:
        return derive(config.seed, f"{self.name}/{config.network.value}/{config.call_index}/{label}")

    def device_ip(self, config: CallConfig) -> str:
        if config.network is NetworkCondition.CELLULAR:
            return DEVICE_CELL_IP
        return DEVICE_WIFI_IP

    def peer_device_ip(self, config: CallConfig) -> str:
        if config.network is NetworkCondition.CELLULAR:
            return PEER_CELL_PUBLIC_IP
        return PEER_WIFI_IP

    def truth(self, category: TrafficCategory, detail: str = "") -> Truth:
        return Truth(category=category, app=self.name, detail=detail)

    def media_truth(self, detail: str = "") -> Truth:
        return self.truth(TrafficCategory.RTC_MEDIA, detail)

    def control_truth(self, detail: str = "") -> Truth:
        return self.truth(TrafficCategory.RTC_CONTROL, detail)

    def packet(
        self,
        timestamp: float,
        device: Endpoint,
        remote: Endpoint,
        payload: bytes,
        direction: Direction,
        truth: Truth,
        transport: str = "UDP",
    ) -> PacketRecord:
        """Build a record from the capture device's vantage point."""
        if direction is Direction.OUTBOUND:
            src, dst = device, remote
        else:
            src, dst = remote, device
        return PacketRecord(
            timestamp=timestamp,
            src_ip=src.ip,
            src_port=src.port,
            dst_ip=dst.ip,
            dst_port=dst.port,
            transport=transport,
            payload=payload,
            direction=direction,
            truth=truth,
        )

    def emit_rtp_stream(
        self,
        records: List[PacketRecord],
        *,
        t0: float,
        t1: float,
        pps: float,
        state: RtpStreamState,
        device: Endpoint,
        remote: Endpoint,
        direction: Direction,
        rng: DeterministicRandom,
        payload_size: Tuple[int, int],
        truth: Truth,
        wrap: Optional[WrapFn] = None,
        extension_fn: Optional[ExtensionFn] = None,
        marker_every: int = 0,
    ) -> int:
        """Emit an RTP stream at *pps* packets/second between t0 and t1.

        Returns the number of packets emitted.  ``wrap`` post-processes the
        built RTP bytes into the final datagram payload (proprietary headers,
        TURN encapsulation...); ``extension_fn`` supplies per-packet RFC 8285
        header extensions.
        """
        if pps <= 0 or t1 <= t0:
            return 0
        interval = 1.0 / pps
        ts_increment = max(1, int(state.clock_rate / pps))
        count = 0
        t = t0 + rng.uniform(0, interval)
        index = 0
        while t < t1:
            size = rng.randint(*payload_size)
            extension = extension_fn(index, rng) if extension_fn else None
            marker = bool(marker_every and index % marker_every == 0)
            packet = state.next_packet(
                payload=rng.rand_bytes(size),
                ts_increment=ts_increment,
                marker=marker,
                extension=extension,
            )
            raw = packet.build()
            if wrap is not None:
                raw = wrap(raw, direction, index)
            records.append(self.packet(t, device, remote, raw, direction, truth))
            t += rng.jitter(interval, 0.05)
            index += 1
            count += 1
        return count

    def make_sender_report(
        self,
        state: RtpStreamState,
        remote_ssrc: int,
        rng: DeterministicRandom,
        wall_time: float,
    ) -> RtcpPacket:
        """A plausible SR reflecting the stream's counters."""
        ntp = int((wall_time + 2208988800.0) * (1 << 32)) & 0xFFFFFFFFFFFFFFFF
        block = ReportBlock(
            ssrc=remote_ssrc,
            fraction_lost=rng.randint(0, 5),
            cumulative_lost=rng.randint(0, 50),
            highest_seq=state.seq,
            jitter=rng.randint(0, 400),
            lsr=rng.u32() & 0xFFFF0000,
            dlsr=rng.randint(0, 65536),
        )
        return SenderReport(
            ssrc=state.ssrc,
            ntp_timestamp=ntp,
            rtp_timestamp=state.rtp_ts,
            packet_count=state.packet_count,
            octet_count=state.octet_count,
            report_blocks=[block],
        ).to_packet()

    def make_receiver_report(
        self, ssrc: int, remote_ssrc: int, rng: DeterministicRandom
    ) -> RtcpPacket:
        block = ReportBlock(
            ssrc=remote_ssrc,
            fraction_lost=rng.randint(0, 5),
            cumulative_lost=rng.randint(0, 50),
            highest_seq=rng.u16(),
            jitter=rng.randint(0, 400),
            lsr=rng.u32() & 0xFFFF0000,
            dlsr=rng.randint(0, 65536),
        )
        return ReceiverReport(ssrc=ssrc, report_blocks=[block]).to_packet()

    def make_sdes(self, ssrc: int, cname: str) -> RtcpPacket:
        return SdesPacket(
            chunks=[SdesChunk(ssrc=ssrc, items=[SdesItem(1, cname.encode("ascii"))])]
        ).to_packet()


def merge_traces(trace: Trace, extra_records: Iterable[PacketRecord]) -> None:
    """Append *extra_records* (e.g. background noise) into *trace* and re-sort."""
    trace.records.extend(extra_records)
    trace.sort()
