"""Dataset builder: persist experiment traces as pcap files + manifest.

The paper publicly releases its dataset; this module produces the
equivalent artifact for synthetic runs — one pcap per experiment cell plus
a JSON manifest carrying the call windows, configurations, and the
ground-truth label index (which real captures cannot have).  A dataset can
be reloaded and re-analyzed without the simulators, which is exactly how a
third party would consume the release.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.apps import APP_NAMES, CallConfig, NetworkCondition, get_simulator
from repro.apps.base import Trace
from repro.packets.packet import Direction, PacketRecord, TrafficCategory, Truth
from repro.packets.pcap import read_pcap, write_pcap
from repro.streams.timeline import CallWindow

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 2


@dataclass(frozen=True)
class DatasetEntry:
    """One experiment cell inside a dataset."""

    app: str
    network: str
    call_index: int
    pcap: str                       # file name relative to the dataset root
    window: CallWindow
    packet_count: int
    labels: Tuple[Tuple[str, str, str], ...] = ()
    # labels[i] = (category, app, detail) for packet i; "": unlabelled.

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.app, self.network, self.call_index)


@dataclass
class Dataset:
    """A directory of pcap traces plus the manifest."""

    root: Path
    entries: List[DatasetEntry] = field(default_factory=list)

    def entry(self, app: str, network: str, call_index: int = 0) -> DatasetEntry:
        for candidate in self.entries:
            if candidate.key == (app, network, call_index):
                return candidate
        raise KeyError(f"no entry for ({app}, {network}, {call_index})")

    def load_records(
        self, entry: DatasetEntry, with_labels: bool = True
    ) -> List[PacketRecord]:
        """Read an entry's pcap, reattaching ground-truth labels if present."""
        records = read_pcap(self.root / entry.pcap)
        if not with_labels or not entry.labels:
            return records
        if len(records) != len(entry.labels):
            raise ValueError(
                f"{entry.pcap}: {len(records)} packets but "
                f"{len(entry.labels)} labels — dataset corrupted?"
            )
        labelled = []
        for record, (category, app, detail) in zip(records, entry.labels):
            truth = (
                Truth(category=TrafficCategory(category), app=app, detail=detail)
                if category
                else None
            )
            labelled.append(
                PacketRecord(
                    timestamp=record.timestamp,
                    src_ip=record.src_ip,
                    src_port=record.src_port,
                    dst_ip=record.dst_ip,
                    dst_port=record.dst_port,
                    transport=record.transport,
                    payload=record.payload,
                    direction=record.direction,
                    truth=truth,
                )
            )
        return labelled


def _window_to_json(window: CallWindow) -> Dict[str, float]:
    return {
        "capture_start": window.capture_start,
        "call_start": window.call_start,
        "call_end": window.call_end,
        "capture_end": window.capture_end,
        "margin": window.margin,
    }


def _window_from_json(data: Dict[str, float]) -> CallWindow:
    return CallWindow(
        capture_start=data["capture_start"],
        call_start=data["call_start"],
        call_end=data["call_end"],
        capture_end=data["capture_end"],
        margin=data.get("margin", 2.0),
    )


def save_trace(root: Union[str, Path], trace: Trace) -> DatasetEntry:
    """Write one trace into the dataset directory; returns its entry."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    name = f"{trace.app}_{trace.config.network.value}_{trace.config.call_index}.pcap"
    count = write_pcap(root / name, trace.records)
    labels = tuple(
        (
            (record.truth.category.value, record.truth.app, record.truth.detail)
            if record.truth
            else ("", "", "")
        )
        for record in trace.records
    )
    return DatasetEntry(
        app=trace.app,
        network=trace.config.network.value,
        call_index=trace.config.call_index,
        pcap=name,
        window=trace.window,
        packet_count=count,
        labels=labels,
    )


def build_dataset(
    root: Union[str, Path],
    apps: Sequence[str] = APP_NAMES,
    networks: Sequence[NetworkCondition] = tuple(NetworkCondition),
    call_duration: float = 30.0,
    media_scale: float = 0.5,
    repeats: int = 1,
    seed: int = 0,
) -> Dataset:
    """Synthesize and persist a full dataset (the paper's release artifact)."""
    root = Path(root)
    entries: List[DatasetEntry] = []
    for app in apps:
        simulator = get_simulator(app)
        for network in networks:
            for call_index in range(repeats):
                trace = simulator.simulate(
                    CallConfig(
                        network=network,
                        seed=seed,
                        call_index=call_index,
                        call_duration=call_duration,
                        media_scale=media_scale,
                    )
                )
                entries.append(save_trace(root, trace))
    dataset = Dataset(root=root, entries=entries)
    save_manifest(dataset)
    return dataset


def save_manifest(dataset: Dataset) -> Path:
    manifest = {
        "version": MANIFEST_VERSION,
        "entries": [
            {
                "app": entry.app,
                "network": entry.network,
                "call_index": entry.call_index,
                "pcap": entry.pcap,
                "window": _window_to_json(entry.window),
                "packet_count": entry.packet_count,
                "labels": [list(label) for label in entry.labels],
            }
            for entry in dataset.entries
        ],
    }
    path = dataset.root / MANIFEST_NAME
    path.write_text(json.dumps(manifest))
    return path


def load_dataset(root: Union[str, Path]) -> Dataset:
    """Open an existing dataset directory by reading its manifest."""
    root = Path(root)
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    if manifest.get("version") not in (1, MANIFEST_VERSION):
        raise ValueError(f"unsupported manifest version {manifest.get('version')}")
    entries = [
        DatasetEntry(
            app=raw["app"],
            network=raw["network"],
            call_index=raw["call_index"],
            pcap=raw["pcap"],
            window=_window_from_json(raw["window"]),
            packet_count=raw["packet_count"],
            labels=tuple(tuple(label) for label in raw.get("labels", [])),
        )
        for raw in manifest["entries"]
    ]
    return Dataset(root=root, entries=entries)
