"""Every execution decision of the system lives here.

This module owns both halves of "how should this run execute":

* **The shared process pool.**  Both parallelism levels — matrix cells
  (:mod:`repro.experiments.parallel`) and intra-cell flow shards
  (:mod:`repro.pipeline.sharded`) — schedule onto the single
  :class:`~concurrent.futures.ProcessPoolExecutor` owned here, so a run
  never oversubscribes the machine with one pool per axis and worker
  processes are spawned (and warmed) once per Python process, not once
  per call.  An ``atexit`` hook tears the pool down when the process
  exits, so pool workers can never outlive the CLI.

* **The adaptive execution planner.**  :func:`plan_execution` turns
  cheap observable signals (:class:`PlanSignals`: record volume, flow
  histogram, calibrated per-stage rates from
  :mod:`repro.experiments.costmodel`) into an :class:`ExecutionPlan` —
  ``workers``/``shard_workers``/``chunk_size``/``dpi_backend`` — by
  minimizing modeled wall-clock, and records the full rationale so
  ``pipeline-stats`` and the bench JSON can show *why* each knob landed
  where it did.  :func:`plan_cell_execution` is the runner-facing entry
  point: calibration when it exists, a micro-probe when it does not.

The pool ``initializer`` pre-builds the process-wide default engine and
checker (:func:`repro.experiments.runner.default_engine` /
``default_checker``), so cell workers start with a warm payload-dedup
cache holder instead of paying construction cost on their first cell.  It
also marks the process as a pool worker: code that could otherwise nest a
second pool (a sharded cell running *inside* a cell worker) checks
:func:`in_pool_worker` and degrades to in-process shard execution instead
of spawning grandchildren.

``POOL_FALLBACK_ERRORS`` is the shared contract for "the environment, not
the code, refused to parallelize": unpicklable payloads, broken pools,
sandboxes that forbid ``fork``.  Callers catch it and fall back to
in-process execution, which must produce bit-identical results anyway.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)


class PoolClosedError(RuntimeError):
    """The shared pool was finally shut down (interpreter exit path).

    Raised by :func:`shared_pool` after :func:`shutdown_shared_pool` ran
    with ``final=True`` — typically from the ``atexit`` hook — so late
    callers degrade to in-process execution instead of re-spawning
    worker processes that would outlive (or hang) the exiting CLI.
    """


#: Environment-caused pool failures that mean "run in-process instead".
POOL_FALLBACK_ERRORS = (
    pickle.PicklingError,
    TypeError,
    AttributeError,
    BrokenProcessPool,
    OSError,
    PermissionError,
    PoolClosedError,
)

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0
_in_pool_worker: bool = False
_pool_finalized: bool = False


def _warm_worker(max_offset: int, fastpath: bool) -> None:
    """Pool initializer: flag the process and pre-build engine/checker."""
    global _in_pool_worker
    _in_pool_worker = True
    # Forked workers inherit the CLI's SIGTERM/SIGINT handlers, which
    # tear down the *shared pool* — a parent-only action that deadlocks
    # in a child holding forked copies of the executor's locks.  Restore
    # the default dispositions so ``terminate()`` actually kills workers.
    import signal

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass
    from repro.experiments.runner import default_checker, default_engine

    default_engine(max_offset, fastpath)
    default_checker()


def in_pool_worker() -> bool:
    """True inside a pool worker process (never nest a second pool there)."""
    return _in_pool_worker


def shared_pool(
    workers: Optional[int] = None,
    max_offset: int = 200,
    fastpath: bool = True,
) -> ProcessPoolExecutor:
    """The process-wide executor, grown (never shrunk) to ``workers``.

    The first caller's engine parameters seed the worker warm-up; later
    callers with different parameters still work — ``default_engine`` is
    an LRU per ``(max_offset, fastpath)`` — they just build that engine on
    first use instead of at worker start.
    """
    global _pool, _pool_workers
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be a positive integer or None")
    if _pool_finalized:
        raise PoolClosedError(
            "the shared pool was finally shut down; run in-process instead"
        )
    if _pool is None or _pool_workers < workers:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
        _pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker,
            initargs=(max_offset, fastpath),
        )
        _pool_workers = workers
    return _pool


def kill_pool_workers() -> int:
    """Terminate the pool's worker processes; returns how many were signalled.

    **Signal-handler safe**: reads the executor's private process table
    (guarded against both stdlib layout changes and the table mutating
    under a mid-fork race) and signals the workers directly, touching no
    executor lock — ``ProcessPoolExecutor.shutdown`` acquires the
    non-reentrant ``_shutdown_lock``, which deadlocks if the interrupted
    main thread was inside ``submit()`` already holding it.  Workers run
    with default signal dispositions (:func:`_warm_worker`), so the
    ``SIGTERM`` that ``terminate()`` sends actually kills them.
    """
    pool = _pool
    if pool is None:
        return 0
    processes: List = []
    for _ in range(3):
        try:
            processes = list((getattr(pool, "_processes", None) or {}).values())
            break
        except RuntimeError:  # pragma: no cover - table mutated mid-fork
            continue
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError, AttributeError):
            # Racing exit, or a worker whose fork has not completed yet
            # (``_popen`` still unset) — either way there is nothing to kill.
            pass
    return len(processes)


def shutdown_shared_pool(final: bool = False, terminate: bool = False) -> None:
    """Tear the shared pool down (broken pool recovery, test isolation).

    ``final=True`` additionally forbids re-creation: any later
    :func:`shared_pool` call raises :class:`PoolClosedError` (which is in
    ``POOL_FALLBACK_ERRORS``, so executors degrade to in-process rather
    than fail).  The module registers ``shutdown_shared_pool(final=True)``
    with :mod:`atexit` so pool workers cannot outlive the CLI process.

    ``terminate=True`` additionally kills worker processes outright
    instead of letting them finish their in-flight task — the graceful-
    drain path (``serve`` shutdown), where the contract is "no orphaned
    workers survive the CLI", not "finish the work".  Not for signal
    handlers — they must use :func:`kill_pool_workers` alone.
    """
    global _pool, _pool_workers, _pool_finalized
    if _pool is not None:
        processes = dict(getattr(_pool, "_processes", None) or {})
        if terminate:
            kill_pool_workers()
        _pool.shutdown(wait=False, cancel_futures=True)
        if terminate:
            for process in processes.values():
                process.join(timeout=2.0)
        _pool = None
        _pool_workers = 0
    if final:
        _pool_finalized = True


def reopen_shared_pool() -> None:
    """Lift a final shutdown so a new pool may be created (tests only)."""
    global _pool_finalized
    _pool_finalized = False


atexit.register(shutdown_shared_pool, final=True)


@dataclass(frozen=True)
class ShardPlan:
    """The resolved worker count for a sharded run, plus why.

    ``effective`` is what actually runs: the requested count (or the CPU
    count when unspecified), capped by the task count and by the CPU
    count.  The CPU cap exists because process-parallel sharding *loses*
    throughput once workers exceed cores — the PR 5 bench measured a
    4-shard run at 0.087x on a 1-CPU box — so oversubscription is a cliff,
    not a tradeoff.  ``in_process`` means no pool is used at all
    (``effective <= 1``); results are bit-identical either way.
    """

    requested: Optional[int]
    effective: int
    cpu_count: int
    clamped: bool
    in_process: bool

    def as_dict(self) -> dict:
        return {
            "requested": self.requested,
            "effective": self.effective,
            "cpu_count": self.cpu_count,
            "clamped": self.clamped,
            "in_process": self.in_process,
        }

    def describe(self) -> str:
        """One-line human rendering for CLI output."""
        mode = "in-process" if self.in_process else f"{self.effective} workers"
        note = f" (clamped to {self.cpu_count} cpu)" if self.clamped else ""
        return f"{mode}{note}"


def plan_shard_workers(
    requested: Optional[int], tasks: int, cpu_count: Optional[int] = None
) -> ShardPlan:
    """Resolve a shard worker request against the machine and task count.

    ``requested=None`` auto-sizes to the CPU count; ``0``/``1`` force
    in-process execution.  Anything larger is capped at the task count
    (idle workers are pointless) and then clamped to the CPU count (see
    :class:`ShardPlan`).  ``cpu_count`` is injectable for tests.
    """
    if requested is not None and requested < 0:
        raise ValueError("workers must be >= 0 or None")
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cpus < 1:
        raise ValueError("cpu_count must be positive")
    want = cpus if requested is None else requested
    capped = min(want, tasks)
    effective = min(capped, cpus)
    return ShardPlan(
        requested=requested,
        effective=effective,
        cpu_count=cpus,
        clamped=effective < capped,
        in_process=effective <= 1,
    )


T = TypeVar("T")


def submission_order(
    items: Sequence[T], cost: Callable[[T], float]
) -> List[int]:
    """Indices of *items* sorted largest-expected-cost-first.

    Ties keep enumeration order, so equal-cost workloads submit exactly
    as they enumerate and the schedule stays deterministic.  Callers
    submit in this order but still gather results in enumeration order —
    scheduling must never leak into merge order.
    """
    return sorted(range(len(items)), key=lambda i: (-cost(items[i]), i))


# --------------------------------------------------------------------------
# Adaptive execution planning
# --------------------------------------------------------------------------

#: Modeled fixed cost of submitting one shard task to the pool and
#: gathering its outcome (future bookkeeping, scheduling latency).
SHARD_TASK_OVERHEAD_SECONDS = 0.015

#: Modeled cost per record of shipping it to a worker and its analysis
#: back (pickle both ways).  Dominates small captures; this is why
#: sharding a short call loses even with idle cores.
IPC_SECONDS_PER_RECORD = 2e-5

#: Modeled coordinator-side cost per record of the partitioning pass
#: (flow hashing, per-shard list building) plus the sorted merge.
PARTITION_SECONDS_PER_RECORD = 2e-6

#: Records the scalar sweep typically touches per flow before the
#: flow-sticky fast path locks: the learner's sightings plus the
#: engine's pre-lock lookahead window.
PRELOCK_SWEEP_ESTIMATE = 36

#: Mean swept records a chunk must carry for the columnar batch pass to
#: amortize its joined-buffer setup; below this the scalar loop wins.
COLUMNAR_MIN_BATCH = 8

#: Smallest chunk the planner will pick; tinier dispatch buys nothing.
MIN_CHUNK_SIZE = 32

#: Default pipeline chunk size, duplicated from ``repro.pipeline.stage``
#: to keep this module import-light (pinned by a test).
_DEFAULT_CHUNK_SIZE = 256


@dataclass(frozen=True)
class PlanSignals:
    """Everything :func:`plan_execution` is allowed to look at.

    All fields are cheap observables (one O(n) pass over the records, a
    calibration-file read, ``os.cpu_count()``) — building the signals
    must cost a sliver of the run they steer.  ``kept_records`` is an
    estimate of how many records survive the filter (probe-extrapolated
    when available, total records otherwise); ``rates`` maps
    :data:`repro.experiments.costmodel.RATE_KEYS` to records/second.
    """

    records: int
    kept_records: int
    flows: int
    max_flow_records: int
    cpu_count: int
    rates: Mapping[str, float]
    columnar_available: bool = True
    fastpath: bool = True
    cells: int = 1
    rate_source: str = "default"
    #: Capture frames still to be decoded before the pipeline sees
    #: records — non-zero only for pcap-sourced sessions.  Decode runs
    #: serially ahead of every option (sharding happens after ingest),
    #: so its modeled cost is charged to all of them equally.
    decode_records: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "records": self.records,
            "kept_records": self.kept_records,
            "flows": self.flows,
            "max_flow_records": self.max_flow_records,
            "cpu_count": self.cpu_count,
            "rates": {key: round(rate, 1) for key, rate in sorted(self.rates.items())},
            "columnar_available": self.columnar_available,
            "fastpath": self.fastpath,
            "cells": self.cells,
            "rate_source": self.rate_source,
            "decode_records": self.decode_records,
        }


@dataclass(frozen=True)
class ExecutionPlan:
    """The resolved knobs for one run, plus the full decision record.

    ``costs`` holds every option the selector modeled, as
    ``(option, modeled_seconds)`` pairs in consideration order, and
    ``rationale`` the human-readable reasons — both surface verbatim in
    ``pipeline-stats`` output and the bench JSON, so a surprising knob
    setting is always explainable from the artifact alone.
    """

    workers: int
    shard_workers: int
    chunk_size: int
    dpi_backend: str
    mode: str = "auto"
    rationale: Tuple[str, ...] = ()
    costs: Tuple[Tuple[str, float], ...] = ()
    signals: Optional[PlanSignals] = None
    probe: Optional[Tuple[Tuple[str, object], ...]] = None

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "mode": self.mode,
            "workers": self.workers,
            "shard_workers": self.shard_workers,
            "chunk_size": self.chunk_size,
            "dpi_backend": self.dpi_backend,
            "rationale": list(self.rationale),
            "costs": {option: round(seconds, 6) for option, seconds in self.costs},
        }
        if self.signals is not None:
            payload["signals"] = self.signals.as_dict()
        if self.probe is not None:
            payload["probe"] = dict(self.probe)
        return payload

    def describe(self) -> str:
        """One-line human rendering for CLI output."""
        return (
            f"{self.mode}: workers={self.workers} "
            f"shard_workers={self.shard_workers} chunk={self.chunk_size} "
            f"backend={self.dpi_backend}"
        )


def fixed_plan(
    workers: Optional[int],
    shard_workers: int,
    chunk_size: int,
    dpi_backend: str,
) -> ExecutionPlan:
    """Echo hand-picked knobs as a plan, so reporting has one shape."""
    return ExecutionPlan(
        workers=workers if workers is not None else (os.cpu_count() or 1),
        shard_workers=shard_workers,
        chunk_size=chunk_size,
        dpi_backend=dpi_backend,
        mode="fixed",
        rationale=("fixed: knobs taken from configuration, planner bypassed",),
    )


def _shard_candidates(cpus: int, flows: int) -> List[int]:
    """Shard-worker counts worth modeling: powers of two up to the cap."""
    cap = max(1, min(cpus, flows))
    candidates = [1]
    k = 2
    while k < cap:
        candidates.append(k)
        k *= 2
    if cap > 1:
        candidates.append(cap)
    return candidates


def plan_execution(signals: PlanSignals) -> ExecutionPlan:
    """Pick every execution knob by minimizing modeled wall-clock.

    Deterministic: identical signals produce an identical plan (ties
    break toward the simpler option — fewer shards, scalar backend).
    The model is deliberately coarse; it only has to *rank* options,
    and the measured-rate inputs carry the machine-specific truth.
    """
    rates = dict(signals.rates)
    records = max(signals.records, 0)
    kept = min(max(signals.kept_records, 0), records)
    flows = max(signals.flows, 1 if records else 0)
    rationale: List[str] = [
        f"signals: {records} records, {kept} kept (est.), {flows} flows, "
        f"largest flow {signals.max_flow_records} records, "
        f"{signals.cpu_count} cpus; rates from {signals.rate_source}"
    ]
    costs: List[Tuple[str, float]] = []

    # Chunk size: the default amortizes per-dispatch overhead; only a
    # capture smaller than one chunk gets a tighter bound (same work,
    # smaller peak buffer).
    chunk_size = _DEFAULT_CHUNK_SIZE
    if 0 < records < _DEFAULT_CHUNK_SIZE:
        chunk_size = max(MIN_CHUNK_SIZE, records)
        rationale.append(
            f"chunk_size={chunk_size}: capture smaller than the default "
            f"chunk, bounding dispatch to the input size"
        )
    else:
        rationale.append(
            f"chunk_size={chunk_size}: default batch amortizes dispatch "
            f"overhead at this volume"
        )

    # DPI backend: the columnar batch pass only touches the pre-lock
    # sweep window, so it pays off when enough swept records share a
    # chunk to amortize the joined-buffer setup.
    swept = kept if not signals.fastpath else min(
        kept, flows * PRELOCK_SWEEP_ESTIMATE
    )
    chunks = max(1, -(-kept // chunk_size)) if kept else 1
    swept_per_chunk = swept / chunks
    scalar_rate = rates.get("dpi_scalar", 1.0)
    columnar_rate = rates.get("dpi_columnar", scalar_rate)
    dpi_backend = "scalar"
    if not signals.columnar_available:
        rationale.append("backend=scalar: columnar vector path unavailable")
    elif columnar_rate <= scalar_rate:
        rationale.append(
            f"backend=scalar: calibrated columnar rate "
            f"({columnar_rate:.0f}/s) does not beat scalar "
            f"({scalar_rate:.0f}/s)"
        )
    elif swept_per_chunk < COLUMNAR_MIN_BATCH:
        rationale.append(
            f"backend=scalar: pre-lock sweep window too narrow to batch "
            f"({swept_per_chunk:.1f} swept records/chunk < "
            f"{COLUMNAR_MIN_BATCH})"
        )
    else:
        dpi_backend = "columnar"
        rationale.append(
            f"backend=columnar: {swept_per_chunk:.1f} swept records/chunk "
            f"amortize the batch pass at {columnar_rate:.0f}/s vs "
            f"{scalar_rate:.0f}/s scalar"
        )

    # Modeled single-process wall-clock from the calibrated stage rates.
    # Capture decode (pcap-sourced sessions only) happens before any
    # sharding, so it is a serial charge on every option alike — it
    # grows the modeled totals without changing the ranking.
    decode_records = max(signals.decode_records, 0)
    decode_seconds = (
        decode_records / max(rates.get("decode", 1.0), 1.0)
        if decode_records
        else 0.0
    )
    if decode_records:
        rationale.append(
            f"ingest: {decode_records} capture frames decode serially at "
            f"{rates.get('decode', 1.0):.0f}/s "
            f"({decode_seconds:.3f}s ahead of every option)"
        )
    dpi_rate = columnar_rate if dpi_backend == "columnar" else scalar_rate
    filter_seconds = records / max(rates.get("filter", 1.0), 1.0)
    dpi_seconds = kept / max(dpi_rate, 1.0)
    check_seconds = kept / max(rates.get("check", 1.0), 1.0)
    serial_seconds = filter_seconds + dpi_seconds + check_seconds

    # Shard workers: the parallel fraction is bounded both by the worker
    # count and by the largest unsplittable flow; partitioning, IPC, and
    # task bookkeeping are charged on top.  In-process execution pays
    # none of that.
    shard_workers = 1
    best_seconds = serial_seconds + decode_seconds
    costs.append(("in-process", serial_seconds + decode_seconds))
    partition_seconds = records * PARTITION_SECONDS_PER_RECORD
    max_flow_share = (
        signals.max_flow_records / records if records else 1.0
    )
    for k in _shard_candidates(signals.cpu_count, flows):
        if k == 1:
            continue
        shard_plan = plan_shard_workers(k, k, signals.cpu_count)
        if shard_plan.in_process:
            # The ask the machine refuses: partition + merge overhead
            # with zero parallel win (PR 6's measured 0.81x cliff).
            modeled = serial_seconds + decode_seconds + partition_seconds
            costs.append((f"shards={k} (clamped in-process)", modeled))
            continue
        effective = shard_plan.effective
        parallel_seconds = max(
            serial_seconds / effective, serial_seconds * max_flow_share
        )
        modeled = (
            decode_seconds
            + parallel_seconds
            + partition_seconds
            + records * IPC_SECONDS_PER_RECORD
            + effective * SHARD_TASK_OVERHEAD_SECONDS
        )
        costs.append((f"shards={k}", modeled))
        if modeled < best_seconds:
            best_seconds = modeled
            shard_workers = k
    if shard_workers > 1:
        rationale.append(
            f"shard_workers={shard_workers}: modeled {best_seconds:.3f}s "
            f"beats in-process {serial_seconds:.3f}s"
        )
    else:
        rationale.append(
            f"shard_workers=1: no sharded option beats in-process "
            f"({serial_seconds:.3f}s modeled) — parallel overhead "
            f"exceeds the win at this volume/CPU count"
        )

    # Matrix-level workers: cells are embarrassingly parallel, so they
    # get the cores first; when they do, per-cell sharding would nest
    # pools (the executor degrades it to in-process anyway).
    workers = max(1, min(signals.cpu_count, signals.cells))
    if workers > 1 and shard_workers > 1:
        shard_workers = 1
        rationale.append(
            f"workers={workers}: matrix cells saturate the pool; "
            f"per-cell sharding disabled to avoid nesting"
        )
    elif signals.cells > 1:
        rationale.append(
            f"workers={workers}: {signals.cells} cells on "
            f"{signals.cpu_count} cpus"
        )

    return ExecutionPlan(
        workers=workers,
        shard_workers=shard_workers,
        chunk_size=chunk_size,
        dpi_backend=dpi_backend,
        mode="auto",
        rationale=tuple(rationale),
        costs=tuple(costs),
        signals=signals,
    )


def columnar_vector_available() -> bool:
    """True when the columnar backend's numpy vector path can engage."""
    try:
        from repro.dpi import columnar
    except ImportError:  # pragma: no cover - columnar module always ships
        return False
    return getattr(columnar, "_np", None) is not None


def plan_cell_execution(
    records: Sequence,
    window,
    config,
    cells: int = 1,
    cpu_count: Optional[int] = None,
) -> ExecutionPlan:
    """Plan one cell's execution from calibration, probing when cold.

    *records* is the cell's full (unfiltered) record list and *window*
    its call window; *config* is the
    :class:`~repro.experiments.runner.ExperimentConfig` carrying
    ``calibration_file``/``max_offset``/``fastpath``.  With a calibrated
    cache the plan comes straight from the measured rates; on a cold
    cache the micro-probe measures the first
    :data:`~repro.experiments.costmodel.PROBE_RECORDS` records first.
    Either way the subsequent real run replays every record through
    fresh engine state, so probed and unprobed outputs are bit-identical.
    """
    from repro.experiments import costmodel

    store = costmodel.get_store(config.calibration_file)
    calibration = store.calibration
    probe = None
    if calibration.calibrated:
        rates = calibration.effective_rates()
        rate_source = "calibration"
        kept_estimate = len(records)
    else:
        probe = costmodel.probe_records(
            records, window, config.max_offset, config.fastpath
        )
        rates = dict(costmodel.DEFAULT_RATES)
        rates.update(probe.rates)
        rate_source = "probe"
        if probe.probed_records:
            kept_ratio = probe.kept_records / probe.probed_records
            kept_estimate = int(len(records) * kept_ratio)
        else:
            kept_estimate = len(records)
    workload = costmodel.workload_signals(records)
    if cpu_count is None:
        # A cell planned inside a pool worker must never ask for shards:
        # the executor would degrade them to in-process anyway, but only
        # after paying the partition/merge overhead the model charges
        # parallel runs for.  One visible CPU models that truthfully.
        cpu_count = 1 if in_pool_worker() else (os.cpu_count() or 1)
    signals = PlanSignals(
        records=workload.records,
        kept_records=kept_estimate,
        flows=workload.flows,
        max_flow_records=workload.max_flow_records,
        cpu_count=cpu_count,
        rates=rates,
        columnar_available=columnar_vector_available(),
        fastpath=config.fastpath,
        cells=cells,
        rate_source=rate_source,
    )
    plan = plan_execution(signals)
    if probe is not None:
        plan = replace(plan, probe=tuple(sorted(probe.as_dict().items())))
    return plan
