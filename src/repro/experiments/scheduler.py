"""One shared process pool for every parallel axis of the system.

Both parallelism levels — matrix cells (:mod:`repro.experiments.parallel`)
and intra-cell flow shards (:mod:`repro.pipeline.sharded`) — schedule onto
the single :class:`~concurrent.futures.ProcessPoolExecutor` owned here, so
a run never oversubscribes the machine with one pool per axis and worker
processes are spawned (and warmed) once per Python process, not once per
call.

The pool ``initializer`` pre-builds the process-wide default engine and
checker (:func:`repro.experiments.runner.default_engine` /
``default_checker``), so cell workers start with a warm payload-dedup
cache holder instead of paying construction cost on their first cell.  It
also marks the process as a pool worker: code that could otherwise nest a
second pool (a sharded cell running *inside* a cell worker) checks
:func:`in_pool_worker` and degrades to in-process shard execution instead
of spawning grandchildren.

``POOL_FALLBACK_ERRORS`` is the shared contract for "the environment, not
the code, refused to parallelize": unpicklable payloads, broken pools,
sandboxes that forbid ``fork``.  Callers catch it and fall back to
in-process execution, which must produce bit-identical results anyway.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

#: Environment-caused pool failures that mean "run in-process instead".
POOL_FALLBACK_ERRORS = (
    pickle.PicklingError,
    TypeError,
    AttributeError,
    BrokenProcessPool,
    OSError,
    PermissionError,
)

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0
_in_pool_worker: bool = False


def _warm_worker(max_offset: int, fastpath: bool) -> None:
    """Pool initializer: flag the process and pre-build engine/checker."""
    global _in_pool_worker
    _in_pool_worker = True
    from repro.experiments.runner import default_checker, default_engine

    default_engine(max_offset, fastpath)
    default_checker()


def in_pool_worker() -> bool:
    """True inside a pool worker process (never nest a second pool there)."""
    return _in_pool_worker


def shared_pool(
    workers: Optional[int] = None,
    max_offset: int = 200,
    fastpath: bool = True,
) -> ProcessPoolExecutor:
    """The process-wide executor, grown (never shrunk) to ``workers``.

    The first caller's engine parameters seed the worker warm-up; later
    callers with different parameters still work — ``default_engine`` is
    an LRU per ``(max_offset, fastpath)`` — they just build that engine on
    first use instead of at worker start.
    """
    global _pool, _pool_workers
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be a positive integer or None")
    if _pool is None or _pool_workers < workers:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
        _pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker,
            initargs=(max_offset, fastpath),
        )
        _pool_workers = workers
    return _pool


def shutdown_shared_pool() -> None:
    """Tear the shared pool down (broken pool recovery, test isolation)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_workers = 0


@dataclass(frozen=True)
class ShardPlan:
    """The resolved worker count for a sharded run, plus why.

    ``effective`` is what actually runs: the requested count (or the CPU
    count when unspecified), capped by the task count and by the CPU
    count.  The CPU cap exists because process-parallel sharding *loses*
    throughput once workers exceed cores — the PR 5 bench measured a
    4-shard run at 0.087x on a 1-CPU box — so oversubscription is a cliff,
    not a tradeoff.  ``in_process`` means no pool is used at all
    (``effective <= 1``); results are bit-identical either way.
    """

    requested: Optional[int]
    effective: int
    cpu_count: int
    clamped: bool
    in_process: bool

    def as_dict(self) -> dict:
        return {
            "requested": self.requested,
            "effective": self.effective,
            "cpu_count": self.cpu_count,
            "clamped": self.clamped,
            "in_process": self.in_process,
        }

    def describe(self) -> str:
        """One-line human rendering for CLI output."""
        mode = "in-process" if self.in_process else f"{self.effective} workers"
        note = f" (clamped to {self.cpu_count} cpu)" if self.clamped else ""
        return f"{mode}{note}"


def plan_shard_workers(
    requested: Optional[int], tasks: int, cpu_count: Optional[int] = None
) -> ShardPlan:
    """Resolve a shard worker request against the machine and task count.

    ``requested=None`` auto-sizes to the CPU count; ``0``/``1`` force
    in-process execution.  Anything larger is capped at the task count
    (idle workers are pointless) and then clamped to the CPU count (see
    :class:`ShardPlan`).  ``cpu_count`` is injectable for tests.
    """
    if requested is not None and requested < 0:
        raise ValueError("workers must be >= 0 or None")
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cpus < 1:
        raise ValueError("cpu_count must be positive")
    want = cpus if requested is None else requested
    capped = min(want, tasks)
    effective = min(capped, cpus)
    return ShardPlan(
        requested=requested,
        effective=effective,
        cpu_count=cpus,
        clamped=effective < capped,
        in_process=effective <= 1,
    )


T = TypeVar("T")


def submission_order(
    items: Sequence[T], cost: Callable[[T], float]
) -> List[int]:
    """Indices of *items* sorted largest-expected-cost-first.

    Ties keep enumeration order, so equal-cost workloads submit exactly
    as they enumerate and the schedule stays deterministic.  Callers
    submit in this order but still gather results in enumeration order —
    scheduling must never leak into merge order.
    """
    return sorted(range(len(items)), key=lambda i: (-cost(items[i]), i))
