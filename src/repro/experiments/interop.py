"""Interoperability-gap analysis — the DMA use case (paper §1, §6).

The paper argues compliance measurements "estimate the technical challenges
involved in achieving interoperability": a standards-conformant peer must
implement every proprietary deviation of the application it wants to talk
to.  This module turns verdicts and DPI output into that estimate — an
itemized adaptation workload per application.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence

from repro.core.verdict import Criterion, MessageVerdict
from repro.dpi.messages import DatagramAnalysis, DatagramClass

#: Violation codes that imply a custom *parser* (new wire syntax).
_PARSER_CODES = frozenset({
    "undefined-message-type",
    "undefined-attribute",
    "undefined-extension-profile",
    "undefined-packet-type",
    "undefined-trailing-bytes",
})
#: Violation codes that imply custom *semantics* (state-machine changes).
_SEMANTIC_CODES = frozenset({
    "allocate-pingpong",
    "unanswered-retransmission",
    "srtcp-missing-auth-tag",
    "channeldata-padding",
    "id-zero-with-length",
    "attribute-not-allowed",
})


@dataclass
class InteropGap:
    """The adaptation workload for interoperating with one application."""

    app: str
    undefined_message_types: FrozenSet[str]
    undefined_attribute_messages: int
    semantic_deviation_messages: int
    proprietary_header_share: float
    fully_proprietary_share: float
    violation_codes: Dict[str, int] = field(default_factory=dict)

    @property
    def needs_custom_framing(self) -> bool:
        """Must a peer strip proprietary wrappers before standard parsing?"""
        return self.proprietary_header_share > 0.01

    @property
    def needs_custom_protocol(self) -> bool:
        """Does the app speak datagrams no standard stack can interpret?"""
        return self.fully_proprietary_share > 0.01

    @property
    def effort_score(self) -> int:
        """A coarse 0-10 engineering-effort estimate.

        One point per undefined message type (cap 3), plus framing,
        fully-proprietary protocol, attribute-level and semantic adaptation
        needs — a deliberately simple rubric so scores are explainable.
        """
        score = min(3, len(self.undefined_message_types))
        if self.needs_custom_framing:
            score += 2
        if self.needs_custom_protocol:
            score += 2
        if self.undefined_attribute_messages:
            score += 2
        if self.semantic_deviation_messages:
            score += 1
        return min(10, score)

    def workload_items(self) -> List[str]:
        """Human-readable adaptation checklist."""
        items = []
        if self.undefined_message_types:
            items.append(
                f"implement {len(self.undefined_message_types)} undefined "
                f"message types ({', '.join(sorted(self.undefined_message_types))})"
            )
        if self.undefined_attribute_messages:
            items.append(
                f"parse proprietary attributes/extensions "
                f"({self.undefined_attribute_messages} messages observed)"
            )
        if self.needs_custom_framing:
            items.append(
                f"strip proprietary framing from "
                f"{self.proprietary_header_share:.0%} of datagrams"
            )
        if self.needs_custom_protocol:
            items.append(
                f"reverse-engineer a fully proprietary protocol "
                f"({self.fully_proprietary_share:.0%} of datagrams)"
            )
        if self.semantic_deviation_messages:
            items.append(
                f"replicate non-standard protocol semantics "
                f"({self.semantic_deviation_messages} messages observed)"
            )
        if not items:
            items.append("none — interoperates with a stock RFC stack")
        return items


def compute_interop_gap(
    app: str,
    verdicts: Sequence[MessageVerdict],
    analyses: Sequence[DatagramAnalysis],
) -> InteropGap:
    """Derive the adaptation workload from one application's pipeline output."""
    undefined_types = set()
    attribute_messages = 0
    semantic_messages = 0
    codes: Counter = Counter()
    for verdict in verdicts:
        for violation in verdict.violations:
            codes[violation.code] += 1
            if violation.code == "undefined-message-type":
                undefined_types.add(verdict.message.type_key()[1])
            if violation.code in _PARSER_CODES and violation.code != "undefined-message-type":
                attribute_messages += 1
            if violation.code in _SEMANTIC_CODES:
                semantic_messages += 1

    total = len(analyses) or 1
    headered = sum(
        1 for a in analyses
        if a.classification is DatagramClass.PROPRIETARY_HEADER
    )
    fully = sum(
        1 for a in analyses
        if a.classification is DatagramClass.FULLY_PROPRIETARY
    )
    return InteropGap(
        app=app,
        undefined_message_types=frozenset(undefined_types),
        undefined_attribute_messages=attribute_messages,
        semantic_deviation_messages=semantic_messages,
        proprietary_header_share=headered / total,
        fully_proprietary_share=fully / total,
        violation_codes=dict(codes),
    )


def render_gap_table(gaps: Sequence[InteropGap]) -> str:
    """An aligned text table over several applications' gaps."""
    header = (
        f"{'app':<11} {'score':>5} {'undef types':>11} {'prop.hdr':>9} "
        f"{'fully prop':>10}  workload"
    )
    lines = [header, "-" * (len(header) + 20)]
    for gap in sorted(gaps, key=lambda g: -g.effort_score):
        first_item = gap.workload_items()[0]
        lines.append(
            f"{gap.app:<11} {gap.effort_score:>5} "
            f"{len(gap.undefined_message_types):>11} "
            f"{gap.proprietary_header_share:>8.1%} "
            f"{gap.fully_proprietary_share:>9.1%}  {first_item}"
        )
    return "\n".join(lines)
