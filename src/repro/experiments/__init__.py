"""Experiment matrix runner and table/figure generators (paper §3-§5)."""

from repro.experiments.runner import (
    ExperimentAggregate,
    ExperimentConfig,
    MatrixResult,
    default_checker,
    default_engine,
    run_experiment,
    run_matrix,
)
from repro.experiments.parallel import (
    expected_cell_cost,
    matrix_cells,
    run_matrix_parallel,
)
from repro.experiments.scheduler import (
    ShardPlan,
    plan_shard_workers,
    shared_pool,
    shutdown_shared_pool,
    submission_order,
)

__all__ = [
    "ExperimentAggregate",
    "ExperimentConfig",
    "MatrixResult",
    "ShardPlan",
    "default_checker",
    "default_engine",
    "expected_cell_cost",
    "matrix_cells",
    "plan_shard_workers",
    "run_experiment",
    "run_matrix",
    "run_matrix_parallel",
    "shared_pool",
    "shutdown_shared_pool",
    "submission_order",
]
