"""Experiment matrix runner and table/figure generators (paper §3-§5)."""

from repro.experiments.runner import (
    ExperimentAggregate,
    ExperimentConfig,
    MatrixResult,
    run_experiment,
    run_matrix,
)

__all__ = [
    "ExperimentAggregate",
    "ExperimentConfig",
    "MatrixResult",
    "run_experiment",
    "run_matrix",
]
