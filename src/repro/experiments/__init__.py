"""Experiment matrix runner and table/figure generators (paper §3-§5)."""

from repro.experiments.runner import (
    ExperimentAggregate,
    ExperimentConfig,
    MatrixResult,
    default_checker,
    default_engine,
    run_experiment,
    run_matrix,
)
from repro.experiments.parallel import matrix_cells, run_matrix_parallel

__all__ = [
    "ExperimentAggregate",
    "ExperimentConfig",
    "MatrixResult",
    "default_checker",
    "default_engine",
    "matrix_cells",
    "run_experiment",
    "run_matrix",
    "run_matrix_parallel",
]
