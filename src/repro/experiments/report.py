"""Markdown report generation for a compliance analysis.

Turns pipeline outputs into the per-application report a network operator
or regulator (the DMA use case) would read: overall scores, per-protocol
breakdown, every observed message type with its verdict, and the violation
inventory grouped by criterion.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence

from repro.core.metrics import ComplianceSummary
from repro.core.verdict import Criterion, MessageVerdict
from repro.dpi.messages import DatagramClass
from repro.experiments.runner import ExperimentAggregate, MatrixResult

_CRITERION_TITLES = {
    Criterion.MESSAGE_TYPE: "Criterion 1 — message type definition",
    Criterion.HEADER_FIELDS: "Criterion 2 — header field validity",
    Criterion.ATTRIBUTE_TYPES: "Criterion 3 — attribute type validity",
    Criterion.ATTRIBUTE_VALUES: "Criterion 4 — attribute value validity",
    Criterion.SEMANTICS: "Criterion 5 — syntax & semantic integrity",
}


def violation_inventory(verdicts: Sequence[MessageVerdict]) -> Dict[Criterion, Counter]:
    """criterion -> Counter of violation codes."""
    inventory: Dict[Criterion, Counter] = defaultdict(Counter)
    for verdict in verdicts:
        for violation in verdict.violations:
            inventory[violation.criterion][violation.code] += 1
    return dict(inventory)


def summary_report(summary: ComplianceSummary) -> str:
    """A self-contained markdown report for one application's summary."""
    lines = [f"# Compliance report — {summary.app}", ""]
    lines.append(
        f"**Volume compliance:** {summary.volume.ratio:.2%} "
        f"({summary.volume.compliant}/{summary.volume.total} messages)"
    )
    compliant, total = summary.type_ratio()
    lines.append(f"**Message-type compliance:** {compliant}/{total}")
    lines.append("")
    lines.append("## Per-protocol volume")
    lines.append("")
    lines.append("| Protocol | Compliant | Total | Ratio |")
    lines.append("|---|---:|---:|---:|")
    for protocol, volume in sorted(summary.volume_by_protocol.items()):
        lines.append(
            f"| {protocol} | {volume.compliant} | {volume.total} "
            f"| {volume.ratio:.2%} |"
        )
    lines.append("")
    lines.append("## Observed message types")
    lines.append("")
    lines.append("| Protocol | Type | Messages | Verdict | Example violation |")
    lines.append("|---|---|---:|---|---|")
    for entry in sorted(summary.types.values(),
                        key=lambda e: (e.protocol, e.type_label)):
        verdict = "compliant" if entry.compliant else "**non-compliant**"
        example = entry.example_violations[0] if entry.example_violations else ""
        example = example.replace("|", "\\|")
        lines.append(
            f"| {entry.protocol} | {entry.type_label} | {entry.total} "
            f"| {verdict} | {example} |"
        )
    lines.append("")
    return "\n".join(lines)


def aggregate_report(aggregate: ExperimentAggregate) -> str:
    """Report for one experiment aggregate: filter stats + DPI + compliance."""
    lines = [f"# Experiment report — {aggregate.app}", ""]
    lines.append("## Traffic filtering")
    lines.append("")
    lines.append("| Stage | UDP streams | UDP packets | TCP streams | TCP packets |")
    lines.append("|---|---:|---:|---:|---:|")
    for label, counts in (
        ("raw capture", aggregate.raw),
        ("stage-1 removed", aggregate.stage1_removed),
        ("stage-2 removed", aggregate.stage2_removed),
        ("RTC (kept)", aggregate.kept),
    ):
        lines.append(
            f"| {label} | {counts.udp_streams} | {counts.udp_packets} "
            f"| {counts.tcp_streams} | {counts.tcp_packets} |"
        )
    lines.append("")
    lines.append(
        f"Filter precision {aggregate.filter_precision:.4f}, "
        f"recall {aggregate.filter_recall:.4f} (vs. ground truth)."
    )
    lines.append("")
    lines.append("## Datagram classes (Figure 3 view)")
    lines.append("")
    total = sum(aggregate.class_counts.values()) or 1
    for cls in DatagramClass:
        count = aggregate.class_counts.get(cls, 0)
        lines.append(f"- {cls.value}: {count} ({count / total:.1%})")
    lines.append("")
    if aggregate.summary is not None:
        lines.append(summary_report(aggregate.summary))
    return "\n".join(lines)


def matrix_report(matrix: MatrixResult) -> str:
    """One report covering every application in a matrix run."""
    lines = ["# RTC protocol-compliance matrix report", ""]
    lines.append("| App | Volume compliance | Type compliance | Fully proprietary |")
    lines.append("|---|---:|---:|---:|")
    for app, aggregate in matrix.per_app.items():
        summary = aggregate.summary
        compliant, total = summary.type_ratio()
        fully = aggregate.class_counts.get(DatagramClass.FULLY_PROPRIETARY, 0)
        datagrams = sum(aggregate.class_counts.values()) or 1
        lines.append(
            f"| {app} | {summary.volume.ratio:.2%} | {compliant}/{total} "
            f"| {fully / datagrams:.1%} |"
        )
    lines.append("")
    for app, aggregate in matrix.per_app.items():
        lines.append(aggregate_report(aggregate))
        lines.append("")
    return "\n".join(lines)


def criteria_report(verdicts: Sequence[MessageVerdict]) -> str:
    """Violation inventory grouped by the five criteria."""
    inventory = violation_inventory(verdicts)
    lines = ["# Violations by criterion", ""]
    for criterion in Criterion:
        lines.append(f"## {_CRITERION_TITLES[criterion]}")
        lines.append("")
        counter = inventory.get(criterion)
        if not counter:
            lines.append("No violations.")
        else:
            for code, count in counter.most_common():
                lines.append(f"- `{code}`: {count} messages")
        lines.append("")
    return "\n".join(lines)
