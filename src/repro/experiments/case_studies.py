"""Detectors for the paper's per-application case studies (§5.2, §5.3).

Each detector takes pipeline outputs (traces, DPI results, verdicts) and
returns a small result object quantifying one documented behaviour.  The
case-study benchmark asserts the paper's qualitative claims against them.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.dpi.messages import DatagramAnalysis, DatagramClass, ExtractedMessage, Protocol
from repro.protocols.rtcp.packets import RtcpPacket
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.message import StunMessage

FACETIME_BEACON_PREFIX = bytes.fromhex("DEADBEEFCAFE")


# --- Zoom ---------------------------------------------------------------------

@dataclass
class FillerReport:
    """Zoom's 1000-identical-byte bandwidth-probe datagrams."""

    filler_count: int
    fully_proprietary_count: int
    peak_rate_pps: float
    shares_media_stream: bool

    @property
    def filler_share(self) -> float:
        if not self.fully_proprietary_count:
            return 0.0
        return self.filler_count / self.fully_proprietary_count


def detect_zoom_filler(analyses: Sequence[DatagramAnalysis]) -> FillerReport:
    filler_times: List[float] = []
    filler_streams = set()
    media_streams = set()
    fully = 0
    for analysis in analyses:
        if analysis.messages:
            if any(m.protocol in (Protocol.RTP, Protocol.RTCP) for m in analysis.messages):
                media_streams.add(analysis.record.flow_key)
            continue
        fully += 1
        payload = analysis.record.payload
        if len(payload) == 1000 and len(set(payload)) == 1:
            filler_times.append(analysis.record.timestamp)
            filler_streams.add(analysis.record.flow_key)
    peak = 0.0
    if filler_times:
        filler_times.sort()
        # Peak 1-second-window rate.
        left = 0
        for right, t in enumerate(filler_times):
            while filler_times[left] < t - 1.0:
                left += 1
            peak = max(peak, float(right - left + 1))
    return FillerReport(
        filler_count=len(filler_times),
        fully_proprietary_count=fully,
        peak_rate_pps=peak,
        shares_media_stream=bool(filler_streams & media_streams),
    )


@dataclass
class DualRtpReport:
    """Zoom datagrams carrying two RTP messages (§5.3)."""

    dual_datagrams: int
    rtp_datagrams: int
    all_first_short: bool
    all_same_ssrc_timestamp: bool

    @property
    def rate(self) -> float:
        return self.dual_datagrams / self.rtp_datagrams if self.rtp_datagrams else 0.0


def detect_dual_rtp(analyses: Sequence[DatagramAnalysis]) -> DualRtpReport:
    dual = 0
    rtp_datagrams = 0
    first_short = True
    same_identity = True
    for analysis in analyses:
        rtp_messages = [m for m in analysis.messages if m.protocol is Protocol.RTP]
        if not rtp_messages:
            continue
        rtp_datagrams += 1
        if len(rtp_messages) < 2:
            continue
        dual += 1
        first, second = rtp_messages[0].message, rtp_messages[1].message
        if len(first.payload) > 16:
            first_short = False
        if first.ssrc != second.ssrc or first.timestamp != second.timestamp:
            same_identity = False
    return DualRtpReport(
        dual_datagrams=dual,
        rtp_datagrams=rtp_datagrams,
        all_first_short=first_short and dual > 0,
        all_same_ssrc_timestamp=same_identity and dual > 0,
    )


def observed_rtp_ssrcs(messages: Sequence[ExtractedMessage]) -> FrozenSet[int]:
    """Distinct RTP SSRCs — for the fixed-SSRC-across-calls case study."""
    return frozenset(
        m.message.ssrc for m in messages if m.protocol is Protocol.RTP
    )


@dataclass
class WrapperReport:
    """Zoom's type-7 wrapper share among proprietary-headered datagrams."""

    wrapped: int
    headered: int

    @property
    def rate(self) -> float:
        return self.wrapped / self.headered if self.headered else 0.0


def detect_zoom_wrapper(analyses: Sequence[DatagramAnalysis]) -> WrapperReport:
    wrapped = headered = 0
    for analysis in analyses:
        header = analysis.proprietary_header
        if len(header) < 17:
            continue
        headered += 1
        if header[16] == 7:  # media-section type byte
            wrapped += 1
    return WrapperReport(wrapped=wrapped, headered=headered)


# --- Discord -------------------------------------------------------------------

@dataclass
class SsrcZeroReport:
    zero_ssrc: int
    total_205: int

    @property
    def rate(self) -> float:
        return self.zero_ssrc / self.total_205 if self.total_205 else 0.0


def detect_ssrc_zero(messages: Sequence[ExtractedMessage]) -> SsrcZeroReport:
    zero = total = 0
    for extracted in messages:
        if extracted.protocol is not Protocol.RTCP:
            continue
        packet: RtcpPacket = extracted.message
        if packet.packet_type != 205:
            continue
        total += 1
        if packet.ssrc == 0:
            zero += 1
    return SsrcZeroReport(zero_ssrc=zero, total_205=total)


@dataclass
class ExtensionAbuseReport:
    """Discord's RFC 8285 deviations (§5.2.2)."""

    id_zero_messages: int
    undefined_profile_messages: int
    undefined_profile_payload_types: FrozenSet[int]
    rtp_messages: int

    @property
    def id_zero_rate(self) -> float:
        return self.id_zero_messages / self.rtp_messages if self.rtp_messages else 0.0

    @property
    def undefined_profile_rate(self) -> float:
        return (
            self.undefined_profile_messages / self.rtp_messages
            if self.rtp_messages
            else 0.0
        )


def detect_extension_abuse(messages: Sequence[ExtractedMessage]) -> ExtensionAbuseReport:
    id_zero = undefined = rtp_total = 0
    undefined_pts = set()
    for extracted in messages:
        if extracted.protocol is not Protocol.RTP:
            continue
        rtp_total += 1
        packet: RtpPacket = extracted.message
        extension = packet.extension
        if extension is None:
            continue
        if extension.is_one_byte:
            if any(
                e.ext_id == 0 and e.declared_length > 0 for e in extension.elements()
            ):
                id_zero += 1
        elif not extension.is_two_byte:
            undefined += 1
            undefined_pts.add(packet.payload_type)
    return ExtensionAbuseReport(
        id_zero_messages=id_zero,
        undefined_profile_messages=undefined,
        undefined_profile_payload_types=frozenset(undefined_pts),
        rtp_messages=rtp_total,
    )


@dataclass
class DirectionByteReport:
    """Discord's per-direction RTCP trailer byte (§5.2.3)."""

    outbound_values: FrozenSet[int]
    inbound_values: FrozenSet[int]
    trailered_messages: int

    @property
    def perfectly_correlated(self) -> bool:
        return (
            self.trailered_messages > 0
            and self.outbound_values == frozenset({0x80})
            and self.inbound_values == frozenset({0x00})
        )


def detect_direction_byte(messages: Sequence[ExtractedMessage]) -> DirectionByteReport:
    from repro.packets.packet import Direction

    outbound = set()
    inbound = set()
    count = 0
    for extracted in messages:
        if extracted.protocol is not Protocol.RTCP or len(extracted.trailer) != 3:
            continue
        count += 1
        last = extracted.trailer[-1]
        if extracted.direction is Direction.OUTBOUND:
            outbound.add(last)
        else:
            inbound.add(last)
    return DirectionByteReport(
        outbound_values=frozenset(outbound),
        inbound_values=frozenset(inbound),
        trailered_messages=count,
    )


# --- FaceTime ------------------------------------------------------------------

@dataclass
class BeaconReport:
    """FaceTime's fully proprietary 36-byte cellular beacons (§5.3)."""

    beacon_count: int
    total_datagrams: int
    all_36_bytes: bool
    counters_monotonic: bool
    median_interval: float

    @property
    def share(self) -> float:
        return self.beacon_count / self.total_datagrams if self.total_datagrams else 0.0


def detect_facetime_beacons(analyses: Sequence[DatagramAnalysis]) -> BeaconReport:
    beacons: List[Tuple[float, bytes]] = []
    for analysis in analyses:
        payload = analysis.record.payload
        if payload.startswith(FACETIME_BEACON_PREFIX):
            beacons.append((analysis.record.timestamp, payload))
    all_36 = all(len(p) == 36 for _, p in beacons)
    monotonic = True
    by_dir: Dict[tuple, List[Tuple[float, bytes]]] = defaultdict(list)
    for analysis in analyses:
        payload = analysis.record.payload
        if payload.startswith(FACETIME_BEACON_PREFIX):
            by_dir[(analysis.record.src_ip, analysis.record.src_port)].append(
                (analysis.record.timestamp, payload)
            )
    intervals: List[float] = []
    for samples in by_dir.values():
        samples.sort()
        prev_a = prev_b = None
        for i, (t, payload) in enumerate(samples):
            if len(payload) != 36:
                continue
            counter_a = int.from_bytes(payload[28:32], "big")
            counter_b = int.from_bytes(payload[32:36], "big")
            if prev_a is not None and (counter_a <= prev_a or counter_b <= prev_b):
                monotonic = False
            prev_a, prev_b = counter_a, counter_b
            if i:
                intervals.append(t - samples[i - 1][0])
    intervals.sort()
    median = intervals[len(intervals) // 2] if intervals else 0.0
    return BeaconReport(
        beacon_count=len(beacons),
        total_datagrams=len(analyses),
        all_36_bytes=all_36 and bool(beacons),
        counters_monotonic=monotonic and bool(beacons),
        median_interval=median,
    )


@dataclass
class ProprietaryHeaderReport:
    """Share of datagrams with a proprietary header, and the header profile."""

    headered: int
    total: int
    all_start_0x6000: bool
    length_range: Tuple[int, int]

    @property
    def share(self) -> float:
        return self.headered / self.total if self.total else 0.0


def detect_facetime_headers(analyses: Sequence[DatagramAnalysis]) -> ProprietaryHeaderReport:
    headered = 0
    starts_ok = True
    lengths: List[int] = []
    for analysis in analyses:
        header = analysis.proprietary_header
        if not header:
            continue
        headered += 1
        lengths.append(len(header))
        if not header.startswith(b"\x60\x00"):
            starts_ok = False
    return ProprietaryHeaderReport(
        headered=headered,
        total=len(analyses),
        all_start_0x6000=starts_ok and headered > 0,
        length_range=(min(lengths), max(lengths)) if lengths else (0, 0),
    )


# --- WhatsApp / Messenger --------------------------------------------------------

@dataclass
class BurstReport:
    """The 0x0801/0x0802 pre-join burst (§5.2.1)."""

    pairs: int
    burst_span: float
    request_sizes: FrozenSet[int]
    response_sizes: FrozenSet[int]
    txids_paired: bool


def detect_meta_burst(messages: Sequence[ExtractedMessage]) -> BurstReport:
    requests: Dict[bytes, ExtractedMessage] = {}
    responses: Dict[bytes, ExtractedMessage] = {}
    for extracted in messages:
        if extracted.protocol is not Protocol.STUN_TURN:
            continue
        message = extracted.message
        if not isinstance(message, StunMessage):
            continue
        if message.msg_type == 0x0801:
            requests[message.transaction_id] = extracted
        elif message.msg_type == 0x0802:
            responses[message.transaction_id] = extracted
    paired = set(requests) & set(responses)
    times = [requests[txid].timestamp for txid in paired]
    span = (max(times) - min(times)) if len(times) > 1 else 0.0
    return BurstReport(
        pairs=len(paired),
        burst_span=span,
        request_sizes=frozenset(len(requests[t].raw) for t in paired),
        response_sizes=frozenset(len(responses[t].raw) for t in paired),
        txids_paired=bool(paired) and set(requests) == set(responses),
    )


@dataclass
class CallEndReport:
    """Undefined 0x0800 messages at call termination (§5.2.1)."""

    count: int
    near_call_end: bool
    carry_relayed_address: bool


def detect_call_end_0800(
    messages: Sequence[ExtractedMessage], call_end: float, slack: float = 5.0
) -> CallEndReport:
    from repro.protocols.stun.constants import AttributeType

    found = [
        m
        for m in messages
        if m.protocol is Protocol.STUN_TURN
        and isinstance(m.message, StunMessage)
        and m.message.msg_type == 0x0800
    ]
    near_end = all(call_end - slack <= m.timestamp <= call_end + slack for m in found)
    with_relay = all(
        m.message.attribute(int(AttributeType.XOR_RELAYED_ADDRESS)) is not None
        for m in found
    )
    return CallEndReport(
        count=len(found),
        near_call_end=near_end and bool(found),
        carry_relayed_address=with_relay and bool(found),
    )


# --- Google Meet -----------------------------------------------------------------

@dataclass
class SrtcpTagReport:
    """SRTCP authentication-tag presence (§5.2.3)."""

    tagged: int
    tagless: int

    @property
    def tagless_share(self) -> float:
        total = self.tagged + self.tagless
        return self.tagless / total if total else 0.0


def detect_srtcp_tags(messages: Sequence[ExtractedMessage]) -> SrtcpTagReport:
    from repro.core.rtcp_rules import classify_trailer

    tagged = tagless = 0
    for extracted in messages:
        if extracted.protocol is not Protocol.RTCP:
            continue
        kind = classify_trailer(extracted.trailer)
        if kind == "srtcp":
            tagged += 1
        elif kind == "srtcp-no-tag":
            tagless += 1
    return SrtcpTagReport(tagged=tagged, tagless=tagless)
