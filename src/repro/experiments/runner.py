"""End-to-end experiment execution.

One *experiment* is the full pipeline for one (app, network, repeat) cell:
simulate the call, filter unrelated traffic, run the DPI, judge compliance.
A *matrix* is the paper's 6 apps × 3 network configurations × N repeats.

Aggregates keep only counters and verdict summaries, so a full matrix stays
small in memory even for long calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache, partial
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps import APP_NAMES, CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker, ComplianceSummary
from repro.core.metrics import TypeComplianceEntry, VolumeCompliance
from repro.dpi import DatagramClass, DpiEngine, DpiStats, Protocol
from repro.dpi.messages import ExtractedMessage
from repro.filtering import TwoStageFilter
from repro.filtering.pipeline import FilterResult, StageCounts
from repro.pipeline import (
    DEFAULT_CHUNK_SIZE,
    StageStats,
    merge_stage_stats,
    run_cell_sharded,
)
from repro.service.session import AnalysisSession

#: Maximum example violations kept per (protocol, type) entry when merging.
MAX_EXAMPLE_VIOLATIONS = 3


@lru_cache(maxsize=8)
def default_engine(
    max_offset: int, fastpath: bool = True, backend: str = "scalar"
) -> DpiEngine:
    """Process-wide ``DpiEngine`` per ``(max_offset, fastpath, backend)``.

    Reusing one engine across cells keeps its payload-dedup cache warm, so
    repeated keepalive/probe datagrams are only scanned once per process.
    """
    return DpiEngine(max_offset=max_offset, fastpath=fastpath, backend=backend)


@lru_cache(maxsize=1)
def default_checker() -> ComplianceChecker:
    """Process-wide checker; it keeps no state between ``check`` calls."""
    return ComplianceChecker()


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters for one experiment cell (or a whole matrix).

    ``shard_workers`` > 1 flow-shards each cell's streaming pipeline
    across that many worker processes (see :mod:`repro.pipeline.sharded`);
    results are bit-identical to ``shard_workers=1`` by construction.
    ``chunk_size`` bounds the record batches the pipeline hands each
    stage per dispatch (``1`` = historical per-record feeding).
    ``dpi_backend`` selects the stage-one sweep implementation
    (``"scalar"`` or ``"columnar"``); outputs are bit-identical.

    ``plan="auto"`` hands ``shard_workers``/``chunk_size``/``dpi_backend``
    to the adaptive execution planner
    (:func:`repro.experiments.scheduler.plan_cell_execution`): the knobs
    above become ignored defaults and each cell is planned from measured
    signals — the calibration cache when one exists, a micro-probe on the
    first records otherwise.  Outputs are bit-identical to any fixed
    configuration by construction.  ``calibration_file`` overrides where
    the calibration cache lives (default:
    :func:`repro.experiments.costmodel.default_calibration_path`).

    ``impairment`` names a :mod:`repro.netem` profile applied to every
    cell's record stream post-synthesis — the fourth matrix axis next
    to app, network, and repeat.  Outputs under any profile remain
    bit-identical across execution shapes (sharded, streaming, either
    DPI backend), because the impaired records are produced once by
    ``AppSimulator.iter_records`` before the pipeline ever runs.
    """

    call_duration: float = 30.0
    media_scale: float = 0.5
    repeats: int = 1
    seed: int = 0
    max_offset: int = 200
    include_background: bool = True
    fastpath: bool = True
    shard_workers: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    dpi_backend: str = "scalar"
    plan: str = "fixed"
    calibration_file: Optional[str] = None
    impairment: str = "none"

    def __post_init__(self):
        if self.plan not in ("fixed", "auto"):
            raise ValueError(f"unknown plan mode: {self.plan!r}")
        from repro.netem import get_profile

        get_profile(self.impairment)


@dataclass
class ExperimentAggregate:
    """Counter-level results for one app (possibly merged across cells)."""

    app: str
    raw: StageCounts = field(default_factory=StageCounts)
    stage1_removed: StageCounts = field(default_factory=StageCounts)
    stage2_removed: StageCounts = field(default_factory=StageCounts)
    kept: StageCounts = field(default_factory=StageCounts)
    class_counts: Dict[DatagramClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in DatagramClass}
    )
    protocol_counts: Dict[Protocol, int] = field(default_factory=dict)
    summary: Optional[ComplianceSummary] = None
    filter_precision: float = 1.0
    filter_recall: float = 1.0
    dpi_stats: DpiStats = field(default_factory=DpiStats)
    #: Per-stage streaming instrumentation, keyed by stage name
    #: (records in/out, wall time, peak buffered); summed across cells.
    stage_stats: Dict[str, StageStats] = field(default_factory=dict)
    #: Measured end-to-end wall seconds (simulate → verdicts), summed
    #: across merged cells; feeds the calibration cache's cell history.
    wall_seconds: float = 0.0
    #: Cells folded into this aggregate (divisor for per-cell averages).
    cells: int = 1
    #: Execution-plan decision records (``ExecutionPlan.as_dict()``), one
    #: per planned cell; empty under ``plan="fixed"``.
    plans: List[Dict[str, object]] = field(default_factory=list)

    def merge(self, other: "ExperimentAggregate") -> None:
        self.raw = _add_counts(self.raw, other.raw)
        self.stage1_removed = _add_counts(self.stage1_removed, other.stage1_removed)
        self.stage2_removed = _add_counts(self.stage2_removed, other.stage2_removed)
        self.kept = _add_counts(self.kept, other.kept)
        for cls, count in other.class_counts.items():
            self.class_counts[cls] = self.class_counts.get(cls, 0) + count
        for protocol, count in other.protocol_counts.items():
            self.protocol_counts[protocol] = (
                self.protocol_counts.get(protocol, 0) + count
            )
        if self.summary is None:
            self.summary = other.summary
        elif other.summary is not None:
            self.summary = merge_summaries(self.summary, other.summary)
        # Precision/recall: keep the worst observed (conservative).
        self.filter_precision = min(self.filter_precision, other.filter_precision)
        self.filter_recall = min(self.filter_recall, other.filter_recall)
        self.dpi_stats.merge(other.dpi_stats)
        merge_stage_stats(self.stage_stats, other.stage_stats.values())
        self.wall_seconds += other.wall_seconds
        self.cells += other.cells
        self.plans.extend(other.plans)

    def message_distribution(self) -> Dict[str, float]:
        """Table 2's row: per-protocol message share incl. fully proprietary."""
        fully = self.class_counts.get(DatagramClass.FULLY_PROPRIETARY, 0)
        total = sum(self.protocol_counts.values()) + fully
        if total == 0:
            return {}
        shares = {
            protocol.value: count / total
            for protocol, count in sorted(
                self.protocol_counts.items(), key=lambda kv: kv[0].value
            )
        }
        shares["fully_proprietary"] = fully / total
        return shares


def _add_counts(a: StageCounts, b: StageCounts) -> StageCounts:
    return StageCounts(
        udp_streams=a.udp_streams + b.udp_streams,
        udp_packets=a.udp_packets + b.udp_packets,
        tcp_streams=a.tcp_streams + b.tcp_streams,
        tcp_packets=a.tcp_packets + b.tcp_packets,
    )


def merge_summaries(a: ComplianceSummary, b: ComplianceSummary) -> ComplianceSummary:
    volume = a.volume + b.volume
    by_protocol: Dict[str, VolumeCompliance] = dict(a.volume_by_protocol)
    for protocol, vol in b.volume_by_protocol.items():
        by_protocol[protocol] = by_protocol.get(
            protocol, VolumeCompliance(0, 0)
        ) + vol
    types: Dict[Tuple[str, str], TypeComplianceEntry] = {
        key: TypeComplianceEntry(
            protocol=entry.protocol,
            type_label=entry.type_label,
            total=entry.total,
            non_compliant=entry.non_compliant,
            example_violations=list(
                entry.example_violations[:MAX_EXAMPLE_VIOLATIONS]
            ),
        )
        for key, entry in a.types.items()
    }
    for key, entry in b.types.items():
        existing = types.get(key)
        if existing is None:
            types[key] = TypeComplianceEntry(
                protocol=entry.protocol,
                type_label=entry.type_label,
                total=entry.total,
                non_compliant=entry.non_compliant,
                example_violations=list(
                    entry.example_violations[:MAX_EXAMPLE_VIOLATIONS]
                ),
            )
        else:
            existing.total += entry.total
            existing.non_compliant += entry.non_compliant
            for example in entry.example_violations:
                if len(existing.example_violations) < MAX_EXAMPLE_VIOLATIONS:
                    existing.example_violations.append(example)
    return ComplianceSummary(
        app=a.app, volume=volume, volume_by_protocol=by_protocol, types=types
    )


@dataclass
class PipelineRun:
    """Every intermediate product of one (app, network, call) cell.

    ``run_experiment`` reduces this to counter-level aggregates; the
    conformance subsystem instead needs the raw messages and verdicts to
    record and replay golden corpora, so the full pipeline state is kept.
    """

    app: str
    network: NetworkCondition
    filter_result: FilterResult
    dpi: "DpiResult"
    verdicts: List["MessageVerdict"]
    stage_stats: Dict[str, StageStats] = field(default_factory=dict)
    #: The adaptive planner's decision for this cell (``plan="auto"``
    #: only); carries the chosen knobs, modeled costs, and rationale.
    plan: Optional["ExecutionPlan"] = None


def _cell_config(
    network: NetworkCondition, config: ExperimentConfig, call_index: int
) -> CallConfig:
    return CallConfig(
        network=network,
        seed=config.seed,
        call_index=call_index,
        call_duration=config.call_duration,
        media_scale=config.media_scale,
        include_background=config.include_background,
        impairment=config.impairment,
    )


def filter_cell(
    app: str,
    network: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    call_index: int = 0,
) -> FilterResult:
    """Simulate one cell and run only the two-stage filter over it."""
    simulator = get_simulator(app)
    call_config = _cell_config(network, config, call_index)
    window = call_config.window()
    return TwoStageFilter(window).apply(list(simulator.iter_records(call_config)))


def run_cell_pipeline(
    app: str,
    network: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    call_index: int = 0,
    engine: Optional[DpiEngine] = None,
    checker: Optional[ComplianceChecker] = None,
    shard_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> PipelineRun:
    """Simulate one cell and stream it through filter → DPI → checker.

    This is a thin batch adapter over the streaming pipeline core: records
    flow from ``AppSimulator.iter_records`` through :class:`FilterStage`,
    :class:`DpiStage` and :class:`CheckStage` in bounded chunks, and the
    collected outputs (filter accounting, ``DpiResult``, verdict order)
    are bit-identical to the historical batch calls by construction.

    ``engine``/``checker`` default to *fresh* instances so callers that
    need controlled engine configurations (the conformance differ) are not
    coupled to the process-wide cached engines ``run_experiment`` uses.

    ``shard_workers``/``chunk_size`` default to the config's values.  With
    ``shard_workers > 1`` the cell is flow-sharded across that many worker
    processes (:func:`repro.pipeline.run_cell_sharded`) — available only
    with the default (fresh) engine and checker, since a caller-supplied
    instance cannot be split across processes; passing one keeps the cell
    single-process.

    Under ``config.plan == "auto"`` (and default engine/checker), the
    adaptive planner overrides ``shard_workers``/``chunk_size`` and the
    DPI backend from measured signals; the decision record rides on the
    returned :attr:`PipelineRun.plan`.  A probed cell replays its full
    record list through fresh engine state, so output is bit-identical
    to an unprobed run of the same plan.
    """
    if shard_workers is None:
        shard_workers = config.shard_workers
    if chunk_size is None:
        chunk_size = config.chunk_size
    if shard_workers < 1:
        raise ValueError("shard_workers must be a positive integer")
    simulator = get_simulator(app)
    call_config = _cell_config(network, config, call_index)
    dpi_backend = config.dpi_backend
    records: Optional[List] = None
    plan: Optional["ExecutionPlan"] = None
    if config.plan == "auto" and engine is None and checker is None:
        from repro.experiments.scheduler import plan_cell_execution

        records = list(simulator.iter_records(call_config))
        plan = plan_cell_execution(records, call_config.window(), config)
        shard_workers = plan.shard_workers
        chunk_size = plan.chunk_size
        dpi_backend = plan.dpi_backend
    if shard_workers > 1 and engine is None and checker is None:
        if records is None:
            records = list(simulator.iter_records(call_config))
        sharded = run_cell_sharded(
            records,
            TwoStageFilter(call_config.window()),
            engine_factory=partial(
                DpiEngine,
                max_offset=config.max_offset,
                fastpath=config.fastpath,
                backend=dpi_backend,
            ),
            shards=shard_workers,
            chunk_size=chunk_size,
            workers=shard_workers,
        )
        return PipelineRun(
            app=app,
            network=network,
            filter_result=sharded.filter_result,
            dpi=sharded.dpi,
            verdicts=sharded.verdicts,
            stage_stats={stat.name: stat for stat in sharded.stage_stats},
            plan=plan,
        )
    if engine is None:
        if plan is not None:
            # A planned cell reuses the process-wide engine keyed by its
            # chosen backend — the same warm-cache semantics the fixed
            # path gets from ``run_experiment`` — so ``--plan auto`` pays
            # no per-cell engine construction the fixed path avoids.
            engine = default_engine(config.max_offset, config.fastpath, dpi_backend)
        else:
            engine = DpiEngine(
                max_offset=config.max_offset,
                fastpath=config.fastpath,
                backend=dpi_backend,
            )
    if checker is None:
        checker = default_checker() if plan is not None else ComplianceChecker()
    session = AnalysisSession(
        window=call_config.window(),
        engine=engine,
        checker=checker,
        chunk_size=chunk_size,
    )
    session.feed(
        records if records is not None else simulator.iter_records(call_config)
    )
    result = session.close()
    assert result.filter_result is not None
    return PipelineRun(
        app=app,
        network=network,
        filter_result=result.filter_result,
        dpi=result.dpi,
        verdicts=result.verdicts,
        stage_stats=result.stage_stats,
        plan=plan,
    )


def run_experiment(
    app: str,
    network: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    call_index: int = 0,
) -> ExperimentAggregate:
    """Run one (app, network, call) cell through the full pipeline.

    Besides the verdict-level aggregates, every run measures its own
    end-to-end wall seconds and feeds the per-stage rates plus the cell
    cost back into the calibration cache
    (:mod:`repro.experiments.costmodel`), so later runs — and the
    largest-cost-first scheduler — plan from measured history.
    """
    start = time.perf_counter()
    if config.shard_workers > 1 or config.plan == "auto":
        # Sharded and planner-driven cells resolve their own engines: the
        # backend is not known until the plan exists, and sharded cells
        # build one engine per worker process.  Planned in-process cells
        # still land on the process-wide cached engine for their backend.
        run = run_cell_pipeline(app, network, config, call_index)
    else:
        run = run_cell_pipeline(
            app,
            network,
            config,
            call_index,
            engine=default_engine(
                config.max_offset, config.fastpath, config.dpi_backend
            ),
            checker=default_checker(),
        )
    wall_seconds = time.perf_counter() - start
    filter_result = run.filter_result
    dpi = run.dpi
    _record_calibration(app, network, config, run, wall_seconds)

    aggregate = ExperimentAggregate(app=app)
    aggregate.wall_seconds = wall_seconds
    if run.plan is not None:
        aggregate.plans.append(run.plan.as_dict())
    aggregate.raw = filter_result.raw
    aggregate.stage1_removed = filter_result.stage1_removed
    aggregate.stage2_removed = filter_result.stage2_removed
    aggregate.kept = filter_result.kept
    aggregate.class_counts = dpi.by_class()
    aggregate.protocol_counts = dpi.protocol_counts()
    aggregate.summary = ComplianceSummary.from_verdicts(app, run.verdicts)
    aggregate.dpi_stats = dpi.stats.copy()
    aggregate.stage_stats = run.stage_stats
    if filter_result.evaluation is not None:
        aggregate.filter_precision = filter_result.evaluation.precision
        aggregate.filter_recall = filter_result.evaluation.recall
    return aggregate


def _record_calibration(
    app: str,
    network: NetworkCondition,
    config: ExperimentConfig,
    run: PipelineRun,
    wall_seconds: float,
) -> None:
    """Fold one cell's measurements into the calibration cache.

    Persistence is best-effort and atomic (see
    :func:`repro.experiments.costmodel.save_calibration`); a refusing
    filesystem degrades to in-memory history for this process only.
    """
    from repro.experiments import costmodel
    from repro.netem import get_profile

    backend = run.plan.dpi_backend if run.plan is not None else config.dpi_backend
    # Units scale by the impairment's expected volume factor, and impaired
    # cells key separately, so clean-cell history is never skewed by (and
    # never mis-prices) impaired workloads.
    units = (
        config.call_duration
        * config.media_scale
        * get_profile(config.impairment).volume_factor()
    )
    costmodel.get_store(config.calibration_file).update_from_run(
        run.stage_stats,
        backend,
        cell=costmodel.cell_key(app, network.value, config.impairment),
        wall_seconds=wall_seconds,
        units=units,
    )


@dataclass
class MatrixResult:
    """Aggregates for a full experiment matrix, keyed by app."""

    per_app: Dict[str, ExperimentAggregate]
    config: ExperimentConfig

    def apps(self) -> List[str]:
        return list(self.per_app)

    def summaries(self) -> List[ComplianceSummary]:
        return [agg.summary for agg in self.per_app.values() if agg.summary]


def run_matrix(
    apps: Sequence[str] = APP_NAMES,
    networks: Sequence[NetworkCondition] = tuple(NetworkCondition),
    config: ExperimentConfig = ExperimentConfig(),
    workers: Optional[int] = 1,
) -> MatrixResult:
    """Run the full experiment matrix and merge per-app aggregates.

    ``workers`` selects the executor: ``1`` (the default) runs every cell
    in-process, ``N > 1`` schedules cells onto a process pool of ``N``
    workers, and ``None`` auto-sizes the pool to ``os.cpu_count()``.  The
    result is bit-identical regardless of ``workers`` — cells are merged
    in their enumeration order, never in completion order.
    """
    from repro.experiments.parallel import run_matrix_parallel

    return run_matrix_parallel(apps, networks, config, workers=workers)
