"""Parallel experiment-matrix execution.

The matrix cells — every (app, network, repeat) triple — are independent:
each one simulates, filters, inspects and judges its own trace.  This
module schedules them onto a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges the per-cell :class:`ExperimentAggregate`s back into a
:class:`MatrixResult`.

Determinism contract: the merge happens in the *enumeration* order of
``matrix_cells`` (apps outer, networks middle, repeats inner) no matter
which worker finished first, so the result is bit-identical to the serial
path.  ``run_matrix(workers=...)`` in :mod:`repro.experiments.runner` is
the public entry point; it delegates here.

Scheduling: cells are submitted to the *shared* process pool (see
:mod:`repro.experiments.scheduler`) largest-expected-cost-first — cost
being the cell's call duration × media scale — so the most expensive
cells start earliest and the pool tail does not idle behind one straggler
submitted last.  The pool's initializer builds the process-wide default
engine and checker once per worker process, not once per cell.

Fallbacks: ``workers=1`` (or a single-cell matrix) never spawns processes,
and pool failures caused by the environment — unpicklable configs, a
broken/forbidden process pool — degrade to in-process execution instead of
failing the run.
"""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import APP_NAMES, NetworkCondition
from repro.experiments.runner import (
    ExperimentAggregate,
    ExperimentConfig,
    MatrixResult,
    run_experiment,
)
from repro.experiments.scheduler import (
    POOL_FALLBACK_ERRORS,
    shared_pool,
    shutdown_shared_pool,
    submission_order,
)

#: One experiment cell: (app, network, repeat index).
Cell = Tuple[str, NetworkCondition, int]


def matrix_cells(
    apps: Sequence[str],
    networks: Sequence[NetworkCondition],
    repeats: int,
) -> List[Cell]:
    """Enumerate the matrix cells in canonical (and merge) order."""
    return [
        (app, network, repeat)
        for app in apps
        for network in networks
        for repeat in range(repeats)
    ]


def run_cell(cell: Cell, config: ExperimentConfig) -> ExperimentAggregate:
    """Run one matrix cell; module-level so process pools can pickle it."""
    app, network, repeat = cell
    return run_experiment(app, network, config, call_index=repeat)


def expected_cell_cost(cell: Cell, config: ExperimentConfig) -> float:
    """Expected cost of one cell, for largest-cost-first submission.

    Prefers *measured* history: every completed :func:`run_experiment`
    records its cell's wall seconds into the calibration cache
    (:mod:`repro.experiments.costmodel`), keyed by ``(app, network)`` and
    normalized per unit of configured work, so apps that are genuinely
    heavier (more media streams, more background flows) rank above light
    ones instead of tying.  Without history the static fallback — call
    duration × media scale — preserves the old behavior: every cell of a
    homogeneous matrix ties and submission stays in enumeration order.
    Scheduling only needs a ranking; it never leaks into merge order.

    Impaired cells scale their configured units by the profile's expected
    volume factor (duplication and rebind-relearn churn inflate records,
    loss and UDP blackout deflate them) and read their own measured
    history key, so ``submission_order`` and ``--plan auto`` neither
    under- nor over-model an impaired matrix.
    """
    from repro.experiments import costmodel
    from repro.netem import get_profile

    app, network, _repeat = cell
    units = (
        config.call_duration
        * config.media_scale
        * get_profile(config.impairment).volume_factor()
    )
    measured = costmodel.get_store(config.calibration_file).calibration
    expected = measured.expected_cell_seconds(
        costmodel.cell_key(app, network.value, config.impairment), units
    )
    return expected if expected is not None else units


def run_matrix_parallel(
    apps: Sequence[str] = APP_NAMES,
    networks: Sequence[NetworkCondition] = tuple(NetworkCondition),
    config: ExperimentConfig = ExperimentConfig(),
    workers: Optional[int] = None,
) -> MatrixResult:
    """Run the matrix on up to ``workers`` processes (default: CPU count)."""
    cells = matrix_cells(apps, networks, config.repeats)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be a positive integer or None")
    workers = min(workers, len(cells)) if cells else 1

    results: Optional[List[ExperimentAggregate]] = None
    if workers > 1:
        results = _run_pool(cells, config, workers)
    if results is None:
        results = [run_cell(cell, config) for cell in cells]
    return _merge_in_order(cells, results, config)


def _run_pool(
    cells: Sequence[Cell], config: ExperimentConfig, workers: int
) -> Optional[List[ExperimentAggregate]]:
    """Execute cells on the shared pool; ``None`` means "fall back to serial".

    Cells are *submitted* largest-expected-cost-first but *gathered* in
    enumeration order, which is exactly the deterministic merge order —
    neither submission nor completion order ever leaks through.
    """
    try:
        import pickle

        # Pre-flight the payload: a config that cannot cross a process
        # boundary should degrade to serial, not poison the shared pool.
        pickle.dumps(config)
        pool = shared_pool(workers, config.max_offset, config.fastpath)
        futures = {
            index: pool.submit(run_cell, cells[index], config)
            for index in submission_order(
                cells, lambda cell: expected_cell_cost(cell, config)
            )
        }
        return [futures[index].result() for index in range(len(cells))]
    except BrokenProcessPool:
        # The pool itself died (or could not spawn workers at all):
        # discard it so the next caller gets a fresh one, run serially.
        shutdown_shared_pool()
        return None
    except POOL_FALLBACK_ERRORS:
        # Unpicklable cell/config payloads or an environment where worker
        # processes cannot be spawned: run in-process instead.
        return None


def _merge_in_order(
    cells: Sequence[Cell],
    results: Sequence[ExperimentAggregate],
    config: ExperimentConfig,
) -> MatrixResult:
    per_app: Dict[str, ExperimentAggregate] = {}
    for (app, _network, _repeat), aggregate in zip(cells, results):
        if app in per_app:
            per_app[app].merge(aggregate)
        else:
            per_app[app] = aggregate
    return MatrixResult(per_app=per_app, config=config)
