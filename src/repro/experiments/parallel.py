"""Parallel experiment-matrix execution.

The matrix cells — every (app, network, repeat) triple — are independent:
each one simulates, filters, inspects and judges its own trace.  This
module schedules them onto a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges the per-cell :class:`ExperimentAggregate`s back into a
:class:`MatrixResult`.

Determinism contract: the merge happens in the *enumeration* order of
``matrix_cells`` (apps outer, networks middle, repeats inner) no matter
which worker finished first, so the result is bit-identical to the serial
path.  ``run_matrix(workers=...)`` in :mod:`repro.experiments.runner` is
the public entry point; it delegates here.

Fallbacks: ``workers=1`` (or a single-cell matrix) never spawns processes,
and pool failures caused by the environment — unpicklable configs, a
broken/forbidden process pool — degrade to in-process execution instead of
failing the run.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import APP_NAMES, NetworkCondition
from repro.experiments.runner import (
    ExperimentAggregate,
    ExperimentConfig,
    MatrixResult,
    run_experiment,
)

#: One experiment cell: (app, network, repeat index).
Cell = Tuple[str, NetworkCondition, int]


def matrix_cells(
    apps: Sequence[str],
    networks: Sequence[NetworkCondition],
    repeats: int,
) -> List[Cell]:
    """Enumerate the matrix cells in canonical (and merge) order."""
    return [
        (app, network, repeat)
        for app in apps
        for network in networks
        for repeat in range(repeats)
    ]


def run_cell(cell: Cell, config: ExperimentConfig) -> ExperimentAggregate:
    """Run one matrix cell; module-level so process pools can pickle it."""
    app, network, repeat = cell
    return run_experiment(app, network, config, call_index=repeat)


def run_matrix_parallel(
    apps: Sequence[str] = APP_NAMES,
    networks: Sequence[NetworkCondition] = tuple(NetworkCondition),
    config: ExperimentConfig = ExperimentConfig(),
    workers: Optional[int] = None,
) -> MatrixResult:
    """Run the matrix on up to ``workers`` processes (default: CPU count)."""
    cells = matrix_cells(apps, networks, config.repeats)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be a positive integer or None")
    workers = min(workers, len(cells)) if cells else 1

    results: Optional[List[ExperimentAggregate]] = None
    if workers > 1:
        results = _run_pool(cells, config, workers)
    if results is None:
        results = [run_cell(cell, config) for cell in cells]
    return _merge_in_order(cells, results, config)


def _run_pool(
    cells: Sequence[Cell], config: ExperimentConfig, workers: int
) -> Optional[List[ExperimentAggregate]]:
    """Execute cells on a process pool; ``None`` means "fall back to serial".

    ``Executor.map`` yields results in submission order, which is exactly
    the deterministic merge order — completion order never leaks through.
    """
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_cell, cells, [config] * len(cells)))
    except (pickle.PicklingError, TypeError, AttributeError,
            BrokenProcessPool, OSError, PermissionError):
        # Unpicklable cell/config payloads or an environment where worker
        # processes cannot be spawned: run in-process instead.
        return None


def _merge_in_order(
    cells: Sequence[Cell],
    results: Sequence[ExperimentAggregate],
    config: ExperimentConfig,
) -> MatrixResult:
    per_app: Dict[str, ExperimentAggregate] = {}
    for (app, _network, _repeat), aggregate in zip(cells, results):
        if app in per_app:
            per_app[app].merge(aggregate)
        else:
            per_app[app] = aggregate
    return MatrixResult(per_app=per_app, config=config)
