"""Generators for the paper's figures (3-5) as data series.

The benchmark harness prints the series; anything downstream (matplotlib,
gnuplot) can consume the returned dictionaries directly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.metrics import merge_type_entries
from repro.dpi.messages import DatagramClass, Protocol
from repro.experiments.runner import MatrixResult

_PROTOCOL_ORDER = ("stun_turn", "rtp", "rtcp", "quic")


def figure3(matrix: MatrixResult) -> Dict[str, Dict[str, float]]:
    """Datagram breakdown: standard / proprietary header / fully proprietary."""
    result: Dict[str, Dict[str, float]] = {}
    for app, agg in matrix.per_app.items():
        total = sum(agg.class_counts.values())
        if not total:
            continue
        result[app] = {
            cls.value: agg.class_counts.get(cls, 0) / total for cls in DatagramClass
        }
    return result


def figure4(matrix: MatrixResult) -> Dict[str, Dict[str, float]]:
    """Compliance ratio by traffic volume.

    Returns ``{"by_app": {app: ratio}, "by_protocol": {protocol: ratio}}``;
    the protocol view aggregates messages across all applications.
    """
    by_app = {
        app: agg.summary.volume.ratio
        for app, agg in matrix.per_app.items()
        if agg.summary is not None
    }
    protocol_totals: Dict[str, Tuple[int, int]] = {}
    for agg in matrix.per_app.values():
        if agg.summary is None:
            continue
        for protocol, volume in agg.summary.volume_by_protocol.items():
            compliant, total = protocol_totals.get(protocol, (0, 0))
            protocol_totals[protocol] = (
                compliant + volume.compliant,
                total + volume.total,
            )
    by_protocol = {
        protocol: compliant / total
        for protocol, (compliant, total) in protocol_totals.items()
        if total
    }
    return {"by_app": by_app, "by_protocol": by_protocol}


def figure5(matrix: MatrixResult) -> Dict[str, Dict[str, float]]:
    """Compliance ratio by message type (app-centric and protocol-centric)."""
    by_app = {}
    for app, agg in matrix.per_app.items():
        compliant, total = agg.summary.type_ratio()
        if total:
            by_app[app] = compliant / total
    by_protocol = {}
    summaries = matrix.summaries()
    for protocol in _PROTOCOL_ORDER:
        compliant, total = merge_type_entries(summaries, protocol)
        if total:
            by_protocol[protocol] = compliant / total
    return {"by_app": by_app, "by_protocol": by_protocol}


def render_ratio_series(series: Dict[str, float], title: str) -> str:
    lines = [title]
    for key, ratio in series.items():
        bar = "#" * int(round(ratio * 40))
        lines.append(f"  {key:<12} {ratio * 100:6.2f}% {bar}")
    return "\n".join(lines)
