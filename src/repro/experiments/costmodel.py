"""Measured-cost model for the adaptive execution planner.

The planner (:func:`repro.experiments.scheduler.plan_execution`) needs
per-stage throughput constants — records/second for the filter, the
scalar and columnar DPI sweeps, and the checker — to turn observable
workload signals into modeled wall-clock.  This module owns where those
constants come from:

1. **Calibration cache.**  Every completed run reports its per-stage
   :class:`~repro.pipeline.stage.StageStats` (and its cell wall seconds)
   back here; the rates are folded into an exponential moving average and
   persisted as versioned JSON, so the second run of a matrix plans from
   *this machine's* measured throughput, not from shipped constants.
   The cache also keeps per-``(app, network)`` measured cell costs, which
   :func:`repro.experiments.parallel.expected_cell_cost` uses to submit
   largest-measured-cost-first instead of guessing from the config.

2. **Micro-probe.**  When no calibration exists yet (fresh machine,
   fresh cache file), :func:`probe_records` streams the first N records
   of the cell through a fully instrumented in-process pipeline and
   derives the rates from its ``StageStats``.  The probe runs on
   throwaway engine/checker/filter instances and never mutates shared
   state, so replaying the *same* records through whatever plan gets
   chosen produces output bit-identical to an unprobed run.

3. **Shipped defaults.**  Before any measurement, :data:`DEFAULT_RATES`
   (derived from the repo's own ``BENCH_pipeline.json`` trajectory)
   keeps the model sane; they only matter until the first probe.

Persistence is atomic (write-temp-then-replace), so concurrent pool
workers updating the same cache file cannot corrupt it — the last
writer wins, which is fine for a moving average.  A file written by a
different :data:`CALIBRATION_VERSION` is discarded and rebuilt rather
than misread.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

from repro.packets.packet import PacketRecord
from repro.pipeline.stage import StageStats

#: Bump when the calibration-file layout changes; other versions are
#: discarded on load (a stale cache must never steer the planner).
CALIBRATION_VERSION = 1

#: Weight of the newest observation in the exponential moving average.
EMA_ALPHA = 0.3

#: Records the micro-probe streams through the instrumented pipeline.
PROBE_RECORDS = 512

#: Rate keys the cost model understands (records/second each).
RATE_KEYS = ("filter", "dpi_scalar", "dpi_columnar", "check", "decode")

#: Shipped fallback rates (records/second) used before any calibration
#: or probe exists, taken from the BENCH_pipeline.json trajectory on the
#: reference dev box.  Only the *ratios* matter for plan selection, and
#: only until the first probe replaces them with local measurements.
#: ``decode`` is the batch capture decoder (frames/second through
#: :class:`repro.packets.batch.BatchPcapReader`); it applies only to
#: pcap-sourced sessions and is charged serially ahead of every plan.
DEFAULT_RATES: Dict[str, float] = {
    "filter": 80000.0,
    "dpi_scalar": 13000.0,
    "dpi_columnar": 42000.0,
    "check": 30000.0,
    "decode": 200000.0,
}

#: Stage wall times below this are timer noise, not throughput signal.
_MIN_WALL_SECONDS = 1e-5


def default_calibration_path() -> Path:
    """Where the calibration cache lives unless a caller overrides it.

    ``RTC_COMPLIANCE_CALIBRATION`` wins when set (CI points it at the
    workspace so the file can be archived as an artifact); otherwise the
    conventional per-user cache directory.
    """
    env = os.environ.get("RTC_COMPLIANCE_CALIBRATION")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "rtc-compliance" / "calibration.json"


def cell_key(app: str, network_value: str, impairment: str = "none") -> str:
    """Calibration-cache key for one (app, network[, impairment]) family.

    Clean cells keep the historical two-part key, so existing caches
    stay valid; impaired cells get their own history because their
    per-unit cost profile (relearn churn, TCP fallback) differs.
    """
    if impairment == "none":
        return f"{app}|{network_value}"
    return f"{app}|{network_value}|{impairment}"


@dataclass
class Calibration:
    """Everything the planner has learned about this machine so far.

    ``rates`` maps :data:`RATE_KEYS` to records/second; ``cell_unit_seconds``
    maps :func:`cell_key` to measured wall seconds per unit of configured
    work (``call_duration × media_scale``), so a cost estimate scales to
    configs the cache has never seen.
    """

    rates: Dict[str, float] = field(default_factory=dict)
    cell_unit_seconds: Dict[str, float] = field(default_factory=dict)
    runs: int = 0

    @property
    def calibrated(self) -> bool:
        """True once at least one DPI rate is a measurement, not a default."""
        return "dpi_scalar" in self.rates or "dpi_columnar" in self.rates

    def rate(self, key: str) -> float:
        """The calibrated rate for *key*, or the shipped default."""
        return self.rates.get(key, DEFAULT_RATES[key])

    def effective_rates(self) -> Dict[str, float]:
        """Defaults overlaid with every calibrated rate."""
        merged = dict(DEFAULT_RATES)
        merged.update(self.rates)
        return merged

    def observe_rate(self, key: str, rate: float) -> None:
        """Fold one measured rate into the moving average for *key*."""
        if key not in DEFAULT_RATES:
            raise KeyError(f"unknown rate key: {key!r}")
        if rate <= 0:
            return
        previous = self.rates.get(key)
        if previous is None:
            self.rates[key] = rate
        else:
            self.rates[key] = previous + EMA_ALPHA * (rate - previous)

    def observe_cell(self, key: str, seconds: float, units: float) -> None:
        """Fold one measured cell wall-clock into the per-cell history."""
        if seconds <= 0 or units <= 0:
            return
        per_unit = seconds / units
        previous = self.cell_unit_seconds.get(key)
        if previous is None:
            self.cell_unit_seconds[key] = per_unit
        else:
            self.cell_unit_seconds[key] = previous + EMA_ALPHA * (
                per_unit - previous
            )

    def expected_cell_seconds(self, key: str, units: float) -> Optional[float]:
        """Measured cost estimate for a cell, or ``None`` without history."""
        per_unit = self.cell_unit_seconds.get(key)
        if per_unit is None:
            return None
        return per_unit * units

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": CALIBRATION_VERSION,
            "rates": dict(self.rates),
            "cell_unit_seconds": dict(self.cell_unit_seconds),
            "runs": self.runs,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Calibration":
        """Parse a cache file; anything unusable yields a fresh calibration.

        Version drift, missing keys, or non-numeric values all reset to
        empty rather than raising — a corrupt cache must degrade to the
        uncalibrated path, never break a run.
        """
        if not isinstance(payload, Mapping):
            return cls()
        if payload.get("version") != CALIBRATION_VERSION:
            return cls()
        rates = payload.get("rates")
        cells = payload.get("cell_unit_seconds")
        runs = payload.get("runs")
        calibration = cls()
        if isinstance(rates, Mapping):
            calibration.rates = {
                key: float(value)
                for key, value in rates.items()
                if key in DEFAULT_RATES
                and isinstance(value, (int, float)) and value > 0
            }
        if isinstance(cells, Mapping):
            calibration.cell_unit_seconds = {
                str(key): float(value)
                for key, value in cells.items()
                if isinstance(value, (int, float)) and value > 0
            }
        calibration.runs = runs if isinstance(runs, int) and runs >= 0 else 0
        return calibration


def load_calibration(path: Path) -> Calibration:
    """Load the cache at *path*; missing or unreadable files come up empty."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return Calibration()
    return Calibration.from_dict(payload)


def save_calibration(calibration: Calibration, path: Path) -> None:
    """Atomically persist *calibration* (concurrent writers last-win).

    A filesystem that refuses the write (read-only checkout, missing
    home) silently skips persistence: calibration is an optimization,
    never a correctness dependency.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name, suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w") as fileobj:
                json.dump(calibration.as_dict(), fileobj, indent=2, sort_keys=True)
                fileobj.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        pass


class CalibrationStore:
    """One calibration cache file plus its in-process working copy.

    ``update_from_run`` folds a completed run's measurements into the
    moving averages and persists immediately, so even a single CLI
    invocation leaves the next one calibrated.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._calibration: Optional[Calibration] = None

    @property
    def calibration(self) -> Calibration:
        if self._calibration is None:
            self._calibration = load_calibration(self.path)
        return self._calibration

    def reload(self) -> Calibration:
        self._calibration = load_calibration(self.path)
        return self._calibration

    def update_from_run(
        self,
        stage_stats: Mapping[str, StageStats],
        dpi_backend: str,
        cell: Optional[str] = None,
        wall_seconds: float = 0.0,
        units: float = 0.0,
    ) -> None:
        """Fold one run's per-stage rates and cell cost in, then persist."""
        calibration = self.calibration
        for key, rate in rates_from_stage_stats(stage_stats, dpi_backend).items():
            calibration.observe_rate(key, rate)
        if cell is not None:
            calibration.observe_cell(cell, wall_seconds, units)
        calibration.runs += 1
        save_calibration(calibration, self.path)


_stores: Dict[Path, CalibrationStore] = {}


def get_store(path: Optional[os.PathLike] = None) -> CalibrationStore:
    """Process-wide store per cache path (default: the machine cache)."""
    resolved = Path(path) if path is not None else default_calibration_path()
    store = _stores.get(resolved)
    if store is None:
        store = CalibrationStore(resolved)
        _stores[resolved] = store
    return store


def reset_stores() -> None:
    """Drop every cached store (test isolation)."""
    _stores.clear()


def rates_from_stage_stats(
    stage_stats: Mapping[str, StageStats], dpi_backend: str
) -> Dict[str, float]:
    """Per-stage records/second from one run's instrumentation.

    The DPI stage's rate lands under ``dpi_scalar`` or ``dpi_columnar``
    according to which backend produced it.  Stages with negligible wall
    time (timer noise) or no input contribute nothing.
    """
    rates: Dict[str, float] = {}
    for name, stat in stage_stats.items():
        if stat.wall_seconds < _MIN_WALL_SECONDS or stat.records_in <= 0:
            continue
        if name == "filter":
            key = "filter"
        elif name == "dpi":
            key = "dpi_columnar" if dpi_backend == "columnar" else "dpi_scalar"
        elif name == "check":
            key = "check"
        elif name == "decode":
            key = "decode"
        else:
            continue
        rates[key] = stat.records_in / stat.wall_seconds
    return rates


@dataclass(frozen=True)
class WorkloadSignals:
    """Cheap observable facts about one cell's records.

    Everything here is derivable from a single O(n) pass — no DPI, no
    checking — which is exactly the point: the right knob settings are
    predictable from flow structure and volume alone.
    """

    records: int
    flows: int
    max_flow_records: int
    mean_payload_bytes: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "records": self.records,
            "flows": self.flows,
            "max_flow_records": self.max_flow_records,
            "mean_payload_bytes": round(self.mean_payload_bytes, 1),
        }


def workload_signals(records: Sequence[PacketRecord]) -> WorkloadSignals:
    """One pass over *records*: flow histogram and payload-size signal."""
    per_flow: Dict[object, int] = {}
    payload_bytes = 0
    for record in records:
        key = record.flow_key
        per_flow[key] = per_flow.get(key, 0) + 1
        payload_bytes += len(record.payload)
    count = len(records)
    return WorkloadSignals(
        records=count,
        flows=len(per_flow),
        max_flow_records=max(per_flow.values(), default=0),
        mean_payload_bytes=(payload_bytes / count) if count else 0.0,
    )


@dataclass(frozen=True)
class ProbeReport:
    """What the micro-probe measured on the first N records of a cell."""

    probed_records: int
    kept_records: int
    rates: Dict[str, float]
    probe_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "probed_records": self.probed_records,
            "kept_records": self.kept_records,
            "rates": {key: round(rate, 1) for key, rate in self.rates.items()},
            "probe_seconds": round(self.probe_seconds, 6),
        }


def probe_records(
    records: Sequence[PacketRecord],
    window,
    max_offset: int = 200,
    fastpath: bool = True,
    probe_limit: int = PROBE_RECORDS,
) -> ProbeReport:
    """Run the first ``probe_limit`` records through an instrumented pipeline.

    Builds throwaway filter/engine/checker instances (scalar backend —
    the reference the columnar ratio is applied to), streams the slice
    through the real :class:`~repro.pipeline.stage.Pipeline`, and derives
    per-stage rates from its ``StageStats``.  Nothing the probe touches
    is shared with the subsequent real run, so a probed cell's output is
    bit-identical to an unprobed one by construction.
    """
    from repro.core.checker import ComplianceChecker
    from repro.dpi.engine import DpiEngine
    from repro.filtering.pipeline import TwoStageFilter
    from repro.pipeline.stage import Pipeline
    from repro.pipeline.stages import CheckStage, DpiStage, FilterStage

    sample = list(records[:probe_limit])
    filter_stage = FilterStage(TwoStageFilter(window))
    dpi_stage = DpiStage(
        DpiEngine(max_offset=max_offset, fastpath=fastpath, backend="scalar")
    )
    pipeline = Pipeline([filter_stage, dpi_stage, CheckStage(ComplianceChecker())])
    start = time.perf_counter()
    pipeline.run(sample)
    probe_seconds = time.perf_counter() - start
    stage_stats = {stat.name: stat for stat in pipeline.stats()}
    rates = rates_from_stage_stats(stage_stats, "scalar")
    # The probe never runs the columnar scanner; scale the measured scalar
    # rate by the shipped columnar ratio so backend choice reflects this
    # machine's baseline until a real columnar run calibrates it.
    if "dpi_scalar" in rates and "dpi_columnar" not in rates:
        ratio = DEFAULT_RATES["dpi_columnar"] / DEFAULT_RATES["dpi_scalar"]
        rates["dpi_columnar"] = rates["dpi_scalar"] * ratio
    kept = stage_stats["filter"].records_out if "filter" in stage_stats else 0
    return ProbeReport(
        probed_records=len(sample),
        kept_records=kept,
        rates=rates,
        probe_seconds=probe_seconds,
    )
