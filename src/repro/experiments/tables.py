"""Generators for the paper's tables (1-6).

Each ``tableN`` function consumes a :class:`MatrixResult` and returns a
structured representation; ``render_*`` turns it into the aligned text the
benchmark harness prints, mirroring the paper's rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.metrics import merge_type_entries
from repro.dpi.messages import Protocol
from repro.experiments.runner import MatrixResult

_PROTOCOL_ORDER = ("stun_turn", "rtp", "rtcp", "quic")
_PROTOCOL_LABELS = {
    "stun_turn": "STUN/TURN",
    "rtp": "RTP",
    "rtcp": "RTCP",
    "quic": "QUIC",
    "fully_proprietary": "Fully Proprietary",
}


# --- Table 1: traffic traces and filtering progress ---------------------------

@dataclass
class Table1Row:
    app: str
    raw_udp: Tuple[int, int]       # (streams, datagrams)
    raw_tcp: Tuple[int, int]
    stage1_udp: Tuple[int, int]
    stage2_udp: Tuple[int, int]
    stage1_tcp: Tuple[int, int]
    stage2_tcp: Tuple[int, int]
    rtc_udp: Tuple[int, int]
    rtc_tcp: Tuple[int, int]


def table1(matrix: MatrixResult) -> List[Table1Row]:
    rows = []
    for app, agg in matrix.per_app.items():
        rows.append(
            Table1Row(
                app=app,
                raw_udp=(agg.raw.udp_streams, agg.raw.udp_packets),
                raw_tcp=(agg.raw.tcp_streams, agg.raw.tcp_packets),
                stage1_udp=(agg.stage1_removed.udp_streams, agg.stage1_removed.udp_packets),
                stage2_udp=(agg.stage2_removed.udp_streams, agg.stage2_removed.udp_packets),
                stage1_tcp=(agg.stage1_removed.tcp_streams, agg.stage1_removed.tcp_packets),
                stage2_tcp=(agg.stage2_removed.tcp_streams, agg.stage2_removed.tcp_packets),
                rtc_udp=(agg.kept.udp_streams, agg.kept.udp_packets),
                rtc_tcp=(agg.kept.tcp_streams, agg.kept.tcp_packets),
            )
        )
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    header = (
        f"{'App':<10} | {'Raw UDP':>14} | {'Raw TCP':>12} | "
        f"{'S1 UDP':>12} | {'S2 UDP':>12} | {'S1 TCP':>12} | {'S2 TCP':>12} | "
        f"{'RTC UDP':>14} | {'RTC TCP':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        def fmt(pair):
            return f"{pair[0]} | {pair[1]}"
        lines.append(
            f"{row.app:<10} | {fmt(row.raw_udp):>14} | {fmt(row.raw_tcp):>12} | "
            f"{fmt(row.stage1_udp):>12} | {fmt(row.stage2_udp):>12} | "
            f"{fmt(row.stage1_tcp):>12} | {fmt(row.stage2_tcp):>12} | "
            f"{fmt(row.rtc_udp):>14} | {fmt(row.rtc_tcp):>12}"
        )
    return "\n".join(lines)


# --- Table 2: message distribution by protocol --------------------------------

def table2(matrix: MatrixResult) -> Dict[str, Dict[str, float]]:
    """app -> {protocol: share} including the fully-proprietary column."""
    return {app: agg.message_distribution() for app, agg in matrix.per_app.items()}


def render_table2(distribution: Dict[str, Dict[str, float]]) -> str:
    columns = list(_PROTOCOL_ORDER) + ["fully_proprietary"]
    header = f"{'App':<10} | " + " | ".join(
        f"{_PROTOCOL_LABELS[c]:>18}" for c in columns
    )
    lines = [header, "-" * len(header)]
    for app, shares in distribution.items():
        cells = []
        for column in columns:
            share = shares.get(column)
            cells.append(f"{share * 100:>17.1f}%" if share is not None else f"{'N/A':>18}")
        lines.append(f"{app:<10} | " + " | ".join(cells))
    return "\n".join(lines)


# --- Table 3: compliance ratio by message type ---------------------------------

def table3(matrix: MatrixResult) -> Dict[str, Dict[str, Tuple[int, int]]]:
    """app -> protocol -> (compliant types, total types); plus an 'All Apps' row."""
    result: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for app, agg in matrix.per_app.items():
        row: Dict[str, Tuple[int, int]] = {}
        for protocol in _PROTOCOL_ORDER:
            ratio = agg.summary.type_ratio(protocol)
            if ratio[1]:
                row[protocol] = ratio
        row["all"] = agg.summary.type_ratio()
        result[app] = row
    bottom: Dict[str, Tuple[int, int]] = {}
    summaries = matrix.summaries()
    for protocol in _PROTOCOL_ORDER:
        merged = merge_type_entries(summaries, protocol)
        if merged[1]:
            bottom[protocol] = merged
    result["All Apps"] = bottom
    return result


def render_table3(table: Dict[str, Dict[str, Tuple[int, int]]]) -> str:
    columns = list(_PROTOCOL_ORDER) + ["all"]
    header = f"{'App':<10} | " + " | ".join(
        f"{_PROTOCOL_LABELS.get(c, 'All'):>10}" for c in columns
    )
    lines = [header, "-" * len(header)]
    for app, row in table.items():
        cells = []
        for column in columns:
            ratio = row.get(column)
            cells.append(f"{ratio[0]}/{ratio[1]:<4}".rjust(10) if ratio else f"{'N/A':>10}")
        lines.append(f"{app:<10} | " + " | ".join(cells))
    return "\n".join(lines)


# --- Tables 4-6: observed types per protocol ------------------------------------

def observed_types(
    matrix: MatrixResult, protocol: str
) -> Dict[str, Dict[str, List[str]]]:
    """app -> {"compliant": [types], "non_compliant": [types]} for *protocol*."""
    result: Dict[str, Dict[str, List[str]]] = {}
    for app, agg in matrix.per_app.items():
        entries = agg.summary.observed_types(protocol)
        if not entries:
            continue
        compliant = sorted(
            (label for label, e in entries.items() if e.compliant), key=_type_sort_key
        )
        bad = sorted(
            (label for label, e in entries.items() if not e.compliant),
            key=_type_sort_key,
        )
        result[app] = {"compliant": compliant, "non_compliant": bad}
    return result


def _type_sort_key(label: str):
    try:
        return (0, int(label, 0))
    except ValueError:
        return (1, label)


def table4(matrix: MatrixResult) -> Dict[str, Dict[str, List[str]]]:
    """Observed STUN/TURN message types (paper Table 4)."""
    return observed_types(matrix, "stun_turn")


def table5(matrix: MatrixResult) -> Dict[str, Dict[str, List[str]]]:
    """Observed RTP payload types (paper Table 5)."""
    return observed_types(matrix, "rtp")


def table6(matrix: MatrixResult) -> Dict[str, Dict[str, List[str]]]:
    """Observed RTCP packet types (paper Table 6)."""
    return observed_types(matrix, "rtcp")


def render_observed_types(table: Dict[str, Dict[str, List[str]]], title: str) -> str:
    lines = [title, "=" * len(title)]
    for app, groups in table.items():
        lines.append(f"{app}:")
        lines.append(
            "  compliant:     " + (", ".join(groups["compliant"]) or "-")
        )
        lines.append(
            "  non-compliant: " + (", ".join(groups["non_compliant"]) or "-")
        )
    return "\n".join(lines)
