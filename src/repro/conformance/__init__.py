"""Conformance corpus, differential engine checker, and mutation fuzzer.

Three pillars guard the five-criterion checker and the DPI engine against
silent behavior drift:

- :mod:`repro.conformance.golden` records every (app × network) cell's
  verdicts, datagram classes, and metrics as versioned golden JSON;
- :mod:`repro.conformance.differ` replays the corpus through sweep,
  fast-path, and cached engine configurations and demands bit-identical
  output, reporting the first divergent message otherwise;
- :mod:`repro.conformance.fuzzer` mutates well-formed messages one
  violation at a time and asserts the checker attributes each mutation
  to exactly the violated criterion.
"""

from repro.conformance.differ import (
    ENGINE_SPECS,
    Drift,
    DriftReport,
    EngineSpec,
    check_corpus,
    check_impaired_corpora,
)
from repro.conformance.fuzzer import (
    MUTATORS,
    SEED_KINDS,
    FuzzFailure,
    FuzzReport,
    Mutated,
    Mutator,
    Seed,
    builtin_seeds,
    fuzz,
    harvest_seeds,
    minimize_wire,
    rewrap,
    run_oracle,
)
from repro.conformance.golden import (
    IMPAIRED_CORPORA,
    RERECORD_HINT,
    SCHEMA_VERSION,
    CorpusConfig,
    GoldenMismatchError,
    build_facts,
    cell_name,
    default_corpus_dir,
    facts_digest,
    impaired_corpus_dir,
    load_cell,
    load_manifest,
    record_cell,
    record_corpus,
    record_impaired_corpora,
)

__all__ = [
    "ENGINE_SPECS",
    "IMPAIRED_CORPORA",
    "MUTATORS",
    "RERECORD_HINT",
    "SCHEMA_VERSION",
    "SEED_KINDS",
    "CorpusConfig",
    "Drift",
    "DriftReport",
    "EngineSpec",
    "FuzzFailure",
    "FuzzReport",
    "GoldenMismatchError",
    "Mutated",
    "Mutator",
    "Seed",
    "build_facts",
    "builtin_seeds",
    "cell_name",
    "check_corpus",
    "check_impaired_corpora",
    "default_corpus_dir",
    "facts_digest",
    "fuzz",
    "harvest_seeds",
    "impaired_corpus_dir",
    "load_cell",
    "load_manifest",
    "minimize_wire",
    "record_cell",
    "record_corpus",
    "record_impaired_corpora",
    "rewrap",
    "run_oracle",
]
