"""Golden conformance corpus: record and load per-cell expected outputs.

A *golden cell* captures everything the pipeline concludes about one
(app, network) emulator cell under the **reference engine** — a plain
0..k sweep with no dedup cache and no flow-sticky fast path:

- the datagram class of every analyzed datagram, in timestamp order;
- every extracted message (timestamp, protocol, byte offset, length,
  trailer) and its per-message verdict as ``(criterion, code)`` pairs;
- both compliance metrics (volume and message-type, §5.1);
- the reference engine's :class:`~repro.dpi.engine.DpiStats` counters.

Cells are serialized as compact versioned JSON under
``tests/golden/conformance/`` together with a manifest of content
digests, so any optimization that silently changes a verdict is caught
by :mod:`repro.conformance.differ` with a pointer at the first divergent
message rather than a bare assertion failure.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps import APP_NAMES, NetworkCondition
from repro.core import ComplianceChecker
from repro.core.metrics import ComplianceSummary
from repro.core.verdict import MessageVerdict
from repro.dpi import DatagramClass, DpiEngine
from repro.dpi.engine import DpiResult
from repro.packets.packet import PacketRecord

#: Bump when the golden-file layout changes; loaders refuse other versions.
SCHEMA_VERSION = 1

#: Actionable hint embedded in every mismatch error and drift report.
RERECORD_HINT = "re-record with `rtc-compliance conformance record`"

_CLASS_CHARS = {
    DatagramClass.STANDARD: "S",
    DatagramClass.PROPRIETARY_HEADER: "P",
    DatagramClass.FULLY_PROPRIETARY: "F",
}


class GoldenMismatchError(Exception):
    """A golden file is missing, stale, or from another schema version."""

    def __init__(self, message: str):
        super().__init__(f"{message} — {RERECORD_HINT}")


@dataclass(frozen=True)
class CorpusConfig:
    """Simulation parameters baked into a recorded corpus.

    Short calls at reduced media scale keep the corpus compact (a few
    hundred KB across all 18 cells) while still exercising every
    protocol, datagram class, and violation family the full matrix does.
    """

    call_duration: float = 8.0
    media_scale: float = 0.3
    seed: int = 1
    max_offset: int = 200
    include_background: bool = True
    impairment: str = "none"

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CorpusConfig":
        # Manifests recorded before the impairment axis simply lack the
        # key and load as clean-path corpora.
        return cls(**data)


#: The impaired golden corpora: profile -> the single network condition
#: each one is recorded under.  ``lossy`` (random loss + reorder + dup)
#: rides the TURN relay path; ``rebind`` (mid-call NAT port rotation)
#: rides the P2P path where flow-sticky fast-path locks are longest-lived.
IMPAIRED_CORPORA: Dict[str, NetworkCondition] = {
    "lossy": NetworkCondition.WIFI_RELAY,
    "rebind": NetworkCondition.WIFI_P2P,
}


def default_corpus_dir() -> Path:
    """``tests/golden/conformance`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "conformance"


def impaired_corpus_dir(profile: str, base: Optional[Path] = None) -> Path:
    """``<base>/impaired-<profile>`` — a sibling corpus per impairment."""
    root = Path(base) if base is not None else default_corpus_dir()
    return root / f"impaired-{profile}"


def cell_name(app: str, network: NetworkCondition) -> str:
    return f"{app}__{network.value}"


def reference_engine(config: CorpusConfig) -> DpiEngine:
    """The engine whose output defines ground truth: sweep-only, uncached."""
    return DpiEngine(max_offset=config.max_offset, cache_size=0, fastpath=False)


def experiment_config(config: CorpusConfig) -> "ExperimentConfig":
    """The runner-layer equivalent of a corpus config.

    Conformance tooling drives the same ``filter_cell``/
    ``run_cell_pipeline`` entry points the experiments use, so there is
    exactly one place that wires simulation → filtering → DPI.
    """
    from repro.experiments.runner import ExperimentConfig

    return ExperimentConfig(
        call_duration=config.call_duration,
        media_scale=config.media_scale,
        seed=config.seed,
        max_offset=config.max_offset,
        include_background=config.include_background,
        impairment=config.impairment,
    )


def cell_records(
    app: str, network: NetworkCondition, config: CorpusConfig
) -> List[PacketRecord]:
    """Simulate one cell and return its filtered records (engine-agnostic).

    The differ calls this once per cell and feeds the same records to
    every engine configuration, so engines — not simulations — are the
    only variable under test.
    """
    from repro.experiments.runner import filter_cell

    return filter_cell(app, network, experiment_config(config)).kept_records


def build_facts(
    app: str,
    network: NetworkCondition,
    dpi: DpiResult,
    verdicts: Sequence[MessageVerdict],
) -> Dict[str, object]:
    """Reduce one cell's pipeline output to its JSON-serializable facts.

    Violations are stored as ``(criterion, code)`` pairs — not their
    human-readable details — so rewording a message never invalidates a
    corpus (see :meth:`repro.core.verdict.Violation.key`).
    """
    classes = "".join(_CLASS_CHARS[a.classification] for a in dpi.analyses)
    messages = [
        [
            verdict.message.timestamp,
            verdict.message.protocol.value,
            verdict.message.offset,
            verdict.message.length,
            verdict.message.trailer.hex(),
            verdict.message.type_key()[1],
            [list(key) for key in verdict.violation_keys()],
        ]
        for verdict in verdicts
    ]
    summary = ComplianceSummary.from_verdicts(app, verdicts)
    return {
        "app": app,
        "network": network.value,
        "classes": classes,
        "class_counts": {
            cls.value: count for cls, count in sorted(
                dpi.by_class().items(), key=lambda kv: kv[0].value
            )
        },
        "messages": messages,
        "volume": [summary.volume.compliant, summary.volume.total],
        "volume_by_protocol": {
            protocol: [volume.compliant, volume.total]
            for protocol, volume in sorted(summary.volume_by_protocol.items())
        },
        "types": {
            f"{key[0]}|{key[1]}": [entry.total, entry.non_compliant]
            for key, entry in sorted(summary.types.items())
        },
        "dpi_stats": dpi.stats.as_dict(),
    }


def facts_digest(facts: Dict[str, object]) -> str:
    """Content digest over the canonical JSON encoding of a cell's facts."""
    canonical = json.dumps(facts, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def record_cell(
    app: str, network: NetworkCondition, config: CorpusConfig
) -> Dict[str, object]:
    """Run one cell under the reference engine and return its facts."""
    from repro.experiments.runner import run_cell_pipeline

    run = run_cell_pipeline(
        app,
        network,
        experiment_config(config),
        engine=reference_engine(config),
        checker=ComplianceChecker(),
    )
    return build_facts(app, network, run.dpi, run.verdicts)


def record_corpus(
    directory: Path,
    config: CorpusConfig = CorpusConfig(),
    apps: Sequence[str] = APP_NAMES,
    networks: Sequence[NetworkCondition] = tuple(NetworkCondition),
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Record every (app × network) cell and write goldens + manifest."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digests: Dict[str, str] = {}
    for app in apps:
        for network in networks:
            name = cell_name(app, network)
            facts = record_cell(app, network, config)
            digest = facts_digest(facts)
            digests[name] = digest
            _write_json(
                directory / f"{name}.json",
                {"schema_version": SCHEMA_VERSION, "digest": digest, "facts": facts},
            )
            if progress is not None:
                progress(f"{name}: {len(facts['messages'])} messages, "
                         f"digest {digest[:12]}")
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "config": config.as_dict(),
        "cells": digests,
    }
    _write_json(directory / "manifest.json", manifest)
    return manifest


def record_impaired_corpora(
    base: Optional[Path] = None,
    config: CorpusConfig = CorpusConfig(),
    apps: Sequence[str] = APP_NAMES,
    profiles: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, object]]:
    """Record the standard impaired corpora (one sibling dir per profile).

    Each profile gets its own self-contained corpus — manifest included —
    under ``impaired-<profile>/``, recorded with the reference engine on
    the impaired record stream.  The clean corpus is never touched.
    """
    from dataclasses import replace as dc_replace

    manifests: Dict[str, Dict[str, object]] = {}
    for profile in profiles if profiles is not None else IMPAIRED_CORPORA:
        network = IMPAIRED_CORPORA[profile]
        directory = impaired_corpus_dir(profile, base)
        if progress is not None:
            progress(f"impaired-{profile} ({network.value}):")
        manifests[profile] = record_corpus(
            directory,
            dc_replace(config, impairment=profile),
            apps=apps,
            networks=(network,),
            progress=progress,
        )
    return manifests


def load_manifest(directory: Path) -> Dict[str, object]:
    path = Path(directory) / "manifest.json"
    if not path.exists():
        raise GoldenMismatchError(f"no conformance manifest at {path}")
    manifest = json.loads(path.read_text())
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise GoldenMismatchError(
            f"manifest {path} has schema version {version}, "
            f"this code expects {SCHEMA_VERSION}"
        )
    return manifest


def load_cell(directory: Path, name: str) -> Dict[str, object]:
    """Load one golden cell, verifying schema version and content digest."""
    path = Path(directory) / f"{name}.json"
    if not path.exists():
        raise GoldenMismatchError(f"no golden cell file at {path}")
    payload = json.loads(path.read_text())
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise GoldenMismatchError(
            f"golden cell {path} has schema version {version}, "
            f"this code expects {SCHEMA_VERSION}"
        )
    facts = payload.get("facts")
    stored = payload.get("digest")
    if not isinstance(facts, dict) or stored != facts_digest(facts):
        raise GoldenMismatchError(
            f"golden cell {path} digest {stored!r} does not match its contents "
            f"(corpus hash drift)"
        )
    return facts


def corpus_cells(
    manifest: Dict[str, object],
    apps: Optional[Iterable[str]] = None,
    networks: Optional[Iterable[NetworkCondition]] = None,
) -> List[Tuple[str, NetworkCondition]]:
    """The (app, network) pairs recorded in a manifest, optionally filtered."""
    wanted_apps = set(apps) if apps is not None else None
    wanted_networks = set(networks) if networks is not None else None
    cells: List[Tuple[str, NetworkCondition]] = []
    for name in manifest.get("cells", {}):
        app, _, network_value = name.rpartition("__")
        network = NetworkCondition(network_value)
        if wanted_apps is not None and app not in wanted_apps:
            continue
        if wanted_networks is not None and network not in wanted_networks:
            continue
        cells.append((app, network))
    return cells


def _write_json(path: Path, payload: Dict[str, object]) -> None:
    # Compact separators keep the corpus small; a trailing newline keeps
    # the files friendly to line-oriented diff tooling.
    path.write_text(json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n")
