"""Differential conformance checker: replay goldens through every engine.

The recorded corpus (see :mod:`repro.conformance.golden`) defines ground
truth under the reference sweep engine.  This module replays the exact
same filtered records through every interesting engine configuration —
plain sweep, flow-sticky fast path, dedup cache, a cached fast-path
engine *shared* across all cells (the ``run_matrix`` serial production
shape), the streaming pipeline core (chunked feed, incremental checker),
and the flow-sharded parallel streaming executor (hash-partitioned
flows, per-shard engines, deterministic merge) — and demands
bit-identical verdicts, datagram classes, and metrics from each.  On mismatch it renders a drift report that names the
first divergent message: its index, timestamp, protocol, byte offset,
and the ``(criterion, code)`` pairs on each side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps import NetworkCondition
from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.dpi.engine import DEFAULT_CACHE_SIZE
from repro.conformance.golden import (
    IMPAIRED_CORPORA,
    RERECORD_HINT,
    CorpusConfig,
    GoldenMismatchError,
    build_facts,
    cell_name,
    cell_records,
    corpus_cells,
    facts_digest,
    impaired_corpus_dir,
    load_cell,
    load_manifest,
)

#: Facts keys that must match the golden for *every* engine configuration.
_VERDICT_KEYS = (
    "classes", "class_counts", "messages", "volume",
    "volume_by_protocol", "types",
)


@dataclass(frozen=True)
class EngineSpec:
    """One engine configuration the differ exercises.

    ``shared=True`` reuses a single engine instance across every cell of
    the run, mirroring how ``run_matrix`` keeps caches warm between
    cells — the configuration most likely to leak state.

    ``streaming=True`` drives the engine through the streaming pipeline
    core (``repro.pipeline.run_streaming``: per-record DPI session feed,
    incremental checker) instead of the batch
    ``analyze_records``/``check`` calls — the execution shape most likely
    to reorder or drop context.

    ``shards > 1`` drives the flow-sharded parallel executor
    (``repro.pipeline.run_streaming_sharded``): records hash-partitioned
    by flow key, one engine/checker per shard, deterministic merge — the
    execution shape most likely to renumber verdicts or interleave
    analyses wrongly.  It runs in-process here so the differ stays
    deterministic and cheap; pool and in-process shard execution share
    one code path by construction.
    """

    name: str
    fastpath: bool
    cache_size: int
    shared: bool = False
    streaming: bool = False
    shards: int = 1
    backend: str = "scalar"

    def build(self, max_offset: int) -> DpiEngine:
        return DpiEngine(
            max_offset=max_offset,
            cache_size=self.cache_size,
            fastpath=self.fastpath,
            backend=self.backend,
        )


#: ``sweep`` is the reference configuration the corpus was recorded with;
#: its DpiStats must match the golden exactly, not just its verdicts.
ENGINE_SPECS: Tuple[EngineSpec, ...] = (
    EngineSpec("sweep", fastpath=False, cache_size=0),
    EngineSpec("fastpath", fastpath=True, cache_size=0),
    EngineSpec("cached", fastpath=False, cache_size=DEFAULT_CACHE_SIZE),
    EngineSpec(
        "fastpath-cached-shared",
        fastpath=True,
        cache_size=DEFAULT_CACHE_SIZE,
        shared=True,
    ),
    EngineSpec(
        "streaming",
        fastpath=True,
        cache_size=DEFAULT_CACHE_SIZE,
        streaming=True,
    ),
    EngineSpec(
        "sharded-streaming",
        fastpath=True,
        cache_size=DEFAULT_CACHE_SIZE,
        streaming=True,
        shards=2,
    ),
    # Batch stage-one scanner under the same cacheless-sweep conditions as
    # the reference spec, so its DpiStats are also held to exact equality.
    EngineSpec("columnar", fastpath=False, cache_size=0, backend="columnar"),
)


@dataclass(frozen=True)
class Drift:
    """One divergence between a golden cell and a live engine run."""

    cell: str
    engine: str
    kind: str
    detail: str

    def render(self) -> str:
        return f"[{self.cell} / {self.engine}] {self.kind}: {self.detail}"


@dataclass
class DriftReport:
    """Outcome of a full differential check."""

    cells_checked: int = 0
    engines: Tuple[str, ...] = ()
    drifts: List[Drift] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drifts

    def render(self) -> str:
        lines = [
            f"conformance check: {self.cells_checked} cells x "
            f"{len(self.engines)} engine configs ({', '.join(self.engines)})"
        ]
        if self.ok:
            lines.append("OK: all engine configurations match the golden corpus")
        else:
            lines.append(f"DRIFT: {len(self.drifts)} divergence(s); {RERECORD_HINT} "
                         f"only if the new behavior is intended")
            lines.extend(f"  {drift.render()}" for drift in self.drifts)
        return "\n".join(lines)


def _message_label(entry: Sequence[object]) -> str:
    timestamp, protocol, offset, length, trailer_hex, type_label, keys = entry
    violations = (
        ", ".join(f"C{c}:{code}" for c, code in keys) if keys else "compliant"
    )
    return (
        f"t={timestamp:.6f} {protocol}/{type_label} at byte offset {offset} "
        f"(length {length}, trailer {len(trailer_hex) // 2}B) -> {violations}"
    )


def _compare_messages(golden: List, actual: List) -> Optional[str]:
    """Human-readable description of the first divergent message, if any."""
    for index, (want, got) in enumerate(zip(golden, actual)):
        if want != got:
            return (
                f"first divergent message at index {index}: "
                f"expected {_message_label(want)}; got {_message_label(got)}"
            )
    if len(golden) != len(actual):
        return (
            f"message count changed: expected {len(golden)}, got {len(actual)} "
            f"(first {min(len(golden), len(actual))} messages identical)"
        )
    return None


def _compare_facts(
    golden: Dict[str, object], actual: Dict[str, object], exact_stats: bool
) -> List[Tuple[str, str]]:
    """(kind, detail) pairs for every way ``actual`` diverges from ``golden``."""
    problems: List[Tuple[str, str]] = []
    if golden["classes"] != actual["classes"]:
        want, got = golden["classes"], actual["classes"]
        index = next(
            (i for i, (a, b) in enumerate(zip(want, got)) if a != b),
            min(len(want), len(got)),
        )
        problems.append((
            "datagram-classes",
            f"first divergent datagram at index {index}: "
            f"expected {want[index:index + 1] or '<none>'}, "
            f"got {got[index:index + 1] or '<none>'} "
            f"({len(want)} vs {len(got)} datagrams)",
        ))
    message_drift = _compare_messages(golden["messages"], actual["messages"])
    if message_drift is not None:
        problems.append(("verdicts", message_drift))
    for key in ("class_counts", "volume", "volume_by_protocol", "types"):
        if golden[key] != actual[key]:
            problems.append((key, f"expected {golden[key]}, got {actual[key]}"))
    golden_stats = golden["dpi_stats"]
    actual_stats = actual["dpi_stats"]
    if golden_stats["datagrams"] != actual_stats["datagrams"]:
        problems.append((
            "dpi-stats",
            f"datagram count: expected {golden_stats['datagrams']}, "
            f"got {actual_stats['datagrams']}",
        ))
    elif exact_stats and golden_stats != actual_stats:
        problems.append((
            "dpi-stats",
            f"reference-engine counters drifted: expected {golden_stats}, "
            f"got {actual_stats}",
        ))
    return problems


def check_corpus(
    directory: Path,
    apps: Optional[Iterable[str]] = None,
    networks: Optional[Iterable[NetworkCondition]] = None,
    specs: Sequence[EngineSpec] = ENGINE_SPECS,
) -> DriftReport:
    """Replay the golden corpus through every engine spec and diff outputs."""
    report = DriftReport(engines=tuple(spec.name for spec in specs))
    manifest = load_manifest(directory)
    config = CorpusConfig.from_dict(manifest["config"])
    shared_engines = {
        spec.name: spec.build(config.max_offset) for spec in specs if spec.shared
    }
    checker = ComplianceChecker()
    for app, network in corpus_cells(manifest, apps, networks):
        name = cell_name(app, network)
        try:
            golden = load_cell(directory, name)
        except GoldenMismatchError as exc:
            report.drifts.append(Drift(name, "-", "golden-file", str(exc)))
            continue
        stored = manifest["cells"][name]
        if stored != facts_digest(golden):
            report.drifts.append(Drift(
                name, "-", "manifest-digest",
                f"manifest digest {stored} does not match cell file — "
                f"{RERECORD_HINT}",
            ))
            continue
        report.cells_checked += 1
        records = cell_records(app, network, config)
        for spec in specs:
            engine = shared_engines.get(spec.name) or spec.build(config.max_offset)
            if spec.shards > 1:
                from functools import partial

                from repro.pipeline import run_streaming_sharded

                dpi, verdicts, _stage_stats = run_streaming_sharded(
                    records,
                    engine_factory=partial(
                        DpiEngine,
                        max_offset=config.max_offset,
                        cache_size=spec.cache_size,
                        fastpath=spec.fastpath,
                        backend=spec.backend,
                    ),
                    shards=spec.shards,
                    workers=0,
                )
            elif spec.streaming:
                from repro.pipeline import run_streaming

                dpi, verdicts, _stage_stats = run_streaming(
                    records, engine, checker
                )
            else:
                dpi = engine.analyze_records(records)
                verdicts = checker.check(dpi.messages())
            actual = build_facts(app, network, dpi, verdicts)
            # Both cacheless sweep configurations — scalar reference and
            # columnar — must reproduce the recorded counters exactly.
            exact_stats = spec.name in ("sweep", "columnar") and not spec.shared
            for kind, detail in _compare_facts(golden, actual, exact_stats):
                report.drifts.append(Drift(name, spec.name, kind, detail))
            for problem in dpi.stats.invariant_violations():
                report.drifts.append(
                    Drift(name, spec.name, "stats-invariant", problem)
                )
    return report


def check_impaired_corpora(
    base: Optional[Path] = None,
    apps: Optional[Iterable[str]] = None,
    profiles: Optional[Iterable[str]] = None,
    specs: Sequence[EngineSpec] = ENGINE_SPECS,
) -> DriftReport:
    """Run :func:`check_corpus` over every impaired sibling corpus.

    Each ``impaired-<profile>/`` directory carries its own manifest whose
    ``config.impairment`` re-applies the profile at replay time, so every
    engine configuration is diffed against goldens recorded from the same
    deterministic impaired stream.  Cell names are prefixed with the
    profile in the merged report so drift stays attributable.
    """
    from repro.conformance.golden import default_corpus_dir

    root = Path(base) if base is not None else default_corpus_dir()
    merged = DriftReport(engines=tuple(spec.name for spec in specs))
    for profile in profiles if profiles is not None else IMPAIRED_CORPORA:
        directory = impaired_corpus_dir(profile, root)
        try:
            report = check_corpus(directory, apps=apps, specs=specs)
        except GoldenMismatchError as exc:
            merged.drifts.append(
                Drift(f"impaired-{profile}", "-", "golden-file", str(exc))
            )
            continue
        merged.cells_checked += report.cells_checked
        merged.drifts.extend(
            Drift(f"{profile}/{drift.cell}", drift.engine, drift.kind,
                  drift.detail)
            for drift in report.drifts
        )
    return merged
