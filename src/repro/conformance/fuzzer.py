"""Structure-aware mutation fuzzer with an exact-attribution oracle.

Starting from *well-formed* STUN/TURN, RTP, RTCP, and QUIC messages
(built-in seeds plus messages harvested from the golden corpus), each
mutator injects one specific spec violation — an undefined message type,
a corrupted header field, an unknown attribute type, an invalid
attribute value, broken truncation/padding — and the oracle asserts the
five-criterion checker flags **exactly** the violated criterion with an
expected violation code: one violation, right criterion, right code.
Anything else (compliant, wrong criterion, extra violations, a parse
crash) is a mis-attribution failure, reported with the offending payload
and a delta-debugged minimal reproduction.

The ``netem-*`` mutators stage *network* faults instead of byte faults:
a dropped response must surface as ``unanswered-retransmission``, while
benign transport behavior — duplicated requests that were answered, a
response delivered before its own request — must stay fully compliant
(``expect_compliant=True`` flips the oracle to demand zero violations
across the whole message set).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps import NetworkCondition
from repro.conformance.golden import (
    CorpusConfig,
    cell_records,
    corpus_cells,
    load_manifest,
    reference_engine,
)
from repro.core import ComplianceChecker
from repro.core.verdict import Criterion
from repro.dpi.messages import ExtractedMessage, Protocol
from repro.packets.packet import Direction, PacketRecord
from repro.protocols.quic.header import (
    QUIC_V1,
    QUIC_V2,
    QuicHeader,
    QuicParseError,
    parse_one,
)
from repro.protocols.rtcp.constants import (
    KNOWN_PSFB_FORMATS,
    KNOWN_RTPFB_FORMATS,
    RtcpPacketType,
)
from repro.protocols.rtcp.packets import (
    AppPacket,
    FeedbackPacket,
    ReceiverReport,
    RtcpHeader,
    RtcpPacket,
    RtcpParseError,
    SdesChunk,
    SdesItem,
    SdesPacket,
    SenderReport,
    XrBlock,
    XrPacket,
)
from repro.protocols.rtp.extensions import (
    ONE_BYTE_PROFILE,
    TWO_BYTE_PROFILE_BASE,
    TWO_BYTE_PROFILE_MASK,
    HeaderExtension,
    build_one_byte_extension,
)
from repro.protocols.rtp.header import RtpPacket, RtpParseError
from repro.protocols.stun.attributes import (
    StunAttribute,
    channel_number_value,
    encode_error_code,
    encode_xor_address,
    requested_transport_value,
)
from repro.protocols.stun.constants import (
    KNOWN_ATTRIBUTE_TYPES,
    KNOWN_MESSAGE_TYPES,
    AttributeType,
)
from repro.protocols.stun.message import (
    ChannelData,
    StunMessage,
    StunParseError,
    build_with_fingerprint,
)
from repro.utils.rand import DeterministicRandom

_A = AttributeType

#: Fixed 5-tuple every rewrapped message lives on, so multi-message
#: mutations (retransmission runs, Allocate ping-pong) share one stream.
_SRC = ("198.51.100.2", 40000)
_DST = ("203.0.113.9", 3478)


@dataclass(frozen=True)
class Seed:
    """One well-formed wire message the mutators start from."""

    kind: str
    data: bytes


_KIND_PROTOCOL: Dict[str, Protocol] = {
    "stun-request": Protocol.STUN_TURN,
    "stun-response": Protocol.STUN_TURN,
    "stun-indication": Protocol.STUN_TURN,
    "channeldata": Protocol.STUN_TURN,
    "rtp": Protocol.RTP,
    "rtcp-sr": Protocol.RTCP,
    "rtcp-rr": Protocol.RTCP,
    "rtcp-sdes": Protocol.RTCP,
    "quic-long": Protocol.QUIC,
}

SEED_KINDS: Tuple[str, ...] = tuple(_KIND_PROTOCOL)


def _record(payload: bytes, timestamp: float = 0.0) -> PacketRecord:
    return PacketRecord(
        timestamp=timestamp,
        src_ip=_SRC[0],
        src_port=_SRC[1],
        dst_ip=_DST[0],
        dst_port=_DST[1],
        transport="UDP",
        payload=payload,
        direction=Direction.OUTBOUND,
    )


def rewrap(
    protocol: Protocol, wire: bytes, timestamp: float = 0.0
) -> Optional[ExtractedMessage]:
    """Parse *wire* as one message of *protocol* and wrap it for the checker.

    Mirrors what the DPI engine produces for a standard datagram whose
    payload is exactly this message (offset 0, surplus bytes as trailer).
    Returns ``None`` when the bytes no longer parse — the oracle treats
    that as its own failure mode for byte-level mutations that should
    still parse.
    """
    record = _record(wire, timestamp)
    try:
        if protocol is Protocol.STUN_TURN:
            try:
                message = StunMessage.parse(wire, strict=True)
                return ExtractedMessage(protocol, 0, len(wire), message, record)
            except StunParseError:
                frame = ChannelData.parse(wire, strict=False)
                length = ChannelData.HEADER_LEN + len(frame.data)
                return ExtractedMessage(
                    protocol, 0, length, frame, record, trailer=wire[length:]
                )
        if protocol is Protocol.RTP:
            packet = RtpPacket.parse(wire, strict=False)
            return ExtractedMessage(protocol, 0, len(wire), packet, record)
        if protocol is Protocol.RTCP:
            packet = RtcpPacket.parse(wire, strict=False)
            return ExtractedMessage(
                protocol,
                0,
                packet.header.wire_length,
                packet,
                record,
                trailer=packet.trailer,
            )
        if protocol is Protocol.QUIC:
            header = parse_one(wire)
            return ExtractedMessage(protocol, 0, header.wire_length, header, record)
    except (StunParseError, RtpParseError, RtcpParseError, QuicParseError, ValueError):
        return None
    return None


@dataclass
class Mutated:
    """A mutator's output: the message set to judge and the target index.

    ``wire`` is set for single-message byte-level mutations and enables
    payload minimization of failures; object-level mutations (those the
    wire format cannot even encode, like an oversized QUIC CID) leave it
    ``None``.
    """

    messages: List[ExtractedMessage]
    target: int = 0
    wire: Optional[bytes] = None
    protocol: Optional[Protocol] = None


def _single(protocol: Protocol, wire: bytes) -> Mutated:
    extracted = rewrap(protocol, wire)
    return Mutated(
        messages=[] if extracted is None else [extracted],
        wire=wire,
        protocol=protocol,
    )


@dataclass(frozen=True)
class Mutator:
    """One criterion-targeted mutation with its expected attribution.

    ``expect_compliant=True`` inverts the oracle: the mutation models a
    benign network perturbation (duplication, reordering) and **every**
    message in the set must come back compliant — any violation is a
    robustness failure of the checker, not of the traffic.
    """

    name: str
    protocol: Protocol
    criterion: Criterion
    codes: frozenset
    kinds: Tuple[str, ...]
    apply: Callable[[Seed, DeterministicRandom], Optional[Mutated]]
    expect_compliant: bool = False


# --- STUN/TURN mutators -----------------------------------------------------

def _parse_stun(seed: Seed) -> StunMessage:
    return StunMessage.parse(seed.data, strict=True)


def _without_fingerprint(message: StunMessage) -> StunMessage:
    """Drop FINGERPRINT so an appended attribute cannot trip its
    placement rule (criterion 4 checks FINGERPRINT-is-last first)."""
    attributes = [
        attr for attr in message.attributes
        if attr.attr_type != int(_A.FINGERPRINT)
    ]
    return dataclasses.replace(message, attributes=attributes)


def _append_attribute(message: StunMessage, attr: StunAttribute) -> bytes:
    mutated = dataclasses.replace(
        message, attributes=message.attributes + [attr]
    )
    return mutated.build()


def _mut_stun_undefined_type(seed: Seed, rng: DeterministicRandom) -> Mutated:
    message = _parse_stun(seed)
    while True:
        msg_type = rng.getrandbits(14)
        if msg_type not in KNOWN_MESSAGE_TYPES:
            break
    return _single(
        Protocol.STUN_TURN,
        dataclasses.replace(message, msg_type=msg_type).build(),
    )


def _mut_stun_sequential_txid(seed: Seed, rng: DeterministicRandom) -> Mutated:
    message = _without_fingerprint(_parse_stun(seed))
    width = len(message.transaction_id)
    # Low byte 0x10 leaves headroom so small increments never carry.
    base = int.from_bytes(rng.rand_bytes(width - 1) + b"\x10", "big")
    step = 1 + rng.randrange(4)
    messages: List[ExtractedMessage] = []
    for i in range(6):
        txid = (base + i * step).to_bytes(width, "big")
        wire = dataclasses.replace(message, transaction_id=txid).build()
        extracted = rewrap(Protocol.STUN_TURN, wire, timestamp=0.5 * i)
        if extracted is None:
            return Mutated(messages=[])
        messages.append(extracted)
    return Mutated(messages=messages)


def _mut_stun_undefined_attribute(seed: Seed, rng: DeterministicRandom) -> Mutated:
    message = _parse_stun(seed)
    while True:
        attr_type = rng.getrandbits(16)
        if attr_type not in KNOWN_ATTRIBUTE_TYPES:
            break
    attr = StunAttribute(attr_type, rng.rand_bytes(rng.randrange(9)))
    return _single(Protocol.STUN_TURN, _append_attribute(message, attr))


#: (attribute, fixed length) pairs the bad-length mutator stretches.
_FIXED_LENGTH_CHOICES = (
    (int(_A.LIFETIME), 4),
    (int(_A.PRIORITY), 4),
    (int(_A.REQUESTED_TRANSPORT), 4),
    (int(_A.RESERVATION_TOKEN), 8),
    (int(_A.ICE_CONTROLLING), 8),
)


def _mut_stun_bad_attribute_length(seed: Seed, rng: DeterministicRandom) -> Mutated:
    message = _without_fingerprint(_parse_stun(seed))
    attr_type, fixed = rng.choice(_FIXED_LENGTH_CHOICES)
    value = rng.rand_bytes(fixed + 1 + rng.randrange(4))
    return _single(
        Protocol.STUN_TURN,
        _append_attribute(message, StunAttribute(attr_type, value)),
    )


def _mut_stun_bad_address_family(seed: Seed, rng: DeterministicRandom) -> Mutated:
    message = _without_fingerprint(_parse_stun(seed))
    family = rng.choice((0x00, 0x03, 0x04, 0x7F))
    value = bytes([0, family]) + rng.rand_bytes(6)
    return _single(
        Protocol.STUN_TURN,
        _append_attribute(message, StunAttribute(int(_A.XOR_PEER_ADDRESS), value)),
    )


def _mut_stun_bad_channel_number(seed: Seed, rng: DeterministicRandom) -> Mutated:
    message = _without_fingerprint(_parse_stun(seed))
    channel = 0x5000 + rng.randrange(0xB000)
    attr = StunAttribute(int(_A.CHANNEL_NUMBER), channel_number_value(channel))
    return _single(Protocol.STUN_TURN, _append_attribute(message, attr))


def _mut_stun_bad_error_code(seed: Seed, rng: DeterministicRandom) -> Mutated:
    message = _without_fingerprint(_parse_stun(seed))
    if rng.randrange(2):
        value = rng.rand_bytes(3)  # shorter than the 4-byte prelude
    else:
        value = encode_error_code(rng.choice((100, 200, 700)))
    return _single(
        Protocol.STUN_TURN,
        _append_attribute(message, StunAttribute(int(_A.ERROR_CODE), value)),
    )


def _mut_stun_bad_fingerprint(seed: Seed, rng: DeterministicRandom) -> Mutated:
    message = _without_fingerprint(_parse_stun(seed))
    raw = bytearray(build_with_fingerprint(message))
    correct = bytes(raw[-4:])
    while True:
        bogus = rng.rand_bytes(4)
        if bogus != correct:
            break
    raw[-4:] = bogus
    return _single(Protocol.STUN_TURN, bytes(raw))


def _mut_stun_attribute_not_allowed(
    seed: Seed, rng: DeterministicRandom
) -> Optional[Mutated]:
    message = _without_fingerprint(_parse_stun(seed))
    if message.msg_type in (0x0016, 0x0017):
        # Send/Data Indications close their attribute set (RFC 8656).
        attr = StunAttribute(int(_A.SOFTWARE), rng.rand_bytes(8))
    elif message.msg_type & 0x0100:
        # Request-only ICE attributes inside a response (RFC 8445 §7.1).
        if rng.randrange(2):
            attr = StunAttribute(int(_A.PRIORITY), rng.rand_bytes(4))
        else:
            attr = StunAttribute(int(_A.USE_CANDIDATE), b"")
    else:
        return None  # e.g. a Binding Indication: no closed set to violate
    return _single(Protocol.STUN_TURN, _append_attribute(message, attr))


def _mut_stun_retransmission(seed: Seed, rng: DeterministicRandom) -> Mutated:
    messages: List[ExtractedMessage] = []
    for i in range(6):
        extracted = rewrap(Protocol.STUN_TURN, seed.data, timestamp=2.5 * i)
        if extracted is None:
            return Mutated(messages=[])
        messages.append(extracted)
    return Mutated(messages=messages)


def _mut_stun_allocate_pingpong(seed: Seed, rng: DeterministicRandom) -> Mutated:
    prefix = rng.rand_bytes(11)
    messages: List[ExtractedMessage] = []
    for i in range(12):
        # Distinct IDs with deltas of 20 (> SEQUENTIAL_TXID_MAX_STEP), so
        # neither the retransmission nor the sequential detector triggers.
        txid = prefix + bytes([(i * 20) & 0xFF])
        message = StunMessage(
            msg_type=0x0003,
            transaction_id=txid,
            attributes=[
                StunAttribute(
                    int(_A.REQUESTED_TRANSPORT), requested_transport_value()
                )
            ],
        )
        extracted = rewrap(Protocol.STUN_TURN, message.build(), timestamp=1.0 * i)
        if extracted is None:
            return Mutated(messages=[])
        messages.append(extracted)
    return Mutated(messages=messages)


# --- Network-impairment stream mutators --------------------------------------
#
# These perturb message *delivery* rather than message bytes, mirroring
# what :mod:`repro.netem` does to whole record streams: drop, duplicate,
# reorder.  Drops of a response must be attributed exactly like any other
# violation; duplication and reordering of answered exchanges must not
# produce any violation at all.

def _response_wire_for(request: StunMessage) -> Optional[bytes]:
    """A success response answering *request*, or ``None`` if one cannot
    be built compliant (non-request seed, exotic harvested framing)."""
    if request.msg_type & 0x0110:
        return None
    try:
        response = dataclasses.replace(
            request,
            msg_type=request.msg_type | 0x0100,
            attributes=[
                StunAttribute(
                    int(_A.XOR_MAPPED_ADDRESS),
                    encode_xor_address(
                        "192.0.2.15", 40000, request.transaction_id
                    ),
                )
            ],
        )
        wire = response.build()
    except (StunParseError, ValueError):
        return None
    if not _standalone_compliant("stun-response", wire, ComplianceChecker()):
        return None
    return wire


def _mut_netem_drop_response(
    seed: Seed, rng: DeterministicRandom
) -> Optional[Mutated]:
    request = _parse_stun(seed)
    if _response_wire_for(request) is None:
        return None  # nothing answerable to drop
    # The client retransmits across the repeat threshold; the network
    # delivered every copy but ate the answer.
    messages: List[ExtractedMessage] = []
    for i in range(6):
        extracted = rewrap(Protocol.STUN_TURN, seed.data, timestamp=2.5 * i)
        if extracted is None:
            return Mutated(messages=[])
        messages.append(extracted)
    return Mutated(messages=messages)


def _mut_netem_duplicate_answered(
    seed: Seed, rng: DeterministicRandom
) -> Optional[Mutated]:
    request = _parse_stun(seed)
    response_wire = _response_wire_for(request)
    if response_wire is None:
        return None
    messages: List[ExtractedMessage] = []
    for i in range(6):  # enough copies/span to trip the repeat detector
        extracted = rewrap(Protocol.STUN_TURN, seed.data, timestamp=2.5 * i)
        if extracted is None:
            return Mutated(messages=[])
        messages.append(extracted)
    answer = rewrap(
        Protocol.STUN_TURN, response_wire, timestamp=rng.uniform(0.0, 15.0)
    )
    if answer is None:
        return Mutated(messages=[])
    messages.append(answer)
    return Mutated(messages=messages)


def _mut_netem_reorder_response_first(
    seed: Seed, rng: DeterministicRandom
) -> Optional[Mutated]:
    request = _parse_stun(seed)
    response_wire = _response_wire_for(request)
    if response_wire is None:
        return None
    answer = rewrap(Protocol.STUN_TURN, response_wire, timestamp=0.0)
    delayed = rewrap(
        Protocol.STUN_TURN, seed.data,
        timestamp=0.001 + rng.uniform(0.0, 0.05),
    )
    if answer is None or delayed is None:
        return Mutated(messages=[])
    return Mutated(messages=[answer, delayed])


# --- TURN ChannelData mutators ----------------------------------------------

def _mut_channeldata_bad_channel(seed: Seed, rng: DeterministicRandom) -> Mutated:
    channel = 0x5000 + rng.randrange(0x3000)  # parseable but reserved
    frame = ChannelData(channel=channel, data=rng.rand_bytes(8 + rng.randrange(17)))
    return _single(Protocol.STUN_TURN, frame.build())


def _mut_channeldata_padding(seed: Seed, rng: DeterministicRandom) -> Mutated:
    channel = 0x4000 + rng.randrange(0x1000)
    frame = ChannelData(channel=channel, data=rng.rand_bytes(8 + rng.randrange(17)))
    return _single(
        Protocol.STUN_TURN, frame.build() + rng.rand_bytes(1 + rng.randrange(7))
    )


# --- RTP mutators -----------------------------------------------------------

def _mut_rtp_bad_padding(seed: Seed, rng: DeterministicRandom) -> Optional[Mutated]:
    packet = RtpPacket.parse(seed.data, strict=False)
    if len(packet.payload) + packet.padding_length == 0:
        return None  # no final byte to turn into an impossible pad count
    wire = bytearray(seed.data)
    wire[0] |= 0x20
    wire[-1] = 0
    return _single(Protocol.RTP, bytes(wire))


def _mut_rtp_undefined_profile(seed: Seed, rng: DeterministicRandom) -> Mutated:
    packet = RtpPacket.parse(seed.data, strict=False)
    while True:
        profile = rng.getrandbits(16)
        if (
            profile != ONE_BYTE_PROFILE
            and (profile & TWO_BYTE_PROFILE_MASK) != TWO_BYTE_PROFILE_BASE
        ):
            break
    extension = HeaderExtension(
        profile=profile, data=rng.rand_bytes(4 * (1 + rng.randrange(3)))
    )
    return _single(
        Protocol.RTP, dataclasses.replace(packet, extension=extension).build()
    )


def _mut_rtp_id_zero_with_length(seed: Seed, rng: DeterministicRandom) -> Mutated:
    packet = RtpPacket.parse(seed.data, strict=False)
    length_minus_one = 1 + rng.randrange(15)  # ID nibble 0, length nibble > 0
    extension = HeaderExtension(
        profile=ONE_BYTE_PROFILE, data=bytes([length_minus_one, 0, 0, 0])
    )
    return _single(
        Protocol.RTP, dataclasses.replace(packet, extension=extension).build()
    )


def _mut_rtp_truncated_element(seed: Seed, rng: DeterministicRandom) -> Mutated:
    packet = RtpPacket.parse(seed.data, strict=False)
    ext_id = 1 + rng.randrange(14)
    # Declares 16 data bytes; only 3 remain in the extension block.
    extension = HeaderExtension(
        profile=ONE_BYTE_PROFILE,
        data=bytes([(ext_id << 4) | 0x0F]) + rng.rand_bytes(3),
    )
    return _single(
        Protocol.RTP, dataclasses.replace(packet, extension=extension).build()
    )


# --- RTCP mutators ----------------------------------------------------------

def _mut_rtcp_undefined_type(seed: Seed, rng: DeterministicRandom) -> Mutated:
    packet = RtcpPacket.parse(seed.data, strict=False)
    header = dataclasses.replace(
        packet.header, packet_type=rng.choice((192, 195, 199, 208, 215, 223))
    )
    return _single(Protocol.RTCP, header.build() + packet.body)


def _mut_rtcp_count_mismatch(
    seed: Seed, rng: DeterministicRandom
) -> Optional[Mutated]:
    packet = RtcpPacket.parse(seed.data, strict=False)
    if packet.packet_type == RtcpPacketType.SR:
        base = 24
    elif packet.packet_type == RtcpPacketType.RR:
        base = 4
    else:
        return None
    # Smallest count whose report blocks no longer fit, plus some slack.
    count = (len(packet.body) - base) // 24 + 1 + rng.randrange(2)
    if count > 31:
        return None
    header = dataclasses.replace(packet.header, count=count)
    return _single(Protocol.RTCP, header.build() + packet.body)


def _mut_rtcp_undefined_sdes_item(seed: Seed, rng: DeterministicRandom) -> Mutated:
    packet = RtcpPacket.parse(seed.data, strict=False)
    sdes = SdesPacket.from_packet(packet)
    ssrc = sdes.chunks[0].ssrc if sdes.chunks else rng.u32()
    item = SdesItem(item_type=9 + rng.randrange(247), value=b"conformance")
    mutated = SdesPacket(chunks=[SdesChunk(ssrc=ssrc, items=[item])])
    return _single(Protocol.RTCP, mutated.to_packet().build())


def _mut_rtcp_feedback_format(seed: Seed, rng: DeterministicRandom) -> Mutated:
    if rng.randrange(2):
        packet_type, known = int(RtcpPacketType.RTPFB), KNOWN_RTPFB_FORMATS
    else:
        packet_type, known = int(RtcpPacketType.PSFB), KNOWN_PSFB_FORMATS
    while True:
        fmt = rng.randrange(32)
        if fmt not in known:
            break
    feedback = FeedbackPacket(
        packet_type=packet_type,
        fmt=fmt,
        sender_ssrc=rng.u32(),
        media_ssrc=rng.u32(),
    )
    return _single(Protocol.RTCP, feedback.to_packet().build())


def _mut_rtcp_undefined_xr_block(seed: Seed, rng: DeterministicRandom) -> Mutated:
    xr = XrPacket(
        ssrc=rng.u32(),
        blocks=[XrBlock(block_type=8 + rng.randrange(248), type_specific=0, data=b"")],
    )
    return _single(Protocol.RTCP, xr.to_packet().build())


def _mut_rtcp_malformed_sdes(seed: Seed, rng: DeterministicRandom) -> Mutated:
    # CNAME item declaring 200 value bytes with only 2 present.
    body = rng.u32().to_bytes(4, "big") + bytes([1, 200]) + rng.rand_bytes(2)
    header = RtcpHeader(
        version=2,
        padding=False,
        count=1,
        packet_type=int(RtcpPacketType.SDES),
        length_words=len(body) // 4,
    )
    return _single(Protocol.RTCP, header.build() + body)


def _mut_rtcp_bad_app_name(seed: Seed, rng: DeterministicRandom) -> Mutated:
    app = AppPacket(
        ssrc=rng.u32(),
        name=bytes([rng.randrange(0x20)]) + b"abc",  # control byte: not printable
        data=b"",
        subtype=rng.randrange(32),
    )
    return _single(Protocol.RTCP, app.to_packet().build())


def _mut_rtcp_srtcp_no_tag(seed: Seed, rng: DeterministicRandom) -> Mutated:
    # E-flag + plausible index word, but no 10-byte auth tag (Meet's bug).
    index = (1 << 31) | rng.randrange(1 << 24)
    return _single(Protocol.RTCP, seed.data + index.to_bytes(4, "big"))


def _mut_rtcp_trailing_bytes(seed: Seed, rng: DeterministicRandom) -> Mutated:
    # 1-3 surplus bytes can be neither SRTCP trailer shape (4 or 14).
    return _single(Protocol.RTCP, seed.data + rng.rand_bytes(rng.choice((1, 2, 3))))


# --- QUIC mutators ----------------------------------------------------------

def _mut_quic_unknown_version(seed: Seed, rng: DeterministicRandom) -> Mutated:
    while True:
        version = rng.u32()
        if version not in (0, QUIC_V1, QUIC_V2):
            break
    wire = bytearray(seed.data)
    wire[1:5] = version.to_bytes(4, "big")
    return _single(Protocol.QUIC, bytes(wire))


def _mut_quic_fixed_bit_clear(seed: Seed, rng: DeterministicRandom) -> Mutated:
    # The parser rejects a clear fixed bit outright, so this violation can
    # only be staged object-level, as if a laxer extractor surfaced it.
    header = parse_one(seed.data)
    mutated = dataclasses.replace(header, first_byte=header.first_byte & ~0x40)
    extracted = ExtractedMessage(
        Protocol.QUIC, 0, mutated.wire_length, mutated, _record(seed.data)
    )
    return Mutated(messages=[extracted])


def _mut_quic_cid_too_long(seed: Seed, rng: DeterministicRandom) -> Mutated:
    # Likewise object-level: a 21-byte CID is unparseable on the wire.
    header = parse_one(seed.data)
    mutated = dataclasses.replace(header, dcid=rng.rand_bytes(21))
    extracted = ExtractedMessage(
        Protocol.QUIC, 0, mutated.wire_length, mutated, _record(seed.data)
    )
    return Mutated(messages=[extracted])


_STUN_KINDS = ("stun-request", "stun-response", "stun-indication")


def _mutator(
    name, protocol, criterion, codes, kinds, fn, expect_compliant=False
) -> Mutator:
    return Mutator(
        name, protocol, criterion, frozenset(codes), tuple(kinds), fn,
        expect_compliant,
    )


MUTATORS: Tuple[Mutator, ...] = (
    _mutator("stun-undefined-message-type", Protocol.STUN_TURN,
             Criterion.MESSAGE_TYPE, {"undefined-message-type"},
             _STUN_KINDS, _mut_stun_undefined_type),
    _mutator("stun-sequential-transaction-id", Protocol.STUN_TURN,
             Criterion.HEADER_FIELDS, {"sequential-transaction-id"},
             ("stun-request",), _mut_stun_sequential_txid),
    _mutator("stun-undefined-attribute", Protocol.STUN_TURN,
             Criterion.ATTRIBUTE_TYPES, {"undefined-attribute"},
             _STUN_KINDS, _mut_stun_undefined_attribute),
    _mutator("stun-bad-attribute-length", Protocol.STUN_TURN,
             Criterion.ATTRIBUTE_VALUES, {"bad-attribute-length"},
             _STUN_KINDS, _mut_stun_bad_attribute_length),
    _mutator("stun-bad-address-family", Protocol.STUN_TURN,
             Criterion.ATTRIBUTE_VALUES, {"bad-address-family"},
             _STUN_KINDS, _mut_stun_bad_address_family),
    _mutator("stun-bad-channel-number", Protocol.STUN_TURN,
             Criterion.ATTRIBUTE_VALUES, {"bad-channel-number"},
             _STUN_KINDS, _mut_stun_bad_channel_number),
    _mutator("stun-bad-error-code", Protocol.STUN_TURN,
             Criterion.ATTRIBUTE_VALUES, {"bad-error-code"},
             _STUN_KINDS, _mut_stun_bad_error_code),
    _mutator("stun-bad-fingerprint", Protocol.STUN_TURN,
             Criterion.ATTRIBUTE_VALUES, {"bad-fingerprint"},
             _STUN_KINDS, _mut_stun_bad_fingerprint),
    _mutator("stun-attribute-not-allowed", Protocol.STUN_TURN,
             Criterion.ATTRIBUTE_VALUES, {"attribute-not-allowed"},
             ("stun-indication", "stun-response"), _mut_stun_attribute_not_allowed),
    _mutator("stun-unanswered-retransmission", Protocol.STUN_TURN,
             Criterion.SEMANTICS, {"unanswered-retransmission"},
             ("stun-request",), _mut_stun_retransmission),
    _mutator("stun-allocate-pingpong", Protocol.STUN_TURN,
             Criterion.SEMANTICS, {"allocate-pingpong"},
             ("stun-request",), _mut_stun_allocate_pingpong),
    _mutator("channeldata-bad-channel-number", Protocol.STUN_TURN,
             Criterion.HEADER_FIELDS, {"bad-channel-number"},
             ("channeldata",), _mut_channeldata_bad_channel),
    _mutator("channeldata-padding", Protocol.STUN_TURN,
             Criterion.SEMANTICS, {"channeldata-padding"},
             ("channeldata",), _mut_channeldata_padding),
    _mutator("rtp-bad-padding", Protocol.RTP,
             Criterion.HEADER_FIELDS, {"bad-padding"},
             ("rtp",), _mut_rtp_bad_padding),
    _mutator("rtp-undefined-extension-profile", Protocol.RTP,
             Criterion.ATTRIBUTE_TYPES, {"undefined-extension-profile"},
             ("rtp",), _mut_rtp_undefined_profile),
    _mutator("rtp-id-zero-with-length", Protocol.RTP,
             Criterion.ATTRIBUTE_VALUES, {"id-zero-with-length"},
             ("rtp",), _mut_rtp_id_zero_with_length),
    _mutator("rtp-truncated-extension-element", Protocol.RTP,
             Criterion.ATTRIBUTE_VALUES, {"truncated-extension-element"},
             ("rtp",), _mut_rtp_truncated_element),
    _mutator("rtcp-undefined-packet-type", Protocol.RTCP,
             Criterion.MESSAGE_TYPE, {"undefined-packet-type"},
             ("rtcp-sr", "rtcp-rr", "rtcp-sdes"), _mut_rtcp_undefined_type),
    _mutator("rtcp-count-length-mismatch", Protocol.RTCP,
             Criterion.HEADER_FIELDS, {"count-length-mismatch"},
             ("rtcp-sr", "rtcp-rr"), _mut_rtcp_count_mismatch),
    _mutator("rtcp-undefined-sdes-item", Protocol.RTCP,
             Criterion.ATTRIBUTE_TYPES, {"undefined-sdes-item"},
             ("rtcp-sdes",), _mut_rtcp_undefined_sdes_item),
    _mutator("rtcp-undefined-feedback-format", Protocol.RTCP,
             Criterion.ATTRIBUTE_TYPES, {"undefined-feedback-format"},
             ("rtcp-sr",), _mut_rtcp_feedback_format),
    _mutator("rtcp-undefined-xr-block", Protocol.RTCP,
             Criterion.ATTRIBUTE_TYPES, {"undefined-xr-block"},
             ("rtcp-sr",), _mut_rtcp_undefined_xr_block),
    _mutator("rtcp-malformed-sdes", Protocol.RTCP,
             Criterion.ATTRIBUTE_VALUES, {"malformed-sdes"},
             ("rtcp-sdes",), _mut_rtcp_malformed_sdes),
    _mutator("rtcp-bad-app-name", Protocol.RTCP,
             Criterion.ATTRIBUTE_VALUES, {"bad-app-name"},
             ("rtcp-sr",), _mut_rtcp_bad_app_name),
    _mutator("rtcp-srtcp-missing-auth-tag", Protocol.RTCP,
             Criterion.SEMANTICS, {"srtcp-missing-auth-tag"},
             ("rtcp-sr", "rtcp-rr"), _mut_rtcp_srtcp_no_tag),
    _mutator("rtcp-undefined-trailing-bytes", Protocol.RTCP,
             Criterion.SEMANTICS, {"undefined-trailing-bytes"},
             ("rtcp-sr", "rtcp-rr", "rtcp-sdes"), _mut_rtcp_trailing_bytes),
    _mutator("quic-unknown-version", Protocol.QUIC,
             Criterion.HEADER_FIELDS, {"unknown-version"},
             ("quic-long",), _mut_quic_unknown_version),
    _mutator("quic-fixed-bit-clear", Protocol.QUIC,
             Criterion.HEADER_FIELDS, {"fixed-bit-clear"},
             ("quic-long",), _mut_quic_fixed_bit_clear),
    _mutator("quic-cid-too-long", Protocol.QUIC,
             Criterion.HEADER_FIELDS, {"cid-too-long"},
             ("quic-long",), _mut_quic_cid_too_long),
    _mutator("netem-drop-response", Protocol.STUN_TURN,
             Criterion.SEMANTICS, {"unanswered-retransmission"},
             ("stun-request",), _mut_netem_drop_response),
    _mutator("netem-duplicate-answered", Protocol.STUN_TURN,
             Criterion.SEMANTICS, frozenset(),
             ("stun-request",), _mut_netem_duplicate_answered,
             expect_compliant=True),
    _mutator("netem-reorder-response-first", Protocol.STUN_TURN,
             Criterion.SEMANTICS, frozenset(),
             ("stun-request",), _mut_netem_reorder_response_first,
             expect_compliant=True),
)


# --- Seeds ------------------------------------------------------------------

def _build_quic_initial(rng: DeterministicRandom) -> bytes:
    dcid = rng.rand_bytes(8)
    scid = rng.rand_bytes(8)
    payload = rng.rand_bytes(32)
    wire = bytearray()
    wire.append(0xC3)  # long form, fixed bit, Initial, 4-byte packet number
    wire += QUIC_V1.to_bytes(4, "big")
    wire.append(len(dcid))
    wire += dcid
    wire.append(len(scid))
    wire += scid
    wire.append(0)  # token length (varint)
    wire.append(4 + len(payload))  # Length (1-byte varint: < 64)
    wire += rng.rand_bytes(4)  # packet number
    wire += payload
    return bytes(wire)


def builtin_seeds() -> List[Seed]:
    """One hand-built compliant message per seed kind.

    These guarantee every mutator has raw material even before a golden
    corpus exists; :func:`harvest_seeds` adds simulator-realistic ones.
    """
    rng = DeterministicRandom("conformance-builtin")
    seeds: List[Seed] = []

    request = StunMessage(
        msg_type=0x0001,  # Binding Request
        transaction_id=rng.transaction_id(),
        attributes=[
            StunAttribute(int(_A.PRIORITY), rng.rand_bytes(4)),
            StunAttribute(int(_A.ICE_CONTROLLING), rng.rand_bytes(8)),
        ],
    )
    seeds.append(Seed("stun-request", request.build()))

    txid = rng.transaction_id()
    response = StunMessage(
        msg_type=0x0101,  # Binding Success Response
        transaction_id=txid,
        attributes=[
            StunAttribute(
                int(_A.XOR_MAPPED_ADDRESS),
                encode_xor_address("192.0.2.15", 40000, txid),
            )
        ],
    )
    seeds.append(Seed("stun-response", response.build()))

    txid = rng.transaction_id()
    indication = StunMessage(
        msg_type=0x0016,  # Send Indication
        transaction_id=txid,
        attributes=[
            StunAttribute(
                int(_A.XOR_PEER_ADDRESS),
                encode_xor_address("198.51.100.77", 52000, txid),
            ),
            StunAttribute(int(_A.DATA), rng.rand_bytes(16)),
        ],
    )
    seeds.append(Seed("stun-indication", indication.build()))

    seeds.append(
        Seed("channeldata", ChannelData(channel=0x4001, data=rng.rand_bytes(24)).build())
    )

    rtp = RtpPacket(
        payload_type=111,
        sequence_number=rng.u16(),
        timestamp=rng.u32(),
        ssrc=rng.u32(),
        payload=rng.rand_bytes(48),
        extension=build_one_byte_extension([(1, rng.rand_bytes(3))]),
    )
    seeds.append(Seed("rtp", rtp.build()))

    sr = SenderReport(
        ssrc=rng.u32(),
        ntp_timestamp=rng.u64(),
        rtp_timestamp=rng.u32(),
        packet_count=rng.getrandbits(16),
        octet_count=rng.getrandbits(20),
    )
    seeds.append(Seed("rtcp-sr", sr.to_packet().build()))
    seeds.append(Seed("rtcp-rr", ReceiverReport(ssrc=rng.u32()).to_packet().build()))
    sdes = SdesPacket(
        chunks=[SdesChunk(ssrc=rng.u32(), items=[SdesItem(1, b"fuzz@example.invalid")])]
    )
    seeds.append(Seed("rtcp-sdes", sdes.to_packet().build()))

    seeds.append(Seed("quic-long", _build_quic_initial(rng)))
    return seeds


def _seed_kind(extracted: ExtractedMessage) -> Optional[str]:
    message = extracted.message
    if isinstance(message, StunMessage):
        bits = message.msg_type & 0x0110
        if bits == 0x0000:
            return "stun-request"
        if bits == 0x0010:
            return "stun-indication"
        return "stun-response"
    if isinstance(message, ChannelData):
        return "channeldata"
    if isinstance(message, RtpPacket):
        return "rtp"
    if isinstance(message, RtcpPacket):
        return {200: "rtcp-sr", 201: "rtcp-rr", 202: "rtcp-sdes"}.get(
            message.packet_type
        )
    if isinstance(message, QuicHeader):
        if message.is_long and not message.is_version_negotiation:
            return "quic-long"
    return None


def _standalone_compliant(kind: str, data: bytes, checker: ComplianceChecker) -> bool:
    extracted = rewrap(_KIND_PROTOCOL[kind], data)
    if extracted is None:
        return False
    return checker.check([extracted])[0].compliant


def harvest_seeds(
    directory: Path,
    apps: Optional[Iterable[str]] = None,
    networks: Optional[Iterable[NetworkCondition]] = None,
    per_kind: int = 8,
) -> List[Seed]:
    """Collect compliant wire messages from the recorded golden corpus.

    Messages are re-judged standalone before admission: a message that is
    compliant only thanks to session context (or encrypted bodies whose
    trailer was stripped with the datagram) would poison the oracle.
    """
    manifest = load_manifest(directory)
    config = CorpusConfig.from_dict(manifest["config"])
    checker = ComplianceChecker()
    pools: Dict[str, List[Seed]] = {kind: [] for kind in SEED_KINDS}
    seen: set = set()
    for app, network in corpus_cells(manifest, apps, networks):
        if all(len(pool) >= per_kind for pool in pools.values()):
            break
        records = cell_records(app, network, config)
        dpi = reference_engine(config).analyze_records(records)
        for verdict in checker.check(dpi.messages()):
            if not verdict.compliant:
                continue
            extracted = verdict.message
            kind = _seed_kind(extracted)
            if kind is None or len(pools[kind]) >= per_kind:
                continue
            data = extracted.record.payload[
                extracted.offset:extracted.offset + extracted.length
            ]
            if data in seen or not _standalone_compliant(kind, data, checker):
                continue
            seen.add(data)
            pools[kind].append(Seed(kind, data))
    return [seed for pool in pools.values() for seed in pool]


# --- Oracle, minimizer, fuzz loop -------------------------------------------

@dataclass(frozen=True)
class OracleResult:
    ok: bool
    expected: str
    got: str


def run_oracle(
    mutator: Mutator, mutated: Mutated, checker: ComplianceChecker
) -> OracleResult:
    """Exactly one violation, on the targeted criterion, with a known code.

    For ``expect_compliant`` mutators the contract flips: *every* message
    of the set must be judged compliant — the mutation models transport
    behavior (duplication, reordering) the checker must tolerate.
    """
    if mutator.expect_compliant:
        expected = "every message compliant (benign network perturbation)"
        if not mutated.messages:
            return OracleResult(
                False, expected,
                "mutated payload did not re-parse into a message",
            )
        flagged = [
            verdict.violation_keys()
            for verdict in checker.check(mutated.messages)
            if not verdict.compliant
        ]
        if flagged:
            return OracleResult(False, expected, f"violations {flagged}")
        return OracleResult(True, expected, "compliant")
    expected = (
        f"exactly one violation with criterion C{int(mutator.criterion)} "
        f"and code in {sorted(mutator.codes)}"
    )
    if not mutated.messages:
        return OracleResult(
            False, expected, "mutated payload did not re-parse into a message"
        )
    verdict = checker.check(mutated.messages)[mutated.target]
    keys = verdict.violation_keys()
    got = f"violations {keys}" if keys else "compliant"
    if len(keys) != 1:
        return OracleResult(False, expected, got)
    criterion, code = keys[0]
    if criterion != int(mutator.criterion) or code not in mutator.codes:
        return OracleResult(False, expected, got)
    return OracleResult(True, expected, got)


def minimize_wire(
    protocol: Protocol,
    wire: bytes,
    signature: List[tuple],
    checker: ComplianceChecker,
    max_checks: int = 256,
) -> bytes:
    """Delta-debug *wire* down while it keeps producing *signature*."""

    def still_fails(candidate: bytes) -> bool:
        extracted = rewrap(protocol, candidate)
        if extracted is None:
            return False
        return checker.check([extracted])[0].violation_keys() == signature

    if not still_fails(wire):
        return wire
    return _ddmin(wire, still_fails, max_checks)


def _ddmin(data: bytes, predicate, max_checks: int) -> bytes:
    """Classic ddmin over byte chunks, bounded by *max_checks* probes."""
    n = 2
    checks = 0
    while len(data) >= 2:
        chunk = (len(data) + n - 1) // n
        reduced = False
        for start in range(0, len(data), chunk):
            candidate = data[:start] + data[start + chunk:]
            checks += 1
            if checks > max_checks:
                return data
            if candidate and predicate(candidate):
                data = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(data):
                break
            n = min(n * 2, len(data))
    return data


@dataclass(frozen=True)
class FuzzFailure:
    """One oracle miss: the checker attributed a mutation incorrectly."""

    mutator: str
    iteration: int
    seed_kind: str
    expected: str
    got: str
    payload_hex: str
    minimized_hex: str = ""

    def render(self) -> str:
        lines = [
            f"iteration {self.iteration} [{self.mutator} on {self.seed_kind}]:",
            f"  expected: {self.expected}",
            f"  got:      {self.got}",
        ]
        if self.payload_hex:
            lines.append(f"  payload:   {self.payload_hex}")
        if self.minimized_hex:
            lines.append(f"  minimized: {self.minimized_hex}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one seeded fuzzing campaign."""

    iterations: int
    seed: int
    executed: int = 0
    skipped: int = 0
    seed_count: int = 0
    per_mutator: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"conformance fuzz: {self.executed}/{self.iterations} mutations "
            f"executed ({self.skipped} skipped), seed {self.seed}, "
            f"{self.seed_count} seed messages, "
            f"{len(self.per_mutator)} mutators exercised"
        ]
        if self.ok:
            lines.append(
                "OK: every mutation was attributed to exactly the violated criterion"
            )
        else:
            lines.append(f"FAIL: {len(self.failures)} mis-attributed mutation(s)")
            lines.extend(failure.render() for failure in self.failures)
        return "\n".join(lines)


#: Failures are all minimized and rendered, so cap them: a systematically
#: broken checker would otherwise produce thousands of identical reports.
MAX_REPORTED_FAILURES = 25


def fuzz(
    iterations: int = 2000,
    seed: int = 0,
    corpus_dir: Optional[Path] = None,
    apps: Optional[Iterable[str]] = None,
    networks: Optional[Iterable[NetworkCondition]] = None,
    minimize: bool = True,
    mutators: Sequence[Mutator] = MUTATORS,
) -> FuzzReport:
    """Run a seeded mutation campaign and judge every mutation's verdict."""
    seeds = builtin_seeds()
    if corpus_dir is not None:
        seeds.extend(harvest_seeds(corpus_dir, apps, networks))
    checker = ComplianceChecker()
    for candidate in seeds:
        if not _standalone_compliant(candidate.kind, candidate.data, checker):
            raise RuntimeError(
                f"fuzz seed of kind {candidate.kind!r} is not compliant on its "
                f"own — the mutation oracle requires compliant starting points"
            )
    pools: Dict[str, List[Seed]] = {kind: [] for kind in SEED_KINDS}
    for candidate in seeds:
        pools[candidate.kind].append(candidate)

    rng = DeterministicRandom(f"conformance-fuzz/{seed}")
    report = FuzzReport(iterations=iterations, seed=seed, seed_count=len(seeds))
    for iteration in range(iterations):
        mutator = rng.choice(mutators)
        candidates = [s for kind in mutator.kinds for s in pools[kind]]
        if not candidates:
            report.skipped += 1
            continue
        chosen = rng.choice(candidates)
        try:
            mutated = mutator.apply(chosen, rng)
        except Exception as exc:  # noqa: BLE001 — a crashing mutator is a finding
            report.failures.append(FuzzFailure(
                mutator.name, iteration, chosen.kind,
                "the mutator to produce a payload",
                f"exception: {exc!r}", chosen.data.hex(),
            ))
            if len(report.failures) >= MAX_REPORTED_FAILURES:
                break
            continue
        if mutated is None:
            report.skipped += 1
            continue
        report.executed += 1
        report.per_mutator[mutator.name] = report.per_mutator.get(mutator.name, 0) + 1
        outcome = run_oracle(mutator, mutated, checker)
        if outcome.ok:
            continue
        minimized_hex = ""
        if minimize and mutated.wire is not None and mutated.messages:
            signature = checker.check(mutated.messages)[mutated.target].violation_keys()
            if signature:
                minimized_hex = minimize_wire(
                    mutated.protocol, mutated.wire, signature, checker
                ).hex()
        report.failures.append(FuzzFailure(
            mutator.name, iteration, chosen.kind, outcome.expected, outcome.got,
            mutated.wire.hex() if mutated.wire is not None else "",
            minimized_hex,
        ))
        if len(report.failures) >= MAX_REPORTED_FAILURES:
            break
    return report
