"""The DPI engine: candidate extraction → stream-context validation →
byte-ownership resolution → datagram classification (paper §4.1).

The engine works per transport stream because the validation heuristics are
inherently stream-scoped: RTP sequence continuity within an SSRC, STUN
transaction request/response pairing, and QUIC connection-ID consistency.
"""

from __future__ import annotations

import copy
from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dpi.candidates import MATCHERS, Candidate
from repro.dpi.messages import (
    DatagramAnalysis,
    DatagramClass,
    ExtractedMessage,
    Protocol,
)
from repro.packets.packet import PacketRecord
from repro.protocols.rtcp.constants import RTCP_TYPE_NAMES
from repro.protocols.rtp.header import RtpPacket, RtpParseError
from repro.protocols.stun.message import ChannelData, StunMessage
from repro.streams.flow import Stream, group_streams

DEFAULT_MAX_OFFSET = 200
#: Entries kept by the payload-dedup candidate cache.  Call traces are
#: dominated by repeated keepalive/probe datagrams (STUN binding requests,
#: RTCP receiver reports), so a modest LRU collapses their stage-one scans.
DEFAULT_CACHE_SIZE = 4096

#: An RTP SSRC group must show this many packets with continuous sequence
#: numbers before its candidates are believed.
MIN_RTP_GROUP = 3
#: Fraction of inter-packet sequence deltas that must look consecutive.
MIN_CONTINUITY = 0.5
_MAX_SEQ_STEP = 512


class CandidateCache:
    """Bounded LRU from payload bytes to its stage-one candidate list.

    Candidate extraction is pure in ``(payload, max_offset, protocols)``;
    the latter two are fixed per engine, so the payload alone keys the
    cache.  Stored candidates are pristine copies — overlap resolution
    mutates ``Candidate.length`` in place (the RTP-continuation rule), so
    lookups hand out shallow copies rather than the cached objects.
    """

    __slots__ = ("_store", "_maxsize", "hits", "misses")

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self._store: "OrderedDict[bytes, Tuple[Candidate, ...]]" = OrderedDict()
        self._maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, payload: bytes) -> Optional[List[Candidate]]:
        cached = self._store.get(payload)
        if cached is None:
            self.misses += 1
            return None
        self._store.move_to_end(payload)
        self.hits += 1
        return [copy.copy(c) for c in cached]

    def put(self, payload: bytes, candidates: Sequence[Candidate]) -> None:
        if self._maxsize == 0:
            return
        self._store[payload] = tuple(copy.copy(c) for c in candidates)
        self._store.move_to_end(payload)
        while len(self._store) > self._maxsize:
            self._store.popitem(last=False)


@dataclass
class DpiResult:
    """All datagram analyses plus convenience aggregations.

    ``cache_hits``/``cache_misses`` count the payload-dedup cache activity
    during the ``analyze_records`` call that produced this result.
    """

    analyses: List[DatagramAnalysis] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def messages(self) -> List[ExtractedMessage]:
        out: List[ExtractedMessage] = []
        for analysis in self.analyses:
            out.extend(analysis.messages)
        return out

    def by_class(self) -> Dict[DatagramClass, int]:
        counts: Dict[DatagramClass, int] = {cls: 0 for cls in DatagramClass}
        for analysis in self.analyses:
            counts[analysis.classification] += 1
        return counts

    def protocol_counts(self) -> Dict[Protocol, int]:
        counts: Dict[Protocol, int] = defaultdict(int)
        for message in self.messages():
            counts[message.protocol] += 1
        return dict(counts)


class DpiEngine:
    """Offset-shifting DPI with protocol-specific validation."""

    def __init__(
        self,
        max_offset: int = DEFAULT_MAX_OFFSET,
        protocols: Iterable[Protocol] = tuple(Protocol),
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        if max_offset < 0:
            raise ValueError("max_offset must be non-negative")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._max_offset = max_offset
        self._protocols = tuple(protocols)
        self._cache = CandidateCache(cache_size) if cache_size else None

    @property
    def max_offset(self) -> int:
        return self._max_offset

    @property
    def cache_hits(self) -> int:
        """Lifetime cache hits across every analysis this engine ran."""
        return self._cache.hits if self._cache else 0

    @property
    def cache_misses(self) -> int:
        """Lifetime cache misses across every analysis this engine ran."""
        return self._cache.misses if self._cache else 0

    @property
    def cache_hit_rate(self) -> float:
        return self._cache.hit_rate if self._cache else 0.0

    @property
    def cache_len(self) -> int:
        return len(self._cache) if self._cache else 0

    # -- public API --------------------------------------------------------------

    def analyze_records(self, records: Sequence[PacketRecord]) -> DpiResult:
        """Group UDP records into streams and analyze each."""
        udp = [r for r in records if r.transport == "UDP"]
        hits_before = self.cache_hits
        misses_before = self.cache_misses
        result = DpiResult()
        for stream in group_streams(udp).values():
            result.analyses.extend(self.analyze_stream(stream))
        result.analyses.sort(key=lambda a: a.record.timestamp)
        result.cache_hits = self.cache_hits - hits_before
        result.cache_misses = self.cache_misses - misses_before
        return result

    def analyze_stream(self, stream: Stream) -> List[DatagramAnalysis]:
        """Run both DPI stages over one transport stream."""
        per_datagram: List[Tuple[PacketRecord, List[Candidate]]] = []
        for record in stream.packets:
            per_datagram.append((record, self._extract_candidates(record.payload)))

        rtp_scores = self._validate_rtp_groups(per_datagram)
        valid_rtp_ssrcs = frozenset(rtp_scores)
        quic_cids = self._collect_quic_cids(per_datagram)

        analyses: List[DatagramAnalysis] = []
        for record, candidates in per_datagram:
            validated = [
                c for c in candidates
                if self._validate(c, record, valid_rtp_ssrcs, quic_cids)
            ]
            accepted = self._resolve_overlaps(validated, rtp_scores)
            messages = [self._materialize(c, record) for c in accepted]
            messages = [m for m in messages if m is not None]
            analyses.append(DatagramAnalysis.classify(record, messages))
        return analyses

    # -- stage 1 -------------------------------------------------------------------

    def _extract_candidates(self, payload: bytes) -> List[Candidate]:
        if self._cache is not None:
            cached = self._cache.get(payload)
            if cached is not None:
                return cached
        candidates: List[Candidate] = []
        for protocol in self._protocols:
            candidates.extend(MATCHERS[protocol](payload, self._max_offset))
        candidates.sort(key=lambda c: (c.offset, -c.length))
        if self._cache is not None:
            self._cache.put(payload, candidates)
        return candidates

    # -- stage 2: stream-context validation ------------------------------------------

    def _validate_rtp_groups(
        self, per_datagram: Sequence[Tuple[PacketRecord, List[Candidate]]]
    ) -> Dict[int, float]:
        """Score each candidate SSRC by sequence continuity over time.

        This implements the paper's "continuous sequence number within the
        same stream" heuristic and kills false positives surfaced from
        random payload bytes (their SSRC groups are tiny and discontinuous).
        The score — group size weighted by continuity — is also used to
        arbitrate between overlapping RTP candidates: a genuine media stream
        vastly outscores byte patterns that happen to recur inside
        proprietary headers.
        """
        groups: Dict[int, List[Tuple[float, int]]] = defaultdict(list)
        for record, candidates in per_datagram:
            for candidate in candidates:
                if candidate.protocol is Protocol.RTP:
                    groups[candidate.rtp_ssrc].append(
                        (record.timestamp, candidate.rtp_seq)
                    )
        scores: Dict[int, float] = {}
        for ssrc, samples in groups.items():
            if len(samples) < MIN_RTP_GROUP:
                continue
            samples.sort()
            consecutive = 0
            for (_, seq_a), (_, seq_b) in zip(samples, samples[1:]):
                delta = (seq_b - seq_a) & 0xFFFF
                if 1 <= delta <= _MAX_SEQ_STEP:
                    consecutive += 1
            continuity = consecutive / (len(samples) - 1)
            if continuity >= MIN_CONTINUITY:
                scores[ssrc] = len(samples) * continuity
        return scores

    def _collect_quic_cids(
        self, per_datagram: Sequence[Tuple[PacketRecord, List[Candidate]]]
    ) -> frozenset:
        """Connection IDs learned from long headers, for short-header checks."""
        cids = set()
        for _record, candidates in per_datagram:
            for candidate in candidates:
                if candidate.protocol is Protocol.QUIC and candidate.message is not None:
                    header = candidate.message
                    if header.is_long:
                        if header.dcid:
                            cids.add(bytes(header.dcid))
                        if header.scid:
                            cids.add(bytes(header.scid))
        return frozenset(cids)

    def _validate(
        self,
        candidate: Candidate,
        record: PacketRecord,
        valid_rtp_ssrcs: frozenset,
        quic_cids: frozenset,
    ) -> bool:
        if candidate.protocol is Protocol.RTP:
            return candidate.rtp_ssrc in valid_rtp_ssrcs
        if candidate.protocol is Protocol.STUN_TURN:
            return self._validate_stun(candidate)
        if candidate.protocol is Protocol.RTCP:
            return self._validate_rtcp(candidate, valid_rtp_ssrcs)
        if candidate.protocol is Protocol.QUIC:
            header = candidate.message
            if header.is_long:
                if header.is_version_negotiation:
                    # VN packets are structurally weak; require the stream to
                    # have real v1 traffic whose CIDs they reference.
                    return bytes(header.dcid) in quic_cids or bytes(header.scid) in quic_cids
                return True
            return bytes(header.dcid) in quic_cids
        return False

    def _validate_stun(self, candidate: Candidate) -> bool:
        message = candidate.message
        if isinstance(message, ChannelData):
            # Already constrained to offset 0 + exact fit by the matcher.
            return True
        if not message.classic:
            return True  # magic cookie verified by the matcher
        # Classic STUN: accepted only at offset 0 with an exact length fit
        # (checked by the matcher) and a plausible legacy message type.
        return candidate.offset == 0

    def _validate_rtcp(self, candidate: Candidate, valid_rtp_ssrcs: frozenset) -> bool:
        packet = candidate.message
        if candidate.anchor == 0 and packet.packet_type in RTCP_TYPE_NAMES:
            return True
        # Candidates at a non-zero offset (behind proprietary headers) and
        # unknown packet types both need the paper's cross-validation: the
        # sender SSRC must belong to a known RTP stream.  This kills byte
        # patterns inside media payloads that masquerade as RTCP.
        return packet.ssrc is not None and packet.ssrc in valid_rtp_ssrcs

    # -- byte-ownership resolution ------------------------------------------------------

    def _resolve_overlaps(
        self, candidates: List[Candidate], rtp_scores: Dict[int, float]
    ) -> List[Candidate]:
        """Byte-ownership arbitration between overlapping candidates.

        A byte can belong to at most one message (§4.1.1).  Among mutually
        overlapping RTP candidates, the one from the strongest SSRC group
        wins — an earlier offset alone is not evidence, because proprietary
        headers can contain counter bytes that masquerade as weak RTP
        streams.  Across protocols, the earliest offset wins.  The single
        exception is the RTP-continuation rule: an RTP packet whose SSRC
        matches an accepted one and whose sequence number is the successor
        truncates its predecessor instead of being dropped — this is how
        Zoom's two-RTP datagrams are recovered.
        """
        def rank(candidate: Candidate) -> Tuple[float, int]:
            if candidate.protocol is Protocol.RTP:
                score = rtp_scores.get(candidate.rtp_ssrc, 0.0)
            elif candidate.protocol is Protocol.RTCP:
                packet = candidate.message
                if candidate.anchor == 0 and packet.packet_type in RTCP_TYPE_NAMES:
                    # Anchored at the payload start with a registered type:
                    # as reliable as a length-delimited protocol gets.
                    score = float("inf")
                else:
                    # Cross-validated only through its SSRC: exactly as
                    # credible as the RTP group lending that SSRC, so a real
                    # RTP message at an earlier offset wins the overlap.
                    score = rtp_scores.get(packet.ssrc or -1, 0.0)
            else:
                # STUN (cookie-anchored) and QUIC (version-anchored) match
                # random bytes with ~2^-32 probability.
                score = float("inf")
            return (-score, candidate.offset)

        accepted: List[Candidate] = []
        for candidate in sorted(candidates, key=rank):
            overlapping = [a for a in accepted if _overlaps(a, candidate)]
            if not overlapping:
                accepted.append(candidate)
                continue
            last = max(overlapping, key=lambda a: a.offset)
            if (
                candidate.protocol is Protocol.RTP
                and last.protocol is Protocol.RTP
                and len(overlapping) == 1
                and candidate.rtp_ssrc == last.rtp_ssrc
                and (candidate.rtp_seq - last.rtp_seq) & 0xFFFF == 1
                and candidate.offset > last.offset
            ):
                last.length = candidate.offset - last.offset
                accepted.append(candidate)
        accepted.sort(key=lambda c: c.offset)
        return accepted

    # -- materialization -----------------------------------------------------------------

    def _materialize(
        self, candidate: Candidate, record: PacketRecord
    ) -> Optional[ExtractedMessage]:
        message = candidate.message
        if candidate.protocol is Protocol.RTP and message is None:
            window = record.payload[candidate.offset:candidate.offset + candidate.length]
            try:
                message = RtpPacket.parse(window, strict=False)
            except RtpParseError:
                return None
        return ExtractedMessage(
            protocol=candidate.protocol,
            offset=candidate.offset,
            length=candidate.length,
            message=message,
            record=record,
            trailer=candidate.trailer,
        )


def _overlaps(a: Candidate, b: Candidate) -> bool:
    return a.offset < b.end and b.offset < a.end
