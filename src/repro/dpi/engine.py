"""The DPI engine: candidate extraction → stream-context validation →
byte-ownership resolution → datagram classification (paper §4.1).

The engine works per transport stream because the validation heuristics are
inherently stream-scoped: RTP sequence continuity within an SSRC, STUN
transaction request/response pairing, and QUIC connection-ID consistency.
"""

from __future__ import annotations

import copy
import hashlib
from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.dpi.candidates import MATCHERS, Candidate, rtp_candidates
from repro.dpi.columnar import ColumnarScanner, ColumnarStats
from repro.dpi.fastpath import (
    DEFAULT_SIGNATURE_K,
    SignatureLearner,
    predicted_rtp_candidates,
)
from repro.dpi.messages import (
    DatagramAnalysis,
    DatagramClass,
    ExtractedMessage,
    Protocol,
)
from repro.packets.packet import PacketRecord
from repro.protocols.rtcp.constants import RTCP_TYPE_NAMES
from repro.protocols.rtp.header import RtpPacket, RtpParseError
from repro.protocols.stun.message import ChannelData, StunMessage
from repro.streams.flow import FlowKey, Stream

DEFAULT_MAX_OFFSET = 200
#: Entries kept by the payload-dedup candidate cache.  Call traces are
#: dominated by repeated keepalive/probe datagrams (STUN binding requests,
#: RTCP receiver reports), so a modest LRU collapses their stage-one scans.
DEFAULT_CACHE_SIZE = 4096

#: Columnar look-ahead while a fast-path learner is still unlocked: large
#: enough to batch the pre-lock sweeps, small enough that the scans wasted
#: when the lock lands stay negligible.
_PRELOCK_LOOKAHEAD = 32

#: An RTP SSRC group must show this many packets with continuous sequence
#: numbers before its candidates are believed.
MIN_RTP_GROUP = 3
#: Fraction of inter-packet sequence deltas that must look consecutive.
MIN_CONTINUITY = 0.5
_MAX_SEQ_STEP = 512


class CandidateCache:
    """Bounded LRU from a payload digest to its stage-one candidate list.

    Candidate extraction is pure in ``(payload, max_offset, protocols)``;
    the latter two are fixed per engine, so the payload alone keys the
    cache.  Keys are length-prefixed 128-bit BLAKE2b digests rather than
    the payload bytes themselves, which bounds the key memory of a warm
    cache at ``maxsize × 20`` bytes instead of pinning ``maxsize`` full
    media datagrams (~1200 bytes each) alive in the dict.  A digest
    collision would serve the wrong candidate list, but at 2^-128 per pair
    that is far below any hardware error rate.  Stored candidates are
    pristine copies — overlap resolution mutates ``Candidate.length`` in
    place (the RTP-continuation rule), so lookups hand out shallow copies
    rather than the cached objects.
    """

    __slots__ = ("_store", "_maxsize", "hits", "misses")

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self._store: "OrderedDict[bytes, Tuple[Candidate, ...]]" = OrderedDict()
        self._maxsize = maxsize
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(payload: bytes) -> bytes:
        return len(payload).to_bytes(4, "big") + hashlib.blake2b(
            payload, digest_size=16
        ).digest()

    @staticmethod
    def digest_many(payloads: Sequence[bytes]) -> List[bytes]:
        """Cache keys for a whole batch of payloads in one pass.

        The columnar path keys each stream's payloads exactly once and
        then uses the keyed accessors below, instead of digesting every
        payload twice (once in ``get``, again in ``put``).
        """
        blake2b = hashlib.blake2b
        return [
            len(payload).to_bytes(4, "big")
            + blake2b(payload, digest_size=16).digest()
            for payload in payloads
        ]

    def contains_key(self, key: bytes) -> bool:
        """Presence probe that counts nothing and touches no LRU order —
        a scheduling heuristic, not a lookup."""
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, payload: bytes) -> Optional[List[Candidate]]:
        return self.get_keyed(self._key(payload))

    def get_keyed(self, key: bytes) -> Optional[List[Candidate]]:
        """``get`` for a pre-computed key: identical hit/miss and LRU
        semantics, no digest."""
        cached = self._store.get(key)
        if cached is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return [copy.copy(c) for c in cached]

    def put(self, payload: bytes, candidates: Sequence[Candidate]) -> None:
        if self._maxsize == 0:
            return
        self.put_keyed(self._key(payload), candidates)

    def put_keyed(self, key: bytes, candidates: Sequence[Candidate]) -> None:
        if self._maxsize == 0:
            return
        self._store[key] = tuple(copy.copy(c) for c in candidates)
        self._store.move_to_end(key)
        while len(self._store) > self._maxsize:
            self._store.popitem(last=False)

    def get_many(
        self, payloads: Sequence[bytes]
    ) -> Tuple[List[bytes], List[Optional[List[Candidate]]]]:
        """Digest-once batch lookup: the keys plus per-payload results,
        counting hits/misses exactly as sequential ``get`` calls would."""
        keys = self.digest_many(payloads)
        return keys, [self.get_keyed(key) for key in keys]

    def put_many(
        self, entries: Iterable[Tuple[bytes, Sequence[Candidate]]]
    ) -> None:
        """Store ``(key, candidates)`` pairs in order (later wins), with
        the same eviction behaviour as sequential ``put`` calls."""
        if self._maxsize == 0:
            return
        for key, candidates in entries:
            self.put_keyed(key, candidates)


@dataclass
class DpiStats:
    """Instrumentation counters for the extraction layer.

    Per datagram, exactly one of three things happens: its candidates come
    from the dedup cache (``cache_hits``), from a locked-signature fast-path
    probe (``fastpath_hits``), or from a full 0..k sweep (``sweeps``).  A
    ``fastpath_fallbacks`` datagram additionally counted one failed probe
    before its sweep, and a ``fastpath_redos`` stream re-swept all of its
    datagrams after stage two rejected a predicted message (those redo
    sweeps are included in ``sweeps``).  ``matcher_calls`` counts actual
    matcher-function invocations per protocol, including targeted fast-path
    probes — so it reflects work really done, not work scheduled.
    """

    datagrams: int = 0
    sweeps: int = 0
    fastpath_hits: int = 0
    fastpath_fallbacks: int = 0
    fastpath_redos: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    matcher_calls: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def cache_lookups(self) -> int:
        """Total dedup-cache probes (each datagram probes at most once)."""
        return self.cache_hits + self.cache_misses

    @property
    def fastpath_hit_rate(self) -> float:
        """Fraction of analyzed datagrams served by the fast path."""
        return self.fastpath_hits / self.datagrams if self.datagrams else 0.0

    def invariant_violations(self) -> List[str]:
        """Internal-consistency checks over the counters; empty when sound.

        Every analyzed datagram gets its candidates from exactly one of
        three sources — the dedup cache, a locked-signature probe, or a
        full sweep — so those three must cover ``datagrams`` exactly,
        except that a stream redo re-sweeps datagrams already counted
        (making the sum strictly larger).  Each datagram probes the cache
        at most once, and every fast-path fallback is followed by a sweep.
        """
        problems: List[str] = []
        for name in ("datagrams", "sweeps", "fastpath_hits",
                     "fastpath_fallbacks", "fastpath_redos",
                     "cache_hits", "cache_misses"):
            if getattr(self, name) < 0:
                problems.append(f"{name} is negative: {getattr(self, name)}")
        if any(count < 0 for count in self.matcher_calls.values()):
            problems.append(f"negative matcher call count: {self.matcher_calls}")
        if self.cache_lookups > self.datagrams:
            problems.append(
                f"cache hits + misses ({self.cache_lookups}) exceed "
                f"datagrams ({self.datagrams})"
            )
        covered = self.cache_hits + self.fastpath_hits + self.sweeps
        if covered < self.datagrams:
            problems.append(
                f"cache hits + fast-path hits + sweeps ({covered}) do not "
                f"cover all {self.datagrams} datagrams"
            )
        if self.fastpath_redos == 0 and covered != self.datagrams:
            problems.append(
                f"without redos, cache hits + fast-path hits + sweeps "
                f"({covered}) must equal datagrams ({self.datagrams})"
            )
        if self.sweeps < self.fastpath_fallbacks:
            problems.append(
                f"sweeps ({self.sweeps}) fewer than fast-path fallbacks "
                f"({self.fastpath_fallbacks}); every fallback must sweep"
            )
        return problems

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable counter snapshot (golden-corpus schema)."""
        return {
            "datagrams": self.datagrams,
            "sweeps": self.sweeps,
            "fastpath_hits": self.fastpath_hits,
            "fastpath_fallbacks": self.fastpath_fallbacks,
            "fastpath_redos": self.fastpath_redos,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "matcher_calls": dict(sorted(self.matcher_calls.items())),
        }

    def copy(self) -> "DpiStats":
        out = copy.copy(self)
        out.matcher_calls = dict(self.matcher_calls)
        return out

    def since(self, before: "DpiStats") -> "DpiStats":
        """Counter deltas accumulated after the ``before`` snapshot."""
        calls = {
            protocol: count - before.matcher_calls.get(protocol, 0)
            for protocol, count in self.matcher_calls.items()
            if count - before.matcher_calls.get(protocol, 0)
        }
        return DpiStats(
            datagrams=self.datagrams - before.datagrams,
            sweeps=self.sweeps - before.sweeps,
            fastpath_hits=self.fastpath_hits - before.fastpath_hits,
            fastpath_fallbacks=self.fastpath_fallbacks - before.fastpath_fallbacks,
            fastpath_redos=self.fastpath_redos - before.fastpath_redos,
            cache_hits=self.cache_hits - before.cache_hits,
            cache_misses=self.cache_misses - before.cache_misses,
            matcher_calls=calls,
        )

    def merge(self, other: "DpiStats") -> None:
        self.datagrams += other.datagrams
        self.sweeps += other.sweeps
        self.fastpath_hits += other.fastpath_hits
        self.fastpath_fallbacks += other.fastpath_fallbacks
        self.fastpath_redos += other.fastpath_redos
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        for protocol, count in other.matcher_calls.items():
            self.matcher_calls[protocol] = (
                self.matcher_calls.get(protocol, 0) + count
            )


@dataclass
class DpiResult:
    """All datagram analyses plus convenience aggregations.

    ``stats`` carries the extraction counters for the ``analyze_records``
    call that produced this result; ``cache_hits``/``cache_misses`` mirror
    the cache counters within it for backward compatibility.
    """

    analyses: List[DatagramAnalysis] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    stats: DpiStats = field(default_factory=DpiStats)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def messages(self) -> List[ExtractedMessage]:
        out: List[ExtractedMessage] = []
        for analysis in self.analyses:
            out.extend(analysis.messages)
        return out

    def by_class(self) -> Dict[DatagramClass, int]:
        counts: Dict[DatagramClass, int] = {cls: 0 for cls in DatagramClass}
        for analysis in self.analyses:
            counts[analysis.classification] += 1
        return counts

    def protocol_counts(self) -> Dict[Protocol, int]:
        counts: Dict[Protocol, int] = defaultdict(int)
        for message in self.messages():
            counts[message.protocol] += 1
        return dict(counts)


class DpiEngine:
    """Offset-shifting DPI with protocol-specific validation.

    ``fastpath`` enables the flow-sticky fast path (on by default): once a
    stream's ``(offset, SSRC)`` framing has recurred across ``fastpath_k``
    datagrams, later datagrams skip the RTP offset sweep and probe only the
    learned offsets, with per-datagram and per-stream fallbacks keeping the
    output bit-identical to the sweep (see :mod:`repro.dpi.fastpath`).
    """

    def __init__(
        self,
        max_offset: int = DEFAULT_MAX_OFFSET,
        protocols: Iterable[Protocol] = tuple(Protocol),
        cache_size: int = DEFAULT_CACHE_SIZE,
        fastpath: bool = True,
        fastpath_k: int = DEFAULT_SIGNATURE_K,
        backend: str = "scalar",
    ):
        if max_offset < 0:
            raise ValueError("max_offset must be non-negative")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if backend not in ("scalar", "columnar"):
            raise ValueError(f"unknown DPI backend: {backend!r}")
        self._max_offset = max_offset
        self._protocols = tuple(protocols)
        self._cache = CandidateCache(cache_size) if cache_size else None
        # The fast path only skips work for RTP sweeps; without RTP in the
        # protocol set there is nothing to learn.
        self._fastpath = bool(fastpath) and Protocol.RTP in self._protocols
        self._fastpath_k = fastpath_k
        self._backend = backend
        self._columnar = (
            ColumnarScanner(max_offset, self._protocols)
            if backend == "columnar"
            else None
        )
        self.stats = DpiStats()

    @property
    def max_offset(self) -> int:
        return self._max_offset

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def columnar_stats(self) -> Optional[ColumnarStats]:
        """Batch-scanner counters, or None on the scalar backend."""
        return self._columnar.stats if self._columnar is not None else None

    @property
    def fastpath_enabled(self) -> bool:
        return self._fastpath

    @property
    def fastpath_hits(self) -> int:
        """Lifetime fast-path hits across every analysis this engine ran."""
        return self.stats.fastpath_hits

    @property
    def fastpath_fallbacks(self) -> int:
        """Lifetime fast-path prediction misses (each fell back to a sweep)."""
        return self.stats.fastpath_fallbacks

    @property
    def cache_hits(self) -> int:
        """Lifetime cache hits across every analysis this engine ran."""
        return self._cache.hits if self._cache else 0

    @property
    def cache_misses(self) -> int:
        """Lifetime cache misses across every analysis this engine ran."""
        return self._cache.misses if self._cache else 0

    @property
    def cache_hit_rate(self) -> float:
        return self._cache.hit_rate if self._cache else 0.0

    @property
    def cache_len(self) -> int:
        return len(self._cache) if self._cache else 0

    # -- public API --------------------------------------------------------------

    def analyze_records(self, records: Sequence[PacketRecord]) -> DpiResult:
        """Group UDP records into streams and analyze each.

        Thin batch adapter over :class:`DpiStreamSession`: one feed pass
        plus a flush, so batch and streaming callers share the grouping,
        analysis order, and stats accounting by construction.
        """
        session = self.stream_session()
        for record in records:
            session.feed(record)
        return session.result()

    def analyze_iter(
        self, records: Iterable[PacketRecord]
    ) -> Iterator[DatagramAnalysis]:
        """Yield per-datagram analyses for *records* without building a
        :class:`DpiResult` — consumers that aggregate as they go never hold
        more than one analysis plus the session's open-stream buffers.

        Stream-context validation (RTP sequence continuity, QUIC CID
        learning) is whole-stream-scoped, so analyses for a stream cannot
        be emitted before that stream's last datagram has been seen; a
        capture-shaped input therefore still buffers until the feed ends.
        Live callers that know flow lifetimes should drive a
        :meth:`stream_session` directly and call ``finish_stream`` to
        release per-stream state early.
        """
        session = self.stream_session()
        for record in records:
            session.feed(record)
        yield from session.flush()

    def stream_session(self) -> "DpiStreamSession":
        """An incremental analysis session bound to this engine.

        Sessions share the engine's candidate cache and lifetime stats;
        a session's stats delta is only meaningful while sessions on one
        engine do not interleave.
        """
        return DpiStreamSession(self)

    def analyze_stream(self, stream: Stream) -> List[DatagramAnalysis]:
        """Run both DPI stages over one transport stream."""
        per_datagram, predicted = self._extract_stream(stream)
        accepted, rtp_scores = self._validate_stream(per_datagram)
        if predicted and not self._predictions_accepted(
            predicted, accepted, rtp_scores
        ):
            # Stage two rejected a message the fast path predicted: the
            # signature was wrong in a way the per-datagram checks could not
            # see, so redo the whole stream with unconditional sweeps.
            self.stats.fastpath_redos += 1
            if self._columnar is not None:
                per_datagram = self._resweep_stream(stream)
            else:
                per_datagram = [
                    (record, self._resweep(record.payload))
                    for record in stream.packets
                ]
            accepted, rtp_scores = self._validate_stream(per_datagram)

        analyses: List[DatagramAnalysis] = []
        for (record, _candidates), accepted_list in zip(per_datagram, accepted):
            messages = [self._materialize(c, record) for c in accepted_list]
            messages = [m for m in messages if m is not None]
            analyses.append(DatagramAnalysis.classify(record, messages))
        return analyses

    # -- stage 1 -------------------------------------------------------------------

    def _extract_stream(
        self, stream: Stream
    ) -> Tuple[
        List[Tuple[PacketRecord, List[Candidate]]],
        List[Tuple[int, Tuple[Tuple[int, int, int], ...]]],
    ]:
        """Extract candidates for every datagram, fast path included.

        Returns the per-datagram candidate lists plus, for each fast-path
        hit, its index and the ``(offset, SSRC, end)`` spans it predicted —
        stage two uses those to confirm the predictions after validation.
        """
        if self._columnar is not None:
            return self._extract_stream_columnar(stream)
        stats = self.stats
        learner = (
            SignatureLearner(self._fastpath_k) if self._fastpath else None
        )
        per_datagram: List[Tuple[PacketRecord, List[Candidate]]] = []
        predicted: List[Tuple[int, Tuple[Tuple[int, int, int], ...]]] = []
        for record in stream.packets:
            payload = record.payload
            stats.datagrams += 1
            if self._cache is not None:
                cached = self._cache.get(payload)
                if cached is not None:
                    stats.cache_hits += 1
                    if learner is not None:
                        learner.observe(cached)
                    per_datagram.append((record, cached))
                    continue
                stats.cache_misses += 1
            if learner is not None and learner.locked:
                candidates = self._extract_predicted(payload, learner)
                if candidates is not None:
                    stats.fastpath_hits += 1
                    learner.record_hit()
                    spans = tuple(
                        (c.offset, c.rtp_ssrc, c.end)
                        for c in candidates
                        if c.protocol is Protocol.RTP
                    )
                    predicted.append((len(per_datagram), spans))
                    if self._cache is not None:
                        self._cache.put(payload, candidates)
                    per_datagram.append((record, candidates))
                    continue
                stats.fastpath_fallbacks += 1
                learner.record_miss()
            candidates = self._sweep(payload)
            if learner is not None:
                learner.observe(candidates)
            if self._cache is not None:
                self._cache.put(payload, candidates)
            per_datagram.append((record, candidates))
        return per_datagram, predicted

    def _extract_stream_columnar(
        self, stream: Stream
    ) -> Tuple[
        List[Tuple[PacketRecord, List[Candidate]]],
        List[Tuple[int, Tuple[Tuple[int, int, int], ...]]],
    ]:
        """``_extract_stream`` with sweeps served by the batch scanner.

        The per-record control flow (cache probe, fast-path probe, stats
        accounting) is kept byte-for-byte: only the *source* of a sweep's
        candidate list changes, and the batch scan is pure in the payload,
        so computing it ahead of time cannot alter any observable state.
        Payloads are keyed once up front (``digest_many``) and the keyed
        cache accessors replace the digesting ones.
        """
        stats = self.stats
        learner = (
            SignatureLearner(self._fastpath_k) if self._fastpath else None
        )
        cache = self._cache
        payloads = [record.payload for record in stream.packets]
        keys = (
            CandidateCache.digest_many(payloads) if cache is not None else None
        )
        sweeper = _StreamSweeper(self, payloads, keys)
        per_datagram: List[Tuple[PacketRecord, List[Candidate]]] = []
        predicted: List[Tuple[int, Tuple[Tuple[int, int, int], ...]]] = []
        for index, record in enumerate(stream.packets):
            payload = record.payload
            stats.datagrams += 1
            if cache is not None:
                cached = cache.get_keyed(keys[index])
                if cached is not None:
                    stats.cache_hits += 1
                    if learner is not None:
                        learner.observe(cached)
                    per_datagram.append((record, cached))
                    continue
                stats.cache_misses += 1
            locked = False
            if learner is not None and learner.locked:
                locked = True
                candidates = self._extract_predicted(payload, learner)
                if candidates is not None:
                    stats.fastpath_hits += 1
                    learner.record_hit()
                    spans = tuple(
                        (c.offset, c.rtp_ssrc, c.end)
                        for c in candidates
                        if c.protocol is Protocol.RTP
                    )
                    predicted.append((len(per_datagram), spans))
                    if cache is not None:
                        cache.put_keyed(keys[index], candidates)
                    per_datagram.append((record, candidates))
                    continue
                stats.fastpath_fallbacks += 1
                learner.record_miss()
            self._count_sweep()
            if locked:
                # Post-lock sweeps are rare fallbacks; look-ahead would
                # scan payloads the fast path will serve.
                budget = 1
            elif learner is not None:
                # The learner usually locks within ~k datagrams, so a full
                # chunk of look-ahead would mostly be wasted.
                budget = _PRELOCK_LOOKAHEAD
            else:
                budget = self._columnar.batch_size
            candidates = sweeper.sweep(index, budget)
            if learner is not None:
                learner.observe(candidates)
            if cache is not None:
                cache.put_keyed(keys[index], candidates)
            per_datagram.append((record, candidates))
        return per_datagram, predicted

    def _sweep(self, payload: bytes) -> List[Candidate]:
        """Full stage-one scan: every matcher over offsets 0..k."""
        self._count_sweep()
        return self._scan(payload)

    def _count_sweep(self) -> None:
        """Account one full sweep, however its scan is computed.

        The columnar backend counts exactly like the scalar one — a gated
        matcher was still logically invoked — so ``DpiStats`` stays
        bit-identical across backends.
        """
        stats = self.stats
        stats.sweeps += 1
        calls = stats.matcher_calls
        for protocol in self._protocols:
            calls[protocol.value] = calls.get(protocol.value, 0) + 1

    def _scan(self, payload: bytes) -> List[Candidate]:
        """The sweep's pure scan: every matcher, merged and stable-sorted."""
        candidates: List[Candidate] = []
        for protocol in self._protocols:
            candidates.extend(MATCHERS[protocol](payload, self._max_offset))
        candidates.sort(key=lambda c: (c.offset, -c.length))
        return candidates

    def _resweep(self, payload: bytes) -> List[Candidate]:
        """Redo sweep that must not read the cache.

        The first pass cached the fast path's (possibly wrong) candidate
        lists for this stream's payloads; reading them back would replay
        the mistake.  Writing the fresh sweep results corrects those
        entries instead.
        """
        candidates = self._sweep(payload)
        if self._cache is not None:
            self._cache.put(payload, candidates)
        return candidates

    def _resweep_stream(
        self, stream: Stream
    ) -> List[Tuple[PacketRecord, List[Candidate]]]:
        """Batched redo: unconditional sweeps for a whole stream.

        Like ``_resweep`` this must not read the cache (the first pass
        cached the fast path's possibly-wrong lists) but does write the
        fresh results back over them, in record order.
        """
        scanner = self._columnar
        payloads = [record.payload for record in stream.packets]
        keys = (
            CandidateCache.digest_many(payloads)
            if self._cache is not None
            else None
        )
        out: List[Tuple[PacketRecord, List[Candidate]]] = []
        for base in range(0, len(payloads), scanner.batch_size):
            results = scanner.scan_batch(payloads[base:base + scanner.batch_size])
            for step, scanned in enumerate(results):
                index = base + step
                self._count_sweep()
                candidates = (
                    scanned if scanned is not None else self._scan(payloads[index])
                )
                if self._cache is not None:
                    self._cache.put_keyed(keys[index], candidates)
                out.append((stream.packets[index], candidates))
        return out

    def _extract_predicted(
        self, payload: bytes, learner: SignatureLearner
    ) -> Optional[List[Candidate]]:
        """Stage-one scan assuming the learned signature; None on a miss.

        Only the RTP sweep is replaced by a targeted probe — the other
        matchers are anchored scans that cost little and must keep running
        so e.g. a STUN message appearing mid-stream is never missed.
        Candidates are assembled in the engine's protocol order so the
        stable sort below yields byte-identical ordering to ``_sweep``.
        """
        signature = learner.signature
        rtp = predicted_rtp_candidates(
            payload, self._max_offset, signature, rtp_candidates
        )
        stats = self.stats
        calls = stats.matcher_calls
        calls[Protocol.RTP.value] = calls.get(Protocol.RTP.value, 0) + 1
        if rtp is None:
            return None
        if learner.continuation_risk(payload, self._max_offset):
            return None
        candidates: List[Candidate] = []
        for protocol in self._protocols:
            if protocol is Protocol.RTP:
                candidates.extend(rtp)
                continue
            calls[protocol.value] = calls.get(protocol.value, 0) + 1
            candidates.extend(MATCHERS[protocol](payload, self._max_offset))
        candidates.sort(key=lambda c: (c.offset, -c.length))
        return candidates

    def _extract_candidates(self, payload: bytes) -> List[Candidate]:
        """Cache-wrapped single-payload sweep (kept for direct callers)."""
        if self._cache is not None:
            cached = self._cache.get(payload)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
            self.stats.cache_misses += 1
        candidates = self._sweep(payload)
        if self._cache is not None:
            self._cache.put(payload, candidates)
        return candidates

    @staticmethod
    def _predictions_accepted(
        predicted: Sequence[Tuple[int, Tuple[Tuple[int, int, int], ...]]],
        accepted: Sequence[List[Candidate]],
        rtp_scores: Dict[int, float],
    ) -> bool:
        """Did stage two treat the fast path's predictions normally?

        Two kinds of rejection are benign because they play out identically
        in the sweep (a trusted pair's validation samples are collected
        identically in both modes, so stage two sees the same evidence):

        * validation rejection — byte-stable proprietary fields (a constant
          extension magic, say) can earn a spot in the signature and are
          then killed for zero sequence continuity (score 0);
        * overlap loss — shadow candidates inside a stronger message's
          bytes lose the deterministic byte-ownership arbitration.

        What remains is a predicted message with a *valid* SSRC group that
        vanished with nothing accepted in its place: stage two did
        something the fast path's model cannot explain, so the stream is
        redone with unconditional sweeps.
        """
        for index, spans in predicted:
            kept_rtp = {
                (c.offset, c.rtp_ssrc)
                for c in accepted[index]
                if c.protocol is Protocol.RTP
            }
            missing = [
                span for span in spans
                if (span[0], span[1]) not in kept_rtp
                and rtp_scores.get(span[1], 0.0) > 0.0
            ]
            if not missing:
                continue
            for offset, _ssrc, end in missing:
                overlapped = any(
                    c.offset < end and offset < c.end
                    for c in accepted[index]
                )
                if not overlapped:
                    return False
        return True

    # -- stage 2: stream-context validation ------------------------------------------

    def _validate_stream(
        self, per_datagram: Sequence[Tuple[PacketRecord, List[Candidate]]]
    ) -> Tuple[List[List[Candidate]], Dict[int, float]]:
        """Validate and overlap-resolve every datagram's candidates.

        Returns the accepted candidates per datagram plus the RTP group
        scores, which the fast-path redo check consults.
        """
        rtp_scores = self._validate_rtp_groups(per_datagram)
        valid_rtp_ssrcs = frozenset(rtp_scores)
        quic_cids = self._collect_quic_cids(per_datagram)
        accepted: List[List[Candidate]] = []
        for record, candidates in per_datagram:
            validated = [
                c for c in candidates
                if self._validate(c, record, valid_rtp_ssrcs, quic_cids)
            ]
            accepted.append(self._resolve_overlaps(validated, rtp_scores))
        return accepted, rtp_scores

    def _validate_rtp_groups(
        self, per_datagram: Sequence[Tuple[PacketRecord, List[Candidate]]]
    ) -> Dict[int, float]:
        """Score each candidate SSRC by sequence continuity over time.

        This implements the paper's "continuous sequence number within the
        same stream" heuristic and kills false positives surfaced from
        random payload bytes (their SSRC groups are tiny and discontinuous).
        The score — group size weighted by continuity — is also used to
        arbitrate between overlapping RTP candidates: a genuine media stream
        vastly outscores byte patterns that happen to recur inside
        proprietary headers.
        """
        groups: Dict[int, List[Tuple[float, int]]] = defaultdict(list)
        for record, candidates in per_datagram:
            for candidate in candidates:
                if candidate.protocol is Protocol.RTP:
                    groups[candidate.rtp_ssrc].append(
                        (record.timestamp, candidate.rtp_seq)
                    )
        scores: Dict[int, float] = {}
        for ssrc, samples in groups.items():
            if len(samples) < MIN_RTP_GROUP:
                continue
            samples.sort()
            consecutive = 0
            for (_, seq_a), (_, seq_b) in zip(samples, samples[1:]):
                delta = (seq_b - seq_a) & 0xFFFF
                if 1 <= delta <= _MAX_SEQ_STEP:
                    consecutive += 1
            continuity = consecutive / (len(samples) - 1)
            if continuity >= MIN_CONTINUITY:
                scores[ssrc] = len(samples) * continuity
        return scores

    def _collect_quic_cids(
        self, per_datagram: Sequence[Tuple[PacketRecord, List[Candidate]]]
    ) -> frozenset:
        """Connection IDs learned from long headers, for short-header checks."""
        cids = set()
        for _record, candidates in per_datagram:
            for candidate in candidates:
                if candidate.protocol is Protocol.QUIC and candidate.message is not None:
                    header = candidate.message
                    if header.is_long:
                        if header.dcid:
                            cids.add(bytes(header.dcid))
                        if header.scid:
                            cids.add(bytes(header.scid))
        return frozenset(cids)

    def _validate(
        self,
        candidate: Candidate,
        record: PacketRecord,
        valid_rtp_ssrcs: frozenset,
        quic_cids: frozenset,
    ) -> bool:
        if candidate.protocol is Protocol.RTP:
            return candidate.rtp_ssrc in valid_rtp_ssrcs
        if candidate.protocol is Protocol.STUN_TURN:
            return self._validate_stun(candidate)
        if candidate.protocol is Protocol.RTCP:
            return self._validate_rtcp(candidate, valid_rtp_ssrcs)
        if candidate.protocol is Protocol.QUIC:
            header = candidate.message
            if header.is_long:
                if header.is_version_negotiation:
                    # VN packets are structurally weak; require the stream to
                    # have real v1 traffic whose CIDs they reference.
                    return bytes(header.dcid) in quic_cids or bytes(header.scid) in quic_cids
                return True
            return bytes(header.dcid) in quic_cids
        return False

    def _validate_stun(self, candidate: Candidate) -> bool:
        message = candidate.message
        if isinstance(message, ChannelData):
            # Already constrained to offset 0 + exact fit by the matcher.
            return True
        if not message.classic:
            return True  # magic cookie verified by the matcher
        # Classic STUN: accepted only at offset 0 with an exact length fit
        # (checked by the matcher) and a plausible legacy message type.
        return candidate.offset == 0

    def _validate_rtcp(self, candidate: Candidate, valid_rtp_ssrcs: frozenset) -> bool:
        packet = candidate.message
        if candidate.anchor == 0 and packet.packet_type in RTCP_TYPE_NAMES:
            return True
        # Candidates at a non-zero offset (behind proprietary headers) and
        # unknown packet types both need the paper's cross-validation: the
        # sender SSRC must belong to a known RTP stream.  This kills byte
        # patterns inside media payloads that masquerade as RTCP.
        return packet.ssrc is not None and packet.ssrc in valid_rtp_ssrcs

    # -- byte-ownership resolution ------------------------------------------------------

    def _resolve_overlaps(
        self, candidates: List[Candidate], rtp_scores: Dict[int, float]
    ) -> List[Candidate]:
        """Byte-ownership arbitration between overlapping candidates.

        A byte can belong to at most one message (§4.1.1).  Among mutually
        overlapping RTP candidates, the one from the strongest SSRC group
        wins — an earlier offset alone is not evidence, because proprietary
        headers can contain counter bytes that masquerade as weak RTP
        streams.  Across protocols, the earliest offset wins.  The single
        exception is the RTP-continuation rule: an RTP packet whose SSRC
        matches an accepted one and whose sequence number is the successor
        truncates its predecessor instead of being dropped — this is how
        Zoom's two-RTP datagrams are recovered.
        """
        def rank(candidate: Candidate) -> Tuple[float, int]:
            if candidate.protocol is Protocol.RTP:
                score = rtp_scores.get(candidate.rtp_ssrc, 0.0)
            elif candidate.protocol is Protocol.RTCP:
                packet = candidate.message
                if candidate.anchor == 0 and packet.packet_type in RTCP_TYPE_NAMES:
                    # Anchored at the payload start with a registered type:
                    # as reliable as a length-delimited protocol gets.
                    score = float("inf")
                else:
                    # Cross-validated only through its SSRC: exactly as
                    # credible as the RTP group lending that SSRC, so a real
                    # RTP message at an earlier offset wins the overlap.
                    score = rtp_scores.get(packet.ssrc or -1, 0.0)
            else:
                # STUN (cookie-anchored) and QUIC (version-anchored) match
                # random bytes with ~2^-32 probability.
                score = float("inf")
            return (-score, candidate.offset)

        accepted: List[Candidate] = []
        for candidate in sorted(candidates, key=rank):
            overlapping = [a for a in accepted if _overlaps(a, candidate)]
            if not overlapping:
                accepted.append(candidate)
                continue
            last = max(overlapping, key=lambda a: a.offset)
            if (
                candidate.protocol is Protocol.RTP
                and last.protocol is Protocol.RTP
                and len(overlapping) == 1
                and candidate.rtp_ssrc == last.rtp_ssrc
                and (candidate.rtp_seq - last.rtp_seq) & 0xFFFF == 1
                and candidate.offset > last.offset
            ):
                last.length = candidate.offset - last.offset
                accepted.append(candidate)
        accepted.sort(key=lambda c: c.offset)
        return accepted

    # -- materialization -----------------------------------------------------------------

    def _materialize(
        self, candidate: Candidate, record: PacketRecord
    ) -> Optional[ExtractedMessage]:
        message = candidate.message
        if candidate.protocol is Protocol.RTP and message is None:
            try:
                message = RtpPacket.parse(
                    record.payload,
                    strict=False,
                    start=candidate.offset,
                    end=candidate.offset + candidate.length,
                )
            except RtpParseError:
                return None
        return ExtractedMessage(
            protocol=candidate.protocol,
            offset=candidate.offset,
            length=candidate.length,
            message=message,
            record=record,
            trailer=candidate.trailer,
        )


def _overlaps(a: Candidate, b: Candidate) -> bool:
    return a.offset < b.end and b.offset < a.end


class _StreamSweeper:
    """Serves one stream's sweeps from look-ahead columnar batches.

    When a sweep is requested for record *i*, the sweeper batch-scans *i*
    together with upcoming payloads likely to need a sweep themselves —
    skipping those whose key is already cached (they will almost surely
    hit).  The skip is only a scheduling heuristic: a wrong guess just
    means a payload is scanned in a later batch (or scanned and never
    consumed), never a behaviour change, because the scan is pure and all
    stats/cache accounting happens at consumption time in the caller.

    Once the fast-path learner locks, sweeps become rare fallbacks, so
    look-ahead would mostly scan payloads the fast path will serve;
    the sweeper then scans just the requested payload.
    """

    __slots__ = ("_engine", "_payloads", "_keys", "_ready", "_cursor")

    def __init__(
        self,
        engine: DpiEngine,
        payloads: Sequence[bytes],
        keys: Optional[Sequence[bytes]],
    ):
        self._engine = engine
        self._payloads = payloads
        self._keys = keys
        self._ready: Dict[int, List[Candidate]] = {}
        self._cursor = 0

    def sweep(self, index: int, budget: int) -> List[Candidate]:
        candidates = self._ready.pop(index, None)
        if candidates is not None:
            return candidates
        self._fill(index, budget)
        candidates = self._ready.pop(index, None)
        if candidates is None:
            # The batch scanner flagged this payload as irregular.
            candidates = self._engine._scan(self._payloads[index])
        return candidates

    def _fill(self, index: int, budget: int) -> None:
        if self._ready:
            # Entries behind the current record were pre-scanned but then
            # served by the cache or fast path; they can never be consumed.
            for stale in [i for i in self._ready if i < index]:
                del self._ready[stale]
        take = [index]
        cache = self._engine._cache
        keys = self._keys
        total = len(self._payloads)
        cursor = max(self._cursor, index + 1)
        while len(take) < budget and cursor < total:
            if (
                cache is None
                or keys is None
                or not cache.contains_key(keys[cursor])
            ):
                take.append(cursor)
            cursor += 1
        self._cursor = cursor
        results = self._engine._columnar.scan_batch(
            [self._payloads[i] for i in take]
        )
        for i, scanned in zip(take, results):
            if scanned is not None:
                self._ready[i] = scanned


class DpiStreamSession:
    """Incremental DPI over an interleaved record feed.

    Records are grouped into streams as they arrive (first-seen order,
    exactly like ``group_streams``); analysis happens per completed
    stream, because every validation heuristic — RTP sequence continuity,
    QUIC connection-ID learning, STUN transaction pairing — needs the
    whole stream as context.  :meth:`flush` analyzes everything still
    open and returns the analyses in global timestamp order, making a
    feed-all-then-flush pass bit-identical to ``analyze_records``.

    For live workloads where flows rotate, :meth:`finish_stream` analyzes
    one flow the moment the caller knows it is done and releases its
    buffered payloads, which is what keeps the session's footprint
    bounded by the number of *concurrently open* flows rather than the
    capture length.
    """

    def __init__(self, engine: DpiEngine):
        self._engine = engine
        self._streams: Dict[FlowKey, Stream] = {}
        self._before = engine.stats.copy()
        self._fed = 0
        self._flushed = False
        # Monotone per-stream serials in first-seen order.  A serial is
        # assigned when a stream is created and *reassigned* if a flow key
        # reopens after eviction, so ``(timestamp, serial, position)`` is
        # a total order over analyses that reproduces the batch flush
        # order exactly (streams concatenate in insertion order, then a
        # stable timestamp sort) — the key the session layer sorts by.
        self._serials: Dict[FlowKey, int] = {}
        self._next_serial = 0
        self._last_seen: Dict[FlowKey, float] = {}

    @property
    def fed(self) -> int:
        """UDP records accepted so far (non-UDP feeds are ignored)."""
        return self._fed

    @property
    def buffered(self) -> int:
        """Datagrams currently held waiting for their stream to complete."""
        return sum(len(s.packets) for s in self._streams.values())

    @property
    def open_streams(self) -> int:
        return len(self._streams)

    def feed(self, record: PacketRecord) -> None:
        """Buffer one record into its stream (non-UDP records are dropped,
        matching the ``analyze_records`` transport filter)."""
        if self._flushed:
            raise RuntimeError("feed() after flush()")
        if record.transport != "UDP":
            return
        self._fed += 1
        key = record.flow_key
        stream = self._streams.get(key)
        if stream is None:
            stream = Stream(key=key)
            self._streams[key] = stream
            self._serials[key] = self._next_serial
            self._next_serial += 1
        stream.add(record)
        last = self._last_seen.get(key)
        if last is None or record.timestamp > last:
            self._last_seen[key] = record.timestamp

    def feed_many(self, records: Iterable[PacketRecord]) -> None:
        """Feed a whole chunk of records (the pipeline's unit of work).

        Grouping is per-record either way; the batch win comes at analysis
        time, when each completed stream's sweeps run through the columnar
        scanner in chunk-sized batches.
        """
        feed = self.feed
        for record in records:
            feed(record)

    def open_keys(self) -> List[FlowKey]:
        """Keys of every open stream, in first-seen (insertion) order."""
        return list(self._streams)

    def serial(self, key: FlowKey) -> Optional[int]:
        """First-seen serial of the stream currently open under *key*.

        Serials survive :meth:`finish_stream` until the key reopens, so
        an order-tracking consumer can still resolve the serial of an
        analysis it receives from an eviction.
        """
        return self._serials.get(key)

    def last_seen(self, key: FlowKey) -> Optional[float]:
        """Timestamp of the newest record fed to *key*'s open stream."""
        return self._last_seen.get(key)

    def finish_stream(self, key: FlowKey) -> List[DatagramAnalysis]:
        """Analyze one stream now and release its buffered payloads.

        The caller asserts the flow is complete; datagrams fed to the same
        key afterwards would start a fresh stream and be validated without
        this one's context.
        """
        stream = self._streams.pop(key, None)
        if stream is None:
            return []
        self._last_seen.pop(key, None)
        stream.sort()
        return self._engine.analyze_stream(stream)

    def evict_idle(self, watermark: float, idle_gap: float) -> List[DatagramAnalysis]:
        """Finish every stream idle for more than *idle_gap* capture-seconds.

        A stream is idle when its newest record's timestamp trails
        *watermark* by more than ``idle_gap``.  Deterministic by
        construction: the decision reads only record timestamps, never
        wall-clock, and candidate streams are finished in first-seen
        order.  The contract is the same as :meth:`finish_stream` — a
        record arriving for an evicted key later starts a fresh stream
        and is validated without the evicted context — so callers pick
        ``idle_gap`` larger than any real intra-flow gap.
        """
        if self._flushed:
            return []
        analyses: List[DatagramAnalysis] = []
        idle = [
            key
            for key, last in self._last_seen.items()
            if watermark - last > idle_gap
        ]
        for key in idle:
            analyses.extend(self.finish_stream(key))
        return analyses

    def flush(self) -> List[DatagramAnalysis]:
        """Analyze every open stream; return analyses in timestamp order."""
        if self._flushed:
            return []
        self._flushed = True
        analyses: List[DatagramAnalysis] = []
        for key in list(self._streams):
            analyses.extend(self.finish_stream(key))
        analyses.sort(key=lambda a: a.record.timestamp)
        return analyses

    def stats(self) -> DpiStats:
        """Extraction-counter deltas accumulated by this session."""
        return self._engine.stats.since(self._before)

    def result(self) -> DpiResult:
        """Flush and package everything as a batch-shaped ``DpiResult``."""
        result = DpiResult(analyses=self.flush())
        result.stats = self.stats()
        result.cache_hits = result.stats.cache_hits
        result.cache_misses = result.stats.cache_misses
        return result
