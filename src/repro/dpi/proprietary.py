"""Typed decoders for known proprietary headers (paper §5.3).

The study treats proprietary prefixes as opaque; follow-up analysis (and
prior work — Michel et al., IMC '22, for Zoom) assigns them structure.
These decoders recover that structure from the prefixes the DPI isolates,
enabling the media-ID and direction-byte findings to be verified
programmatically.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.dpi.messages import DatagramAnalysis

#: Zoom media-section type codes.
ZOOM_TYPE_AUDIO = 15
ZOOM_TYPE_VIDEO = 16
ZOOM_TYPE_RTCP = (33, 34, 35)
ZOOM_TYPE_WRAPPER = 7

ZOOM_DIRECTION_TO_SERVER = (0x00, 0x01)
ZOOM_DIRECTION_FROM_SERVER = (0x04, 0x05)


@dataclass(frozen=True)
class ZoomSfuHeader:
    """Zoom's 24/32-byte proprietary header: SFU section + media section."""

    direction_byte: int
    media_id: int
    session_tag: bytes
    sequence: int
    media_type: int       # 7, 15, 16, 33-35
    inner_type: Optional[int]  # set when media_type is the type-7 wrapper
    declared_length: int

    MIN_LEN = 24

    @property
    def wrapped(self) -> bool:
        return self.media_type == ZOOM_TYPE_WRAPPER

    @property
    def to_server(self) -> bool:
        return self.direction_byte in ZOOM_DIRECTION_TO_SERVER

    @property
    def effective_type(self) -> int:
        return self.inner_type if self.wrapped and self.inner_type else self.media_type

    @classmethod
    def parse(cls, header: bytes) -> "ZoomSfuHeader":
        if len(header) < cls.MIN_LEN:
            raise ValueError(f"Zoom header needs {cls.MIN_LEN}+ bytes")
        direction = header[0]
        if direction not in ZOOM_DIRECTION_TO_SERVER + ZOOM_DIRECTION_FROM_SERVER:
            raise ValueError(f"unknown Zoom direction byte 0x{direction:02x}")
        media_type = header[16]
        inner_type = None
        if media_type == ZOOM_TYPE_WRAPPER:
            if len(header) < 32:
                raise ValueError("type-7 wrapper needs a nested media section")
            inner_type = header[24]
        return cls(
            direction_byte=direction,
            media_id=int.from_bytes(header[2:6], "big"),
            session_tag=header[6:14],
            sequence=int.from_bytes(header[14:16], "big"),
            media_type=media_type,
            inner_type=inner_type,
            declared_length=int.from_bytes(header[18:20], "big"),
        )


@dataclass(frozen=True)
class FaceTimeHeader:
    """FaceTime's 0x6000 relay prefix: magic ‖ u16 length ‖ opaque bytes."""

    declared_length: int
    opaque: bytes

    MAGIC = b"\x60\x00"

    @classmethod
    def parse(cls, header: bytes) -> "FaceTimeHeader":
        if len(header) < 8 or not header.startswith(cls.MAGIC):
            raise ValueError("not a FaceTime 0x6000 header")
        return cls(
            declared_length=int.from_bytes(header[2:4], "big"),
            opaque=header[4:],
        )

    def consistent_with(self, message_length: int) -> bool:
        """The length field covers the opaque bytes plus the inner message."""
        return self.declared_length == len(self.opaque) + message_length


@dataclass
class MediaIdReport:
    """Zoom's per-stream media-ID constancy (§5.3)."""

    ids_per_stream: Dict[tuple, Set[int]]

    @property
    def constant_per_stream(self) -> bool:
        media_streams = [
            ids for ids in self.ids_per_stream.values() if ids
        ]
        return bool(media_streams) and all(len(ids) <= 2 for ids in media_streams)
        # (<=2: one media ID for RTP, one for the RTCP sub-stream sharing
        #  the 5-tuple — both constant for the whole call.)


def detect_zoom_media_ids(analyses: Sequence[DatagramAnalysis]) -> MediaIdReport:
    """Collect the 4-byte media-ID field per transport stream."""
    ids: Dict[tuple, Set[int]] = defaultdict(set)
    for analysis in analyses:
        header = analysis.proprietary_header
        if len(header) < ZoomSfuHeader.MIN_LEN:
            continue
        try:
            parsed = ZoomSfuHeader.parse(header)
        except ValueError:
            continue
        ids[analysis.record.flow_key].add(parsed.media_id)
    return MediaIdReport(ids_per_stream=dict(ids))


@dataclass
class ZoomHeaderSummary:
    """Aggregate header statistics for one trace."""

    total: int
    wrapped: int
    by_effective_type: Dict[int, int]
    direction_consistent: bool

    @property
    def wrapper_share(self) -> float:
        return self.wrapped / self.total if self.total else 0.0


def summarize_zoom_headers(
    analyses: Sequence[DatagramAnalysis],
) -> ZoomHeaderSummary:
    from repro.packets.packet import Direction

    total = wrapped = 0
    by_type: Dict[int, int] = defaultdict(int)
    direction_ok = True
    for analysis in analyses:
        header = analysis.proprietary_header
        if len(header) < ZoomSfuHeader.MIN_LEN:
            continue
        try:
            parsed = ZoomSfuHeader.parse(header)
        except ValueError:
            continue
        total += 1
        if parsed.wrapped:
            wrapped += 1
        by_type[parsed.effective_type] += 1
        outbound = analysis.record.direction is Direction.OUTBOUND
        if parsed.to_server != outbound:
            direction_ok = False
    return ZoomHeaderSummary(
        total=total,
        wrapped=wrapped,
        by_effective_type=dict(by_type),
        direction_consistent=direction_ok,
    )
