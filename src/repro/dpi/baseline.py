"""Conventional-DPI baseline (the systems the paper's §4.1 argues against).

Classic engines (Peafowl, nDPI, L7-filter) assume standard headers at
payload offset zero and parse strictly by specification:

- messages hidden behind proprietary headers are invisible (limitation 1);
- messages with undefined types/attributes are rejected, so exactly the
  non-compliant traffic this study cares about goes unobserved
  (limitation 2);
- Peafowl additionally restricts RTP to ~30 known payload-type values
  (the restriction the paper removes).

This baseline exists so the custom engine's gains are measurable — the
comparison the paper makes qualitatively becomes a benchmark here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dpi.messages import (
    DatagramAnalysis,
    DatagramClass,
    ExtractedMessage,
    Protocol,
)
from repro.dpi.engine import DpiResult
from repro.packets.packet import PacketRecord
from repro.protocols.quic.header import QuicParseError, parse_one
from repro.protocols.rtcp.constants import RTCP_TYPE_NAMES
from repro.protocols.rtcp.packets import RtcpParseError, parse_compound
from repro.protocols.rtp.header import RtpPacket, RtpParseError, looks_like_rtp
from repro.protocols.stun.constants import (
    KNOWN_ATTRIBUTE_TYPES,
    KNOWN_MESSAGE_TYPES,
    MAGIC_COOKIE,
)
from repro.protocols.stun.message import StunMessage, StunParseError

#: Peafowl's RTP payload-type whitelist: the RFC 3551 static audio/video
#: assignments (the restriction the paper's engine removes).
PEAFOWL_PAYLOAD_TYPES = frozenset(
    {0, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18,
     25, 26, 28, 31, 32, 33, 34}
)


class BaselineDpi:
    """Offset-zero, strict-specification DPI.

    Accepts a datagram only when a fully specification-conformant message
    starts at byte 0; everything else is unclassified.
    """

    def analyze_records(self, records: Sequence[PacketRecord]) -> DpiResult:
        result = DpiResult()
        for record in records:
            if record.transport != "UDP":
                continue
            messages = self._classify(record)
            result.analyses.append(DatagramAnalysis.classify(record, messages))
        result.analyses.sort(key=lambda a: a.record.timestamp)
        return result

    def _classify(self, record: PacketRecord) -> List[ExtractedMessage]:
        payload = record.payload
        message = self._try_stun(payload, record)
        if message is not None:
            return [message]
        messages = self._try_rtcp(payload, record)
        if messages:
            return messages
        message = self._try_rtp(payload, record)
        if message is not None:
            return [message]
        message = self._try_quic(payload, record)
        if message is not None:
            return [message]
        return []

    def _try_stun(self, payload: bytes, record) -> Optional[ExtractedMessage]:
        if len(payload) < 20:
            return None
        # Strict: magic cookie required (no RFC 3489), exact fit required.
        if int.from_bytes(payload[4:8], "big") != MAGIC_COOKIE:
            return None
        try:
            message = StunMessage.parse(payload, strict=True)
        except StunParseError:
            return None
        # Strict: only registered message and attribute types are parsed.
        if message.msg_type not in KNOWN_MESSAGE_TYPES:
            return None
        if any(a.attr_type not in KNOWN_ATTRIBUTE_TYPES for a in message.attributes):
            return None
        return ExtractedMessage(
            protocol=Protocol.STUN_TURN, offset=0,
            length=message.wire_length, message=message, record=record,
        )

    def _try_rtp(self, payload: bytes, record) -> Optional[ExtractedMessage]:
        if not looks_like_rtp(payload):
            return None
        try:
            packet = RtpPacket.parse(payload, strict=True)
        except RtpParseError:
            return None
        # Peafowl's restriction: unknown payload types are not RTP.
        if packet.payload_type not in PEAFOWL_PAYLOAD_TYPES:
            return None
        return ExtractedMessage(
            protocol=Protocol.RTP, offset=0, length=len(payload),
            message=packet, record=record,
        )

    def _try_rtcp(self, payload: bytes, record) -> List[ExtractedMessage]:
        if len(payload) < 4 or payload[0] >> 6 != 2:
            return []
        if not 200 <= payload[1] <= 207:
            return []
        try:
            # Strict: the compound must consume the datagram exactly.
            packets = parse_compound(payload, strict=True)
        except RtcpParseError:
            return []
        if any(p.packet_type not in RTCP_TYPE_NAMES for p in packets):
            return []
        messages = []
        offset = 0
        for packet in packets:
            messages.append(
                ExtractedMessage(
                    protocol=Protocol.RTCP, offset=offset,
                    length=packet.header.wire_length, message=packet,
                    record=record,
                )
            )
            offset += packet.header.wire_length
        return messages

    def _try_quic(self, payload: bytes, record) -> Optional[ExtractedMessage]:
        if not payload or payload[0] & 0xC0 != 0xC0:
            return None  # long headers only; short are undetectable statically
        try:
            header = parse_one(payload)
        except QuicParseError:
            return None
        return ExtractedMessage(
            protocol=Protocol.QUIC, offset=0, length=header.wire_length,
            message=header, record=record,
        )


@dataclass
class DpiComparison:
    """Detection-rate comparison: custom engine vs the baseline."""

    custom_messages: int
    baseline_messages: int
    custom_classified_datagrams: int
    baseline_classified_datagrams: int
    total_datagrams: int

    @property
    def message_recall_gain(self) -> float:
        if self.custom_messages == 0:
            return 0.0
        return 1.0 - self.baseline_messages / self.custom_messages

    @property
    def baseline_blind_share(self) -> float:
        """Share of datagrams the baseline cannot classify but we can."""
        if not self.total_datagrams:
            return 0.0
        return (
            self.custom_classified_datagrams - self.baseline_classified_datagrams
        ) / self.total_datagrams


def compare_engines(records: Sequence[PacketRecord]) -> DpiComparison:
    """Run both engines over *records* and tabulate the gap."""
    from repro.dpi.engine import DpiEngine

    custom = DpiEngine().analyze_records(records)
    baseline = BaselineDpi().analyze_records(records)

    def classified(result: DpiResult) -> int:
        return sum(
            1 for a in result.analyses
            if a.classification is not DatagramClass.FULLY_PROPRIETARY
        )

    return DpiComparison(
        custom_messages=len(custom.messages()),
        baseline_messages=len(baseline.messages()),
        custom_classified_datagrams=classified(custom),
        baseline_classified_datagrams=classified(baseline),
        total_datagrams=len(custom.analyses),
    )
