"""Stage-one candidate extraction: per-protocol structural matchers.

Each matcher answers "could a message of this protocol start at offset i of
this payload?" using only invariants every specification version shares —
exactly the loosened Peafowl patterns the paper describes (e.g. no payload
type restriction for RTP).  Anything that matches becomes a candidate;
stage two kills the false positives.

A naive implementation re-checks every offset; these matchers instead
enumerate only offsets whose leading bytes could possibly match, which is
behaviourally identical to Algorithm 1's 0..k sweep but linear in payload
size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.dpi.messages import Protocol
from repro.protocols.quic.header import (
    QUIC_V1,
    QUIC_V2,
    QuicParseError,
    parse_one,
)
from repro.protocols.rtcp.packets import RtcpHeader, RtcpPacket, RtcpParseError
from repro.protocols.rtp.header import RtpPacket, RtpParseError, looks_like_rtp
from repro.protocols.stun.constants import MAGIC_COOKIE
from repro.protocols.stun.message import (
    ChannelData,
    StunMessage,
    StunParseError,
    looks_like_stun,
)

_COOKIE_BYTES = MAGIC_COOKIE.to_bytes(4, "big")
#: RTCP packet types occupy 192-223 when demultiplexed per RFC 5761 §4.
_RTCP_PT_RANGE = range(192, 224)
#: Maximum unclaimed bytes after an RTCP compound that we treat as a trailer
#: belonging to the last packet (SRTCP index+tag is 14, Discord's is 3).
MAX_RTCP_TRAILER = 16


@dataclass
class Candidate:
    """A structurally plausible message found at some payload offset.

    RTP candidates defer full parsing (``message`` is None) because the scan
    may surface many of them per datagram; the cheap header fields needed
    for validation live in ``rtp_ssrc``/``rtp_seq``/``rtp_timestamp``.
    """

    protocol: Protocol
    offset: int
    length: int
    message: Any = None
    trailer: bytes = b""
    # Set for modern STUN (magic cookie present); classic candidates need
    # stricter validation.
    classic_stun: bool = False
    # Header fields pre-extracted for RTP validation.
    rtp_ssrc: int = 0
    rtp_seq: int = 0
    rtp_timestamp: int = 0
    # Offset of the structure this candidate was found inside (equals
    # ``offset`` except for members of an RTCP compound, which inherit the
    # compound's starting offset for validation purposes).
    anchor: int = -1

    def __post_init__(self) -> None:
        if self.anchor < 0:
            self.anchor = self.offset

    @property
    def end(self) -> int:
        return self.offset + self.length + len(self.trailer)


def stun_candidates(payload: bytes, max_offset: int) -> List[Candidate]:
    """Modern STUN anywhere (cookie-anchored), classic STUN at offset 0,
    ChannelData at offset 0."""
    candidates: List[Candidate] = []

    # Modern STUN: anchor on the magic cookie at bytes 4..8 of the header.
    search_start = 0
    while True:
        pos = payload.find(_COOKIE_BYTES, search_start)
        if pos < 0:
            break
        search_start = pos + 1
        offset = pos - 4
        if offset < 0 or offset > max_offset:
            continue
        window = payload[offset:]
        if not looks_like_stun(window):
            continue
        try:
            message = StunMessage.parse(window, strict=False)
        except StunParseError:
            continue
        if message.classic:
            continue  # cookie bytes were coincidental
        candidates.append(
            Candidate(
                protocol=Protocol.STUN_TURN,
                offset=offset,
                length=message.wire_length,
                message=message,
            )
        )

    # Classic (RFC 3489) STUN: no cookie to anchor on, so only claim it at
    # offset 0 with an exact length fit — Zoom's usage.
    if looks_like_stun(payload):
        try:
            message = StunMessage.parse(payload, strict=True)
        except StunParseError:
            message = None
        if message is not None and message.classic:
            candidates.append(
                Candidate(
                    protocol=Protocol.STUN_TURN,
                    offset=0,
                    length=message.wire_length,
                    message=message,
                    classic_stun=True,
                )
            )

    # ChannelData: over UDP the frame is the whole datagram (offset 0);
    # the channel must be in the RFC 8656 client range 0x4000-0x4FFF and at
    # most 3 slack bytes may follow (kept as a trailer so the compliance
    # layer can flag the padding, which is illegal over UDP).
    if len(payload) >= 4 and 0x40 <= payload[0] <= 0x4F:
        try:
            frame = ChannelData.parse(payload, strict=False)
        except StunParseError:
            frame = None
        if frame is not None and frame.channel <= 0x4FFF:
            leftover = len(payload) - frame.wire_length
            if 0 <= leftover <= 3:
                candidates.append(
                    Candidate(
                        protocol=Protocol.STUN_TURN,
                        offset=0,
                        length=frame.wire_length,
                        message=frame,
                        trailer=payload[frame.wire_length:],
                    )
                )
    return candidates


def rtp_candidates(payload: bytes, max_offset: int) -> List[Candidate]:
    """RTP at any offset whose first byte has version 2.

    An RTP message has no length field, so each candidate tentatively spans
    to the end of the datagram; overlap resolution may later truncate it
    when a continuation packet follows (Zoom's dual-RTP datagrams).
    """
    candidates: List[Candidate] = []
    if len(payload) < 12:
        return candidates
    # One memoryview for the whole sweep: slicing a view is cheap, while
    # constructing a fresh view (or copying the payload) per offset is not.
    view = memoryview(payload)
    limit = min(max_offset, len(payload) - 12)
    for offset in range(0, limit + 1):
        if payload[offset] >> 6 != 2:
            continue
        # Structural check without copying the (possibly large) payload.
        if not looks_like_rtp(view[offset:]):
            continue
        candidates.append(
            Candidate(
                protocol=Protocol.RTP,
                offset=offset,
                length=len(payload) - offset,
                rtp_ssrc=int.from_bytes(payload[offset + 8:offset + 12], "big"),
                rtp_seq=int.from_bytes(payload[offset + 2:offset + 4], "big"),
                rtp_timestamp=int.from_bytes(payload[offset + 4:offset + 8], "big"),
            )
        )
    return candidates


def rtcp_candidates(payload: bytes, max_offset: int) -> List[Candidate]:
    """RTCP compounds at any offset; trailing bytes become the last
    packet's trailer when short enough."""
    candidates: List[Candidate] = []
    limit = min(max_offset, len(payload) - 4)
    for offset in range(0, limit + 1):
        if payload[offset] >> 6 != 2 or payload[offset + 1] not in _RTCP_PT_RANGE:
            continue
        window = payload[offset:]
        packets: List[RtcpPacket] = []
        pos = 0
        while pos + 4 <= len(window):
            try:
                header = RtcpHeader.parse(window[pos:])
            except RtcpParseError:
                break
            if (
                header.version != 2
                or window[pos + 1] not in _RTCP_PT_RANGE
                or pos + header.wire_length > len(window)
            ):
                break
            packets.append(
                RtcpPacket(header=header, body=window[pos + 4:pos + header.wire_length])
            )
            pos += header.wire_length
        if not packets:
            continue
        leftover = window[pos:]
        if len(leftover) > MAX_RTCP_TRAILER:
            # Too much unclaimed data to be a trailer; reject the tail
            # packet boundary — likely a false positive unless another
            # protocol claims those bytes.
            continue
        running = offset
        for i, packet in enumerate(packets):
            trailer = leftover if i == len(packets) - 1 else b""
            candidates.append(
                Candidate(
                    protocol=Protocol.RTCP,
                    offset=running,
                    length=packet.header.wire_length,
                    message=packet,
                    trailer=trailer,
                    anchor=offset,
                )
            )
            running += packet.header.wire_length
    return candidates


def quic_candidates(payload: bytes, max_offset: int) -> List[Candidate]:
    """QUIC long headers at any offset (coalesced packets expand in place).

    Short-header packets are only surfaced at offset 0 and must be confirmed
    by the validator against connection IDs learned from long headers.
    """
    candidates: List[Candidate] = []
    limit = min(max_offset, len(payload) - 7)
    offset = 0
    while offset <= limit:
        first = payload[offset]
        if first & 0xC0 != 0xC0:
            offset += 1
            continue
        version = int.from_bytes(payload[offset + 1:offset + 5], "big")
        if version not in (QUIC_V1, QUIC_V2, 0):
            offset += 1
            continue
        try:
            header = parse_one(payload[offset:])
        except QuicParseError:
            offset += 1
            continue
        candidates.append(
            Candidate(
                protocol=Protocol.QUIC,
                offset=offset,
                length=header.wire_length,
                message=header,
            )
        )
        offset += max(header.wire_length, 1)
    # Tentative short header at offset 0 (validator checks the DCID).
    if payload and payload[0] & 0xC0 == 0x40 and len(payload) >= 1 + 8 + 17:
        try:
            header = parse_one(payload, short_dcid_len=8)
        except QuicParseError:
            header = None
        if header is not None and not header.is_long:
            candidates.append(
                Candidate(
                    protocol=Protocol.QUIC,
                    offset=0,
                    length=header.wire_length,
                    message=header,
                )
            )
    return candidates


MATCHERS = {
    Protocol.STUN_TURN: stun_candidates,
    Protocol.RTP: rtp_candidates,
    Protocol.RTCP: rtcp_candidates,
    Protocol.QUIC: quic_candidates,
}
