"""Stage-one candidate extraction: per-protocol structural matchers.

Each matcher answers "could a message of this protocol start at offset i of
this payload?" using only invariants every specification version shares —
exactly the loosened Peafowl patterns the paper describes (e.g. no payload
type restriction for RTP).  Anything that matches becomes a candidate;
stage two kills the false positives.

A naive implementation re-checks every offset; these matchers instead
enumerate only offsets whose leading bytes could possibly match — using
precompiled byte-class regexes, which scan at C speed — and parse at
absolute offsets into the shared payload buffer instead of slicing a fresh
``payload[offset:]`` window per candidate.  This is behaviourally identical
to Algorithm 1's 0..k sweep but linear in payload size and zero-copy.

``stun_candidates`` and ``rtp_candidates`` additionally accept an
``offsets`` allow-list so the flow-sticky fast path
(:mod:`repro.dpi.fastpath`) can probe only a stream's learned offsets.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional

from repro.dpi.messages import Protocol
from repro.protocols.quic.header import (
    QUIC_V1,
    QUIC_V2,
    QuicParseError,
    parse_one,
)
from repro.protocols.rtcp.packets import RtcpHeader, RtcpPacket, RtcpParseError
from repro.protocols.rtp.header import RtpPacket, RtpParseError, looks_like_rtp
from repro.protocols.stun.constants import MAGIC_COOKIE
from repro.protocols.stun.message import (
    ChannelData,
    StunMessage,
    StunParseError,
    looks_like_stun,
)

_COOKIE_BYTES = MAGIC_COOKIE.to_bytes(4, "big")
#: RTCP packet types occupy 192-223 when demultiplexed per RFC 5761 §4.
_RTCP_PT_RANGE = range(192, 224)
#: Maximum unclaimed bytes after an RTCP compound that we treat as a trailer
#: belonging to the last packet (SRTCP index+tag is 14, Discord's is 3).
MAX_RTCP_TRAILER = 16

#: First byte with version 2 — the anchor every RTP/RTCP candidate shares.
_RTP_ANCHOR = re.compile(rb"[\x80-\xbf]")
#: Version-2 first byte followed by a packet type in the RTCP range.  The
#: two byte classes are disjoint, so matches can never overlap and a plain
#: ``finditer`` enumerates exactly the offsets the per-byte sweep would.
_RTCP_ANCHOR = re.compile(rb"[\x80-\xbf][\xc0-\xdf]")
#: Long-header first byte (form+fixed bits) followed by a recognized version
#: (v1, v2, or the all-zero version-negotiation marker).  Zero-width
#: lookahead because anchors *can* overlap (a version byte may itself start
#: another plausible header).
_QUIC_ANCHOR = re.compile(
    rb"(?=[\xc0-\xff](?:"
    + re.escape(QUIC_V1.to_bytes(4, "big"))
    + rb"|"
    + re.escape(QUIC_V2.to_bytes(4, "big"))
    + rb"|\x00\x00\x00\x00))"
)
#: RTP sequence number, timestamp, SSRC — bytes 2..12 of the fixed header.
_RTP_FIELDS = struct.Struct("!HII")


@dataclass(slots=True)
class Candidate:
    """A structurally plausible message found at some payload offset.

    RTP candidates defer full parsing (``message`` is None) because the scan
    may surface many of them per datagram; the cheap header fields needed
    for validation live in ``rtp_ssrc``/``rtp_seq``/``rtp_timestamp``.
    ``slots=True`` because sweeps materialize these by the hundred
    thousand; slot storage trims both construction time and footprint.
    """

    protocol: Protocol
    offset: int
    length: int
    message: Any = None
    trailer: bytes = b""
    # Set for modern STUN (magic cookie present); classic candidates need
    # stricter validation.
    classic_stun: bool = False
    # Header fields pre-extracted for RTP validation.
    rtp_ssrc: int = 0
    rtp_seq: int = 0
    rtp_timestamp: int = 0
    # Offset of the structure this candidate was found inside (equals
    # ``offset`` except for members of an RTCP compound, which inherit the
    # compound's starting offset for validation purposes).
    anchor: int = -1

    def __post_init__(self) -> None:
        if self.anchor < 0:
            self.anchor = self.offset

    @property
    def end(self) -> int:
        return self.offset + self.length + len(self.trailer)


def stun_candidates(
    payload: bytes, max_offset: int, offsets: Optional[Iterable[int]] = None
) -> List[Candidate]:
    """Modern STUN anywhere (cookie-anchored), classic STUN at offset 0,
    ChannelData at offset 0.

    ``offsets`` restricts the modern-STUN probe to an allow-list of offsets
    (the fast path's learned positions); classic/ChannelData checks then run
    only when offset 0 is in the list.
    """
    candidates: List[Candidate] = []

    # Modern STUN: anchor on the magic cookie at bytes 4..8 of the header.
    if offsets is None:
        positions = _cookie_offsets(payload, max_offset)
        zero_allowed = True
    else:
        allowed = tuple(offsets)
        positions = [
            o for o in allowed
            if 0 <= o <= max_offset and payload[o + 4:o + 8] == _COOKIE_BYTES
        ]
        zero_allowed = 0 in allowed
    for offset in positions:
        if not looks_like_stun(payload, offset):
            continue
        try:
            message = StunMessage.parse(payload, strict=False, start=offset)
        except StunParseError:
            continue
        if message.classic:
            continue  # cookie bytes were coincidental
        candidates.append(
            Candidate(
                protocol=Protocol.STUN_TURN,
                offset=offset,
                length=message.wire_length,
                message=message,
            )
        )

    # Classic (RFC 3489) STUN: no cookie to anchor on, so only claim it at
    # offset 0 with an exact length fit — Zoom's usage.
    if zero_allowed and looks_like_stun(payload):
        try:
            message = StunMessage.parse(payload, strict=True)
        except StunParseError:
            message = None
        if message is not None and message.classic:
            candidates.append(
                Candidate(
                    protocol=Protocol.STUN_TURN,
                    offset=0,
                    length=message.wire_length,
                    message=message,
                    classic_stun=True,
                )
            )

    # ChannelData: over UDP the frame is the whole datagram (offset 0);
    # the channel must be in the RFC 8656 client range 0x4000-0x4FFF and at
    # most 3 slack bytes may follow (kept as a trailer so the compliance
    # layer can flag the padding, which is illegal over UDP).
    if zero_allowed and len(payload) >= 4 and 0x40 <= payload[0] <= 0x4F:
        try:
            frame = ChannelData.parse(payload, strict=False)
        except StunParseError:
            frame = None
        if frame is not None and frame.channel <= 0x4FFF:
            leftover = len(payload) - frame.wire_length
            if 0 <= leftover <= 3:
                candidates.append(
                    Candidate(
                        protocol=Protocol.STUN_TURN,
                        offset=0,
                        length=frame.wire_length,
                        message=frame,
                        trailer=payload[frame.wire_length:],
                    )
                )
    return candidates


def _cookie_offsets(payload: bytes, max_offset: int) -> List[int]:
    """Offsets whose bytes 4..8 carry the magic cookie, in scan order."""
    out: List[int] = []
    search_start = 0
    while True:
        pos = payload.find(_COOKIE_BYTES, search_start)
        if pos < 0:
            break
        search_start = pos + 1
        offset = pos - 4
        if 0 <= offset <= max_offset:
            out.append(offset)
    return out


def rtp_candidates(
    payload: bytes, max_offset: int, offsets: Optional[Iterable[int]] = None
) -> List[Candidate]:
    """RTP at any offset whose first byte has version 2.

    An RTP message has no length field, so each candidate tentatively spans
    to the end of the datagram; overlap resolution may later truncate it
    when a continuation packet follows (Zoom's dual-RTP datagrams).

    ``offsets`` restricts the probe to an allow-list of offsets (the fast
    path's learned positions) instead of the full anchor scan.
    """
    candidates: List[Candidate] = []
    size = len(payload)
    if size < 12:
        return candidates
    limit = min(max_offset, size - 12)
    if offsets is None:
        positions: Iterable[int] = (
            m.start() for m in _RTP_ANCHOR.finditer(payload, 0, limit + 1)
        )
    else:
        positions = (o for o in offsets if 0 <= o <= limit)
    for offset in positions:
        if not looks_like_rtp(payload, offset):
            continue
        seq, timestamp, ssrc = _RTP_FIELDS.unpack_from(payload, offset + 2)
        candidates.append(
            Candidate(
                protocol=Protocol.RTP,
                offset=offset,
                length=size - offset,
                rtp_ssrc=ssrc,
                rtp_seq=seq,
                rtp_timestamp=timestamp,
            )
        )
    return candidates


def rtcp_candidates(payload: bytes, max_offset: int) -> List[Candidate]:
    """RTCP compounds at any offset; trailing bytes become the last
    packet's trailer when short enough."""
    candidates: List[Candidate] = []
    size = len(payload)
    if size < 4:
        return candidates
    limit = min(max_offset, size - 4)
    for match in _RTCP_ANCHOR.finditer(payload, 0, limit + 2):
        offset = match.start()
        packets: List[RtcpPacket] = []
        pos = offset
        while pos + 4 <= size:
            try:
                header = RtcpHeader.parse(payload, pos)
            except RtcpParseError:
                break
            if (
                header.version != 2
                or payload[pos + 1] not in _RTCP_PT_RANGE
                or pos + header.wire_length > size
            ):
                break
            packets.append(
                RtcpPacket(
                    header=header,
                    body=payload[pos + 4:pos + header.wire_length],
                )
            )
            pos += header.wire_length
        if not packets:
            continue
        if size - pos > MAX_RTCP_TRAILER:
            # Too much unclaimed data to be a trailer; reject the tail
            # packet boundary — likely a false positive unless another
            # protocol claims those bytes.
            continue
        leftover = payload[pos:] if pos < size else b""
        running = offset
        for i, packet in enumerate(packets):
            trailer = leftover if i == len(packets) - 1 else b""
            candidates.append(
                Candidate(
                    protocol=Protocol.RTCP,
                    offset=running,
                    length=packet.header.wire_length,
                    message=packet,
                    trailer=trailer,
                    anchor=offset,
                )
            )
            running += packet.header.wire_length
    return candidates


def quic_candidates(payload: bytes, max_offset: int) -> List[Candidate]:
    """QUIC long headers at any offset (coalesced packets expand in place).

    Short-header packets are only surfaced at offset 0 and must be confirmed
    by the validator against connection IDs learned from long headers.
    """
    candidates: List[Candidate] = []
    size = len(payload)
    if size >= 7:
        limit = min(max_offset, size - 7)
        # The lookahead needs 5 visible bytes, so the match at `limit` is
        # still found with endpos limit+5 while anything past it is not.
        next_allowed = 0
        for match in _QUIC_ANCHOR.finditer(payload, 0, min(size, limit + 5)):
            offset = match.start()
            if offset < next_allowed:
                # Interior of a previously parsed packet: the byte sweep
                # jumps over parsed packets, so the anchor scan must too.
                continue
            try:
                header = parse_one(payload, start=offset)
            except QuicParseError:
                continue
            candidates.append(
                Candidate(
                    protocol=Protocol.QUIC,
                    offset=offset,
                    length=header.wire_length,
                    message=header,
                )
            )
            next_allowed = offset + max(header.wire_length, 1)
    # Tentative short header at offset 0 (validator checks the DCID).
    if payload and payload[0] & 0xC0 == 0x40 and size >= 1 + 8 + 17:
        try:
            header = parse_one(payload, short_dcid_len=8)
        except QuicParseError:
            header = None
        if header is not None and not header.is_long:
            candidates.append(
                Candidate(
                    protocol=Protocol.QUIC,
                    offset=0,
                    length=header.wire_length,
                    message=header,
                )
            )
    return candidates


MATCHERS = {
    Protocol.STUN_TURN: stun_candidates,
    Protocol.RTP: rtp_candidates,
    Protocol.RTCP: rtcp_candidates,
    Protocol.QUIC: quic_candidates,
}
