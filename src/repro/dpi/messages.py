"""Data model shared by the DPI engine and the compliance layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.packets.packet import Direction, PacketRecord


class Protocol(enum.Enum):
    """The protocol families the study covers (STUN and TURN are joint)."""

    STUN_TURN = "stun_turn"
    RTP = "rtp"
    RTCP = "rtcp"
    QUIC = "quic"


class DatagramClass(enum.Enum):
    """Figure 3's three datagram categories."""

    STANDARD = "standard"                      # messages from byte 0
    PROPRIETARY_HEADER = "proprietary_header"  # message(s) behind a prefix
    FULLY_PROPRIETARY = "fully_proprietary"    # no recognizable message


@dataclass
class ExtractedMessage:
    """One validated protocol message found inside a datagram.

    ``message`` is the parsed object (StunMessage, ChannelData, RtpPacket,
    RtcpPacket, or QuicHeader); ``trailer`` holds bytes past the declared
    message length that belong to this message for compliance purposes
    (SRTCP trailers, Discord's direction bytes).
    """

    protocol: Protocol
    offset: int
    length: int
    message: Any
    record: PacketRecord
    trailer: bytes = b""

    @property
    def timestamp(self) -> float:
        return self.record.timestamp

    @property
    def direction(self) -> Direction:
        return self.record.direction

    @property
    def stream_key(self):
        return self.record.flow_key

    @property
    def end(self) -> int:
        return self.offset + self.length + len(self.trailer)

    @property
    def raw(self) -> bytes:
        return self.record.payload[self.offset:self.end]

    def type_key(self) -> Tuple[str, str]:
        """(protocol, message-type label) — the unit of Table 3's metric."""
        from repro.protocols.quic.header import QuicHeader
        from repro.protocols.rtcp.packets import RtcpPacket
        from repro.protocols.rtp.header import RtpPacket
        from repro.protocols.stun.message import ChannelData, StunMessage

        message = self.message
        if isinstance(message, StunMessage):
            return (self.protocol.value, f"0x{message.msg_type:04X}")
        if isinstance(message, ChannelData):
            return (self.protocol.value, "ChannelData")
        if isinstance(message, RtpPacket):
            return (self.protocol.value, str(message.payload_type))
        if isinstance(message, RtcpPacket):
            return (self.protocol.value, str(message.packet_type))
        if isinstance(message, QuicHeader):
            if message.is_long:
                label = (
                    "version_negotiation"
                    if message.is_version_negotiation
                    else f"long-{message.long_type.value}"
                )
            else:
                label = "short"
            return (self.protocol.value, label)
        return (self.protocol.value, type(message).__name__)


@dataclass
class DatagramAnalysis:
    """The DPI verdict for one UDP datagram."""

    record: PacketRecord
    messages: List[ExtractedMessage] = field(default_factory=list)
    classification: DatagramClass = DatagramClass.FULLY_PROPRIETARY

    @property
    def proprietary_header(self) -> bytes:
        """The prefix bytes preceding the first extracted message."""
        if not self.messages or self.messages[0].offset == 0:
            return b""
        return self.record.payload[: self.messages[0].offset]

    @classmethod
    def classify(cls, record: PacketRecord, messages: List[ExtractedMessage]):
        if not messages:
            classification = DatagramClass.FULLY_PROPRIETARY
        elif messages[0].offset > 0:
            classification = DatagramClass.PROPRIETARY_HEADER
        else:
            classification = DatagramClass.STANDARD
        return cls(record=record, messages=messages, classification=classification)
