"""Columnar batch stage-one scanner: vectorized sweeps over payload chunks.

The scalar sweep (:meth:`repro.dpi.engine.DpiEngine._sweep`) runs four
anchored matchers per payload; per-payload Python call overhead dominates
once the fast path and cache have removed the redundant work.  This module
scans a whole chunk of payloads (the pipeline's 256-record unit) at once:

* the payloads are joined into one buffer with an offset index, so each
  anchor pass is a single C-level scan whose global match positions are
  translated back to ``(payload, offset)`` pairs;
* the RTP pass — the only matcher that yields candidates in bulk — is
  fully vectorized behind a soft numpy import (byte-class masks, gathered
  header fields, one ``searchsorted`` to slice per-payload runs), with a
  mandatory pure-Python path that keeps the per-payload anchored scan;
* the STUN/RTCP/QUIC matchers are *gated*: a cheap prefilter proves the
  matcher would return nothing for a payload, so it is simply skipped.

Every gate is a necessary condition of the corresponding matcher, so a
skipped matcher is exactly one that would have produced zero candidates:

* STUN — a modern candidate needs the magic cookie at bytes ``o+4..o+8``
  with ``0 <= o <= max_offset``; a classic candidate needs
  ``looks_like_stun(payload, 0)`` (inlined below, byte for byte); a
  ChannelData candidate needs ``0x40 <= payload[0] <= 0x4F``.
* RTCP — an anchor only yields candidates when its *first* header fits:
  the anchor byte classes already guarantee version 2 and an in-range
  packet type, and ``RtcpHeader.parse`` cannot fail inside the anchor
  window, so the walk's first iteration can only stop on the length fit
  ``offset + (u16@offset+2 + 1) * 4 <= size``.  No fitting anchor, no
  candidates.
* QUIC — long headers need an anchor match inside the matcher's own
  ``finditer`` window; short headers need ``payload[0] & 0xC0 == 0x40``
  and at least 26 bytes.

Candidate lists come out bit-identical to the scalar sweep: assembly
follows the engine's protocol order before the same stable sort, and an
RTP-only list skips the sort because anchored RTP candidates are already
in ascending ``(offset, -length)`` order (length decreases as offset
grows within one payload).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dpi.candidates import (
    _COOKIE_BYTES,
    _QUIC_ANCHOR,
    _RTCP_ANCHOR,
    Candidate,
    MATCHERS,
    quic_candidates,
    rtcp_candidates,
    rtp_candidates,
    stun_candidates,
)
from repro.dpi.messages import Protocol
from repro.protocols.quic.header import QUIC_V1, QUIC_V2

try:  # soft dependency — the pure-Python path below is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

HAVE_NUMPY = _np is not None

#: Payloads scanned per columnar pass; matches the pipeline chunk unit.
DEFAULT_BATCH_SIZE = 256

#: The three version strings a QUIC long-header anchor can carry at bytes
#: ``o+1..o+5`` (see ``_QUIC_ANCHOR``): v1, v2, version negotiation.
_QUIC_VERSION_NEEDLES = (
    QUIC_V1.to_bytes(4, "big"),
    QUIC_V2.to_bytes(4, "big"),
    b"\x00\x00\x00\x00",
)

#: Below this batch size the numpy fixed costs (buffer join, mask setup)
#: exceed the vector win and the gated pure-Python path is faster.
_MIN_VECTOR_BATCH = 4


def _sort_key(candidate: Candidate):
    return (candidate.offset, -candidate.length)


def _classic_stun_possible(payload: bytes, size: int, b0: int) -> bool:
    """Inline ``looks_like_stun(payload, 0)`` — the classic-STUN gate."""
    if size < 20 or b0 & 0xC0:
        return False
    length = payload[2] << 8 | payload[3]
    return not (length & 3) and 20 + length <= size


def _stun_possible(payload: bytes, size: int, max_offset: int) -> bool:
    b0 = payload[0] if size else 0
    if size >= 4 and 0x40 <= b0 <= 0x4F:
        return True  # ChannelData range
    if _classic_stun_possible(payload, size, b0):
        return True
    # Modern STUN: cookie at bytes o+4..o+8 for some offset o in 0..k, so
    # the cookie itself must sit in [4, max_offset + 4].
    return payload.find(_COOKIE_BYTES, 4, max_offset + 8) >= 0


def _rtcp_possible(payload: bytes, size: int, max_offset: int) -> bool:
    if size < 4:
        return False
    limit = min(max_offset, size - 4)
    for match in _RTCP_ANCHOR.finditer(payload, 0, limit + 2):
        offset = match.start()
        wire = ((payload[offset + 2] << 8 | payload[offset + 3]) + 1) * 4
        if offset + wire <= size:
            return True
    return False


def _quic_possible(payload: bytes, size: int, max_offset: int) -> bool:
    if size >= 26 and payload[0] & 0xC0 == 0x40:
        return True  # tentative short header at offset 0
    if size < 7:
        return False
    limit = min(max_offset, size - 7)
    return _QUIC_ANCHOR.search(payload, 0, min(size, limit + 5)) is not None


@dataclass
class ColumnarStats:
    """Batch-scanner instrumentation, separate from :class:`DpiStats`.

    ``DpiStats`` is the golden-corpus schema and must stay bit-identical
    across backends, so columnar-only counters live here.  ``fallbacks``
    counts payloads the batch scanner refused (non-``bytes`` inputs) and
    handed back for a scalar sweep; ``vector_errors`` counts whole batches
    that dropped from the numpy path to the pure-Python path.
    """

    batches: int = 0
    payloads: int = 0
    fallbacks: int = 0
    vector_errors: int = 0

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.payloads if self.payloads else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "batches": self.batches,
            "payloads": self.payloads,
            "fallbacks": self.fallbacks,
            "vector_errors": self.vector_errors,
            "fallback_rate": self.fallback_rate,
        }

    def merge(self, other: "ColumnarStats") -> None:
        self.batches += other.batches
        self.payloads += other.payloads
        self.fallbacks += other.fallbacks
        self.vector_errors += other.vector_errors


class ColumnarScanner:
    """Batch stage-one scanner, bit-identical to the scalar matchers.

    ``use_numpy`` selects the vector path: ``None`` auto-detects, ``True``
    requires numpy (raising if absent), ``False`` forces the pure-Python
    path.  Both paths produce identical output; parity is enforced by the
    conformance differ and the hypothesis tests.
    """

    def __init__(
        self,
        max_offset: int,
        protocols: Sequence[Protocol] = tuple(Protocol),
        use_numpy: Optional[bool] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if max_offset < 0:
            raise ValueError("max_offset must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._max_offset = max_offset
        self._protocols = tuple(protocols)
        if use_numpy is None:
            self._use_numpy = _np is not None
        elif use_numpy and _np is None:
            raise RuntimeError("use_numpy=True but numpy is not importable")
        else:
            self._use_numpy = bool(use_numpy)
        self.batch_size = batch_size
        self.stats = ColumnarStats()
        present = set(self._protocols)
        self._stun_on = Protocol.STUN_TURN in present
        self._rtp_on = Protocol.RTP in present
        self._rtcp_on = Protocol.RTCP in present
        self._quic_on = Protocol.QUIC in present
        # The sorted-RTP-run shortcut assumes RTP contributes once.
        self._rtp_once = (
            sum(1 for p in self._protocols if p is Protocol.RTP) <= 1
        )

    @property
    def max_offset(self) -> int:
        return self._max_offset

    @property
    def vectorized(self) -> bool:
        return self._use_numpy

    # -- public API ---------------------------------------------------------------

    def scan_payload(self, payload: bytes) -> List[Candidate]:
        """Scalar reference scan of one payload (the parity oracle)."""
        out: List[Candidate] = []
        for protocol in self._protocols:
            out.extend(MATCHERS[protocol](payload, self._max_offset))
        out.sort(key=_sort_key)
        return out

    def scan_batch(
        self, batch: Sequence[bytes]
    ) -> List[Optional[List[Candidate]]]:
        """Candidate lists for a chunk of payloads, in input order.

        A ``None`` entry flags a payload the batch scanner cannot handle
        (anything that is not ``bytes``); the caller must fall back to the
        scalar sweep for it.  Results are independent of how payloads are
        grouped into batches.
        """
        stats = self.stats
        stats.batches += 1
        n = len(batch)
        stats.payloads += n
        if not n:
            return []
        # C-level homogeneity probe; the isinstance walk below still
        # handles rarities like bytes subclasses or mixed batches.
        if set(map(type, batch)) == {bytes}:
            return self._scan_regular(batch)
        results: List[Optional[List[Candidate]]] = [None] * n
        regular = [i for i, p in enumerate(batch) if isinstance(p, bytes)]
        stats.fallbacks += n - len(regular)
        if regular:
            scanned = self._scan_regular([batch[i] for i in regular])
            for i, res in zip(regular, scanned):
                results[i] = res
        return results

    # -- internals ----------------------------------------------------------------

    def _scan_regular(self, batch: Sequence[bytes]) -> List[List[Candidate]]:
        if self._use_numpy and len(batch) >= _MIN_VECTOR_BATCH:
            try:
                return self._scan_np(batch)
            except Exception:  # pragma: no cover - numpy safety net
                self.stats.vector_errors += 1
        return [self._scan_one(payload) for payload in batch]

    def _scan_one(self, payload: bytes) -> List[Candidate]:
        """Pure-Python scan of one payload: gated matchers, same output."""
        max_offset = self._max_offset
        size = len(payload)
        rtp = rtp_candidates(payload, max_offset) if self._rtp_on else []
        need_stun = self._stun_on and _stun_possible(payload, size, max_offset)
        need_rtcp = self._rtcp_on and _rtcp_possible(payload, size, max_offset)
        need_quic = self._quic_on and _quic_possible(payload, size, max_offset)
        if not (need_stun or need_rtcp or need_quic) and self._rtp_once:
            return rtp
        return self._assemble(payload, rtp, need_stun, need_rtcp, need_quic)

    def _assemble(
        self,
        payload: bytes,
        rtp: List[Candidate],
        need_stun: bool,
        need_rtcp: bool,
        need_quic: bool,
    ) -> List[Candidate]:
        """Merge parts in the engine's protocol order, then stable-sort —
        byte-identical tie order to the scalar sweep."""
        max_offset = self._max_offset
        out: List[Candidate] = []
        for protocol in self._protocols:
            if protocol is Protocol.RTP:
                out.extend(rtp)
            elif protocol is Protocol.STUN_TURN:
                if need_stun:
                    out.extend(stun_candidates(payload, max_offset))
            elif protocol is Protocol.RTCP:
                if need_rtcp:
                    out.extend(rtcp_candidates(payload, max_offset))
            elif protocol is Protocol.QUIC and need_quic:
                out.extend(quic_candidates(payload, max_offset))
        out.sort(key=_sort_key)
        return out

    def _scan_np(self, batch: Sequence[bytes]) -> List[List[Candidate]]:
        """Vectorized batch scan over the joined buffer.

        One anchor pass serves both RTP and RTCP: every version-2 first
        byte inside the wider RTCP window ``min(k, size-4)`` is gathered
        once, with shared loads of the following three bytes feeding the
        RTP sequence field and the RTCP length-fit prefilter alike.
        """
        np = _np
        n = len(batch)
        sizes = [len(p) for p in batch]
        joined = b"".join(batch)
        total = len(joined)
        if not total:
            return [[] for _ in batch]
        arr = np.frombuffer(joined, dtype=np.uint8)
        starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        sizes_a = starts[1:] - starts[:-1]
        starts_l = starts.tolist()
        max_offset = self._max_offset

        flat: List[Candidate] = []
        bounds = [0] * (n + 1)
        rtcp_flag: set = set()
        if self._rtp_on or self._rtcp_on:
            rtp_lim = np.minimum(max_offset, sizes_a - 12)
            if self._rtcp_on:
                scan_lim = np.minimum(max_offset, sizes_a - 4)
            else:
                scan_lim = rtp_lim
            # Window mask over the joined buffer: anchors confined to each
            # payload's own 0..limit range, so no position can read past
            # its payload (limit <= size-4 keeps +3 lookups in bounds).
            wmask = np.zeros(total, dtype=bool)
            for i, limit in enumerate(scan_lim.tolist()):
                if limit >= 0:
                    lo = starts_l[i]
                    wmask[lo:lo + limit + 1] = True
            pos = np.nonzero(((arr & 0xC0) == 0x80) & wmask)[0]
            if pos.size:
                idx = np.searchsorted(starts, pos, side="right") - 1
                off = pos - starts[idx]
                b1 = arr[pos + 1]
                # The RTP payload-type exclusion range and the RTCP packet
                # -type range are the same byte class, so one mask routes
                # every anchor to exactly one of the two checks.
                rtcp_class = (b1 >= 0xC0) & (b1 <= 0xDF)
                if self._rtcp_on and rtcp_class.any():
                    roff = off[rtcp_class]
                    rpos = pos[rtcp_class]
                    rword = (
                        arr[rpos + 2].astype(np.int64) << 8
                    ) | arr[rpos + 3]
                    rfit = roff + (rword + 1) * 4 <= sizes_a[idx[rtcp_class]]
                    if rfit.any():
                        rtcp_flag = set(idx[rtcp_class][rfit].tolist())
                if self._rtp_on:
                    # looks_like_rtp, vectorized: PT-range exclusion, CSRC
                    # fit, and extension-length fit via masked gathers —
                    # narrowed to the surviving subset before the wider
                    # header checks so the heavy ops touch fewer elements.
                    k0 = (off <= rtp_lim[idx]) & ~rtcp_class
                    pos1 = pos[k0]
                    idx1 = idx[k0]
                    off1 = off[k0]
                    psize = sizes_a[idx1]
                    first = arr[pos1]
                    end_ = off1 + 12 + 4 * (first & 0x0F).astype(np.int64)
                    keep = end_ <= psize
                    ext = (first & 0x10) != 0
                    ext_rows = keep & ext
                    if ext_rows.any():
                        ok_len = end_ + 4 <= psize
                        safe = np.where(ext_rows & ok_len, starts[idx1] + end_, 0)
                        word_len = (
                            arr[safe + 2].astype(np.int64) << 8
                        ) | arr[safe + 3]
                        keep &= ~ext | (
                            ok_len & (end_ + 4 + 4 * word_len <= psize)
                        )
                    kpos = pos1[keep]
                    kidx = idx1[keep]
                    koff = off1[keep]
                    lengths = (sizes_a[kidx] - koff).tolist()
                    seq = (
                        (arr[kpos + 2].astype(np.int64) << 8) | arr[kpos + 3]
                    ).tolist()
                    ts = (
                        (arr[kpos + 4].astype(np.int64) << 24)
                        | (arr[kpos + 5].astype(np.int64) << 16)
                        | (arr[kpos + 6].astype(np.int64) << 8)
                        | arr[kpos + 7]
                    ).tolist()
                    ssrc = (
                        (arr[kpos + 8].astype(np.int64) << 24)
                        | (arr[kpos + 9].astype(np.int64) << 16)
                        | (arr[kpos + 10].astype(np.int64) << 8)
                        | arr[kpos + 11]
                    ).tolist()
                    rtp_proto = Protocol.RTP
                    flat = [
                        Candidate(rtp_proto, o, ln, None, b"", False, ss, sq, t, o)
                        for o, ln, ss, sq, t in zip(
                            koff.tolist(), lengths, ssrc, seq, ts
                        )
                    ]
                    bounds = np.searchsorted(kidx, np.arange(n + 1)).tolist()

        stun_flag: set = set()
        if self._stun_on:
            search = 0
            cookie_hi = max_offset + 4
            while True:
                found = joined.find(_COOKIE_BYTES, search)
                if found < 0:
                    break
                search = found + 1
                i = bisect_right(starts_l, found) - 1
                local = found - starts_l[i]
                # The cookie must lie wholly inside payload i (not straddle
                # a join seam) with its offset-4 anchor inside 0..k.
                if 4 <= local <= cookie_hi and local + 4 <= sizes[i]:
                    stun_flag.add(i)

        quic_flag: set = set()
        if self._quic_on:
            # A long-header anchor at offset ``o`` of payload ``i`` means
            # one of the three version strings sits at ``o+1`` with a
            # 0xC0-0xFF byte before it, and ``o <= min(k, size-7)``.  The
            # window bound alone rejects join-seam straddles (it keeps the
            # needle at least two bytes clear of the payload end), so
            # C-level ``find`` calls over the joined buffer enumerate
            # exactly the payloads whose own regex search would match.
            for needle in _QUIC_VERSION_NEEDLES:
                search = 0
                while True:
                    found = joined.find(needle, search)
                    if found < 0:
                        break
                    i = bisect_right(starts_l, found) - 1
                    local = found - starts_l[i]
                    limit = min(max_offset, sizes[i] - 7)
                    if i in quic_flag or local > limit + 1:
                        # Later finds in payload i are outside its prefix
                        # window too; resume at the next payload.
                        search = starts_l[i + 1]
                    elif local >= 1 and joined[found - 1] >= 0xC0:
                        quic_flag.add(i)
                        search = starts_l[i + 1]
                    else:
                        search = found + 1

        out: List[List[Candidate]] = []
        rtp_once = self._rtp_once
        stun_on = self._stun_on
        quic_on = self._quic_on
        for i in range(n):
            payload = batch[i]
            size = sizes[i]
            b0 = payload[0] if size else 0
            rtp = flat[bounds[i]:bounds[i + 1]]
            need_stun = stun_on and (
                i in stun_flag
                or (size >= 4 and 0x40 <= b0 <= 0x4F)
                or _classic_stun_possible(payload, size, b0)
            )
            need_rtcp = i in rtcp_flag
            need_quic = quic_on and (
                i in quic_flag or (size >= 26 and b0 & 0xC0 == 0x40)
            )
            if not (need_stun or need_rtcp or need_quic) and rtp_once:
                out.append(rtp)
                continue
            out.append(
                self._assemble(payload, rtp, need_stun, need_rtcp, need_quic)
            )
        return out
