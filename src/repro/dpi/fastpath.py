"""Flow-sticky DPI fast path: per-stream signature learning.

Real call streams are extremely stable: once an application settles on a
framing (say "RTP behind a 4-byte proprietary header"), every media
datagram carries an RTP header at the same offset.  The raw candidate
*shape*, however, is not stable — random media bytes surface a dozen
spurious RTP candidates per datagram at ever-changing offsets, and
multiplexed streams round-robin several SSRCs at the real offset — so the
learner keys on the one thing that recurs: ``(offset, SSRC)`` pairs.  A
spurious pair repeats across datagrams with probability ~2^-32 per pair,
so any pair observed in ``K`` distinct datagrams is byte-stable reality.

Byte-stable reality comes in two flavors, and the distinction carries the
correctness argument:

* **dynamic** pairs look like live media: the sequence-number field under
  the trusted SSRC increments like a packet counter between sightings
  (delta in 1..512 mod 2^16 — the same continuity notion stage-two
  validation uses).
* **static** pairs are byte-stable artifacts that merely parse as RTP — a
  header-extension magic, a proprietary field.  Their fake "seq" field
  may well wiggle (it can overlap a real timestamp), but it does not
  count.  They are probed so that stage-two validation sees identical
  samples in both modes, but they can never carry a prediction on their
  own: an artifact keeps matching after the real media moved, which is
  exactly when the fast path must yield.

Once locked (at least one dynamic pair learned), the engine probes only
the learned offsets (plus the cheap anchored STUN/RTCP/QUIC scans)
instead of sweeping RTP over offsets 0..k.  A learned offset may be
absent from a given datagram — ``looks_like_rtp`` fails there, so the
sweep would find nothing either and absence is parity-exact.  A
prediction misses — falling back to the full sweep for that datagram —
when any probed offset parses with an SSRC outside its trusted set, when
no probed candidate is dynamic (nothing live confirms the signature), or
when a guarded SSRC heads an RTP header at an unlearned offset (Zoom's
dual-RTP continuations).  ``K`` consecutive misses reset the learner
entirely, and stage two provides a second net: if validation anomalously
rejects a predicted message, the engine re-sweeps the whole stream.
Output is therefore bit-identical to the always-sweep path (enforced by
the parity tests in ``tests/test_fastpath.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dpi.candidates import Candidate
from repro.dpi.messages import Protocol
from repro.protocols.rtp.header import looks_like_rtp

#: Distinct datagrams an ``(offset, SSRC)`` pair must appear in before it
#: is trusted, and consecutive prediction misses tolerated before the
#: learner resets.
DEFAULT_SIGNATURE_K = 4

#: A pair counts as live media only when its sequence field advances by at
#: most this much between sightings (mirrors stage two's continuity step).
MAX_LIVE_SEQ_STEP = 512


@dataclass(frozen=True)
class StreamSignature:
    """The learned framing of one stream.

    ``rtp_offsets`` lists every offset worth probing; per offset,
    ``rtp_ssrc_sets`` holds the trusted SSRCs and ``rtp_dynamic_sets`` the
    subset whose sequence field advances like a packet counter (live media
    rather than byte-stable artifacts).
    """

    rtp_offsets: Tuple[int, ...]                 # ascending payload offsets
    rtp_ssrc_sets: Tuple[FrozenSet[int], ...]    # trusted SSRCs per offset
    rtp_dynamic_sets: Tuple[FrozenSet[int], ...]  # live subset per offset

    @cached_property
    def trusted_by_offset(self) -> Dict[int, FrozenSet[int]]:
        return dict(zip(self.rtp_offsets, self.rtp_ssrc_sets))

    @cached_property
    def dynamic_by_offset(self) -> Dict[int, FrozenSet[int]]:
        return dict(zip(self.rtp_offsets, self.rtp_dynamic_sets))

    def ssrcs_at(self, offset: int) -> FrozenSet[int]:
        return self.trusted_by_offset[offset]


class SignatureLearner:
    """Per-stream ``(offset, SSRC)`` recurrence tracker.

    Feed it the RTP candidates of every fully swept (or cached) datagram
    via :meth:`observe`; ``signature`` is non-None (the stream is *locked*)
    once at least one dynamic pair is trusted.  While locked, the engine
    reports prediction outcomes via :meth:`record_hit` /
    :meth:`record_miss`.
    """

    __slots__ = ("k", "signature", "_counts", "_trusted", "_dynamic",
                 "_misses", "_guard_patterns")

    def __init__(self, k: int = DEFAULT_SIGNATURE_K):
        if k < 2:
            raise ValueError("k must be at least 2")
        self.k = k
        self.signature: Optional[StreamSignature] = None
        # offset -> ssrc -> [datagrams seen, last seq, counter-like seq].
        self._counts: Dict[int, Dict[int, List]] = {}
        # offset -> trusted ssrcs (count reached k), and the live subset.
        self._trusted: Dict[int, Set[int]] = {}
        self._dynamic: Dict[int, Set[int]] = {}
        self._misses = 0
        # Big-endian patterns of every SSRC this stream ever trusted; kept
        # across resets so relearned signatures still guard old SSRCs.
        self._guard_patterns: Set[bytes] = set()

    @property
    def locked(self) -> bool:
        return self.signature is not None

    def observe(self, candidates: Sequence[Candidate]) -> None:
        """Digest one swept datagram's candidates; lock/adjust as needed."""
        changed = False
        for candidate in candidates:
            if candidate.protocol is not Protocol.RTP:
                continue
            offset = candidate.offset
            ssrc = candidate.rtp_ssrc
            seq = candidate.rtp_seq
            per_offset = self._counts.setdefault(offset, {})
            entry = per_offset.get(ssrc)
            if entry is None:
                per_offset[ssrc] = [1, seq, False]
                continue
            entry[0] += 1
            delta = (seq - entry[1]) & 0xFFFF
            entry[1] = seq
            if 1 <= delta <= MAX_LIVE_SEQ_STEP:
                entry[2] = True
            if entry[0] < self.k:
                continue
            trusted_here = self._trusted.setdefault(offset, set())
            if ssrc not in trusted_here:
                trusted_here.add(ssrc)
                self._guard_patterns.add(ssrc.to_bytes(4, "big"))
                changed = True
            if entry[2]:
                dynamic_here = self._dynamic.setdefault(offset, set())
                if ssrc not in dynamic_here:
                    dynamic_here.add(ssrc)
                    changed = True
        if changed:
            self._rebuild()

    def record_hit(self) -> None:
        """A locked prediction matched."""
        self._misses = 0

    def record_miss(self) -> None:
        """A locked prediction failed; relearn from scratch after ``k``
        consecutive misses (the framing clearly changed)."""
        self._misses += 1
        if self._misses >= self.k:
            self._misses = 0
            self._counts.clear()
            self._trusted.clear()
            self._dynamic.clear()
            self.signature = None

    def _rebuild(self) -> None:
        if not any(self._dynamic.values()):
            self.signature = None
            return
        offsets = tuple(sorted(self._trusted))
        empty: FrozenSet[int] = frozenset()
        self.signature = StreamSignature(
            rtp_offsets=offsets,
            rtp_ssrc_sets=tuple(frozenset(self._trusted[o]) for o in offsets),
            rtp_dynamic_sets=tuple(
                frozenset(self._dynamic[o]) if o in self._dynamic else empty
                for o in offsets
            ),
        )
        self._misses = 0

    def continuation_risk(self, payload: bytes, max_offset: int) -> bool:
        """True when a guarded SSRC appears to head an RTP message at an
        offset the signature does not cover.

        This is the Zoom dual-RTP case: the second packet of a two-RTP
        datagram reuses a trusted SSRC at a payload-dependent offset, so a
        locked fixed-offset prediction would silently drop it.  A byte-find
        per guarded SSRC is ~free compared to the sweep it replaces.
        """
        learned = self.signature.rtp_offsets
        limit = min(max_offset, len(payload) - 12)
        for pattern in self._guard_patterns:
            search_start = 0
            while True:
                pos = payload.find(pattern, search_start)
                if pos < 0:
                    break
                search_start = pos + 1
                offset = pos - 8  # SSRC lives at bytes 8..12 of the header
                if offset < 0 or offset > limit or offset in learned:
                    continue
                if looks_like_rtp(payload, offset):
                    return True
        return False


def predicted_rtp_candidates(
    payload: bytes,
    max_offset: int,
    signature: StreamSignature,
    rtp_matcher,
) -> Optional[List[Candidate]]:
    """RTP candidates at the learned offsets, or None on a miss.

    A learned offset that does not parse as RTP contributes nothing — the
    sweep would find nothing there either, so absence is parity-exact.  A
    miss is a real deviation from the signature: an SSRC outside its
    offset's trusted set (not digested yet), or no *dynamic* candidate at
    all — byte constants alone cannot vouch for a prediction, because they
    keep matching after live framing has moved.  Extra RTP elsewhere in
    the payload is the caller's problem (see
    :meth:`SignatureLearner.continuation_risk`).
    """
    candidates = rtp_matcher(payload, max_offset, offsets=signature.rtp_offsets)
    if not candidates:
        return None
    trusted = signature.trusted_by_offset
    dynamic = signature.dynamic_by_offset
    live = False
    for candidate in candidates:
        if candidate.rtp_ssrc not in trusted[candidate.offset]:
            return None
        if not live and candidate.rtp_ssrc in dynamic[candidate.offset]:
            live = True
    if not live:
        return None
    return candidates
