"""Two-stage deep packet inspection (paper §4.1, Algorithm 1).

Stage one slides a per-protocol structural matcher over every UDP payload
offset up to ``k`` (default 200), surfacing candidate messages even when
they hide behind proprietary headers.  Stage two applies protocol-specific
validation with per-stream context (sequence continuity, transaction
pairing, QUIC connection IDs) to kill false positives, then resolves byte
ownership between overlapping candidates.
"""

from repro.dpi.columnar import (
    HAVE_NUMPY,
    ColumnarScanner,
    ColumnarStats,
)
from repro.dpi.engine import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_MAX_OFFSET,
    CandidateCache,
    DpiEngine,
    DpiResult,
    DpiStats,
    DpiStreamSession,
)
from repro.dpi.fastpath import (
    DEFAULT_SIGNATURE_K,
    SignatureLearner,
    StreamSignature,
)
from repro.dpi.messages import (
    DatagramAnalysis,
    DatagramClass,
    ExtractedMessage,
    Protocol,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_MAX_OFFSET",
    "DEFAULT_SIGNATURE_K",
    "HAVE_NUMPY",
    "CandidateCache",
    "ColumnarScanner",
    "ColumnarStats",
    "DpiEngine",
    "DpiResult",
    "DpiStats",
    "DpiStreamSession",
    "SignatureLearner",
    "StreamSignature",
    "DatagramAnalysis",
    "DatagramClass",
    "ExtractedMessage",
    "Protocol",
]
