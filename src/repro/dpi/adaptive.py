"""Adaptive offset bounds — the extension §4.1.1 leaves as future work.

The fixed k=200 bound wastes work on applications whose messages always sit
at offset 0 (most of them) and would silently miss messages nested deeper
than 200 bytes.  The adaptive engine learns, per transport stream, where
messages actually start: it probes a stream prefix with a generous bound,
then rescans the remainder with the observed maximum offset plus slack —
falling back to the probe bound whenever a stream's prefix showed nothing
(so fully proprietary streams are still scanned honestly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.dpi.engine import DEFAULT_MAX_OFFSET, DpiEngine, DpiResult
from repro.dpi.messages import DatagramAnalysis
from repro.packets.packet import PacketRecord
from repro.streams.flow import Stream, group_streams


@dataclass
class AdaptiveStats:
    """What the adaptive pass learned, per stream."""

    probe_offset: int
    learned_offsets: Dict[tuple, int] = field(default_factory=dict)

    @property
    def max_learned(self) -> int:
        return max(self.learned_offsets.values(), default=0)


class AdaptiveDpiEngine:
    """Two-phase DPI: probe a stream prefix, then scan with a learned bound.

    ``probe_packets`` datagrams per stream are analyzed at ``probe_offset``;
    the rest of the stream uses ``max(observed offsets) + slack``.  Results
    are identical to the fixed engine whenever the probe saw every header
    depth the stream uses — which holds for all studied applications, whose
    proprietary header lengths are fixed per stream.
    """

    def __init__(
        self,
        probe_offset: int = DEFAULT_MAX_OFFSET,
        probe_packets: int = 50,
        slack: int = 16,
    ):
        if probe_packets < 1:
            raise ValueError("probe_packets must be >= 1")
        self._probe_offset = probe_offset
        self._probe_packets = probe_packets
        self._slack = slack
        self.stats = AdaptiveStats(probe_offset=probe_offset)

    def analyze_records(self, records: Sequence[PacketRecord]) -> DpiResult:
        udp = [r for r in records if r.transport == "UDP"]
        result = DpiResult()
        for key, stream in group_streams(udp).items():
            result.analyses.extend(self._analyze_stream(key, stream))
        result.analyses.sort(key=lambda a: a.record.timestamp)
        return result

    def _analyze_stream(self, key, stream: Stream) -> List[DatagramAnalysis]:
        probe_engine = DpiEngine(max_offset=self._probe_offset)
        if len(stream.packets) <= self._probe_packets:
            analyses = probe_engine.analyze_stream(stream)
            self._learn(key, analyses)
            return analyses

        prefix = Stream(key=key, packets=stream.packets[: self._probe_packets])
        probe_analyses = probe_engine.analyze_stream(prefix)
        self._learn(key, probe_analyses)

        learned = self.stats.learned_offsets.get(key)
        if learned is None:
            # Nothing recognizable in the prefix: keep scanning honestly.
            bound = self._probe_offset
        else:
            bound = min(self._probe_offset, learned + self._slack)
        # Rescan the WHOLE stream with the learned bound so validation
        # context (sequence continuity, QUIC CIDs) sees every packet.
        return DpiEngine(max_offset=bound).analyze_stream(stream)

    def _learn(self, key, analyses: Sequence[DatagramAnalysis]) -> None:
        deepest = -1
        for analysis in analyses:
            for message in analysis.messages:
                deepest = max(deepest, message.offset)
        if deepest >= 0:
            self.stats.learned_offsets[key] = deepest
