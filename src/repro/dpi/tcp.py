"""TCP-carried RTC message extraction — lifting the paper's §3.3 limitation.

The paper analyzes UDP only, accepting that a small share of RTC messages
may ride in TCP segments.  This module closes the gap for the framings
actually specified for TCP transport:

- STUN/TURN over TCP (RFC 8489 §7.2.2): messages are self-delimiting via
  the header length field, sent back to back;
- TURN ChannelData over TCP (RFC 8656 §12.4): 4-byte header, payload,
  then padding up to the next 4-byte boundary (legal on stream
  transports, unlike UDP);
- RTP/RTCP over a connection-oriented transport (RFC 4571): each packet is
  prefixed with a 2-byte big-endian length.

Per stream and direction, segments are concatenated in capture order (the
synthetic substrate never reorders; for real captures a seq-number
reassembler would slot in here) and the byte stream is walked message by
message.  Opaque streams (TLS signaling) yield nothing, as they should.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.dpi.messages import ExtractedMessage, Protocol
from repro.packets.packet import Direction, PacketRecord
from repro.protocols.rtcp.packets import RtcpHeader, RtcpParseError
from repro.protocols.rtp.header import RtpPacket, RtpParseError, looks_like_rtp
from repro.protocols.stun.message import (
    ChannelData,
    StunMessage,
    StunParseError,
    looks_like_stun,
)
from repro.streams.flow import group_streams


@dataclass
class TcpAnalysis:
    """Messages recovered from one TCP stream direction."""

    stream_key: tuple
    direction_endpoint: Tuple[str, int]
    messages: List[ExtractedMessage] = field(default_factory=list)
    opaque_bytes: int = 0  # bytes the walker could not attribute


def analyze_tcp_records(records: Sequence[PacketRecord]) -> List[TcpAnalysis]:
    """Extract STUN/TURN and framed RTP/RTCP messages from TCP traffic."""
    tcp = [r for r in records if r.transport == "TCP"]
    analyses: List[TcpAnalysis] = []
    for key, stream in group_streams(tcp).items():
        by_sender: Dict[Tuple[str, int], List[PacketRecord]] = {}
        for record in stream.packets:
            by_sender.setdefault((record.src_ip, record.src_port), []).append(record)
        for endpoint, segments in by_sender.items():
            analyses.append(_analyze_direction(key, endpoint, segments))
    return analyses


def _analyze_direction(
    key, endpoint: Tuple[str, int], segments: Sequence[PacketRecord]
) -> TcpAnalysis:
    buffer = b"".join(segment.payload for segment in segments)
    first = segments[0]
    # A synthetic record wrapping the reassembled byte stream lets the
    # regular ExtractedMessage machinery (raw slicing, stream keys) work.
    carrier = PacketRecord(
        timestamp=first.timestamp,
        src_ip=first.src_ip,
        src_port=first.src_port,
        dst_ip=first.dst_ip,
        dst_port=first.dst_port,
        transport="TCP",
        payload=buffer,
        direction=first.direction,
    )
    analysis = TcpAnalysis(stream_key=key, direction_endpoint=endpoint)
    pos = 0
    while pos < len(buffer):
        consumed = _try_stun(buffer, pos, carrier, analysis)
        if consumed:
            pos += consumed
            continue
        consumed = _try_channeldata(buffer, pos, carrier, analysis)
        if consumed:
            pos += consumed
            continue
        consumed = _try_rfc4571(buffer, pos, carrier, analysis)
        if consumed:
            pos += consumed
            continue
        # Unrecognized byte stream (TLS, HTTP, proprietary): count the rest
        # as opaque and stop — resynchronizing inside ciphertext would only
        # manufacture false positives.
        analysis.opaque_bytes = len(buffer) - pos
        break
    return analysis


def _try_stun(buffer: bytes, pos: int, carrier: PacketRecord,
              analysis: TcpAnalysis) -> int:
    window = buffer[pos:]
    if len(window) < 20 or not looks_like_stun(window):
        return 0
    try:
        message = StunMessage.parse(window, strict=False)
    except StunParseError:
        return 0
    if message.classic and message.wire_length != len(window):
        # Without the magic cookie the framing is too ambiguous mid-stream.
        return 0
    analysis.messages.append(
        ExtractedMessage(
            protocol=Protocol.STUN_TURN,
            offset=pos,
            length=message.wire_length,
            message=message,
            record=carrier,
        )
    )
    return message.wire_length


def _try_channeldata(buffer: bytes, pos: int, carrier: PacketRecord,
                     analysis: TcpAnalysis) -> int:
    """TURN ChannelData framing at *pos*; returns bytes consumed (0 = no).

    Over TCP the frame is padded to the next 4-byte boundary (RFC 8656
    §12.4).  The padding is *consumed* but kept out of the message's
    trailer: the compliance layer flags trailer bytes as the
    padding-over-UDP violation, and over TCP they are simply framing.
    """
    if pos + ChannelData.HEADER_LEN > len(buffer):
        return 0
    # Client-allocated channel range only (0x4000-0x4FFF), mirroring the
    # UDP candidate matcher — reserved channels would collide with RFC
    # 4571 length prefixes of large frames.
    if not 0x40 <= buffer[pos] <= 0x4F:
        return 0
    length = int.from_bytes(buffer[pos + 2:pos + 4], "big")
    end = pos + ChannelData.HEADER_LEN + length
    if end > len(buffer):
        return 0
    frame = ChannelData(
        channel=int.from_bytes(buffer[pos:pos + 2], "big"),
        data=buffer[pos + ChannelData.HEADER_LEN:end],
    )
    analysis.messages.append(
        ExtractedMessage(
            protocol=Protocol.STUN_TURN,
            offset=pos,
            length=frame.wire_length,
            message=frame,
            record=carrier,
        )
    )
    padding = min(-length % 4, len(buffer) - end)
    return frame.wire_length + padding


def _try_rfc4571(buffer: bytes, pos: int, carrier: PacketRecord,
                 analysis: TcpAnalysis) -> int:
    if pos + 2 > len(buffer):
        return 0
    length = int.from_bytes(buffer[pos:pos + 2], "big")
    frame = buffer[pos + 2:pos + 2 + length]
    if length < 8 or len(frame) != length:
        return 0
    if frame[0] >> 6 != 2:
        return 0
    if 192 <= frame[1] <= 223:
        try:
            header = RtcpHeader.parse(frame)
        except RtcpParseError:
            return 0
        if header.wire_length != length:
            return 0
        from repro.protocols.rtcp.packets import RtcpPacket
        packet = RtcpPacket(header=header, body=frame[4:header.wire_length])
        analysis.messages.append(
            ExtractedMessage(
                protocol=Protocol.RTCP,
                offset=pos + 2,
                length=length,
                message=packet,
                record=carrier,
            )
        )
        return 2 + length
    if not looks_like_rtp(frame):
        return 0
    try:
        packet = RtpPacket.parse(frame, strict=False)
    except RtpParseError:
        return 0
    analysis.messages.append(
        ExtractedMessage(
            protocol=Protocol.RTP,
            offset=pos + 2,
            length=length,
            message=packet,
            record=carrier,
        )
    )
    return 2 + length
