"""Byte-level cursor primitives for protocol parsing and building.

All protocol codecs in this library are built on :class:`ByteReader` and
:class:`ByteWriter`.  They centralize bounds checking so individual parsers
raise a uniform :class:`TruncatedError` instead of ad-hoc ``struct.error`` or
``IndexError`` leaking out of the parse path.
"""

from __future__ import annotations

import struct


class TruncatedError(ValueError):
    """Raised when a parser runs past the end of the available bytes."""


class ByteReader:
    """A forward-only cursor over an immutable byte buffer.

    The reader never copies the underlying buffer for peeks; slices are only
    materialized when value bytes are actually consumed.
    """

    __slots__ = ("_data", "_pos", "_end")

    def __init__(self, data: bytes, start: int = 0, end: int | None = None):
        if end is None:
            end = len(data)
        if not 0 <= start <= end <= len(data):
            raise ValueError(f"invalid window [{start}:{end}] for {len(data)} bytes")
        self._data = data
        self._pos = start
        self._end = end

    @property
    def pos(self) -> int:
        """Absolute offset of the cursor within the original buffer."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bytes left in the window."""
        return self._end - self._pos

    def at_end(self) -> bool:
        return self._pos >= self._end

    def _require(self, n: int) -> None:
        if n < 0:
            raise ValueError("negative read length")
        if self._pos + n > self._end:
            raise TruncatedError(
                f"need {n} bytes at offset {self._pos}, only {self.remaining} left"
            )

    def read(self, n: int) -> bytes:
        self._require(n)
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def peek(self, n: int) -> bytes:
        self._require(n)
        return self._data[self._pos:self._pos + n]

    def skip(self, n: int) -> None:
        self._require(n)
        self._pos += n

    def u8(self) -> int:
        self._require(1)
        value = self._data[self._pos]
        self._pos += 1
        return value

    def u16(self) -> int:
        self._require(2)
        value = struct.unpack_from("!H", self._data, self._pos)[0]
        self._pos += 2
        return value

    def u24(self) -> int:
        self._require(3)
        hi, lo = struct.unpack_from("!BH", self._data, self._pos)
        self._pos += 3
        return (hi << 16) | lo

    def u32(self) -> int:
        self._require(4)
        value = struct.unpack_from("!I", self._data, self._pos)[0]
        self._pos += 4
        return value

    def u64(self) -> int:
        self._require(8)
        value = struct.unpack_from("!Q", self._data, self._pos)[0]
        self._pos += 8
        return value

    def rest(self) -> bytes:
        """Consume and return every remaining byte in the window."""
        out = self._data[self._pos:self._end]
        self._pos = self._end
        return out

    def subreader(self, n: int) -> "ByteReader":
        """Return a reader over the next *n* bytes and advance past them."""
        self._require(n)
        sub = ByteReader(self._data, self._pos, self._pos + n)
        self._pos += n
        return sub


class ByteWriter:
    """An append-only builder that mirrors :class:`ByteReader`."""

    __slots__ = ("_chunks", "_length")

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def write(self, data: bytes) -> "ByteWriter":
        self._chunks.append(bytes(data))
        self._length += len(data)
        return self

    def u8(self, value: int) -> "ByteWriter":
        return self.write(struct.pack("!B", value & 0xFF))

    def u16(self, value: int) -> "ByteWriter":
        return self.write(struct.pack("!H", value & 0xFFFF))

    def u24(self, value: int) -> "ByteWriter":
        value &= 0xFFFFFF
        return self.write(struct.pack("!BH", value >> 16, value & 0xFFFF))

    def u32(self, value: int) -> "ByteWriter":
        return self.write(struct.pack("!I", value & 0xFFFFFFFF))

    def u64(self, value: int) -> "ByteWriter":
        return self.write(struct.pack("!Q", value & 0xFFFFFFFFFFFFFFFF))

    def pad_to_multiple(self, multiple: int, fill: int = 0) -> "ByteWriter":
        """Append *fill* bytes until the length is a multiple of *multiple*."""
        remainder = self._length % multiple
        if remainder:
            self.write(bytes([fill]) * (multiple - remainder))
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)
