"""Hexdump formatting used by debugging helpers and example scripts."""

from __future__ import annotations


def hexdump(data: bytes, width: int = 16, offset: int = 0) -> str:
    """Render *data* in the classic offset / hex / ASCII three-column layout.

    >>> print(hexdump(b"STUN!"))
    00000000  53 54 55 4e 21                                    |STUN!|
    """
    lines = []
    for start in range(0, len(data), width):
        chunk = data[start:start + width]
        hex_part = " ".join(f"{b:02x}" for b in chunk)
        # Two spaces between the 8-byte halves, matching xxd/hexdump -C.
        if len(chunk) > 8:
            hex_part = (
                " ".join(f"{b:02x}" for b in chunk[:8])
                + "  "
                + " ".join(f"{b:02x}" for b in chunk[8:])
            )
        ascii_part = "".join(chr(b) if 0x20 <= b < 0x7F else "." for b in chunk)
        pad = width * 3 + 1
        lines.append(f"{offset + start:08x}  {hex_part:<{pad}} |{ascii_part}|")
    return "\n".join(lines)
