"""Deterministic randomness for reproducible experiments.

Every simulator and workload generator takes a seed and derives all of its
randomness from a private :class:`DeterministicRandom`.  Library code never
touches the global ``random`` module, so an experiment is a pure function of
its seed and parameters.
"""

from __future__ import annotations

import random


class DeterministicRandom(random.Random):
    """A seeded RNG with helpers for the byte-oriented values protocols need."""

    def __init__(self, seed: int | str = 0):
        super().__init__(seed)
        self._seed_key = str(seed)

    def child(self, label: str) -> "DeterministicRandom":
        """Derive an independent RNG for a sub-component.

        Children are keyed by label so adding a new consumer does not perturb
        the streams of existing ones.
        """
        return DeterministicRandom(f"{self._seed_key}/{label}")

    def rand_bytes(self, n: int) -> bytes:
        return bytes(self.getrandbits(8) for _ in range(n))

    def u16(self) -> int:
        return self.getrandbits(16)

    def u32(self) -> int:
        return self.getrandbits(32)

    def u64(self) -> int:
        return self.getrandbits(64)

    def transaction_id(self) -> bytes:
        """A 12-byte STUN transaction ID."""
        return self.rand_bytes(12)

    def jitter(self, base: float, fraction: float = 0.1) -> float:
        """Return *base* perturbed by up to ±fraction of itself."""
        return base * (1.0 + self.uniform(-fraction, fraction))


def derive(seed: int | str, label: str) -> DeterministicRandom:
    """Derive a labelled RNG from a root seed.

    Deriving by hashing the (seed, label) pair keeps sibling components
    statistically independent while remaining fully reproducible.
    """
    return DeterministicRandom(f"{seed}:{label}")
