"""Shared low-level helpers: deterministic RNG, hexdump, byte cursors."""

from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError
from repro.utils.hexdump import hexdump
from repro.utils.rand import DeterministicRandom

__all__ = [
    "ByteReader",
    "ByteWriter",
    "TruncatedError",
    "hexdump",
    "DeterministicRandom",
]
