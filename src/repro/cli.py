"""Command-line interface: ``rtc-compliance``.

Subcommands::

    rtc-compliance run --app zoom --network wifi_relay   # one experiment
    rtc-compliance matrix --duration 30 --scale 0.5      # full matrix + tables
    rtc-compliance synthesize --app discord --out d.pcap # write a pcap trace
    rtc-compliance pcap capture.pcap                     # analyze a real pcap
    rtc-compliance dpi-stats --app zoom                  # DPI fast-path counters
    rtc-compliance pipeline-stats --app zoom             # per-stage stream counters
    rtc-compliance conformance record                    # (re-)record goldens
    rtc-compliance conformance check                     # diff engines vs goldens
    rtc-compliance conformance fuzz --iterations 2000    # mutation oracle
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps import APP_NAMES, CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker, ComplianceSummary
from repro.dpi import DpiEngine
from repro.experiments import ExperimentConfig, run_experiment, run_matrix
from repro.experiments.figures import figure3, figure4, figure5, render_ratio_series
from repro.experiments.tables import (
    render_observed_types,
    render_table1,
    render_table2,
    render_table3,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.packets.pcap import read_pcap, write_pcap


def _workers(value: str) -> int:
    workers = int(value)
    if workers < 1:
        raise argparse.ArgumentTypeError("expected a positive integer")
    return workers


def _chunk_size(value: str) -> int:
    chunk = int(value)
    if chunk < 1:
        raise argparse.ArgumentTypeError("expected a positive integer")
    return chunk


def add_execution_flags(
    parser: argparse.ArgumentParser,
    workers: bool = False,
    sharding: bool = False,
    plan: bool = False,
    backend: bool = False,
    impairment: bool = False,
) -> None:
    """Attach the shared execution-matrix flags to *parser*.

    One definition per flag — ``--workers``, ``--shard-workers``,
    ``--chunk-size``, ``--plan``, ``--calibration-file``,
    ``--dpi-backend``, ``--impairment`` — so every subcommand (including
    ``serve``) wires the same names, types, defaults, and help text, and
    :func:`config_from_args` can rebuild an :class:`ExperimentConfig`
    from any of them.
    """
    if workers:
        parser.add_argument("--workers", type=_workers, default=None,
                            help="worker processes for matrix cells "
                                 "(default: one per CPU core; 1 = serial)")
    if sharding:
        parser.add_argument("--shard-workers", type=_workers, default=1,
                            help="flow-shard each cell's streaming pipeline "
                                 "across N worker processes (default: 1, "
                                 "unsharded; results are identical)")
        parser.add_argument("--chunk-size", type=_chunk_size, default=None,
                            help="records per pipeline stage dispatch "
                                 "(default: 256; 1 = per-record feeding)")
    if plan:
        parser.add_argument("--plan", choices=("auto", "fixed"), default="fixed",
                            help="execution planning mode: auto lets the "
                                 "adaptive planner pick shard workers, chunk "
                                 "size and DPI backend per cell from "
                                 "calibrated stage rates (default: fixed, "
                                 "use the flags as given)")
        parser.add_argument("--calibration-file", default=None,
                            help="planner calibration cache path (default: "
                                 "$RTC_COMPLIANCE_CALIBRATION or "
                                 "~/.cache/rtc-compliance/calibration.json)")
    if backend:
        parser.add_argument("--dpi-backend", choices=("scalar", "columnar"),
                            default="scalar",
                            help="stage-one sweep implementation (columnar = "
                                 "vectorized batch scan over whole chunks; "
                                 "results are bit-identical)")
    if impairment:
        from repro.netem import PROFILE_NAMES

        parser.add_argument("--impairment", choices=PROFILE_NAMES,
                            default="none",
                            help="network-impairment profile applied to every "
                                 "cell's record stream post-synthesis (loss, "
                                 "burst loss, reordering, duplication, NAT "
                                 "rebinding, UDP blackout with TURN-over-TCP "
                                 "fallback; default: none)")


def config_from_args(args: argparse.Namespace, **overrides) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from whatever flags *args* has.

    Tolerant of subcommands that attach only a subset of the execution
    flags: anything missing falls back to the config's own default, so
    every command resolves its config through this one helper.
    """
    kwargs = {
        "call_duration": getattr(args, "duration", 30.0),
        "media_scale": getattr(args, "scale", 0.5),
        "seed": getattr(args, "seed", 0),
        "repeats": getattr(args, "repeats", 1),
        "shard_workers": getattr(args, "shard_workers", 1),
        "dpi_backend": getattr(args, "dpi_backend", "scalar"),
        "plan": getattr(args, "plan", "fixed"),
        "calibration_file": getattr(args, "calibration_file", None),
        "impairment": getattr(args, "impairment", "none"),
    }
    chunk_size = getattr(args, "chunk_size", None)
    if chunk_size is not None:
        kwargs["chunk_size"] = chunk_size
    if getattr(args, "no_fastpath", False):
        kwargs["fastpath"] = False
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def _network(value: str) -> NetworkCondition:
    try:
        return NetworkCondition(value)
    except ValueError:
        choices = ", ".join(n.value for n in NetworkCondition)
        raise argparse.ArgumentTypeError(f"expected one of: {choices}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rtc-compliance",
        description="Protocol-compliance measurement for RTC applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment cell")
    run_p.add_argument("--app", choices=APP_NAMES, required=True)
    run_p.add_argument("--network", type=_network, default=NetworkCondition.WIFI_RELAY)
    run_p.add_argument("--duration", type=float, default=30.0)
    run_p.add_argument("--scale", type=float, default=0.5)
    run_p.add_argument("--seed", type=int, default=0)
    add_execution_flags(run_p, backend=True, impairment=True)

    matrix_p = sub.add_parser("matrix", help="run the full experiment matrix")
    matrix_p.add_argument("--duration", type=float, default=30.0)
    matrix_p.add_argument("--scale", type=float, default=0.5)
    matrix_p.add_argument("--repeats", type=int, default=1)
    matrix_p.add_argument("--seed", type=int, default=0)
    add_execution_flags(matrix_p, workers=True, sharding=True,
                        plan=True, backend=True, impairment=True)

    synth_p = sub.add_parser("synthesize", help="write a synthetic call trace to pcap")
    synth_p.add_argument("--app", choices=APP_NAMES, required=True)
    synth_p.add_argument("--network", type=_network, default=NetworkCondition.WIFI_RELAY)
    synth_p.add_argument("--duration", type=float, default=30.0)
    synth_p.add_argument("--scale", type=float, default=0.5)
    synth_p.add_argument("--seed", type=int, default=0)
    synth_p.add_argument("--out", required=True)
    add_execution_flags(synth_p, impairment=True)

    pcap_p = sub.add_parser("pcap", help="analyze an existing pcap capture")
    pcap_p.add_argument("path")
    pcap_p.add_argument("--max-offset", type=int, default=200)
    add_execution_flags(pcap_p, plan=True, backend=True)

    report_p = sub.add_parser("report", help="write a markdown compliance report")
    report_p.add_argument("--app", choices=APP_NAMES)
    report_p.add_argument("--network", type=_network, default=NetworkCondition.WIFI_RELAY)
    report_p.add_argument("--duration", type=float, default=30.0)
    report_p.add_argument("--scale", type=float, default=0.5)
    report_p.add_argument("--seed", type=int, default=0)
    report_p.add_argument("--out", help="output file (default: stdout)")
    add_execution_flags(report_p, workers=True, sharding=True,
                        plan=True, backend=True, impairment=True)

    dataset_p = sub.add_parser(
        "dataset", help="synthesize a pcap dataset with ground-truth manifest"
    )
    dataset_p.add_argument("--root", required=True)
    dataset_p.add_argument("--duration", type=float, default=30.0)
    dataset_p.add_argument("--scale", type=float, default=0.5)
    dataset_p.add_argument("--repeats", type=int, default=1)
    dataset_p.add_argument("--seed", type=int, default=0)
    dataset_p.add_argument("--apps", nargs="*", choices=APP_NAMES, default=APP_NAMES)

    interop_p = sub.add_parser(
        "interop", help="estimate per-app interoperability adaptation effort"
    )
    interop_p.add_argument("--duration", type=float, default=20.0)
    interop_p.add_argument("--scale", type=float, default=0.4)
    interop_p.add_argument("--seed", type=int, default=0)

    fingerprint_p = sub.add_parser(
        "fingerprint", help="identify the RTC application behind a pcap"
    )
    fingerprint_p.add_argument("path")
    fingerprint_p.add_argument("--max-offset", type=int, default=200)

    dissect_p = sub.add_parser(
        "dissect", help="print a per-datagram dissection of a pcap"
    )
    dissect_p.add_argument("path")
    dissect_p.add_argument("--max-offset", type=int, default=200)
    dissect_p.add_argument("--limit", type=int, default=20,
                           help="datagrams to print (default 20)")

    stats_p = sub.add_parser(
        "dpi-stats", help="run experiments and print DPI fast-path counters"
    )
    stats_p.add_argument("--app", choices=APP_NAMES,
                         help="single app (default: full matrix)")
    stats_p.add_argument("--network", type=_network, default=None,
                         help="single network condition (default: all three)")
    stats_p.add_argument("--duration", type=float, default=30.0)
    stats_p.add_argument("--scale", type=float, default=0.5)
    stats_p.add_argument("--seed", type=int, default=0)
    stats_p.add_argument("--no-fastpath", action="store_true",
                         help="disable the flow-sticky fast path (sweep only)")
    add_execution_flags(stats_p, backend=True, impairment=True)

    pstats_p = sub.add_parser(
        "pipeline-stats",
        help="run experiments and print per-stage streaming instrumentation",
    )
    pstats_p.add_argument("--app", choices=APP_NAMES,
                          help="single app (default: full matrix)")
    pstats_p.add_argument("--network", type=_network, default=None,
                          help="single network condition (default: all three)")
    pstats_p.add_argument("--duration", type=float, default=30.0)
    pstats_p.add_argument("--scale", type=float, default=0.5)
    pstats_p.add_argument("--seed", type=int, default=0)
    pstats_p.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of a table")
    add_execution_flags(pstats_p, sharding=True, plan=True,
                        backend=True, impairment=True)

    serve_p = sub.add_parser(
        "serve", help="run the always-on compliance service (HTTP + SSE)"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8787,
                         help="listen port (0 = pick a free port)")
    add_execution_flags(serve_p, sharding=True, plan=True,
                        backend=True, impairment=True)

    conf_p = sub.add_parser(
        "conformance",
        help="golden-corpus recording, differential checks, mutation fuzzing",
    )
    conf_sub = conf_p.add_subparsers(dest="conformance_command", required=True)

    record_p = conf_sub.add_parser(
        "record", help="record golden corpus cells under the reference engine"
    )
    record_p.add_argument("--dir", help="corpus directory "
                          "(default: tests/golden/conformance)")
    record_p.add_argument("--duration", type=float, default=None,
                          help="override call duration (default: corpus standard)")
    record_p.add_argument("--scale", type=float, default=None,
                          help="override media scale (default: corpus standard)")
    record_p.add_argument("--seed", type=int, default=None,
                          help="override simulation seed (default: corpus standard)")
    record_p.add_argument("--apps", nargs="*", choices=APP_NAMES, default=None)
    record_p.add_argument("--networks", nargs="*", type=_network, default=None)
    add_execution_flags(record_p, impairment=True)
    record_p.add_argument("--impaired", action="store_true",
                          help="record the standard impaired sibling corpora "
                               "(impaired-<profile>/ next to the clean corpus) "
                               "instead of the clean corpus")

    check_p = conf_sub.add_parser(
        "check", help="replay the corpus through every engine config and diff"
    )
    check_p.add_argument("--dir", help="corpus directory "
                         "(default: tests/golden/conformance)")
    check_p.add_argument("--apps", nargs="*", choices=APP_NAMES, default=None)
    check_p.add_argument("--networks", nargs="*", type=_network, default=None)
    check_p.add_argument("--report-out",
                         help="also write the drift report to this file")
    check_p.add_argument("--impaired", action="store_true",
                         help="check the impaired sibling corpora "
                              "(impaired-<profile>/) instead of the clean "
                              "corpus")

    fuzz_p = conf_sub.add_parser(
        "fuzz", help="criterion-targeted mutation fuzzing with exact oracle"
    )
    fuzz_p.add_argument("--iterations", type=int, default=2000)
    fuzz_p.add_argument("--seed", type=int, default=0)
    fuzz_p.add_argument("--dir", help="harvest extra seed messages from this "
                        "corpus directory (default: tests/golden/conformance "
                        "when present; builtin seeds otherwise)")
    fuzz_p.add_argument("--no-corpus", action="store_true",
                        help="fuzz builtin seed messages only")
    fuzz_p.add_argument("--no-minimize", action="store_true",
                        help="skip payload minimization of failures")
    fuzz_p.add_argument("--report-out",
                        help="also write the fuzz report to this file")

    return parser


def _print_summary(summary: ComplianceSummary) -> None:
    print(f"Application: {summary.app}")
    print(f"Volume compliance: {summary.volume.ratio * 100:.2f}% "
          f"({summary.volume.compliant}/{summary.volume.total} messages)")
    for protocol, volume in summary.volume_by_protocol.items():
        print(f"  {protocol:<10} {volume.ratio * 100:6.2f}% "
              f"({volume.compliant}/{volume.total})")
    compliant, total = summary.type_ratio()
    print(f"Message-type compliance: {compliant}/{total}")
    for entry in sorted(summary.types.values(), key=lambda e: (e.protocol, e.type_label)):
        status = "OK " if entry.compliant else "BAD"
        line = f"  [{status}] {entry.protocol:<10} {entry.type_label:<14} x{entry.total}"
        if entry.example_violations:
            line += f"  e.g. {entry.example_violations[0]}"
        print(line)


def cmd_run(args: argparse.Namespace) -> int:
    config = config_from_args(args)
    aggregate = run_experiment(args.app, args.network, config)
    _print_summary(aggregate.summary)
    print(f"Filter precision: {aggregate.filter_precision:.3f}  "
          f"recall: {aggregate.filter_recall:.3f}")
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    config = config_from_args(args)
    matrix = run_matrix(config=config, workers=args.workers)
    print(render_table1(table1(matrix)))
    print()
    print(render_table2(table2(matrix)))
    print()
    print(render_table3(table3(matrix)))
    print()
    print(render_observed_types(table4(matrix), "Table 4: STUN/TURN message types"))
    print()
    print(render_observed_types(table5(matrix), "Table 5: RTP payload types"))
    print()
    print(render_observed_types(table6(matrix), "Table 6: RTCP packet types"))
    print()
    fig4 = figure4(matrix)
    print(render_ratio_series(fig4["by_app"], "Figure 4 (by app, volume)"))
    print(render_ratio_series(fig4["by_protocol"], "Figure 4 (by protocol, volume)"))
    fig5 = figure5(matrix)
    print(render_ratio_series(fig5["by_app"], "Figure 5 (by app, types)"))
    print(render_ratio_series(fig5["by_protocol"], "Figure 5 (by protocol, types)"))
    fig3 = figure3(matrix)
    for app, shares in fig3.items():
        print(f"Figure 3 {app}: " + ", ".join(
            f"{k}={v * 100:.1f}%" for k, v in shares.items()
        ))
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    simulator = get_simulator(args.app)
    records = list(
        simulator.iter_records(
            CallConfig(
                network=args.network,
                seed=args.seed,
                call_duration=args.duration,
                media_scale=args.scale,
                impairment=args.impairment,
            )
        )
    )
    count = write_pcap(args.out, records)
    print(f"wrote {count} packets to {args.out}")
    return 0


def cmd_pcap(args: argparse.Namespace) -> int:
    """Analyze a capture by streaming it off disk chunk by chunk.

    The mmap batch decoder indexes the file up front (so the planner can
    see the frame count before a single record is decoded), then records
    flow straight into the streaming pipeline — peak memory is one chunk,
    not the capture.  Output is bit-identical to the historical
    read-everything-then-analyze path.
    """
    import time as _time

    from repro.experiments import costmodel
    from repro.experiments.scheduler import PlanSignals, plan_execution
    from repro.packets.batch import BatchPcapReader
    from repro.pipeline import DEFAULT_CHUNK_SIZE, run_streaming
    from repro.pipeline.stage import StageStats

    backend = args.dpi_backend
    chunk_size = DEFAULT_CHUNK_SIZE
    plan_mode = getattr(args, "plan", "fixed")
    with BatchPcapReader(args.path) as reader:
        if plan_mode == "auto":
            store = costmodel.get_store(getattr(args, "calibration_file", None))
            calibration = store.calibration
            sample = reader.decode_sample()
            workload = costmodel.workload_signals(sample)
            scale = (
                reader.frame_count / len(sample) if sample else 1.0
            )
            signals = PlanSignals(
                records=reader.frame_count,
                kept_records=reader.frame_count,
                flows=workload.flows,
                max_flow_records=int(workload.max_flow_records * scale),
                # run_streaming is single-process; one visible CPU keeps
                # the model from suggesting shards this path cannot use.
                cpu_count=1,
                rates=calibration.effective_rates(),
                columnar_available=True,
                cells=1,
                rate_source=(
                    "calibration" if calibration.calibrated else "default"
                ),
                decode_records=reader.frame_count,
            )
            plan = plan_execution(signals)
            backend = plan.dpi_backend
            chunk_size = plan.chunk_size
            print(f"plan: {plan.describe()}")

        decode_stats = StageStats(name="decode")

        def timed_records():
            chunk_iter = reader.chunks(chunk_size)
            while True:
                start = _time.perf_counter()
                try:
                    batch = next(chunk_iter)
                except StopIteration:
                    decode_stats.wall_seconds += _time.perf_counter() - start
                    return
                decode_stats.wall_seconds += _time.perf_counter() - start
                decode_stats.chunks += 1
                yield from batch

        engine = DpiEngine(max_offset=args.max_offset, backend=backend)
        checker = ComplianceChecker()
        result, verdicts, stage_stats = run_streaming(
            timed_records(), engine, checker, chunk_size=chunk_size
        )
        ingest = reader.stats
        decode_stats.records_in = ingest.frames
        decode_stats.records_out = ingest.records
    if ingest.records == 0:
        print("no decodable packets found", file=sys.stderr)
        return 1
    if plan_mode == "auto":
        stats_by_name = {stat.name: stat for stat in stage_stats}
        stats_by_name["decode"] = decode_stats
        store.update_from_run(stats_by_name, backend)
    summary = ComplianceSummary.from_verdicts(args.path, verdicts)
    _print_summary(summary)
    by_class = result.by_class()
    total = sum(by_class.values())
    if total:
        print("Datagram classes:")
        for cls, count in by_class.items():
            print(f"  {cls.value:<20} {count} ({count / total * 100:.1f}%)")
    if decode_stats.wall_seconds > 0:
        rate = ingest.records / decode_stats.wall_seconds
        fast_pct = (
            ingest.fast_path / ingest.frames * 100 if ingest.frames else 0.0
        )
        print(
            f"Ingest: {ingest.frames} frames -> {ingest.records} records "
            f"in {decode_stats.wall_seconds:.3f}s ({rate:.0f} rec/s, "
            f"fast-path {fast_pct:.1f}%, "
            f"fallback rate {ingest.fallback_rate:.4f})"
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import aggregate_report, matrix_report

    config = config_from_args(args)
    if args.app:
        aggregate = run_experiment(args.app, args.network, config)
        text = aggregate_report(aggregate)
    else:
        text = matrix_report(run_matrix(config=config, workers=args.workers))
    if args.out:
        with open(args.out, "w") as fileobj:
            fileobj.write(text)
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    from repro.experiments.dataset import build_dataset

    dataset = build_dataset(
        args.root,
        apps=tuple(args.apps),
        call_duration=args.duration,
        media_scale=args.scale,
        repeats=args.repeats,
        seed=args.seed,
    )
    total = sum(entry.packet_count for entry in dataset.entries)
    print(f"wrote {len(dataset.entries)} traces ({total} packets) to {dataset.root}")
    return 0


def cmd_interop(args: argparse.Namespace) -> int:
    from repro.experiments.interop import compute_interop_gap, render_gap_table
    from repro.experiments.runner import run_cell_pipeline

    config = ExperimentConfig(
        call_duration=args.duration, media_scale=args.scale, seed=args.seed
    )
    gaps = []
    for app in APP_NAMES:
        verdicts = []
        analyses = []
        for network in NetworkCondition:
            run = run_cell_pipeline(app, network, config)
            analyses.extend(run.dpi.analyses)
            verdicts.extend(run.verdicts)
        gaps.append(compute_interop_gap(app, verdicts, analyses))
    print(render_gap_table(gaps))
    print("\nWorkload details:")
    for gap in gaps:
        print(f"\n{gap.app} (effort {gap.effort_score}/10):")
        for item in gap.workload_items():
            print(f"  - {item}")
    return 0


def cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.analysis.classifier import classify_application

    records = read_pcap(args.path)
    if not records:
        print("no decodable packets found", file=sys.stderr)
        return 1
    result = DpiEngine(max_offset=args.max_offset).analyze_records(records)
    scores = classify_application(result.analyses)
    if scores.best is None:
        print("no RTC application fingerprint recognized")
        return 1
    confidence = "high" if scores.confident else "low"
    print(f"best match: {scores.best} (confidence: {confidence})")
    for app, score in sorted(scores.scores.items(), key=lambda kv: -kv[1]):
        print(f"  {app:<11} score {score:.1f}")
        for reason in scores.evidence.get(app, []):
            print(f"    - {reason}")
    return 0


def cmd_dissect(args: argparse.Namespace) -> int:
    from repro.analysis.dissect import dissect_records

    records = read_pcap(args.path)
    if not records:
        print("no decodable packets found", file=sys.stderr)
        return 1
    print(dissect_records(records, max_offset=args.max_offset,
                          limit=args.limit))
    return 0


def _print_dpi_stats(label: str, stats) -> None:
    print(f"{label}:")
    print(f"  datagrams          {stats.datagrams}")
    print(f"  cache hits         {stats.cache_hits} "
          f"({stats.cache_hit_rate * 100:.1f}%)")
    print(f"  fast-path hits     {stats.fastpath_hits} "
          f"({stats.fastpath_hit_rate * 100:.1f}% of uncached)")
    print(f"  fast-path misses   {stats.fastpath_fallbacks}")
    print(f"  full sweeps        {stats.sweeps}")
    print(f"  stream re-sweeps   {stats.fastpath_redos}")
    if stats.matcher_calls:
        print("  matcher calls:")
        for protocol, count in sorted(stats.matcher_calls.items()):
            print(f"    {protocol:<10} {count}")


def cmd_dpi_stats(args: argparse.Namespace) -> int:
    from repro.dpi import DpiStats

    config = config_from_args(args)
    apps = [args.app] if args.app else list(APP_NAMES)
    networks = [args.network] if args.network else list(NetworkCondition)
    total = DpiStats()
    for app in apps:
        per_app = DpiStats()
        for network in networks:
            per_app.merge(run_experiment(app, network, config).dpi_stats)
        _print_dpi_stats(app, per_app)
        total.merge(per_app)
    if len(apps) > 1:
        _print_dpi_stats("total", total)
    mode = "off" if args.no_fastpath else "on"
    print(f"fast path: {mode}")
    return 0


def cmd_pipeline_stats(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.experiments.scheduler import plan_shard_workers
    from repro.pipeline import merge_stage_stats

    config = config_from_args(args)
    # The same resolution the sharded executor applies per cell (shards ==
    # workers == shard_workers), surfaced so a clamped request is visible.
    shard_plan = plan_shard_workers(config.shard_workers, config.shard_workers)
    apps = [args.app] if args.app else list(APP_NAMES)
    networks = [args.network] if args.network else list(NetworkCondition)
    per_app = {}
    plans_by_app = {}
    totals = {}
    for app in apps:
        stats = {}
        plans = []
        for network in networks:
            aggregate = run_experiment(app, network, config)
            merge_stage_stats(stats, aggregate.stage_stats.values())
            plans.extend(aggregate.plans)
        per_app[app] = stats
        plans_by_app[app] = plans
        merge_stage_stats(totals, stats.values())
    if args.json:
        payload = {
            "config": {
                "call_duration": config.call_duration,
                "media_scale": config.media_scale,
                "seed": config.seed,
                "shard_workers": config.shard_workers,
                "shard_plan": shard_plan.as_dict(),
                "chunk_size": config.chunk_size,
                "dpi_backend": config.dpi_backend,
                "plan": config.plan,
                "calibration_file": config.calibration_file,
                "impairment": config.impairment,
                "apps": apps,
                "networks": [n.value for n in networks],
            },
            "planner": {
                "mode": config.plan,
                "per_app": plans_by_app,
            },
            "per_app": {
                app: {name: stat.to_json() for name, stat in stats.items()}
                for app, stats in per_app.items()
            },
            "total": {name: stat.to_json() for name, stat in totals.items()},
        }
        print(json_module.dumps(payload, indent=2))
        return 0
    header = (f"{'stage':<8} {'records in':>12} {'records out':>12} "
              f"{'wall (s)':>10} {'peak buffered':>14} {'chunks':>8}")

    def print_rows(stats) -> None:
        print(f"  {header}")
        for stat in stats.values():
            print(f"  {stat.name:<8} {stat.records_in:>12} "
                  f"{stat.records_out:>12} {stat.wall_seconds:>10.4f} "
                  f"{stat.peak_buffered:>14} {stat.chunks:>8}")

    if config.plan == "auto":
        print("plan: auto (per-cell adaptive planner)")
    else:
        print(f"shard workers: {config.shard_workers} "
              f"({shard_plan.describe()})  "
              f"chunk size: {config.chunk_size}  "
              f"dpi backend: {config.dpi_backend}")
    for app, stats in per_app.items():
        print(f"{app}:")
        for plan in plans_by_app[app]:
            rationale = "; ".join(plan.get("rationale", []))
            print(f"  plan: shard_workers={plan['shard_workers']} "
                  f"chunk_size={plan['chunk_size']} "
                  f"dpi_backend={plan['dpi_backend']} [{rationale}]")
        print_rows(stats)
    if len(per_app) > 1:
        print("total:")
        print_rows(totals)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP/SSE daemon until SIGTERM/SIGINT, then drain and exit.

    The shared execution flags become the daemon's per-session defaults:
    a ``POST /sessions`` body only overrides what it names.  Shutdown is
    graceful — sessions are drained (ingest stopped, results finalized)
    while ``/healthz`` keeps answering, then the listener stops and the
    shared worker pool is torn down.
    """
    import signal
    import threading

    from repro.experiments.scheduler import shutdown_shared_pool
    from repro.service.http import ComplianceService, make_server

    config = config_from_args(args)
    defaults = {
        "impairment": config.impairment,
        "chunk_size": config.chunk_size,
    }
    service = ComplianceService(defaults=defaults)
    server = make_server(args.host, args.port, service)
    host, port = server.server_address[:2]

    stop = threading.Event()

    def _request_shutdown(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"rtc-compliance service listening on http://{host}:{port}",
          flush=True)
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print("shutting down: draining sessions", flush=True)
    service.shutdown()          # drain while /healthz still answers
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)
    shutdown_shared_pool(final=True, terminate=True)
    print("shutdown complete", flush=True)
    return 0


def _conformance_dir(args: argparse.Namespace):
    from pathlib import Path

    from repro.conformance import default_corpus_dir

    return Path(args.dir) if args.dir else default_corpus_dir()


def _write_report(path: Optional[str], text: str) -> None:
    if path:
        with open(path, "w") as fileobj:
            fileobj.write(text + "\n")
        print(f"wrote report to {path}")


def cmd_conformance(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.conformance import (
        CorpusConfig,
        GoldenMismatchError,
        check_corpus,
        check_impaired_corpora,
        default_corpus_dir,
        fuzz,
        record_corpus,
        record_impaired_corpora,
    )

    directory = _conformance_dir(args)
    if args.conformance_command == "record":
        config = CorpusConfig()
        overrides = {
            key: value
            for key, value in (
                ("call_duration", args.duration),
                ("media_scale", args.scale),
                ("seed", args.seed),
            )
            if value is not None
        }
        if args.impairment != "none":
            overrides["impairment"] = args.impairment
        if overrides:
            config = dc_replace(config, **overrides)
        if args.impaired:
            manifests = record_impaired_corpora(
                base=directory, config=config,
                apps=tuple(args.apps) if args.apps else APP_NAMES,
                progress=print,
            )
            total = sum(len(m["cells"]) for m in manifests.values())
            print(f"recorded {total} impaired cells under {directory}")
            return 0
        kwargs = {}
        if args.apps:
            kwargs["apps"] = tuple(args.apps)
        if args.networks:
            kwargs["networks"] = tuple(args.networks)
        manifest = record_corpus(directory, config, progress=print, **kwargs)
        print(f"recorded {len(manifest['cells'])} cells to {directory}")
        return 0
    if args.conformance_command == "check":
        try:
            if args.impaired:
                report = check_impaired_corpora(
                    base=directory, apps=args.apps or None
                )
            else:
                report = check_corpus(
                    directory, apps=args.apps or None,
                    networks=args.networks or None,
                )
        except GoldenMismatchError as exc:
            print(f"conformance check failed: {exc}", file=sys.stderr)
            return 1
        text = report.render()
        print(text)
        if not report.ok:
            _write_report(args.report_out, text)
        return 0 if report.ok else 1
    # fuzz
    corpus_dir = None
    if not args.no_corpus:
        candidate = directory if args.dir else default_corpus_dir()
        if (candidate / "manifest.json").exists():
            corpus_dir = candidate
        elif args.dir:
            print(f"no conformance manifest in {candidate}", file=sys.stderr)
            return 1
    report = fuzz(
        iterations=args.iterations,
        seed=args.seed,
        corpus_dir=corpus_dir,
        minimize=not args.no_minimize,
    )
    text = report.render()
    print(text)
    if not report.ok:
        _write_report(args.report_out, text)
    return 0 if report.ok else 1


def _install_signal_handlers() -> None:
    """Terminate shared-pool workers on SIGTERM/SIGINT, then die normally.

    ``atexit`` alone does not run when a signal kills the process, so a
    ``kill`` against a matrix run could orphan pool workers mid-task.
    The handler signals the workers directly (:func:`kill_pool_workers`
    — deliberately *not* ``shutdown_shared_pool``, whose executor
    shutdown acquires locks the interrupted main thread may hold),
    restores the default disposition, and re-raises the signal so the
    exit status still reflects the signal death.  ``serve`` replaces
    these with its own graceful-drain handlers.
    """
    import os
    import signal
    import threading

    from repro.experiments.scheduler import kill_pool_workers

    if threading.current_thread() is not threading.main_thread():
        return

    owner_pid = os.getpid()

    def _handler(signum, frame) -> None:
        signal.signal(signum, signal.SIG_DFL)
        # A forked child that inherited this handler (a pool worker
        # signalled before its initializer ran) must just die — only the
        # installing process owns the shared pool.
        if os.getpid() == owner_pid:
            kill_pool_workers()
        os.kill(os.getpid(), signum)

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _install_signal_handlers()
    handlers = {
        "run": cmd_run,
        "matrix": cmd_matrix,
        "synthesize": cmd_synthesize,
        "pcap": cmd_pcap,
        "report": cmd_report,
        "dataset": cmd_dataset,
        "interop": cmd_interop,
        "fingerprint": cmd_fingerprint,
        "dissect": cmd_dissect,
        "dpi-stats": cmd_dpi_stats,
        "pipeline-stats": cmd_pipeline_stats,
        "serve": cmd_serve,
        "conformance": cmd_conformance,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
