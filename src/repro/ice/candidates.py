"""ICE candidates and the RFC 8445 priority formulas."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional


class CandidateType(enum.Enum):
    HOST = "host"
    SERVER_REFLEXIVE = "srflx"
    PEER_REFLEXIVE = "prflx"
    RELAYED = "relay"


#: RFC 8445 §5.1.2.2 recommended type preferences.
TYPE_PREFERENCES = {
    CandidateType.HOST: 126,
    CandidateType.PEER_REFLEXIVE: 110,
    CandidateType.SERVER_REFLEXIVE: 100,
    CandidateType.RELAYED: 0,
}


def candidate_priority(
    candidate_type: CandidateType,
    local_preference: int = 65535,
    component: int = 1,
) -> int:
    """priority = 2^24·type-pref + 2^8·local-pref + (256 − component)."""
    if not 1 <= component <= 256:
        raise ValueError("component IDs are 1-256")
    if not 0 <= local_preference <= 65535:
        raise ValueError("local preference is 16 bits")
    return (
        (TYPE_PREFERENCES[candidate_type] << 24)
        | (local_preference << 8)
        | (256 - component)
    )


def pair_priority(controlling_priority: int, controlled_priority: int) -> int:
    """RFC 8445 §6.1.2.3: 2^32·MIN + 2·MAX + (G>D ? 1 : 0)."""
    g, d = controlling_priority, controlled_priority
    return (min(g, d) << 32) + 2 * max(g, d) + (1 if g > d else 0)


@dataclass(frozen=True)
class Candidate:
    """One ICE candidate."""

    ip: str
    port: int
    candidate_type: CandidateType
    component: int = 1
    local_preference: int = 65535
    related_ip: Optional[str] = None  # base address for srflx/relay
    related_port: Optional[int] = None

    @property
    def priority(self) -> int:
        return candidate_priority(
            self.candidate_type, self.local_preference, self.component
        )

    @property
    def foundation(self) -> str:
        """Candidates of one type from one base share a foundation (§5.1.1.3)."""
        seed = f"{self.candidate_type.value}|{self.ip}|{self.related_ip}"
        return hashlib.sha1(seed.encode()).hexdigest()[:8]

    @property
    def transport_address(self):
        return (self.ip, self.port)
