"""Interactive Connectivity Establishment (RFC 8445), lite.

The paper's §2.1 narrative — gather candidates via STUN, probe pairs,
fall back to TURN relays behind symmetric NATs — implemented as a compact
substrate: candidate model with the RFC priority formulas, the pair
checklist state machine, and an agent pair driven over a configurable
simulated network.  The three network configurations of the experiment
matrix map onto NAT behaviours here, grounding each simulator's
P2P-vs-relay decision in actual connectivity checks.
"""

from repro.ice.candidates import (
    Candidate,
    CandidateType,
    candidate_priority,
    pair_priority,
)
from repro.ice.checklist import CheckState, CandidatePair, Checklist
from repro.ice.agent import IceAgent, NatBehaviour, SimulatedNetwork, run_ice

__all__ = [
    "Candidate",
    "CandidateType",
    "candidate_priority",
    "pair_priority",
    "CheckState",
    "CandidatePair",
    "Checklist",
    "IceAgent",
    "NatBehaviour",
    "SimulatedNetwork",
    "run_ice",
]
