"""Candidate-pair checklist (RFC 8445 §6.1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ice.candidates import Candidate, CandidateType, pair_priority


class CheckState(enum.Enum):
    FROZEN = "frozen"
    WAITING = "waiting"
    IN_PROGRESS = "in_progress"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class CandidatePair:
    local: Candidate
    remote: Candidate
    controlling: bool
    state: CheckState = CheckState.FROZEN
    nominated: bool = False

    @property
    def priority(self) -> int:
        if self.controlling:
            return pair_priority(self.local.priority, self.remote.priority)
        return pair_priority(self.remote.priority, self.local.priority)

    @property
    def uses_relay(self) -> bool:
        return (
            self.local.candidate_type is CandidateType.RELAYED
            or self.remote.candidate_type is CandidateType.RELAYED
        )

    @property
    def foundation(self) -> str:
        return f"{self.local.foundation}:{self.remote.foundation}"


@dataclass
class Checklist:
    """Ordered candidate pairs with the RFC's unfreezing discipline."""

    pairs: List[CandidatePair] = field(default_factory=list)

    @classmethod
    def form(
        cls,
        local_candidates: List[Candidate],
        remote_candidates: List[Candidate],
        controlling: bool,
    ) -> "Checklist":
        """Pair every compatible candidate and sort by pair priority."""
        pairs = [
            CandidatePair(local=local, remote=remote, controlling=controlling)
            for local in local_candidates
            for remote in remote_candidates
            if local.component == remote.component
        ]
        pairs.sort(key=lambda pair: pair.priority, reverse=True)
        deduped = cls._prune(pairs)
        checklist = cls(pairs=deduped)
        checklist._unfreeze_initial()
        return checklist

    @staticmethod
    def _prune(pairs: List[CandidatePair]) -> List[CandidatePair]:
        """Drop redundant pairs (same local base + remote, §6.1.2.4)."""
        seen = set()
        kept = []
        for pair in pairs:
            base = (
                pair.local.related_ip or pair.local.ip,
                pair.local.related_port or pair.local.port,
            )
            key = (base, pair.remote.transport_address,
                   pair.local.candidate_type is CandidateType.RELAYED)
            if key in seen:
                continue
            seen.add(key)
            kept.append(pair)
        return kept

    def _unfreeze_initial(self) -> None:
        """One WAITING pair per foundation, the rest stay FROZEN (§6.1.2.6)."""
        seen_foundations = set()
        for pair in self.pairs:
            if pair.foundation not in seen_foundations:
                pair.state = CheckState.WAITING
                seen_foundations.add(pair.foundation)

    def next_pair(self) -> Optional[CandidatePair]:
        """Highest-priority WAITING pair, unfreezing when none is ready."""
        for pair in self.pairs:
            if pair.state is CheckState.WAITING:
                return pair
        for pair in self.pairs:
            if pair.state is CheckState.FROZEN:
                pair.state = CheckState.WAITING
                return pair
        return None

    def succeeded_pairs(self) -> List[CandidatePair]:
        return [pair for pair in self.pairs
                if pair.state is CheckState.SUCCEEDED]

    @property
    def exhausted(self) -> bool:
        return all(
            pair.state in (CheckState.SUCCEEDED, CheckState.FAILED)
            for pair in self.pairs
        )

    def nominate(self) -> Optional[CandidatePair]:
        """Regular nomination: the best succeeded pair wins."""
        succeeded = self.succeeded_pairs()
        if not succeeded:
            return None
        best = max(succeeded, key=lambda pair: pair.priority)
        best.nominated = True
        return best
