"""A lite ICE agent pair over a simulated network.

Connectivity checks are actual STUN Binding Requests/Responses built with
the library's codec; the :class:`SimulatedNetwork` decides which paths
deliver based on the NAT behaviour under test.  This grounds the paper's
three network configurations:

- ``wifi_p2p``  → endpoint-independent NAT: host/srflx checks succeed → P2P
- ``wifi_relay`` → UDP hole punching blocked: only relayed pairs succeed
- ``cellular``   → carrier-dependent (the experiment sets it per app)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ice.candidates import Candidate, CandidateType
from repro.ice.checklist import CandidatePair, Checklist, CheckState
from repro.protocols.stun.attributes import StunAttribute, encode_xor_address
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import StunMessage, build_with_fingerprint
from repro.utils.rand import DeterministicRandom


class NatBehaviour(enum.Enum):
    """Simplified NAT model per endpoint."""

    OPEN = "open"                      # public address, no NAT
    ENDPOINT_INDEPENDENT = "eim"       # hole punching works
    ADDRESS_DEPENDENT = "adm"          # works after outbound packet to peer
    BLOCKED = "blocked"                # inbound UDP always dropped (firewall)


@dataclass
class SimulatedNetwork:
    """Decides whether a connectivity check between two pairs delivers."""

    nat_a: NatBehaviour
    nat_b: NatBehaviour

    def direct_path_works(self) -> bool:
        """Can a host/srflx ↔ host/srflx pair ever succeed?"""
        blocked = NatBehaviour.BLOCKED
        return self.nat_a is not blocked and self.nat_b is not blocked

    def check_succeeds(self, pair: CandidatePair) -> bool:
        if pair.uses_relay:
            return True  # the relay is publicly reachable by definition
        return self.direct_path_works()


@dataclass
class IceAgent:
    """One side of the session: its candidates and connectivity state."""

    name: str
    host_ip: str
    public_ip: str
    relay_ip: str
    controlling: bool
    rng: DeterministicRandom
    candidates: List[Candidate] = field(default_factory=list)
    check_messages: List[bytes] = field(default_factory=list)

    def gather(self) -> List[Candidate]:
        """Host, server-reflexive (via STUN) and relayed (via TURN) candidates."""
        host_port = self.rng.randint(49152, 65535)
        self.candidates = [
            Candidate(ip=self.host_ip, port=host_port,
                      candidate_type=CandidateType.HOST),
            Candidate(ip=self.public_ip, port=self.rng.randint(1024, 65535),
                      candidate_type=CandidateType.SERVER_REFLEXIVE,
                      related_ip=self.host_ip, related_port=host_port),
            Candidate(ip=self.relay_ip, port=self.rng.randint(40000, 50000),
                      candidate_type=CandidateType.RELAYED,
                      related_ip=self.public_ip, related_port=host_port),
        ]
        return self.candidates

    def build_check(self, pair: CandidatePair) -> bytes:
        """A real ICE Binding Request for this pair."""
        role_attr = (
            AttributeType.ICE_CONTROLLING if self.controlling
            else AttributeType.ICE_CONTROLLED
        )
        message = StunMessage(
            msg_type=0x0001,
            transaction_id=self.rng.transaction_id(),
            attributes=[
                StunAttribute(int(AttributeType.USERNAME), b"remote:local"),
                StunAttribute(int(AttributeType.PRIORITY),
                              pair.local.priority.to_bytes(4, "big")),
                StunAttribute(int(role_attr), self.rng.rand_bytes(8)),
                StunAttribute(int(AttributeType.MESSAGE_INTEGRITY),
                              self.rng.rand_bytes(20)),
            ],
        )
        raw = build_with_fingerprint(message)
        self.check_messages.append(raw)
        return raw

    def build_response(self, request_raw: bytes, pair: CandidatePair) -> bytes:
        request = StunMessage.parse(request_raw)
        response = StunMessage(
            msg_type=0x0101,
            transaction_id=request.transaction_id,
            attributes=[
                StunAttribute(
                    int(AttributeType.XOR_MAPPED_ADDRESS),
                    encode_xor_address(pair.remote.ip, pair.remote.port,
                                       request.transaction_id),
                ),
                StunAttribute(int(AttributeType.MESSAGE_INTEGRITY),
                              self.rng.rand_bytes(20)),
            ],
        )
        raw = build_with_fingerprint(response)
        self.check_messages.append(raw)
        return raw


@dataclass
class IceOutcome:
    """Result of a full ICE run."""

    nominated: Optional[CandidatePair]
    checks_sent: int
    succeeded: int
    failed: int

    @property
    def connected(self) -> bool:
        return self.nominated is not None

    @property
    def mode(self) -> str:
        if self.nominated is None:
            return "failed"
        return "relay" if self.nominated.uses_relay else "p2p"


def run_ice(
    network: SimulatedNetwork,
    seed: int = 0,
    relay_ip_a: str = "198.18.0.10",
    relay_ip_b: str = "198.18.0.11",
) -> IceOutcome:
    """Run a full ICE session between two agents over *network*."""
    rng = DeterministicRandom(f"ice:{seed}")
    agent_a = IceAgent(name="a", host_ip="192.168.1.23", public_ip="203.0.113.10",
                       relay_ip=relay_ip_a, controlling=True, rng=rng.child("a"))
    agent_b = IceAgent(name="b", host_ip="192.168.1.57", public_ip="203.0.113.20",
                       relay_ip=relay_ip_b, controlling=False, rng=rng.child("b"))
    checklist = Checklist.form(agent_a.gather(), agent_b.gather(), controlling=True)

    checks = succeeded = failed = 0
    while not checklist.exhausted:
        pair = checklist.next_pair()
        if pair is None:
            break
        pair.state = CheckState.IN_PROGRESS
        request = agent_a.build_check(pair)
        checks += 1
        if network.check_succeeds(pair):
            agent_b.build_response(request, pair)
            pair.state = CheckState.SUCCEEDED
            succeeded += 1
        else:
            pair.state = CheckState.FAILED
            failed += 1

    return IceOutcome(
        nominated=checklist.nominate(),
        checks_sent=checks,
        succeeded=succeeded,
        failed=failed,
    )
