"""rtc-compliance: protocol-compliance measurement for RTC applications.

A full reproduction of "Protocol Compliance in Popular RTC Applications"
(IMC 2025): traffic synthesis for six RTC apps, a two-stage unrelated-traffic
filter, an offset-shifting DPI engine, and a five-criterion compliance model
for STUN/TURN, RTP, RTCP and QUIC.

Typical use::

    from repro import run_experiment, ExperimentConfig, NetworkCondition

    aggregate = run_experiment("zoom", NetworkCondition.WIFI_RELAY,
                               ExperimentConfig(call_duration=30.0))
    print(aggregate.summary.volume.ratio)

Layer by layer:

- :mod:`repro.packets` — pcap/pcapng I/O and L2-L4 decoding
- :mod:`repro.protocols` — STUN/TURN, RTP, RTCP, QUIC, TLS codecs
- :mod:`repro.apps` — per-application call-traffic simulators
- :mod:`repro.filtering` — the two-stage unrelated-traffic filter (§3.2)
- :mod:`repro.dpi` — offset-shifting DPI with validation (§4.1)
- :mod:`repro.core` — the five-criterion compliance model (§4.2)
- :mod:`repro.experiments` — the experiment matrix and table/figure generators
"""

from repro.apps import APP_NAMES, CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker, ComplianceSummary
from repro.dpi import DpiEngine, Protocol
from repro.experiments import ExperimentConfig, run_experiment, run_matrix
from repro.filtering import TwoStageFilter

__version__ = "1.0.0"

__all__ = [
    "APP_NAMES",
    "CallConfig",
    "NetworkCondition",
    "get_simulator",
    "ComplianceChecker",
    "ComplianceSummary",
    "DpiEngine",
    "Protocol",
    "ExperimentConfig",
    "run_experiment",
    "run_matrix",
    "TwoStageFilter",
    "__version__",
]
