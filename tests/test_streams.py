"""Tests for stream grouping and the call timeline."""

import pytest

from repro.packets.packet import PacketRecord
from repro.streams.flow import Stream, StreamStats, group_streams
from repro.streams.timeline import CallWindow, Phase


def record(t, src=("10.0.0.1", 1000), dst=("8.8.8.8", 2000), transport="UDP",
           payload=b"xx"):
    return PacketRecord(
        timestamp=t, src_ip=src[0], src_port=src[1],
        dst_ip=dst[0], dst_port=dst[1], transport=transport, payload=payload,
    )


class TestGrouping:
    def test_bidirectional_packets_share_stream(self):
        records = [
            record(1.0),
            record(2.0, src=("8.8.8.8", 2000), dst=("10.0.0.1", 1000)),
        ]
        streams = group_streams(records)
        assert len(streams) == 1
        assert next(iter(streams.values())).packet_count == 2

    def test_different_ports_split(self):
        records = [record(1.0), record(1.0, dst=("8.8.8.8", 2001))]
        assert len(group_streams(records)) == 2

    def test_transport_separates(self):
        records = [record(1.0), record(1.0, transport="TCP")]
        assert len(group_streams(records)) == 2

    def test_packets_time_sorted(self):
        streams = group_streams([record(5.0), record(1.0), record(3.0)])
        stream = next(iter(streams.values()))
        timestamps = [p.timestamp for p in stream]
        assert timestamps == sorted(timestamps)

    def test_stream_properties(self):
        streams = group_streams([record(1.0, payload=b"abc"), record(4.0)])
        stream = next(iter(streams.values()))
        assert stream.timespan == (1.0, 4.0)
        assert stream.byte_count == 5
        assert stream.transport == "UDP"
        assert set(stream.ips()) == {"10.0.0.1", "8.8.8.8"}
        assert set(stream.ports()) == {1000, 2000}
        assert len(stream) == 2


class TestStreamStats:
    def test_of(self):
        streams = group_streams([record(1.0), record(2.0, dst=("9.9.9.9", 53))])
        stats = StreamStats.of(streams.values())
        assert stats.stream_count == 2
        assert stats.packet_count == 2
        assert stats.byte_count == 4

    def test_add(self):
        a = StreamStats(1, 10, 100)
        b = StreamStats(2, 20, 200)
        total = a + b
        assert (total.stream_count, total.packet_count, total.byte_count) == (3, 30, 300)


class TestCallWindow:
    def test_standard_layout(self):
        window = CallWindow.standard()
        assert window.capture_start == 0.0
        assert window.call_start == 60.0
        assert window.call_end == 360.0
        assert window.capture_end == 420.0
        assert window.call_duration == 300.0

    def test_phases(self):
        window = CallWindow.standard()
        assert window.phase_of(10.0) is Phase.PRE_CALL
        assert window.phase_of(100.0) is Phase.CALL
        assert window.phase_of(400.0) is Phase.POST_CALL

    def test_extended_margins(self):
        window = CallWindow.standard()
        assert window.extended_start == 58.0
        assert window.extended_end == 362.0

    def test_encloses(self):
        window = CallWindow.standard()
        assert window.encloses(60.0, 360.0)
        assert window.encloses(59.0, 361.0)  # inside the ±2 s margin
        assert not window.encloses(30.0, 100.0)
        assert not window.encloses(100.0, 400.0)

    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError):
            CallWindow(capture_start=10, call_start=5, call_end=20, capture_end=30)
