"""Tests for the ICE substrate (RFC 8445)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ice import (
    Candidate,
    CandidatePair,
    CandidateType,
    Checklist,
    CheckState,
    NatBehaviour,
    SimulatedNetwork,
    candidate_priority,
    pair_priority,
    run_ice,
)


class TestPriorities:
    def test_type_ordering(self):
        host = candidate_priority(CandidateType.HOST)
        srflx = candidate_priority(CandidateType.SERVER_REFLEXIVE)
        relay = candidate_priority(CandidateType.RELAYED)
        assert host > srflx > relay

    def test_component_discriminates(self):
        rtp = candidate_priority(CandidateType.HOST, component=1)
        rtcp = candidate_priority(CandidateType.HOST, component=2)
        assert rtp == rtcp + 1

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            candidate_priority(CandidateType.HOST, component=0)
        with pytest.raises(ValueError):
            candidate_priority(CandidateType.HOST, local_preference=70000)

    @given(st.integers(1, 2**31 - 1), st.integers(1, 2**31 - 1))
    def test_pair_priority_symmetry(self, g, d):
        """Both agents must order pairs identically (modulo the tie bit)."""
        a = pair_priority(g, d)
        b = pair_priority(d, g)
        assert abs(a - b) <= 1

    def test_pair_priority_formula(self):
        assert pair_priority(5, 3) == (3 << 32) + 10 + 1
        assert pair_priority(3, 5) == (3 << 32) + 10


class TestCandidates:
    def test_foundation_shared_by_same_type_and_base(self):
        a = Candidate(ip="1.2.3.4", port=1000, candidate_type=CandidateType.HOST)
        b = Candidate(ip="1.2.3.4", port=2000, candidate_type=CandidateType.HOST)
        c = Candidate(ip="1.2.3.4", port=1000,
                      candidate_type=CandidateType.RELAYED)
        assert a.foundation == b.foundation
        assert a.foundation != c.foundation


def gather(ip_suffix: int):
    return [
        Candidate(ip=f"192.168.1.{ip_suffix}", port=50000,
                  candidate_type=CandidateType.HOST),
        Candidate(ip=f"203.0.113.{ip_suffix}", port=40000,
                  candidate_type=CandidateType.SERVER_REFLEXIVE,
                  related_ip=f"192.168.1.{ip_suffix}", related_port=50000),
        Candidate(ip=f"198.18.0.{ip_suffix}", port=30000,
                  candidate_type=CandidateType.RELAYED,
                  related_ip=f"203.0.113.{ip_suffix}", related_port=40000),
    ]


class TestChecklist:
    def test_pairs_sorted_by_priority(self):
        checklist = Checklist.form(gather(1), gather(2), controlling=True)
        priorities = [pair.priority for pair in checklist.pairs]
        assert priorities == sorted(priorities, reverse=True)

    def test_host_host_pair_first(self):
        checklist = Checklist.form(gather(1), gather(2), controlling=True)
        top = checklist.pairs[0]
        assert top.local.candidate_type is CandidateType.HOST
        assert top.remote.candidate_type is CandidateType.HOST

    def test_initial_unfreezing_one_per_foundation(self):
        checklist = Checklist.form(gather(1), gather(2), controlling=True)
        waiting = [p for p in checklist.pairs if p.state is CheckState.WAITING]
        foundations = {p.foundation for p in waiting}
        assert len(waiting) == len(foundations)

    def test_next_pair_unfreezes_when_empty(self):
        checklist = Checklist.form(gather(1), gather(2), controlling=True)
        seen = set()
        while True:
            pair = checklist.next_pair()
            if pair is None:
                break
            assert id(pair) not in seen
            seen.add(id(pair))
            pair.state = CheckState.FAILED
        assert checklist.exhausted

    def test_nominate_prefers_best(self):
        checklist = Checklist.form(gather(1), gather(2), controlling=True)
        # Mark a relay pair and a host pair succeeded; host must win.
        relay_pair = next(p for p in checklist.pairs if p.uses_relay)
        host_pair = checklist.pairs[0]
        relay_pair.state = CheckState.SUCCEEDED
        host_pair.state = CheckState.SUCCEEDED
        nominated = checklist.nominate()
        assert nominated is host_pair
        assert nominated.nominated

    def test_nominate_none_without_success(self):
        checklist = Checklist.form(gather(1), gather(2), controlling=True)
        assert checklist.nominate() is None


class TestIceRun:
    def test_open_network_yields_p2p(self):
        outcome = run_ice(SimulatedNetwork(NatBehaviour.ENDPOINT_INDEPENDENT,
                                           NatBehaviour.ENDPOINT_INDEPENDENT))
        assert outcome.connected
        assert outcome.mode == "p2p"

    def test_blocked_network_falls_back_to_relay(self):
        """The paper's Wi-Fi-relay configuration: hole punching disabled."""
        outcome = run_ice(SimulatedNetwork(NatBehaviour.BLOCKED,
                                           NatBehaviour.ENDPOINT_INDEPENDENT))
        assert outcome.connected
        assert outcome.mode == "relay"
        assert outcome.failed > 0  # direct checks were tried and failed

    def test_relay_pairs_always_succeed(self):
        outcome = run_ice(SimulatedNetwork(NatBehaviour.BLOCKED,
                                           NatBehaviour.BLOCKED))
        assert outcome.mode == "relay"

    def test_checks_are_valid_stun(self):
        from repro.protocols.stun.message import StunMessage
        network = SimulatedNetwork(NatBehaviour.ENDPOINT_INDEPENDENT,
                                   NatBehaviour.ENDPOINT_INDEPENDENT)
        outcome = run_ice(network, seed=7)
        assert outcome.checks_sent > 0

    def test_check_messages_pass_compliance(self):
        """The substrate's own connectivity checks must be compliant."""
        from repro.core import ComplianceChecker
        from repro.dpi import DpiEngine
        from repro.ice.agent import IceAgent
        from repro.ice.checklist import Checklist
        from repro.packets.packet import PacketRecord
        from repro.utils.rand import DeterministicRandom

        rng = DeterministicRandom("compliance")
        agent = IceAgent(name="x", host_ip="192.168.1.5",
                         public_ip="203.0.113.5", relay_ip="198.18.0.5",
                         controlling=True, rng=rng)
        checklist = Checklist.form(agent.gather(), gather(9), controlling=True)
        records = []
        for i, pair in enumerate(checklist.pairs[:5]):
            records.append(PacketRecord(
                timestamp=float(i), src_ip="192.168.1.5", src_port=50000,
                dst_ip="192.168.1.9", dst_port=50001, transport="UDP",
                payload=agent.build_check(pair),
            ))
        result = DpiEngine().analyze_records(records)
        verdicts = ComplianceChecker().check(result.messages())
        assert verdicts and all(v.compliant for v in verdicts)

    def test_deterministic(self):
        network = SimulatedNetwork(NatBehaviour.BLOCKED,
                                   NatBehaviour.ENDPOINT_INDEPENDENT)
        a = run_ice(network, seed=3)
        b = run_ice(network, seed=3)
        assert a.mode == b.mode
        assert a.checks_sent == b.checks_sent
