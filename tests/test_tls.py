"""Tests for TLS ClientHello parsing and SNI extraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.tls.client_hello import (
    TlsParseError,
    build_client_hello,
    extract_sni,
    parse_client_hello,
)


class TestClientHello:
    def test_round_trip_sni(self):
        raw = build_client_hello("media.example.net")
        assert extract_sni(raw) == "media.example.net"

    def test_parse_fields(self):
        raw = build_client_hello("a.b", random_bytes=bytes(range(32)))
        hello = parse_client_hello(raw)
        assert hello.legacy_version == 0x0303
        assert hello.random == bytes(range(32))
        assert 0x1301 in hello.cipher_suites

    def test_custom_suites(self):
        raw = build_client_hello("x.y", cipher_suites=[0xC02F])
        assert parse_client_hello(raw).cipher_suites == [0xC02F]

    def test_bad_random_length_rejected(self):
        with pytest.raises(ValueError):
            build_client_hello("x.y", random_bytes=b"short")

    def test_non_handshake_rejected(self):
        raw = bytearray(build_client_hello("x.y"))
        raw[0] = 23  # application data
        with pytest.raises(TlsParseError):
            parse_client_hello(bytes(raw))

    def test_non_clienthello_rejected(self):
        raw = bytearray(build_client_hello("x.y"))
        raw[5] = 2  # ServerHello
        with pytest.raises(TlsParseError):
            parse_client_hello(bytes(raw))

    def test_extract_sni_on_garbage_returns_none(self):
        assert extract_sni(b"not tls at all") is None
        assert extract_sni(b"") is None

    def test_extract_sni_with_corrupted_extension_is_graceful(self):
        raw = bytearray(build_client_hello("x.y"))
        raw[-4:] = b"\x00\x00\x00\x00"
        # Must not raise; the mangled SNI yields a degenerate or no name.
        assert extract_sni(bytes(raw)) != "x.y"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz.-", min_size=1, max_size=40))
    def test_property_sni_round_trip(self, hostname):
        assert extract_sni(build_client_hello(hostname)) == hostname
