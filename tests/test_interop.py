"""Tests for the interoperability-gap analysis."""

import pytest

from repro.apps import APP_NAMES, NetworkCondition
from repro.experiments.interop import (
    InteropGap,
    compute_interop_gap,
    render_gap_table,
)


@pytest.fixture(scope="module")
def gaps(pipeline_cache):
    out = {}
    for app in APP_NAMES:
        verdicts = []
        analyses = []
        for network in NetworkCondition:
            _trace, _filter, dpi, vs = pipeline_cache(app, network)
            verdicts.extend(vs)
            analyses.extend(dpi.analyses)
        out[app] = compute_interop_gap(app, verdicts, analyses)
    return out


class TestInteropGap:
    def test_whatsapp_custom_message_types(self, gaps):
        gap = gaps["whatsapp"]
        assert gap.undefined_message_types == frozenset(
            {"0x0800", "0x0801", "0x0802", "0x0803", "0x0804", "0x0805"}
        )

    def test_zoom_needs_framing_and_custom_protocol(self, gaps):
        gap = gaps["zoom"]
        assert gap.needs_custom_framing
        assert gap.needs_custom_protocol
        assert gap.proprietary_header_share > 0.6

    def test_meet_is_cheapest_to_interoperate_with(self, gaps):
        scores = {app: gap.effort_score for app, gap in gaps.items()}
        assert min(scores, key=scores.get) == "meet"

    def test_every_app_has_nonzero_effort(self, gaps):
        """Finding 2 restated: nobody interoperates for free."""
        for app, gap in gaps.items():
            assert gap.effort_score > 0, app

    def test_workload_items_nonempty(self, gaps):
        for gap in gaps.values():
            assert gap.workload_items()

    def test_zero_gap_app(self):
        gap = InteropGap(
            app="ideal",
            undefined_message_types=frozenset(),
            undefined_attribute_messages=0,
            semantic_deviation_messages=0,
            proprietary_header_share=0.0,
            fully_proprietary_share=0.0,
        )
        assert gap.effort_score == 0
        assert gap.workload_items() == ["none — interoperates with a stock RFC stack"]

    def test_render_table(self, gaps):
        text = render_gap_table(list(gaps.values()))
        assert "zoom" in text
        assert "score" in text
        # Sorted by descending effort: zoom must come before meet.
        assert text.index("zoom") < text.index("meet")
