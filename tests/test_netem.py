"""Unit and regression tests for the network-impairment layer.

Complements the hypothesis suite (``test_netem_properties.py``) with
pinned-behavior tests: profile validation and planner cost math, the
exact rewrite semantics of NAT rebinding and the UDP-blackout TCP
fallback, the fast-path relearn regression for a mid-lock port
collision, the ``netem-*`` fuzzer mutators, and a spot check of the
impaired golden corpora.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.conformance import check_impaired_corpora
from repro.conformance.fuzzer import (
    MUTATORS,
    builtin_seeds,
    fuzz,
    run_oracle,
)
from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.dpi.tcp import analyze_tcp_records
from repro.netem import (
    GilbertElliott,
    Impairer,
    ImpairmentProfile,
    NatRebind,
    PROFILES,
    get_profile,
)
from repro.netem.profiles import MIN_VOLUME_FACTOR, REBIND_COST_FACTOR
from repro.netem.impair import (
    FALLBACK_PORT_BASE,
    REBIND_PORT_RANGE,
    TURN_TCP_PORT,
    _device_endpoint,
)
from repro.packets.packet import Direction, PacketRecord, TrafficCategory, Truth
from repro.protocols.stun.message import ChannelData
from repro.protocols.rtp.header import RtpPacket
from repro.utils.rand import DeterministicRandom

APP = "zoom"
NETWORK = NetworkCondition.WIFI_P2P


@lru_cache(maxsize=1)
def base_records():
    """One small clean cell, simulated once for the whole module."""
    config = CallConfig(
        network=NETWORK, seed=3, call_duration=5.0, media_scale=0.25
    )
    return tuple(get_simulator(APP).iter_records(config))


def rebind_span(records):
    """(t0, t1, t_rebind) for ``at_fraction=0.5`` over *records*."""
    timestamps = [r.timestamp for r in records]
    t0, t1 = min(timestamps), max(timestamps)
    return t0, t1, t0 + 0.5 * (t1 - t0)


class TestProfiles:
    def test_get_profile_unknown_name(self):
        with pytest.raises(ValueError, match="udp_blocked"):
            get_profile("packet-storm")

    def test_named_profiles_round_trip(self):
        for name, profile in PROFILES.items():
            assert get_profile(name) is profile
            assert profile.name == name

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ImpairmentProfile(loss_rate=1.5)
        with pytest.raises(ValueError):
            ImpairmentProfile(reorder_delay=-0.1)
        with pytest.raises(ValueError):
            GilbertElliott(p_enter=-0.01)
        with pytest.raises(ValueError):
            NatRebind(at_fraction=1.0)

    def test_gilbert_elliott_stationary_loss(self):
        chain = GilbertElliott(p_enter=0.1, p_exit=0.3, loss_good=0.0,
                               loss_bad=0.4)
        # pi_bad = 0.1 / 0.4 = 0.25 -> loss = 0.25 * 0.4 = 0.1
        assert chain.stationary_loss() == pytest.approx(0.1)
        # Degenerate chain that never moves: loss_good is all there is.
        frozen = GilbertElliott(p_enter=0.0, p_exit=0.0, loss_good=0.02)
        assert frozen.stationary_loss() == pytest.approx(0.02)

    def test_is_noop(self):
        assert PROFILES["none"].is_noop
        assert ImpairmentProfile().is_noop
        for name in ("lossy", "burst", "rebind", "udp_blocked"):
            assert not PROFILES[name].is_noop

    def test_volume_factor_math(self):
        profile = ImpairmentProfile(loss_rate=0.1, duplicate_rate=0.05)
        assert profile.volume_factor() == pytest.approx(0.9 * 1.05)
        rebinding = ImpairmentProfile(rebind=NatRebind())
        assert rebinding.volume_factor() == pytest.approx(REBIND_COST_FACTOR)
        # cost_scale overrides the derived factor outright.
        assert PROFILES["udp_blocked"].volume_factor() == pytest.approx(0.5)
        # A near-total blackout still pays the bookkeeping floor.
        wipeout = ImpairmentProfile(loss_rate=1.0)
        assert wipeout.volume_factor() == pytest.approx(MIN_VOLUME_FACTOR)

    def test_clean_profile_volume_factor_is_one(self):
        assert PROFILES["none"].volume_factor() == pytest.approx(1.0)


class TestRebindRewrite:
    def test_fresh_port_rewrite_semantics(self):
        records = base_records()
        profile = ImpairmentProfile(
            name="t", rebind=NatRebind(at_fraction=0.5, collide=False)
        )
        out = Impairer(profile, seed=5, label="t").apply(records)
        assert len(out) == len(records)
        _t0, _t1, t_rebind = rebind_span(records)
        rewritten = 0
        for before, after in zip(records, out):
            assert after.payload == before.payload
            assert after.timestamp == before.timestamp
            if before == after:
                continue
            # Only the device-side port of a post-rebind RTC UDP packet
            # may change — everything else passes through verbatim.
            rewritten += 1
            assert before.transport == "UDP"
            assert before.timestamp >= t_rebind
            assert before.truth is not None and before.truth.is_rtc
            old_ip, old_port = _device_endpoint(before)
            new_ip, new_port = _device_endpoint(after)
            assert new_ip == old_ip
            assert new_port != old_port
            assert REBIND_PORT_RANGE[0] <= new_port < REBIND_PORT_RANGE[1]
        assert rewritten > 0, "expected the cell to have an active RTC socket"

    def test_background_sockets_never_rebind(self):
        records = base_records()
        out = Impairer(PROFILES["rebind"], seed=5, label="t").apply(records)
        clean = [r for r in records
                 if r.truth is None or not r.truth.is_rtc]
        kept = [r for r in out
                if r.truth is None or not r.truth.is_rtc]
        # rebind's light random loss may drop some, but survivors are
        # byte-for-byte untouched.
        survivors = {(r.timestamp, r.payload): r for r in clean}
        for record in kept:
            assert survivors[(record.timestamp, record.payload)] == record

    def test_rebind_empty_and_flat_streams_pass_through(self):
        impairer = Impairer(
            ImpairmentProfile(name="t", rebind=NatRebind()), seed=0, label="t"
        )
        assert impairer.apply([]) == []
        record = base_records()[0]
        assert impairer.apply([record]) == [record]


def _rtp_flow_record(t, sport, ssrc, seq):
    payload = RtpPacket(payload_type=96, sequence_number=seq,
                        timestamp=1000 + 160 * seq, ssrc=ssrc,
                        payload=bytes(40)).build()
    return PacketRecord(
        timestamp=t, src_ip="10.0.0.1", src_port=sport,
        dst_ip="20.0.0.2", dst_port=3478, transport="UDP",
        payload=payload, direction=Direction.OUTBOUND,
        truth=Truth(category=TrafficCategory.RTC_MEDIA, app="synthetic"),
    )


class TestCollideRebindMidLock:
    """The fast-path learner's worst case, pinned as a regression.

    Two media sockets talk to the same relay; a colliding rebind rotates
    their device ports mid-call, so each stream's post-rebind packets
    land on the flow key the *other* stream already locked, carrying a
    foreign SSRC.  The learner must fall back and relearn — and the
    fast-path output must stay bit-identical to the unconditional sweep.
    """

    @staticmethod
    def _collision_records():
        records = []
        for i in range(120):
            records.append(_rtp_flow_record(i * 0.02, 50001, 0x11111111, i))
            records.append(
                _rtp_flow_record(i * 0.02 + 0.01, 50002, 0x22222222, i)
            )
        profile = ImpairmentProfile(
            name="t", rebind=NatRebind(at_fraction=0.5, collide=True)
        )
        return records, Impairer(profile, seed=0, label="t").apply(records)

    def test_collide_rotates_ports_among_affected_sockets(self):
        records, impaired = self._collision_records()
        _t0, _t1, t_rebind = rebind_span(records)
        assert {r.src_port for r in impaired} == {50001, 50002}
        for before, after in zip(records, impaired):
            if before.timestamp < t_rebind:
                assert after == before
            else:
                assert after.src_port != before.src_port

    def test_fastpath_falls_back_and_relearns(self):
        records, impaired = self._collision_records()
        clean_stats = DpiEngine(max_offset=200).analyze_records(records).stats
        imp_stats = DpiEngine(max_offset=200).analyze_records(impaired).stats
        assert clean_stats.fastpath_hits > 0, "streams must lock pre-rebind"
        # Foreign SSRCs inside a locked stream fail the fast-path probe:
        # each collision costs fallbacks (probe + full sweep) before the
        # learner re-locks onto the new occupant.
        assert imp_stats.fastpath_fallbacks > clean_stats.fastpath_fallbacks
        assert imp_stats.sweeps > clean_stats.sweeps
        assert imp_stats.fastpath_hits > 0, "must re-lock after the rebind"

    def test_fastpath_output_matches_sweep_across_rebind(self):
        _records, impaired = self._collision_records()
        fast = DpiEngine(max_offset=200, fastpath=True)
        slow = DpiEngine(max_offset=200, fastpath=False, cache_size=0)
        checker = ComplianceChecker()

        def facts(engine):
            dpi = engine.analyze_records(impaired)
            return (
                [(a.record.timestamp, a.classification.value,
                  tuple((m.protocol.value, m.offset, m.length)
                        for m in a.messages))
                 for a in dpi.analyses],
                [v.compliant for v in checker.check(dpi.messages())],
            )

        assert facts(fast) == facts(slow)


class TestUdpBlocked:
    @staticmethod
    @lru_cache(maxsize=1)
    def _blackout():
        records = base_records()
        out = Impairer(PROFILES["udp_blocked"], seed=0, label="t").apply(records)
        return records, out

    def test_no_udp_survives(self):
        _records, out = self._blackout()
        assert out, "fallback must re-emit the call's media"
        assert all(r.transport == "TCP" for r in out)

    def test_fallback_connections_hit_turn_tcp_port(self):
        records, out = self._blackout()
        original_tcp = {(r.timestamp, r.payload) for r in records
                        if r.transport == "TCP"}
        fallback = [r for r in out
                    if (r.timestamp, r.payload) not in original_tcp]
        assert fallback
        for record in fallback:
            device_ip, device_port = _device_endpoint(record)
            remote_port = (record.dst_port
                           if (record.src_ip, record.src_port)
                           == (device_ip, device_port)
                           else record.src_port)
            assert remote_port == TURN_TCP_PORT
            assert device_port >= FALLBACK_PORT_BASE
            # RFC 8656 s12.4: ChannelData over TCP pads to 4 bytes.
            assert len(record.payload) % 4 == 0

    def test_channeldata_recovery_round_trips_media(self):
        records, out = self._blackout()
        rtc_payloads = [r.payload for r in records
                        if r.transport == "UDP"
                        and r.truth is not None and r.truth.is_rtc]
        analyses = analyze_tcp_records(out)
        recovered = [
            message.message.data
            for analysis in analyses
            for message in analysis.messages
            if isinstance(message.message, ChannelData)
        ]
        assert len(recovered) == len(rtc_payloads)
        assert sorted(recovered) == sorted(rtc_payloads)

    def test_non_rtc_udp_is_dropped_not_rehomed(self):
        records, out = self._blackout()
        background = [r for r in records if r.transport == "UDP"
                      and (r.truth is None or not r.truth.is_rtc)]
        assert background, "cell must have background UDP for this test"
        survivors = {(r.timestamp, r.payload) for r in out}
        for record in background:
            assert (record.timestamp, record.payload) not in survivors


NETEM_MUTATORS = [m for m in MUTATORS if m.name.startswith("netem-")]


class TestNetemMutators:
    def test_all_three_registered(self):
        names = {m.name for m in NETEM_MUTATORS}
        assert names == {"netem-drop-response", "netem-duplicate-answered",
                         "netem-reorder-response-first"}
        benign = {m.name for m in NETEM_MUTATORS if m.expect_compliant}
        assert benign == {"netem-duplicate-answered",
                          "netem-reorder-response-first"}

    @pytest.mark.parametrize(
        "mutator", NETEM_MUTATORS, ids=lambda m: m.name
    )
    def test_oracle_passes_on_builtin_seeds(self, mutator):
        checker = ComplianceChecker()
        seeds = [s for s in builtin_seeds() if s.kind in mutator.kinds]
        assert seeds
        for index, seed in enumerate(seeds):
            rng = DeterministicRandom(index)
            mutated = mutator.apply(seed, rng)
            if mutated is None:
                continue
            result = run_oracle(mutator, mutated, checker)
            assert result.ok, (
                f"{mutator.name} on {seed.kind}: "
                f"expected {result.expected}, got {result.got}"
            )

    def test_netem_only_fuzz_campaign(self):
        report = fuzz(iterations=90, seed=7, mutators=NETEM_MUTATORS)
        assert report.ok, [
            (f.mutator, f.expected, f.got) for f in report.failures
        ]
        assert report.executed > 0
        assert set(report.per_mutator) == {m.name for m in NETEM_MUTATORS}


class TestImpairedGoldens:
    def test_impaired_corpora_replay_clean_for_one_app(self):
        report = check_impaired_corpora(apps=[APP])
        assert report.cells_checked == 2  # one cell per impaired profile
        assert report.ok, [d for d in report.drifts]
